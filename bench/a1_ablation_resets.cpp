/// Ablation A1 — why critical ranges + competitor lists (Sect. 4).
///
/// The paper motivates its reset technique by the failure of the naive
/// rule ("reset whenever a higher counter is heard"): cascading resets and
/// local starvation.  We compare the three policies under asynchronous
/// wake-up on a dense deployment: the paper's rule resets rarely and keeps
/// the latency tail tight; the naive rule resets massively and stretches
/// the tail; never resetting is fast but loses the correctness guarantee.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;
  bench::banner("A1", "reset-policy ablation: critical-range vs naive vs "
                      "none");

  const std::size_t n = 144;
  Rng rng(0xA1);
  const auto net = graph::random_udg(n, 7.0, 1.5, rng);  // dense
  const auto mp = bench::measured_params(net.graph, 48);
  std::printf("deployment: n=%zu Delta=%u k2=%u avg_deg=%.1f\n\n", n,
              mp.delta, mp.kappa2, net.graph.average_degree());

  const auto sched =
      analysis::uniform_schedule(n, 4 * mp.params.threshold());
  const std::size_t trials = 15;

  analysis::Table table(
      "a1_ablation_resets",
      "A1: reset policies under asynchronous wake-up (15 trials each)");
  table.set_header({"policy", "valid", "complete", "resets/node", "mean_T",
                    "p95_T", "max_T"});
  const std::pair<const char*, core::ResetPolicy> policies[] = {
      {"critical-range (paper)", core::ResetPolicy::kCriticalRange},
      {"naive (strawman)", core::ResetPolicy::kNaive},
      {"never reset", core::ResetPolicy::kNone},
  };
  for (const auto& [name, policy] : policies) {
    core::Params p = mp.params;
    p.reset_policy = policy;
    const auto agg =
        analysis::run_core_trials(net.graph, p, sched, trials, 0xA1F0);
    table.add_row({name, analysis::Table::num(agg.valid_fraction(), 2),
                   analysis::Table::num(agg.completed_fraction(), 2),
                   analysis::Table::num(agg.resets_per_node.mean(), 2),
                   analysis::Table::num(agg.mean_latency.mean(), 0),
                   analysis::Table::num(agg.p95_latency.mean(), 0),
                   analysis::Table::num(agg.max_latency.max(), 0)});
  }
  table.emit();
  std::printf("Paper shape: the critical-range rule achieves correctness "
              "with few resets; the naive rule cascades (many resets, "
              "long tail); no resets sacrifices validity.\n");
  return 0;
}
