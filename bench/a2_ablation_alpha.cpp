/// Ablation A2 — the passive listening phase (α) is necessary.
///
/// On entering any A_i a node first listens for ⌈αΔ log n⌉ slots (Alg. 1
/// line 4) so it learns the counters of active competitors before it
/// starts competing (Lemma 7 additionally needs α > 2γκ₂+σ+1 so late
/// arrivals cannot interfere with an established climber).  We sweep α
/// downward under asynchronous wake-up: with α → 0 newly awake nodes go
/// active blind, reset established climbers, and correctness decays.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;
  bench::banner("A2", "passive-phase ablation: shrink alpha under "
                      "asynchronous wake-up");

  const std::size_t n = 144;
  Rng rng(0xA2);
  const auto net = graph::random_udg(n, 7.5, 1.5, rng);
  const auto mp = bench::measured_params(net.graph, 48);
  std::printf("deployment: n=%zu Delta=%u k2=%u (default alpha=%.0f)\n\n", n,
              mp.delta, mp.kappa2, mp.params.alpha);

  const auto sched =
      analysis::uniform_schedule(n, 4 * mp.params.threshold());
  const std::size_t trials = 15;

  analysis::Table table("a2_ablation_alpha",
                        "A2: validity and latency vs alpha (15 trials each)");
  table.set_header({"alpha", "valid", "complete", "resets/node", "mean_T",
                    "max_T"});
  for (double factor : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    core::Params p = mp.params;
    p.alpha = std::max(1e-9, mp.params.alpha * factor);
    const auto agg =
        analysis::run_core_trials(net.graph, p, sched, trials, 0xA2F0);
    table.add_row({analysis::Table::num(mp.params.alpha * factor, 1),
                   analysis::Table::num(agg.valid_fraction(), 2),
                   analysis::Table::num(agg.completed_fraction(), 2),
                   analysis::Table::num(agg.resets_per_node.mean(), 2),
                   analysis::Table::num(agg.mean_latency.mean(), 0),
                   analysis::Table::num(agg.max_latency.max(), 0)});
  }
  table.emit();
  std::printf(
      "Measured: on random deployments validity stays at 1.0 even with "
      "alpha = 0 — a freshly active node starts near counter 0, far outside "
      "the critical range of climbers near the threshold, so it cannot "
      "reset them; the paper's alpha > 2*gamma*kappa2 + sigma + 1 "
      "requirement protects against *worst-case* interleavings only.  "
      "Shrinking alpha is a pure latency win here (~30%% at alpha=0), at "
      "the cost of the proof's guarantee.\n");
  return 0;
}
