/// Ablation A3 — leader queue re-admission (Alg. 3 line 10, as written).
///
/// A requester whose assignment broadcast is entirely lost keeps sending
/// M_R and is re-admitted to the leader's queue with a *fresh* tc — the
/// paper's pseudocode only checks current queue membership.  Duplicate
/// serves waste leader time and inflate intra-cluster colors (and thus
/// final colors).  The `remember_served` extension suppresses re-serves.
/// We make assignment loss likely by shrinking β and compare.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main() {
  using namespace urn;
  bench::banner("A3", "leader-queue ablation: re-serve vs remember_served "
                      "under lossy assignment broadcasts");

  const std::size_t n = 144;
  Rng rng(0xA3);
  const auto net = graph::random_udg(n, 7.0, 1.5, rng);
  const auto mp = bench::measured_params(net.graph, 48);
  std::printf("deployment: n=%zu Delta=%u k2=%u (default beta=%.1f)\n\n", n,
              mp.delta, mp.kappa2, mp.params.beta);

  const std::size_t trials = 12;
  analysis::Table table(
      "a3_ablation_queue",
      "A3: duplicate serves and color inflation vs beta (12 trials each)");
  table.set_header({"beta", "remember", "valid", "dup_serves", "max_color",
                    "mean_T"});

  for (double beta_factor : {1.0, 0.4, 0.2}) {
    for (bool remember : {false, true}) {
      core::Params p = mp.params;
      p.beta = mp.params.beta * beta_factor;
      p.remember_served = remember;
      Samples dup, maxc, meant;
      std::size_t valid = 0;
      for (std::uint64_t t = 0; t < trials; ++t) {
        Rng wrng(mix_seed(0xA3F0, t));
        const auto ws = radio::WakeSchedule::uniform(
            n, 2 * p.threshold(), wrng);
        // Tight slot cap: with remember_served a node whose only window
        // was lost can never finish, and we don't want to wait for the
        // full default budget to observe that.
        const radio::Slot cap = ws.latest() + 60 * p.threshold();
        const auto run = core::run_coloring(net.graph, p, ws,
                                            mix_seed(0xA3A0, t), cap);
        if (run.check.valid()) ++valid;
        dup.add(static_cast<double>(run.duplicate_serves));
        maxc.add(static_cast<double>(run.max_color));
        meant.add(run.mean_latency());
      }
      table.add_row(
          {analysis::Table::num(p.beta, 1), remember ? "yes" : "no",
           analysis::Table::num(
               static_cast<double>(valid) / trials, 2),
           analysis::Table::num(dup.mean(), 1),
           analysis::Table::num(maxc.mean(), 0),
           analysis::Table::num(meant.mean(), 0)});
    }
  }
  table.emit();
  std::printf(
      "Measured: the paper's as-written policy (re-admit after the window, "
      "'no') is self-healing — at beta/5 it still colors every node, at "
      "the cost of ~10 duplicate serves and ~10%% color inflation.  The "
      "remember_served variant deadlocks instead: a requester whose only "
      "window was lost can never be served again (valid collapses to 0.25 "
      "and 0.00; its dup_serves column counts the suppressed re-requests "
      "of the stuck nodes).  Conclusion: Algorithm 3 line 10 is correct "
      "as written.\n");
  return 0;
}
