/// Gate benchmark — the small fixed-seed scenario behind the
/// `bench_regression` CTest target.
///
/// Unlike E1–E15 (minutes of wall clock), this runs in a few seconds:
/// a 96-node random UDG, a handful of monitored coloring trials plus a
/// handful of leader-election trials, every seed fixed.  It emits
/// `BENCH_gate_coloring.json` and `BENCH_gate_leader.json` (with full
/// `RunLedger` percentile distributions) into `URN_BENCH_JSON`;
/// `urn_bench_diff` then compares them against `bench/baseline/`.  Runs
/// are bit-reproducible, so any drift in these numbers is a real
/// behavioral change — refresh the baselines deliberately (see
/// EXPERIMENTS.md) when the change is intended.
///
/// Exit status: 0 on success, 2 when any monitored trial violates a
/// paper invariant (via bench::run_traced) or a run goes invalid.

#include "analysis/experiment.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace urn;
  bench::TraceArgs trace = bench::parse_trace_args(argc, argv, "bench_gate");
  bench::banner("GATE", "fixed-seed regression scenario (see urn_bench_diff)");

  const std::size_t n = 96;
  Rng rng(0xCA7E);
  const auto net = graph::random_udg(n, 6.5, 1.5, rng);
  const auto mp = bench::measured_params(net.graph);
  std::printf("deployment: n=%zu Delta=%u k1=%u k2=%u\n", n, mp.delta,
              mp.kappa1, mp.kappa2);

  // ---- monitored coloring trials -----------------------------------------
  const std::size_t trials = 5;
  bench::BenchSummary coloring("gate_coloring");
  coloring.set("n", static_cast<std::uint64_t>(n));
  coloring.set("delta", mp.delta);
  coloring.set("kappa2", mp.kappa2);
  obs::RunLedger ledger;
  core::TraceOptions monitored;
  monitored.monitor = true;
  std::size_t valid = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    Rng wrng(mix_seed(0xCA7EF, t));
    const auto ws =
        radio::WakeSchedule::uniform(n, 2 * mp.params.threshold(), wrng);
    const auto run = core::run_coloring_traced(net.graph, mp.params, ws,
                                               mix_seed(0xCA7EA, t),
                                               monitored);
    if (run.monitor.has_value() && !run.monitor->ok()) {
      std::fprintf(stderr, "gate trial %llu: INVARIANT VIOLATIONS\n",
                   static_cast<unsigned long long>(t));
      obs::print_monitor_report(*run.monitor, stderr);
      return 2;
    }
    if (run.check.valid()) ++valid;
    bench::ledger_record(ledger, run);
  }
  coloring.set("trials", static_cast<std::uint64_t>(trials));
  coloring.set("valid", static_cast<std::uint64_t>(valid));
  bench::ledger_emit(coloring, ledger);
  coloring.emit();
  std::printf("coloring: %zu/%zu valid, 0 invariant violations\n", valid,
              trials);

  // ---- leader-election trials --------------------------------------------
  bench::BenchSummary leader("gate_leader");
  leader.set("n", static_cast<std::uint64_t>(n));
  obs::RunLedger lledger;
  std::size_t covered = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    Rng wrng(mix_seed(0xCA7EB, t));
    const auto ws =
        radio::WakeSchedule::uniform(n, 2 * mp.params.threshold(), wrng);
    const auto run = core::run_leader_election(net.graph, mp.params, ws,
                                               mix_seed(0xCA7EC, t));
    if (run.all_covered) ++covered;
    lledger.add("leaders", static_cast<double>(run.leaders.size()));
    double max_cover = 0.0;
    for (radio::Slot s : run.cover_latency) {
      max_cover = std::max(max_cover, static_cast<double>(s));
    }
    lledger.add("cover_latency.max", max_cover);
    lledger.add("slots.run", static_cast<double>(run.medium.slots_run));
    lledger.add("collisions.total",
                static_cast<double>(run.medium.collisions));
  }
  leader.set("trials", static_cast<std::uint64_t>(trials));
  leader.set("covered", static_cast<std::uint64_t>(covered));
  bench::ledger_emit(leader, lledger);
  leader.emit();
  std::printf("leader election: %zu/%zu fully covered\n", covered, trials);

  // One representative traced run for --trace / --metrics-out /
  // --monitor experimentation on the gate scenario.
  if (trace.enabled()) {
    Rng wrng(mix_seed(0xCA7EF, 0));
    const auto ws =
        radio::WakeSchedule::uniform(n, 2 * mp.params.threshold(), wrng);
    (void)bench::run_traced(trace, net.graph, mp.params, ws,
                            mix_seed(0xCA7EA, 0));
  }
  return valid == trials ? 0 : 2;
}
