/// Gate benchmark — the small fixed-seed scenario behind the
/// `bench_regression` CTest target.
///
/// Unlike E1–E15 (minutes of wall clock), this runs in a few seconds:
/// a 96-node random UDG, a handful of monitored coloring trials plus a
/// handful of leader-election trials, every seed fixed.  It emits
/// `BENCH_gate_coloring.json` and `BENCH_gate_leader.json` (with full
/// `RunLedger` percentile distributions) into `URN_BENCH_JSON`;
/// `urn_bench_diff` then compares them against `bench/baseline/`.  Runs
/// are bit-reproducible, so any drift in these numbers is a real
/// behavioral change — refresh the baselines deliberately (see
/// EXPERIMENTS.md) when the change is intended.
///
/// Exit status: 0 on success, 2 when any monitored trial violates a
/// paper invariant (via bench::run_traced) or a run goes invalid.

#include "analysis/experiment.hpp"
#include "bench_util.hpp"
#include "exec/parallel.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

#include <optional>

int main(int argc, char** argv) {
  using namespace urn;
  bench::TraceArgs trace = bench::parse_trace_args(argc, argv, "bench_gate");
  bench::banner("GATE", "fixed-seed regression scenario (see urn_bench_diff)");

  const std::size_t n = 96;
  Rng rng(0xCA7E);
  const auto net = graph::random_udg(n, 6.5, 1.5, rng);
  const auto mp = bench::measured_params(net.graph);
  std::printf("deployment: n=%zu Delta=%u k1=%u k2=%u\n", n, mp.delta,
              mp.kappa1, mp.kappa2);

  // ---- monitored coloring trials -----------------------------------------
  // The per-trial seeds predate the executor; the loop fans out over
  // exec::parallel_for_trials with the *same* seed derivation, so the
  // committed bench/baseline/ numbers are reproduced bit-for-bit for any
  // --jobs.  Monitor sinks are constructed per trial (worker-local);
  // the first violation is reported with its originating trial index.
  const std::size_t trials = 5;
  bench::BenchSummary coloring("gate_coloring");
  coloring.set("n", static_cast<std::uint64_t>(n));
  coloring.set("delta", mp.delta);
  coloring.set("kappa2", mp.kappa2);
  coloring.set("jobs", static_cast<std::uint64_t>(trace.resolved_jobs()));
  core::TraceOptions monitored;
  monitored.monitor = true;
  // --telemetry-* runs every trial with an engine probe and the pool
  // reporting utilization; results stay bit-identical (probes read
  // counts only) and the differ skips `telemetry.*` keys, so this can
  // never perturb the committed baselines.
  monitored.telemetry = trace.telemetry;
  std::optional<obs::telemetry::PoolProbe> pool_probe;
  if (trace.telemetry != nullptr) {
    pool_probe.emplace(*trace.telemetry, trace.resolved_jobs());
  }
  struct GatePartial {
    std::size_t valid = 0;
    obs::RunLedger ledger;
    struct Violation {
      std::size_t trial;
      obs::MonitorReport report;
    };
    std::optional<Violation> violation;
  };
  const GatePartial gate = exec::parallel_for_trials<GatePartial>(
      trials, {trace.jobs, 0, nullptr, pool_probe ? &*pool_probe : nullptr},
      [&](GatePartial& acc, std::size_t t) {
        Rng wrng(mix_seed(0xCA7EF, t));
        const auto ws =
            radio::WakeSchedule::uniform(n, 2 * mp.params.threshold(), wrng);
        const auto run = core::run_coloring_traced(net.graph, mp.params, ws,
                                                   mix_seed(0xCA7EA, t),
                                                   monitored);
        if (run.monitor.has_value() && !run.monitor->ok() &&
            !acc.violation.has_value()) {
          acc.violation = GatePartial::Violation{t, *run.monitor};
        }
        if (run.check.valid()) ++acc.valid;
        bench::ledger_record(acc.ledger, run);
      },
      [](GatePartial& into, GatePartial&& chunk) {
        into.valid += chunk.valid;
        into.ledger.merge(chunk.ledger);
        if (chunk.violation.has_value() &&
            (!into.violation.has_value() ||
             chunk.violation->trial < into.violation->trial)) {
          into.violation = std::move(chunk.violation);
        }
      });
  if (gate.violation.has_value()) {
    std::fprintf(stderr, "gate trial %zu: INVARIANT VIOLATIONS\n",
                 gate.violation->trial);
    obs::print_monitor_report(gate.violation->report, stderr);
    return 2;
  }
  const std::size_t valid = gate.valid;
  coloring.set("trials", static_cast<std::uint64_t>(trials));
  coloring.set("valid", static_cast<std::uint64_t>(valid));
  bench::ledger_emit(coloring, gate.ledger);
  // Snapshot the profile counters *before* the leader trials and the
  // optional representative run below, so `profile.*` reflects exactly
  // the monitored coloring trials; the summary is emitted at the end of
  // main once the representative run has contributed its `explain.*`
  // keys.
  coloring.add_profile();
  std::printf("coloring: %zu/%zu valid, 0 invariant violations\n", valid,
              trials);

  // ---- leader-election trials --------------------------------------------
  bench::BenchSummary leader("gate_leader");
  leader.set("n", static_cast<std::uint64_t>(n));
  leader.set("jobs", static_cast<std::uint64_t>(trace.resolved_jobs()));
  struct LeaderPartial {
    std::size_t covered = 0;
    obs::RunLedger ledger;
  };
  core::TraceOptions leader_opts;
  leader_opts.telemetry = trace.telemetry;
  const LeaderPartial lgate = exec::parallel_for_trials<LeaderPartial>(
      trials, {trace.jobs, 0, nullptr, pool_probe ? &*pool_probe : nullptr},
      [&](LeaderPartial& acc, std::size_t t) {
        Rng wrng(mix_seed(0xCA7EB, t));
        const auto ws =
            radio::WakeSchedule::uniform(n, 2 * mp.params.threshold(), wrng);
        const auto run =
            trace.telemetry != nullptr
                ? core::run_leader_election_traced(net.graph, mp.params, ws,
                                                   mix_seed(0xCA7EC, t),
                                                   leader_opts)
                : core::run_leader_election(net.graph, mp.params, ws,
                                            mix_seed(0xCA7EC, t));
        if (run.all_covered) ++acc.covered;
        acc.ledger.add("leaders", static_cast<double>(run.leaders.size()));
        double max_cover = 0.0;
        for (radio::Slot s : run.cover_latency) {
          max_cover = std::max(max_cover, static_cast<double>(s));
        }
        acc.ledger.add("cover_latency.max", max_cover);
        acc.ledger.add("slots.run", static_cast<double>(run.medium.slots_run));
        acc.ledger.add("collisions.total",
                       static_cast<double>(run.medium.collisions));
      },
      [](LeaderPartial& into, LeaderPartial&& chunk) {
        into.covered += chunk.covered;
        into.ledger.merge(chunk.ledger);
      });
  const std::size_t covered = lgate.covered;
  leader.set("trials", static_cast<std::uint64_t>(trials));
  leader.set("covered", static_cast<std::uint64_t>(covered));
  bench::ledger_emit(leader, lgate.ledger);
  leader.add_profile();
  leader.emit();
  std::printf("leader election: %zu/%zu fully covered\n", covered, trials);

  // One representative traced run (trial 0's exact seeds) for --trace /
  // --metrics-out / --monitor experimentation on the gate scenario;
  // with --explain its in-memory capture is attributed to causes and
  // lands as `explain.*` keys of BENCH_gate_coloring.json.
  if (trace.enabled()) {
    Rng wrng(mix_seed(0xCA7EF, 0));
    const auto ws =
        radio::WakeSchedule::uniform(n, 2 * mp.params.threshold(), wrng);
    (void)bench::run_traced(trace, net.graph, mp.params, ws,
                            mix_seed(0xCA7EA, 0));
    bench::explain_emit(coloring, trace, mp.params);
  }
  coloring.emit();
  return valid == trials ? 0 : 2;
}
