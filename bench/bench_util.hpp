/// \file bench_util.hpp
/// \brief Shared helpers for the experiment binaries (E1–E15, A1–A3).
///
/// Besides parameter measurement and the banner, this provides the two
/// observability hooks every experiment shares:
///
///  * `BenchSummary` — machine-readable run summaries.  Each experiment
///    fills one with its scenario parameters and headline metrics and
///    calls `emit()`, which writes `BENCH_<name>.json` into the directory
///    named by the `URN_BENCH_JSON` environment variable (mirroring the
///    `URN_BENCH_CSV` convention of analysis::Table).  Keys are dotted
///    paths ("scenario.n", "medium.collisions"), values JSON scalars.
///
///  * `TraceArgs` — the standard `--trace` / `--trace-bin` /
///    `--trace-bin-ring` / `--metrics-out` / `--metrics-window` /
///    `--monitor` / `--spans-out` / `--jobs` flag set that lets any
///    experiment record one representative run as a JSONL and/or compact
///    binary event log (both for `urn_trace`; the binary one optionally
///    ring-bounded), a per-window metrics CSV, check the paper's
///    invariants online (failing the binary with exit 2 on violation),
///    capture wall-clock span timelines (runner phases + executor
///    workers) as Chrome trace-event JSON, and fan its trial loops out
///    across worker threads (`--jobs`, bit-identical results for every
///    value; the resolved count is recorded as the `jobs` key of
///    `BENCH_<name>.json`, which the regression diff skips alongside the
///    `.ns` wall-clock keys).  The `--telemetry-out` / `--telemetry-prom`
///    / `--telemetry-interval` flags additionally attach the live
///    telemetry subsystem (obs/telemetry.hpp): engine and pool probes
///    feed the global registry, and a background snapshotter exports it
///    as a JSONL time series (`urn_top` tails it) and/or a Prometheus
///    exposition file while the experiment runs.  The `--postmortem-dir`
///    / `--checkpoint-every` / `--dump-on-violation` flags add postmortem
///    checkpointing (obs/postmortem.hpp): the traced run periodically
///    snapshots complete engine state into a bundle directory, and a
///    monitored violation captures checkpoint + flight-recorder ring +
///    monitor report together (inspect/resume with `urn_postmortem`).
///    The `--explain` flag captures the representative run in memory and
///    exports its causal latency attribution (obs/explain.hpp) as the
///    `explain.*` key family of `BENCH_<name>.json` via `explain_emit`.
///
///  * `ledger_record` / `ledger_emit` — feed each trial's `RunResult`
///    into an `obs::RunLedger` and export the percentile summaries
///    (p50/p95/max latency, max color, peak collisions, resets) into the
///    `BenchSummary`, so `BENCH_<name>.json` carries distributions.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "exec/chunk.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "obs/chrome.hpp"
#include "obs/explain.hpp"
#include "obs/ledger.hpp"
#include "obs/monitor.hpp"
#include "obs/postmortem.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

namespace urn::bench {

/// Measure Δ, κ₁, κ₂ on a graph and build the calibrated practical
/// parameter set.  κ is computed exactly when the graph is small, sampled
/// otherwise (sampling only ever under-estimates κ; we take the family
/// bound max(2, measured)).
struct MeasuredParams {
  std::uint32_t delta = 0;
  std::uint32_t kappa1 = 0;
  std::uint32_t kappa2 = 0;
  core::Params params;
};

inline MeasuredParams measured_params(const graph::Graph& g,
                                      std::size_t kappa_sample = 0) {
  MeasuredParams mp;
  mp.delta = std::max(2u, g.max_closed_degree());
  graph::KappaOptions opts;
  opts.sample = kappa_sample;
  mp.kappa1 = std::max(2u, graph::kappa1(g, opts).value);
  mp.kappa2 = std::max(mp.kappa1, graph::kappa2(g, opts).value);
  mp.params =
      core::Params::practical(g.num_nodes(), mp.delta, mp.kappa1, mp.kappa2);
  return mp;
}

/// Print a one-line banner common to all experiment binaries.
inline void banner(const char* id, const char* claim) {
  std::printf("[%s] %s\n\n", id, claim);
}

/// Machine-readable experiment summary; see the file comment.
class BenchSummary {
 public:
  explicit BenchSummary(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    entries_.emplace_back(key, buf);
  }
  void set(const std::string& key, std::int64_t v) {
    entries_.emplace_back(key, std::to_string(v));
  }
  void set(const std::string& key, std::uint64_t v) {
    entries_.emplace_back(key, std::to_string(v));
  }
  void set(const std::string& key, std::int32_t v) {
    set(key, static_cast<std::int64_t>(v));
  }
  void set(const std::string& key, std::uint32_t v) {
    set(key, static_cast<std::uint64_t>(v));
  }
  void set(const std::string& key, bool v) {
    entries_.emplace_back(key, v ? "true" : "false");
  }
  void set(const std::string& key, const std::string& v) {
    std::string enc = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') enc.push_back('\\');
      enc.push_back(c);
    }
    enc.push_back('"');
    entries_.emplace_back(key, std::move(enc));
  }
  void set(const std::string& key, const char* v) {
    set(key, std::string(v));
  }

  /// Record one run's medium statistics under `<prefix>.*`.
  void set_medium(const std::string& prefix, const radio::RunStats& s) {
    set(prefix + ".slots_run", static_cast<std::int64_t>(s.slots_run));
    set(prefix + ".transmissions", s.transmissions);
    set(prefix + ".deliveries", s.deliveries);
    set(prefix + ".collisions", s.collisions);
    set(prefix + ".dropped", s.dropped);
    set(prefix + ".all_decided", s.all_decided);
  }

  /// Snapshot the global profile/counter registry under "profile.*",
  /// and — when a telemetry-enabled run populated it — the global
  /// telemetry registry under "telemetry.*" (counters, gauges, and
  /// histogram count/sum/p50/p95/max summaries).  The bench regression
  /// diff skips the whole "telemetry." class, like ".ns": telemetry
  /// totals include wall-clock and scheduling-dependent quantities, so
  /// they are reported, never gated on.
  void add_profile() {
    for (const auto& [k, v] : obs::CounterRegistry::global().snapshot()) {
      set("profile." + k, v);
    }
    const auto& reg = obs::telemetry::Registry::global();
    if (!reg.empty()) {
      const obs::telemetry::Snapshot snap = reg.snapshot();
      for (const auto& [k, v] : snap.counters) set("telemetry." + k, v);
      for (const auto& [k, v] : snap.gauges) set("telemetry." + k, v);
      for (const auto& [k, h] : snap.histograms) {
        set("telemetry." + k + ".count", h.count);
        set("telemetry." + k + ".sum", h.sum);
        set("telemetry." + k + ".p50", h.quantile(0.50));
        set("telemetry." + k + ".p95", h.quantile(0.95));
        set("telemetry." + k + ".max", h.max_bound());
      }
    }
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out.append("  \"").append(entries_[i].first).append("\": ");
      out.append(entries_[i].second);
      if (i + 1 < entries_.size()) out.push_back(',');
      out.push_back('\n');
    }
    out.append("}\n");
    return out;
  }

  /// Write `<dir>/BENCH_<name>.json` when URN_BENCH_JSON names a
  /// directory; silently a no-op otherwise (text output stands alone).
  void emit() const {
    const char* dir = std::getenv("URN_BENCH_JSON");
    if (dir == nullptr || *dir == '\0') return;
    const std::string path =
        std::string(dir) + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchSummary: cannot write %s\n", path.c_str());
      return;
    }
    const std::string json = to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("(json summary -> %s)\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// The standard observability + execution flag set for experiment
/// binaries.
struct TraceArgs {
  std::string trace_path;      ///< --trace: JSONL event log destination
  std::string trace_bin_path;  ///< --trace-bin: binary event log
  std::size_t bin_ring = 0;    ///< --trace-bin-ring: keep last N (0 = all)
  std::string metrics_path;  ///< --metrics-out: per-window CSV destination
  std::string spans_path;    ///< --spans-out: Chrome-trace span timeline
  std::int64_t window = 16;  ///< --metrics-window
  bool monitor = false;      ///< --monitor: online invariant checks
  std::size_t jobs = 1;      ///< --jobs: trial-loop workers (0 = all cores)
  std::string telemetry_out;   ///< --telemetry-out: JSONL snapshot stream
  std::string telemetry_prom;  ///< --telemetry-prom: Prometheus exposition
  std::int64_t telemetry_interval = 1000;  ///< --telemetry-interval (ms)
  std::string postmortem_dir;        ///< --postmortem-dir: bundle directory
  std::int64_t checkpoint_every = 0; ///< --checkpoint-every (slots; 0 = once)
  bool dump_on_violation = false;    ///< --dump-on-violation: full bundle
  bool explain = false;              ///< --explain: causal attribution

  /// In-memory event capture of the representative traced run, created
  /// when --explain is set; `explain_emit` replays it through
  /// obs::explain_trace and exports the `explain.*` key family.
  std::shared_ptr<obs::MemorySink> explain_events;

  /// Global telemetry registry when --telemetry-out / --telemetry-prom is
  /// set, null otherwise.  Non-null turns on the engine/pool probes via
  /// `options()` / `exec()` without enabling event tracing.
  obs::telemetry::Registry* telemetry = nullptr;

  /// Background snapshotter sampling `telemetry` every
  /// `telemetry_interval` ms.  Shared like `spans`: every copy of the
  /// args keeps it alive; the last copy's destruction stops it, which
  /// writes one final snapshot — so the stream's last line is the
  /// process's final counter state.
  std::shared_ptr<obs::telemetry::Snapshotter> snapshotter;

  /// Shared wall-clock span collector, created when --spans-out is set.
  /// Every copy of the parsed args feeds the same sink (runner phases
  /// via `options()`, executor chunks via `exec()`); the Chrome-trace
  /// file is written when the last copy goes out of scope, so capture
  /// order never matters.
  std::shared_ptr<obs::SpanSink> spans;

  /// Resolved worker count (0 expanded to the hardware thread count).
  [[nodiscard]] std::size_t resolved_jobs() const {
    return exec::resolve_jobs(jobs);
  }
  /// Postmortem options assembled from the --postmortem-dir /
  /// --checkpoint-every / --dump-on-violation flags.  Asking for either
  /// checkpoints or violation dumps without naming a directory defaults
  /// the bundle to ./postmortem.
  [[nodiscard]] core::PostmortemOptions postmortem() const {
    core::PostmortemOptions po;
    po.dir = postmortem_dir;
    if (po.dir.empty() && (checkpoint_every > 0 || dump_on_violation)) {
      po.dir = "postmortem";
    }
    po.checkpoint_every = checkpoint_every;
    po.dump_on_violation = dump_on_violation;
    return po;
  }

  /// Executor options for analysis::run_core_trials and friends.
  [[nodiscard]] analysis::TrialExecOptions exec() const {
    analysis::TrialExecOptions opts;
    opts.jobs = jobs;
    opts.spans = spans.get();
    opts.telemetry = telemetry;
    opts.postmortem = postmortem();
    return opts;
  }

  [[nodiscard]] bool enabled() const {
    return monitor || explain || !trace_path.empty() ||
           !trace_bin_path.empty() || !metrics_path.empty() ||
           postmortem().enabled();
  }
  [[nodiscard]] core::TraceOptions options() const {
    core::TraceOptions opts;
    opts.metrics = !metrics_path.empty();
    opts.metrics_window = window;
    opts.events_jsonl = trace_path;
    opts.events_bin = trace_bin_path;
    opts.bin_ring = bin_ring;
    opts.monitor = monitor;
    opts.spans = spans.get();
    opts.telemetry = telemetry;
    opts.postmortem = postmortem();
    opts.memory = explain_events.get();
    return opts;
  }
};

/// Parse the standard flags; exits(2) on bad flags, exits(0) on --help.
inline TraceArgs parse_trace_args(int argc, const char* const* argv,
                                  const char* program) {
  CliFlags flags;
  flags.add_string("trace", "",
                   "record one representative run as a JSONL event log "
                   "(analyze with urn_trace)");
  flags.add_string("trace-bin", "",
                   "record that run as a compact binary event log "
                   "(urn_trace auto-detects it)");
  flags.add_int("trace-bin-ring", 0,
                "bound the binary log to the last N events "
                "(flight-recorder mode; 0 = keep everything)");
  flags.add_string("metrics-out", "",
                   "write that run's per-window metrics series as CSV");
  flags.add_string("spans-out", "",
                   "record wall-clock span timelines (runner phases, "
                   "executor workers) as Chrome trace-event JSON");
  flags.add_int("metrics-window", 16, "metrics window width in slots");
  flags.add_bool("monitor", false,
                 "check the paper's invariants online on the traced run; "
                 "any violation fails the binary with exit 2");
  flags.add_int("jobs", 1,
                "worker threads for the trial loops (0 = all hardware "
                "threads); results are bit-identical for every value");
  flags.add_string("telemetry-out", "",
                   "stream live telemetry snapshots to this JSONL file "
                   "(watch with urn_top --in <file>)");
  flags.add_string("telemetry-prom", "",
                   "write the latest telemetry snapshot to this file in "
                   "Prometheus text exposition format (atomic rewrite per "
                   "snapshot)");
  flags.add_int("telemetry-interval", 1000,
                "telemetry snapshot period in milliseconds");
  flags.add_string("postmortem-dir", "",
                   "write a postmortem bundle (periodic checkpoint + "
                   "flight-recorder ring + manifest) into this directory; "
                   "inspect/resume with urn_postmortem");
  flags.add_int("checkpoint-every", 0,
                "checkpoint period in slots for the postmortem bundle "
                "(0 = one snapshot at the start of the run)");
  flags.add_bool("dump-on-violation", false,
                 "capture a full postmortem bundle (checkpoint + ring + "
                 "monitor report) when an invariant violation is detected; "
                 "implies --monitor on the traced run");
  flags.add_bool("explain", false,
                 "attribute the representative traced run's per-node "
                 "decision latency to causes (obs/explain) and export the "
                 "explain.* key family into BENCH_<name>.json");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.usage(program).c_str());
    std::exit(2);
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage(program).c_str());
    std::exit(0);
  }
  TraceArgs args;
  args.trace_path = flags.get_string("trace");
  args.trace_bin_path = flags.get_string("trace-bin");
  args.bin_ring = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("trace-bin-ring")));
  args.metrics_path = flags.get_string("metrics-out");
  args.spans_path = flags.get_string("spans-out");
  args.window = std::max<std::int64_t>(1, flags.get_int("metrics-window"));
  args.monitor = flags.get_bool("monitor");
  args.jobs =
      static_cast<std::size_t>(std::max<std::int64_t>(0, flags.get_int("jobs")));
  args.telemetry_out = flags.get_string("telemetry-out");
  args.telemetry_prom = flags.get_string("telemetry-prom");
  args.telemetry_interval =
      std::max<std::int64_t>(1, flags.get_int("telemetry-interval"));
  args.postmortem_dir = flags.get_string("postmortem-dir");
  args.checkpoint_every =
      std::max<std::int64_t>(0, flags.get_int("checkpoint-every"));
  args.dump_on_violation = flags.get_bool("dump-on-violation");
  args.explain = flags.get_bool("explain");
  if (args.explain) {
    args.explain_events = std::make_shared<obs::MemorySink>();
  }
  // Fail on unwritable destinations now, not after the (often long)
  // aggregate loops have already run.
  for (const std::string& path :
       {args.trace_path, args.trace_bin_path, args.metrics_path,
        args.spans_path, args.telemetry_out, args.telemetry_prom}) {
    if (path.empty()) continue;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(2);
    }
    std::fclose(f);
  }
  if (args.postmortem().enabled() &&
      !obs::postmortem::ensure_dir(args.postmortem().dir)) {
    std::fprintf(stderr, "error: cannot write %s\n",
                 args.postmortem().dir.c_str());
    std::exit(2);
  }
  if (!args.spans_path.empty()) {
    const std::string out = args.spans_path;
    args.spans = std::shared_ptr<obs::SpanSink>(
        new obs::SpanSink(), [out](obs::SpanSink* s) {
          if (obs::write_chrome_spans_file(out, *s)) {
            std::printf("(spans: %zu -> %s; open in ui.perfetto.dev)\n",
                        s->size(), out.c_str());
          } else {
            std::fprintf(stderr, "cannot write %s\n", out.c_str());
          }
          delete s;
        });
  }
  if (!args.telemetry_out.empty() || !args.telemetry_prom.empty()) {
    args.telemetry = &obs::telemetry::Registry::global();
    args.telemetry->clear();  // one binary invocation = one time series
    obs::telemetry::SnapshotterOptions sopts;
    sopts.jsonl_path = args.telemetry_out;
    sopts.prom_path = args.telemetry_prom;
    sopts.interval_ms = static_cast<std::uint64_t>(args.telemetry_interval);
    const std::string jsonl = args.telemetry_out;
    args.snapshotter = std::shared_ptr<obs::telemetry::Snapshotter>(
        new obs::telemetry::Snapshotter(*args.telemetry, sopts),
        [jsonl](obs::telemetry::Snapshotter* s) {
          s->stop();  // emits the final snapshot
          if (!jsonl.empty()) {
            std::printf(
                "(telemetry: %llu snapshots -> %s; watch live with "
                "urn_top --in %s)\n",
                static_cast<unsigned long long>(s->snapshots_taken()),
                jsonl.c_str(), jsonl.c_str());
          }
          delete s;
        });
  }
  return args;
}

/// Run one traced execution and write the requested artifacts.
inline core::RunResult run_traced(const TraceArgs& args,
                                  const graph::Graph& g,
                                  const core::Params& params,
                                  const radio::WakeSchedule& schedule,
                                  std::uint64_t seed,
                                  radio::MediumOptions medium = {}) {
  const core::RunResult run = core::run_coloring_traced(
      g, params, schedule, seed, args.options(), /*max_slots=*/0, medium);
  for (const std::string& log : {args.trace_path, args.trace_bin_path}) {
    if (log.empty()) continue;
    std::printf("(trace: %llu events -> %s; validate with "
                "urn_trace --log %s --kappa2 %u)\n",
                static_cast<unsigned long long>(run.events_recorded),
                log.c_str(), log.c_str(), params.kappa2);
  }
  if (!args.metrics_path.empty() && run.series.has_value()) {
    if (run.series->write_csv_file(args.metrics_path)) {
      std::printf("(metrics: %zu windows of %lld slots -> %s)\n",
                  run.series->size(),
                  static_cast<long long>(run.series->window()),
                  args.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_path.c_str());
    }
  }
  if (run.monitor.has_value()) {
    if (!run.monitor->ok()) {
      std::fprintf(stderr, "monitor: INVARIANT VIOLATIONS\n");
      obs::print_first_violation(*run.monitor, stderr);
      obs::print_monitor_report(*run.monitor, stderr);
      if (!run.bundle.empty()) {
        std::fprintf(stderr,
                     "postmortem bundle: %s (inspect with urn_postmortem)\n",
                     run.bundle.c_str());
      }
      std::exit(2);
    }
    std::printf("(monitor: %llu events, %zu nodes, 0 violations)\n",
                static_cast<unsigned long long>(run.monitor->events_seen),
                run.monitor->nodes_seen);
  }
  return run;
}

/// Export the representative traced run's causal latency attribution
/// (obs/explain.hpp) as `explain.*` keys of the bench summary.  No-op
/// unless `--explain` captured events (so call sites can wire it
/// unconditionally).  The run parameters supply what the trace alone
/// cannot: κ₂ and the A_i passive-listen prefix.  `urn_bench_diff` puts
/// the whole key family into its own tolerance class (`--explain-tol`,
/// default exact) — the attribution is a pure function of the trace, so
/// fixed-seed baselines stay bit-identical.
inline void explain_emit(BenchSummary& summary, const TraceArgs& args,
                         const core::Params& params) {
  if (args.explain_events == nullptr || args.explain_events->events().empty()) {
    return;
  }
  obs::ExplainConfig config;
  config.kappa2 = params.kappa2;
  config.passive_slots = params.passive_slots();
  const obs::ExplainReport report =
      obs::explain_trace(args.explain_events->events(), config);
  for (const obs::ExplainEntry& e : obs::explain_entries(report)) {
    if (e.is_str) {
      summary.set(e.key, e.str);
    } else if (e.num == static_cast<double>(static_cast<std::int64_t>(e.num))) {
      summary.set(e.key, static_cast<std::int64_t>(e.num));
    } else {
      summary.set(e.key, e.num);
    }
  }
  std::printf("(explain: %zu nodes, top cause %s, accounting invariant %s "
              "-> explain.* keys)\n",
              report.nodes.size(), obs::cause_name(report.top_cause()),
              report.exact_ok() ? "OK" : "FAILED");
}

/// Feed one trial's headline metrics into the cross-run ledger.
inline void ledger_record(obs::RunLedger& ledger,
                          const core::RunResult& run) {
  ledger.add("latency.max", static_cast<double>(run.max_latency()));
  ledger.add("latency.mean", run.mean_latency());
  ledger.add("color.max", static_cast<double>(run.max_color));
  ledger.add("collisions.total",
             static_cast<double>(run.medium.collisions));
  ledger.add("resets.total", static_cast<double>(run.total_resets));
  ledger.add("slots.run", static_cast<double>(run.medium.slots_run));
}

/// Feed an `analysis::CoreAggregate`'s per-trial samples into the
/// ledger (the experiment binaries aggregate through `run_core_trials`,
/// so the trial-level vectors already exist in its Samples).
inline void ledger_from_aggregate(obs::RunLedger& ledger,
                                  const analysis::CoreAggregate& agg) {
  ledger.add_all("latency.max", agg.max_latency.values());
  ledger.add_all("latency.mean", agg.mean_latency.values());
  ledger.add_all("latency.p95", agg.p95_latency.values());
  ledger.add_all("color.max", agg.max_color.values());
  ledger.add_all("leaders", agg.leaders.values());
  ledger.add_all("resets.per_node", agg.resets_per_node.values());
  ledger.add_all("slots.run", agg.slots_run.values());
}

/// Export every ledger metric's percentile summary into the bench
/// summary as `<prefix>.<metric>.{trials,min,mean,p50,p95,max}`.
inline void ledger_emit(BenchSummary& summary, const obs::RunLedger& ledger,
                        const std::string& prefix = "ledger") {
  for (const auto& [metric, s] : ledger.summaries()) {
    const std::string base = prefix + "." + metric;
    summary.set(base + ".trials", static_cast<std::uint64_t>(s.trials));
    summary.set(base + ".min", s.min);
    summary.set(base + ".mean", s.mean);
    summary.set(base + ".p50", s.p50);
    summary.set(base + ".p95", s.p95);
    summary.set(base + ".max", s.max);
  }
}

}  // namespace urn::bench
