/// \file bench_util.hpp
/// \brief Shared helpers for the experiment binaries (E1–E9, A1–A3).

#pragma once

#include <cstdio>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "core/params.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "support/rng.hpp"

namespace urn::bench {

/// Measure Δ, κ₁, κ₂ on a graph and build the calibrated practical
/// parameter set.  κ is computed exactly when the graph is small, sampled
/// otherwise (sampling only ever under-estimates κ; we take the family
/// bound max(2, measured)).
struct MeasuredParams {
  std::uint32_t delta = 0;
  std::uint32_t kappa1 = 0;
  std::uint32_t kappa2 = 0;
  core::Params params;
};

inline MeasuredParams measured_params(const graph::Graph& g,
                                      std::size_t kappa_sample = 0) {
  MeasuredParams mp;
  mp.delta = std::max(2u, g.max_closed_degree());
  graph::KappaOptions opts;
  opts.sample = kappa_sample;
  mp.kappa1 = std::max(2u, graph::kappa1(g, opts).value);
  mp.kappa2 = std::max(mp.kappa1, graph::kappa2(g, opts).value);
  mp.params =
      core::Params::practical(g.num_nodes(), mp.delta, mp.kappa1, mp.kappa2);
  return mp;
}

/// Print a one-line banner common to all experiment binaries.
inline void banner(const char* id, const char* claim) {
  std::printf("[%s] %s\n\n", id, claim);
}

}  // namespace urn::bench
