/// Experiment E10 (extension) — sensitivity to the n and Δ estimates, and
/// the paper's future-work direction (Sect. 6).
///
/// The algorithm assumes every node knows estimates of n and Δ.  The paper
/// notes "it is usually possible to pre-estimate rough bounds" and asks
/// (Sect. 6) whether nodes could instead *estimate* the local maximum
/// degree.  We measure both: (a) how the protocol behaves when Δ̂/Δ and
/// n̂/n are off by factors of ½…4 — overestimates must stay correct and
/// only cost time, underestimates erode the guarantee; (b) running the
/// protocol with the Δ̂ produced by our geometric-probing estimator
/// (core/estimation) instead of the true Δ.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/estimation.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;
  bench::banner("E10", "estimate sensitivity + measured-degree variant "
                       "(extension; Sect. 6)");

  const std::size_t n = 160;
  Rng rng(0xE10);
  const auto net = graph::random_udg(n, 8.0, 1.5, rng);
  const auto mp = bench::measured_params(net.graph, 48);
  std::printf("deployment: n=%zu true Delta=%u k2=%u\n\n", n, mp.delta,
              mp.kappa2);
  const auto sched = analysis::uniform_schedule(n, 2 * mp.params.threshold());
  const std::size_t trials = 12;

  analysis::Table t1("e10_delta_estimate",
                     "E10a: protocol under mis-estimated Delta "
                     "(12 trials each)");
  t1.set_header({"Delta_hat/Delta", "Delta_hat", "valid", "complete",
                 "mean_T", "max_color"});
  for (double f : {0.15, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::Params p = mp.params;
    p.delta = std::max(2u, static_cast<std::uint32_t>(mp.delta * f));
    const auto agg = analysis::run_core_trials(
        net.graph, p, sched, trials,
        mix_seed(0xE10F, static_cast<std::uint64_t>(f * 100)));
    t1.add_row({analysis::Table::num(f, 2),
                analysis::Table::num(static_cast<std::uint64_t>(p.delta)),
                analysis::Table::num(agg.valid_fraction(), 2),
                analysis::Table::num(agg.completed_fraction(), 2),
                analysis::Table::num(agg.mean_latency.mean(), 0),
                analysis::Table::num(agg.max_color.max(), 0)});
  }
  t1.emit();

  analysis::Table t2("e10_n_estimate",
                     "E10b: protocol under mis-estimated n (12 trials "
                     "each)");
  t2.set_header({"n_hat/n", "valid", "complete", "mean_T"});
  for (double f : {0.25, 1.0, 4.0, 16.0}) {
    core::Params p = mp.params;
    p.n = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(static_cast<double>(n) * f));
    const auto agg = analysis::run_core_trials(
        net.graph, p, sched, trials,
        mix_seed(0xE10A, static_cast<std::uint64_t>(f * 100)));
    t2.add_row({analysis::Table::num(f, 2),
                analysis::Table::num(agg.valid_fraction(), 2),
                analysis::Table::num(agg.completed_fraction(), 2),
                analysis::Table::num(agg.mean_latency.mean(), 0)});
  }
  t2.emit();

  // E10c: feed the estimator's output into the protocol.
  core::EstimationParams ep;
  ep.n = n;
  const auto est = core::estimate_degrees(net.graph, ep, 0xE10C);
  std::uint32_t delta_hat = 1;
  for (auto e : est.local_max_estimate) delta_hat = std::max(delta_hat, e);
  // The estimator's local max already sits at the top of its factor-of-2
  // resolution band; use it directly.
  const std::uint32_t delta_used = std::max(2u, delta_hat);
  core::Params p = mp.params;
  p.delta = delta_used;
  const auto agg =
      analysis::run_core_trials(net.graph, p, sched, trials, 0xE10D);
  std::printf("E10c: probing estimator pre-phase (%lld slots): max local "
              "degree estimate %u (true Delta %u); protocol with "
              "Delta_hat=%u -> valid %.2f, mean_T %.0f\n",
              static_cast<long long>(est.slots), delta_hat, mp.delta,
              delta_used, agg.valid_fraction(), agg.mean_latency.mean());
  std::printf(
      "\nMeasured: overestimating Delta or n is safe and costs linear / "
      "logarithmic extra time, as the paper expects.  Underestimates are "
      "far more robust than one might guess: the delivery rate only "
      "degrades by the collision factor e^(-Delta/(k2*Delta_hat)), so "
      "validity holds until Delta_hat ~ Delta/k2 — and smaller Delta_hat "
      "makes the run *faster*.  Together with E10c (a probing pre-phase "
      "of a few hundred slots recovers Delta within its factor-of-2 "
      "resolution) this strongly supports the paper's Sect. 6 conjecture "
      "that measured local degrees can replace the global Delta.\n");
  return 0;
}
