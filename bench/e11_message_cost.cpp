/// Experiment E11 (extension) — channel usage and energy proxy.
///
/// Sensor nodes are energy-constrained (the model motivates the missing
/// collision detection by "limitations in energy consumption").  We
/// measure what the protocol costs on the channel: transmissions per node,
/// deliveries, and collision events, across density and wake-up patterns,
/// and compare against the rand-verify baseline.  The per-slot send
/// probability 1/(κ₂Δ) keeps the *rate* constant per neighborhood, so
/// transmissions per node should scale like T/(κ₂Δ) ≈ O(κ₂ log n)
/// per color state.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "baselines/rand_verify.hpp"
#include "bench_util.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;
  bench::banner("E11", "channel usage: transmissions / deliveries / "
                       "collisions per node");

  const std::size_t n = 160;
  analysis::Table table(
      "e11_message_cost",
      "E11: channel events per node until quiescence (random UDG, n=160, "
      "4 trials each)");
  table.set_header({"Delta", "k2", "algo", "tx/node", "rx/node",
                    "collisions/node", "tx/slot/node", "slots"});

  for (double side : {11.0, 8.0, 6.3}) {
    Rng rng(mix_seed(0xE11, static_cast<std::uint64_t>(side * 10)));
    const auto net = graph::random_udg(n, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph, 48);

    double tx = 0, rx = 0, coll = 0, slots = 0;
    for (std::uint64_t t = 0; t < 4; ++t) {
      Rng wrng(mix_seed(0xE11F, t));
      const auto ws = radio::WakeSchedule::uniform(
          n, 2 * mp.params.threshold(), wrng);
      const auto run = core::run_coloring(net.graph, mp.params, ws,
                                          mix_seed(0xE11A, t));
      tx += static_cast<double>(run.medium.transmissions) / n / 4.0;
      rx += static_cast<double>(run.medium.deliveries) / n / 4.0;
      coll += static_cast<double>(run.medium.collisions) / n / 4.0;
      slots += static_cast<double>(run.medium.slots_run) / 4.0;
    }
    table.add_row(
        {analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
         "this paper", analysis::Table::num(tx, 0),
         analysis::Table::num(rx, 0), analysis::Table::num(coll, 0),
         analysis::Table::num(tx / slots, 5),
         analysis::Table::num(slots, 0)});

    baselines::RandVerifyParams rv;
    rv.n = n;
    rv.delta = mp.delta;
    double rtx = 0, rrx = 0, rcoll = 0, rslots = 0;
    for (std::uint64_t t = 0; t < 4; ++t) {
      const auto r = baselines::run_rand_verify(
          net.graph, rv, radio::WakeSchedule::synchronous(n),
          mix_seed(0xE11B, t), 60000000);
      rtx += static_cast<double>(r.medium.transmissions) / n / 4.0;
      rrx += static_cast<double>(r.medium.deliveries) / n / 4.0;
      rcoll += static_cast<double>(r.medium.collisions) / n / 4.0;
      rslots += static_cast<double>(r.medium.slots_run) / 4.0;
    }
    table.add_row(
        {analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
         "rand-verify", analysis::Table::num(rtx, 0),
         analysis::Table::num(rrx, 0), analysis::Table::num(rcoll, 0),
         analysis::Table::num(rtx / rslots, 5),
         analysis::Table::num(rslots, 0)});
  }
  table.emit();
  std::printf("Shape: the protocol's per-slot duty cycle stays ~1/(k2*D) "
              "per node by construction; totals grow with the running "
              "time.  The rand-verify baseline duty-cycles at 1/D — "
              "higher rate, fewer slots at these sizes.\n");
  return 0;
}
