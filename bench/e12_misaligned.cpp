/// Experiment E12 — non-aligned slots cost only a small constant factor
/// (Sect. 2, citing Tobagi & Kleinrock [29]).
///
/// Paper claim: "all analytical results carry over to the practical
/// non-aligned case with an additional small constant factor, since each
/// time slot can overlap with at most two time-slots of a neighbor."
/// We run the identical protocol on the aligned engine and on the
/// half-slot-offset engine (random phases) and compare validity and
/// latency; the ratio is the measured constant factor.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "radio/misaligned_engine.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main() {
  using namespace urn;
  bench::banner("E12", "aligned vs non-aligned slots: the constant-factor "
                       "claim of Sect. 2");

  analysis::Table table(
      "e12_misaligned",
      "E12: protocol on aligned vs phase-shifted slots (n=128, 6 trials "
      "each)");
  table.set_header({"Delta", "k2", "medium", "valid", "mean_T", "max_T",
                    "slowdown"});

  for (double side : {10.0, 8.0}) {
    Rng rng(mix_seed(0xE12, static_cast<std::uint64_t>(side * 10)));
    const auto net = graph::random_udg(128, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph, 48);
    const std::size_t n = net.graph.num_nodes();
    const std::size_t trials = 6;

    Samples aligned_mean, aligned_max, mis_mean, mis_max;
    std::size_t aligned_valid = 0, mis_valid = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      const auto ws = radio::WakeSchedule::synchronous(n);
      // Aligned.
      const auto run = core::run_coloring(net.graph, mp.params, ws,
                                          mix_seed(0xE12A, t));
      if (run.check.valid()) ++aligned_valid;
      Samples lat;
      for (radio::Slot s : run.latency) lat.add(static_cast<double>(s));
      aligned_mean.add(lat.mean());
      aligned_max.add(lat.max());

      // Misaligned (random half-slot phases).
      std::vector<core::ColoringNode> nodes;
      for (graph::NodeId v = 0; v < n; ++v) {
        nodes.emplace_back(&mp.params, v);
      }
      Rng orng(mix_seed(0xE12B, t));
      auto offsets =
          radio::MisalignedEngine<core::ColoringNode>::random_offsets(n,
                                                                      orng);
      radio::MisalignedEngine<core::ColoringNode> eng(
          net.graph, ws, std::move(nodes), std::move(offsets),
          mix_seed(0xE12A, t));
      const auto stats = eng.run(80 * mp.params.threshold());
      URN_CHECK(stats.all_decided);
      std::vector<graph::Color> colors(n);
      Samples mlat;
      for (graph::NodeId v = 0; v < n; ++v) {
        colors[v] = eng.node(v).color();
        mlat.add(static_cast<double>(eng.decision_latency(v)));
      }
      if (graph::validate(net.graph, colors).valid()) ++mis_valid;
      mis_mean.add(mlat.mean());
      mis_max.add(mlat.max());
    }

    auto row = [&](const char* medium, std::size_t valid,
                   const Samples& mean, const Samples& mx, double slow) {
      table.add_row(
          {analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
           analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
           medium,
           analysis::Table::num(
               static_cast<double>(valid) / trials, 2),
           analysis::Table::num(mean.mean(), 0),
           analysis::Table::num(mx.max(), 0),
           slow > 0 ? analysis::Table::num(slow, 2) : "-"});
    };
    row("aligned", aligned_valid, aligned_mean, aligned_max, -1.0);
    row("half-slot phases", mis_valid, mis_mean, mis_max,
        mis_mean.mean() / aligned_mean.mean());
  }
  table.emit();
  std::printf(
      "Paper claim confirmed, and then some: correctness unchanged and the "
      "measured slowdown is ~1.0x.  Doubling the vulnerable window only "
      "multiplies a frame's loss odds by 1-(1-p)^Delta ~ 1/kappa2 at the "
      "protocol's p = 1/(kappa2*Delta) duty cycle, so the 'small constant "
      "factor' the paper allows for is in fact negligible here.\n");
  return 0;
}
