/// Experiment E13 — from coloring to MAC layer (Sect. 1's motivation).
///
/// Paper: a correct 1-hop coloring "corresponds to a MAC layer without
/// *direct interference*"; full collision-freedom is "typically argued"
/// to need a coloring of the *square* of the graph, but even a 1-hop
/// coloring "ensures a schedule in which any receiver can be disturbed by
/// at most a small constant number of interfering senders", enabling
/// simple randomized MACs with constant per-slot success probability.
/// We quantify that whole paragraph: TDMA schedules derived from (a) the
/// protocol's coloring, (b) centralized greedy, (c) a distance-2 greedy
/// coloring, audited for direct interference, residual 2-hop conflicts,
/// frame length, and the bandwidth/robustness trade-off.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/runner.hpp"
#include "core/tdma.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;
  bench::banner("E13", "TDMA schedules from colorings: 1-hop vs "
                       "distance-2 (Sect. 1)");

  analysis::Table table(
      "e13_tdma",
      "E13: schedule quality by coloring source (random UDG, n=160)");
  table.set_header({"Delta", "coloring", "frame", "direct-free",
                    "max nbr tx", "max 2hop tx", "clean rx frac"});

  for (double side : {10.0, 7.5}) {
    Rng rng(mix_seed(0xE13, static_cast<std::uint64_t>(side * 10)));
    const auto net = graph::random_udg(160, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph, 48);

    const auto run = core::run_coloring(
        net.graph, mp.params,
        radio::WakeSchedule::synchronous(net.graph.num_nodes()), 0xE13A);
    URN_CHECK(run.check.valid());

    Rng crng(0xE13B);
    struct Entry {
      const char* name;
      std::vector<graph::Color> colors;
    };
    const Entry entries[] = {
        {"protocol (this paper)", run.colors},
        {"greedy 1-hop", graph::greedy_coloring_random(net.graph, crng)},
        {"greedy distance-2", graph::greedy_distance2_coloring(net.graph)},
    };
    for (const Entry& e : entries) {
      const auto tdma = core::derive_tdma(net.graph, e.colors);
      const auto rep = core::analyze_tdma(net.graph, tdma);
      table.add_row(
          {analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
           e.name,
           analysis::Table::num(static_cast<std::uint64_t>(tdma.frame)),
           rep.direct_interference_free ? "yes" : "NO",
           analysis::Table::num(
               static_cast<std::uint64_t>(rep.max_neighbor_transmitters)),
           analysis::Table::num(
               static_cast<std::uint64_t>(rep.max_two_hop_transmitters)),
           analysis::Table::num(rep.clean_reception_fraction, 2)});
    }
  }
  table.emit();
  std::printf(
      "Paper's trade-off, quantified: every 1-hop coloring removes direct "
      "interference but leaves <= kappa1 same-slot neighbor transmitters "
      "(the 'small constant number of interfering senders'); the "
      "distance-2 coloring removes those too (clean rx = 1.00) at the "
      "price of a longer frame, i.e. less bandwidth per node.  The "
      "protocol's frame is longer than greedy's because its colors are "
      "spaced in tc*(kappa2+1) ranges — the cost of computing the "
      "coloring from scratch in the radio model.\n");
  return 0;
}
