/// Experiment E14 (extension) — the C₀ layer as a standalone
/// MIS-and-clustering-from-scratch primitive.
///
/// The paper's related work places it in a lineage of initialization
/// primitives: dominating sets [13], clustering [14], and MIS in
/// O(log² n) [21], all in the unstructured radio model.  The first stage
/// of the coloring algorithm *is* such a primitive: leaders form an MIS
/// and every node associates with an adjacent leader.  We measure its
/// quality (MIS size vs. greedy and Luby references) and its cost
/// (cover latency vs. the full coloring run).

#include "analysis/table.hpp"
#include "baselines/message_passing.hpp"
#include "bench_util.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main() {
  using namespace urn;
  bench::banner("E14", "leader election: MIS-from-scratch quality and cost");

  analysis::Table table(
      "e14_leader_election",
      "E14: C0-layer MIS vs references (random UDG, n=160, 6 trials)");
  table.set_header({"Delta", "k2", "leaders", "greedy_mis", "luby_mis",
                    "maximal", "cover_T(mean)", "color_T(mean)",
                    "stage frac"});

  for (double side : {11.0, 8.0}) {
    Rng rng(mix_seed(0xE14, static_cast<std::uint64_t>(side * 10)));
    const auto net = graph::random_udg(160, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph, 48);
    const std::size_t n = net.graph.num_nodes();

    Samples leaders, cover_mean, color_mean;
    bool all_maximal = true;
    for (std::uint64_t t = 0; t < 6; ++t) {
      Rng wrng(mix_seed(0xE14F, t));
      const auto ws = radio::WakeSchedule::uniform(
          n, 2 * mp.params.threshold(), wrng);
      const auto election = core::run_leader_election(
          net.graph, mp.params, ws, mix_seed(0xE14A, t));
      URN_CHECK(election.all_covered);
      leaders.add(static_cast<double>(election.leaders.size()));
      all_maximal = all_maximal && graph::is_maximal_independent_set(
                                       net.graph, election.leaders);
      Samples cov;
      for (radio::Slot s : election.cover_latency) {
        cov.add(static_cast<double>(s));
      }
      cover_mean.add(cov.mean());

      const auto full = core::run_coloring(net.graph, mp.params, ws,
                                           mix_seed(0xE14A, t));
      color_mean.add(full.mean_latency());
    }

    Rng mrng(mix_seed(0xE14B, static_cast<std::uint64_t>(side)));
    const auto greedy = graph::greedy_mis_random(net.graph, mrng);
    const auto luby = baselines::luby_mis(net.graph, mrng);

    table.add_row(
        {analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
         analysis::Table::num(leaders.mean(), 1),
         analysis::Table::num(static_cast<std::uint64_t>(greedy.size())),
         analysis::Table::num(static_cast<std::uint64_t>(luby.mis.size())),
         all_maximal ? "yes" : "NO",
         analysis::Table::num(cover_mean.mean(), 0),
         analysis::Table::num(color_mean.mean(), 0),
         analysis::Table::num(cover_mean.mean() / color_mean.mean(), 2)});
  }
  table.emit();
  std::printf("Shape: the leader set matches the size of centralized "
              "greedy / Luby MIS references, and costs only a fraction of "
              "the full coloring time — clustering comes 'for free' on "
              "the way to the coloring, as the paper's construction "
              "implies.\n");
  return 0;
}
