/// Experiment E15 (extension) — behavior under injected failures.
///
/// The BIG model is motivated by fading and irregular propagation
/// (Sect. 2), but the analysis assumes every clean reception succeeds.
/// E15a injects i.i.d. fading drops on otherwise-successful receptions
/// and measures the degradation: the protocol's windows already tolerate
/// lost messages, so validity should hold far past realistic drop rates,
/// with time growing ≈ 1/(1−p).
///
/// E15b crashes a fraction of the elected *leaders* mid-run.  The paper's
/// protocol has no recovery path for a cluster member waiting in R — this
/// experiment quantifies that documented limitation (an honest negative
/// result and an obvious future-work hook).

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "exec/parallel.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "radio/engine.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

#include <optional>

int main(int argc, char** argv) {
  using namespace urn;
  const bench::TraceArgs trace = bench::parse_trace_args(argc, argv, "e15");
  bench::banner("E15", "failure injection: fading drops and leader crashes");

  // --telemetry-*: the hand-rolled trial loops below feed the global
  // registry via engine probes, and the pool reports utilization.
  // Probes read counts only, so results stay bit-identical.
  std::optional<obs::telemetry::PoolProbe> pool_probe;
  if (trace.telemetry != nullptr) {
    pool_probe.emplace(*trace.telemetry, trace.resolved_jobs());
  }
  const exec::ExecOptions eopts{trace.jobs, 0, nullptr,
                                pool_probe ? &*pool_probe : nullptr};

  Rng rng(0xE15);
  const auto net = graph::random_udg(144, 8.0, 1.5, rng);
  const auto mp = bench::measured_params(net.graph, 48);
  const std::size_t n = net.graph.num_nodes();
  std::printf("deployment: n=%zu Delta=%u k2=%u\n\n", n, mp.delta,
              mp.kappa2);

  // ---- E15a: fading. -----------------------------------------------------
  analysis::Table t1("e15_fading",
                     "E15a: i.i.d. drop probability on clean receptions "
                     "(10 trials each)");
  t1.set_header({"drop_p", "valid", "complete", "mean_T", "slowdown"});
  bench::BenchSummary summary("e15_faults");
  obs::RunLedger ledger;
  summary.set("n", static_cast<std::uint64_t>(n));
  summary.set("delta", mp.delta);
  summary.set("kappa2", mp.kappa2);
  summary.set("jobs", static_cast<std::uint64_t>(trace.resolved_jobs()));
  double baseline_mean = 0.0;
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.75}) {
    radio::MediumOptions medium;
    medium.drop_probability = p;
    const std::size_t trials = 10;
    // Trial t is a pure function of its seeds, so the loop fans out on
    // the deterministic executor: per-chunk partials merge in trial
    // order, keeping every statistic (incl. ledger percentiles)
    // bit-identical to the serial loop for any --jobs.
    struct Partial {
      Samples mean_t;
      std::size_t valid = 0, complete = 0;
      obs::RunLedger ledger;
    };
    const Partial part = exec::parallel_for_trials<Partial>(
        trials, eopts,
        [&](Partial& acc, std::size_t t) {
          Rng wrng(mix_seed(0xE15F, t));
          const auto ws = radio::WakeSchedule::uniform(
              n, 2 * mp.params.threshold(), wrng);
          // --telemetry-* probes every trial (results bit-identical);
          // the faulty medium flows through both paths unchanged.
          core::TraceOptions topts;
          topts.telemetry = trace.telemetry;
          const auto run =
              trace.telemetry != nullptr
                  ? core::run_coloring_traced(net.graph, mp.params, ws,
                                              mix_seed(0xE15A, t), topts, 0,
                                              medium)
                  : core::run_coloring(net.graph, mp.params, ws,
                                       mix_seed(0xE15A, t), 0, medium);
          if (run.check.valid()) ++acc.valid;
          if (run.all_decided) ++acc.complete;
          acc.mean_t.add(run.mean_latency());
          bench::ledger_record(acc.ledger, run);
        },
        [](Partial& into, Partial&& chunk) {
          into.mean_t.merge(chunk.mean_t);
          into.valid += chunk.valid;
          into.complete += chunk.complete;
          into.ledger.merge(chunk.ledger);
        });
    const Samples& mean_t = part.mean_t;
    const std::size_t valid = part.valid, complete = part.complete;
    ledger.merge(part.ledger);
    if (p == 0.0) baseline_mean = mean_t.mean();
    t1.add_row({analysis::Table::num(p, 2),
                analysis::Table::num(static_cast<double>(valid) / trials, 2),
                analysis::Table::num(
                    static_cast<double>(complete) / trials, 2),
                analysis::Table::num(mean_t.mean(), 0),
                analysis::Table::num(mean_t.mean() / baseline_mean, 2)});
    {
      char key[32];
      std::snprintf(key, sizeof(key), "drop%.2f", p);
      summary.set(std::string(key) + ".valid_fraction",
                  static_cast<double>(valid) / static_cast<double>(trials));
      summary.set(std::string(key) + ".mean_latency", mean_t.mean());
    }

    // --trace / --metrics-out: record trial 0 at drop_p = 0.25, a lossy
    // but fully-absorbed operating point — the log then contains "drop"
    // events for urn_trace to tally.
    if (trace.enabled() && p == 0.25) {
      Rng wrng(mix_seed(0xE15F, 0));
      const auto ws =
          radio::WakeSchedule::uniform(n, 2 * mp.params.threshold(), wrng);
      const auto run = bench::run_traced(trace, net.graph, mp.params, ws,
                                         mix_seed(0xE15A, 0), medium);
      summary.set("traced.drop_p", p);
      summary.set("traced.valid", run.check.valid());
      summary.set_medium("traced", run.medium);
      bench::explain_emit(summary, trace, mp.params);
    }
  }
  t1.emit();

  // ---- E15b: leader crashes. ----------------------------------------------
  analysis::Table t2("e15_crashes",
                     "E15b: crash a fraction of leaders mid-run "
                     "(8 trials each)");
  t2.set_header({"crash frac", "survivors decided", "orphans", "valid among "
                 "decided"});
  for (double frac : {0.0, 0.25, 0.5}) {
    const std::size_t trials = 8;
    // Each trial owns its engine, nodes and RNGs outright — same
    // deterministic fan-out as E15a.
    struct CrashPartial {
      Samples decided_frac, orphans;
      std::size_t valid_runs = 0;
    };
    const CrashPartial part = exec::parallel_for_trials<CrashPartial>(
        trials, eopts,
        [&](CrashPartial& acc, std::size_t t) {
      std::vector<core::ColoringNode> nodes;
      for (graph::NodeId v = 0; v < n; ++v) {
        nodes.emplace_back(&mp.params, v);
      }
      radio::Engine<core::ColoringNode> eng(
          net.graph, radio::WakeSchedule::synchronous(n), std::move(nodes),
          mix_seed(0xE15B, t));
      // Crash right after the first leaders appear, while many members
      // are still requesting their intra-cluster colors.
      for (radio::Slot s = 0;
           s < mp.params.passive_slots() + mp.params.threshold() + 500;
           ++s) {
        eng.step();
      }
      Rng crng(mix_seed(0xE15C, t));
      std::size_t crashed = 0;
      for (graph::NodeId v = 0; v < n; ++v) {
        if (eng.node(v).is_leader() && crng.chance(frac)) {
          eng.deactivate(v);
          ++crashed;
        }
      }
      (void)eng.run(core::default_slot_budget(mp.params, eng.schedule()));
      std::size_t decided = 0, live = 0, orphan = 0;
      std::vector<graph::Color> colors(n, graph::kUncolored);
      for (graph::NodeId v = 0; v < n; ++v) {
        if (eng.is_dead(v)) continue;
        ++live;
        if (eng.node(v).decided()) {
          ++decided;
          colors[v] = eng.node(v).color();
        } else if (eng.node(v).phase() == core::Phase::kRequest) {
          ++orphan;
        }
      }
      acc.decided_frac.add(static_cast<double>(decided) /
                           static_cast<double>(live));
      acc.orphans.add(static_cast<double>(orphan));
      // Whatever did decide must still be conflict-free.
      if (graph::validate(net.graph, colors).correct) ++acc.valid_runs;
        },
        [](CrashPartial& into, CrashPartial&& chunk) {
          into.decided_frac.merge(chunk.decided_frac);
          into.orphans.merge(chunk.orphans);
          into.valid_runs += chunk.valid_runs;
        });
    t2.add_row({analysis::Table::num(frac, 2),
                analysis::Table::num(part.decided_frac.mean(), 3),
                analysis::Table::num(part.orphans.mean(), 1),
                analysis::Table::num(
                    static_cast<double>(part.valid_runs) / trials, 2)});
  }
  t2.emit();
  bench::ledger_emit(summary, ledger);
  summary.add_profile();
  summary.emit();
  std::printf(
      "Measured: fading up to 50%% is absorbed outright (the calibrated "
      "windows carry that much margin); at 75%% the margin is gone and "
      "validity collapses while runs still complete.  Under leader "
      "crashes, whatever is decided stays conflict-free, but members "
      "caught waiting in R for a crashed leader starve — the protocol "
      "has no leader re-election, a documented limitation / future-work "
      "hook.\n");
  return 0;
}
