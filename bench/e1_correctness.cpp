/// Experiment E1 — Correctness with high probability (Theorems 2 and 5).
///
/// Paper claim: the algorithm produces a correct coloring with probability
/// at least 1 − 2n⁻³, and every color class C_i stays an independent set
/// throughout.  With the calibrated practical constants we measure the
/// fraction of fully valid colorings over seeded trials as n grows, on
/// random unit disk graphs of roughly constant density (the failure rate
/// should stay at/near zero and not grow with n).

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace urn;
  const bench::TraceArgs trace = bench::parse_trace_args(argc, argv, "e1");
  bench::banner("E1",
                "correct coloring w.h.p. (Thm 2/5): valid fraction vs n");

  analysis::Table table("e1_correctness",
                        "E1: validity rate vs network size (random UDG, "
                        "radius 1.5, ~12 avg degree, 20 trials each)");
  table.set_header({"n", "Delta", "k1", "k2", "valid", "complete",
                    "max_color", "bound k2*Delta", "mean_T", "max_T"});

  bench::BenchSummary summary("e1_correctness");
  obs::RunLedger ledger;
  const std::size_t trials = 20;
  for (std::size_t n : {64u, 128u, 256u, 512u}) {
    // Scale the field with sqrt(n) to keep density constant.
    const double side = 1.5 * std::sqrt(static_cast<double>(n) / 2.8);
    Rng rng(mix_seed(0xE1, n));
    const auto net = graph::random_udg(n, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph, n > 300 ? 64 : 0);
    const auto agg = analysis::run_core_trials(
        net.graph, mp.params,
        analysis::uniform_schedule(n, 2 * mp.params.threshold()), trials,
        mix_seed(0xE1F0, n), trace.exec());
    table.add_row({analysis::Table::num(static_cast<std::uint64_t>(n)),
                   analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
                   analysis::Table::num(static_cast<std::uint64_t>(mp.kappa1)),
                   analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
                   analysis::Table::num(agg.valid_fraction(), 3),
                   analysis::Table::num(agg.completed_fraction(), 3),
                   analysis::Table::num(agg.max_color.max(), 0),
                   analysis::Table::num(static_cast<std::uint64_t>(
                       mp.kappa2 * mp.delta)),
                   analysis::Table::num(agg.mean_latency.mean(), 0),
                   analysis::Table::num(agg.max_latency.max(), 0)});
    bench::ledger_from_aggregate(ledger, agg);
    const std::string prefix = "n" + std::to_string(n);
    summary.set(prefix + ".valid_fraction", agg.valid_fraction());
    summary.set(prefix + ".completed_fraction", agg.completed_fraction());
    summary.set(prefix + ".max_color", agg.max_color.max());
    summary.set(prefix + ".mean_latency", agg.mean_latency.mean());
    summary.set(prefix + ".max_latency", agg.max_latency.max());

    // --trace / --metrics-out: re-run trial 0 of the largest size with a
    // live sink.  Sinks never touch the RNG streams, so this run is
    // bit-identical to the one aggregated above.
    if (trace.enabled() && n == 512u) {
      const std::uint64_t trial_seed = mix_seed(mix_seed(0xE1F0, n), 0);
      const auto schedule = analysis::uniform_schedule(
          n, 2 * mp.params.threshold())(trial_seed);
      const auto run = bench::run_traced(trace, net.graph, mp.params,
                                         schedule, trial_seed);
      summary.set("traced.valid", run.check.valid());
      summary.set_medium("traced", run.medium);
      bench::explain_emit(summary, trace, mp.params);
    }
  }
  table.emit();
  summary.set("trials", static_cast<std::uint64_t>(trials));
  summary.set("jobs", static_cast<std::uint64_t>(trace.resolved_jobs()));
  bench::ledger_emit(summary, ledger);
  summary.add_profile();
  summary.emit();
  std::printf("Paper: failure probability <= 2/n^3 (with analytical "
              "constants); shape to match: validity ~1.0, not degrading "
              "with n.\n");
  return 0;
}
