/// Experiment E2 — Running time is linear in Δ (Theorem 3 / Corollary 2).
///
/// Paper claim: on unit disk graphs (κ₂ ∈ O(1)) every node decides within
/// O(Δ log n) slots of its own wake-up.  We fix n and sweep the deployment
/// density so Δ grows, then fit T against Δ·log n: the fit should be close
/// to linear (R² near 1) — that is the "shape" of Corollary 2.

#include <cmath>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace urn;
  const bench::TraceArgs trace = bench::parse_trace_args(argc, argv, "e2");
  bench::banner("E2", "decision time vs Delta at fixed n (Thm 3 / Cor 2)");

  const std::size_t n = 256;
  const std::size_t trials = 8;
  analysis::Table table(
      "e2_time_vs_delta",
      "E2: per-node decision latency vs Delta (random UDG, n=256, "
      "8 trials each)");
  table.set_header({"side", "Delta", "k2", "mean_T", "p95_T", "max_T",
                    "T/(Delta*ln n)", "valid"});

  std::vector<double> xs, ys;
  for (double side : {16.0, 13.0, 11.0, 9.5, 8.0, 7.0}) {
    Rng rng(mix_seed(0xE2, static_cast<std::uint64_t>(side * 10)));
    const auto net = graph::random_udg(n, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph, 48);
    const auto agg = analysis::run_core_trials(
        net.graph, mp.params,
        analysis::uniform_schedule(n, 2 * mp.params.threshold()), trials,
        mix_seed(0xE2F0, static_cast<std::uint64_t>(side * 10)),
        trace.exec());
    const double logn = std::log(static_cast<double>(n));
    const double normalized =
        agg.mean_latency.mean() / (mp.delta * logn);
    xs.push_back(static_cast<double>(mp.delta) * logn);
    ys.push_back(agg.mean_latency.mean());
    table.add_row(
        {analysis::Table::num(side, 1),
         analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
         analysis::Table::num(agg.mean_latency.mean(), 0),
         analysis::Table::num(agg.p95_latency.mean(), 0),
         analysis::Table::num(agg.max_latency.max(), 0),
         analysis::Table::num(normalized, 1),
         analysis::Table::num(agg.valid_fraction(), 2)});
  }
  table.emit();

  const LinearFit fit = fit_line(xs, ys);
  std::printf("Linear fit of mean T against Delta*ln n: slope=%.1f "
              "intercept=%.0f R^2=%.3f\n",
              fit.slope, fit.intercept, fit.r_squared);
  bench::BenchSummary summary("e2_time_vs_delta");
  summary.set("fit.slope", fit.slope);
  summary.set("fit.r_squared", fit.r_squared);
  summary.set("trials", static_cast<std::uint64_t>(trials));
  summary.set("jobs", static_cast<std::uint64_t>(trace.resolved_jobs()));
  summary.add_profile();
  summary.emit();
  std::printf("Paper shape: T = O(Delta log n) on UDGs -> expect R^2 near 1 "
              "and roughly constant T/(Delta*ln n).\n");
  return 0;
}
