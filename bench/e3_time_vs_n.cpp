/// Experiment E3 — Running time grows only logarithmically in n
/// (Theorem 3 / Corollary 2).
///
/// Paper claim: T = O(Δ log n).  We hold the deployment density (and hence
/// Δ) roughly constant while scaling n over an order of magnitude, then
/// fit mean decision latency against ln n: the fit should be near-linear
/// in ln n with the Δ factor constant.

#include <cmath>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace urn;
  const bench::TraceArgs trace = bench::parse_trace_args(argc, argv, "e3");
  bench::banner("E3", "decision time vs n at fixed density (Thm 3 / Cor 2)");

  const std::size_t trials = 6;
  analysis::Table table(
      "e3_time_vs_n",
      "E3: per-node decision latency vs n (random UDG, constant density, "
      "6 trials each)");
  table.set_header({"n", "Delta", "k2", "mean_T", "p95_T", "max_T",
                    "T/(Delta*ln n)", "valid"});

  std::vector<double> xs, ys;
  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const double side = 1.5 * std::sqrt(static_cast<double>(n) / 2.8);
    Rng rng(mix_seed(0xE3, n));
    const auto net = graph::random_udg(n, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph, n > 300 ? 48 : 0);
    const auto agg = analysis::run_core_trials(
        net.graph, mp.params,
        analysis::uniform_schedule(n, 2 * mp.params.threshold()), trials,
        mix_seed(0xE3F0, n), trace.exec());
    const double logn = std::log(static_cast<double>(n));
    xs.push_back(static_cast<double>(mp.delta) * logn);
    ys.push_back(agg.mean_latency.mean());
    table.add_row(
        {analysis::Table::num(static_cast<std::uint64_t>(n)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
         analysis::Table::num(agg.mean_latency.mean(), 0),
         analysis::Table::num(agg.p95_latency.mean(), 0),
         analysis::Table::num(agg.max_latency.max(), 0),
         analysis::Table::num(agg.mean_latency.mean() / (mp.delta * logn), 1),
         analysis::Table::num(agg.valid_fraction(), 2)});
  }
  table.emit();

  const LinearFit fit = fit_line(xs, ys);
  std::printf("Linear fit of mean T against Delta*ln n: slope=%.1f R^2=%.3f\n",
              fit.slope, fit.r_squared);
  bench::BenchSummary summary("e3_time_vs_n");
  summary.set("fit.slope", fit.slope);
  summary.set("fit.r_squared", fit.r_squared);
  summary.set("trials", static_cast<std::uint64_t>(trials));
  summary.set("jobs", static_cast<std::uint64_t>(trace.resolved_jobs()));
  summary.add_profile();
  summary.emit();
  std::printf("Paper shape: at constant density a 16x larger network only "
              "costs a log-factor more time per node.\n");
  return 0;
}
