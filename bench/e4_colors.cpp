/// Experiment E4 — Number of colors: O(Δ) on UDGs, at most κ₂Δ in general
/// (Theorem 5 / Corollary 2).
///
/// We sweep Δ and compare the highest color used by the protocol against
/// (a) the theorem bound κ₂Δ, (b) the centralized greedy baseline,
/// (c) the idealized message-passing (Δ+1)-coloring, and (d) the
/// rand-verify radio baseline's palette.  The paper's shape: the protocol's
/// highest color grows linearly in Δ (within the κ₂Δ bound); message
/// passing achieves Δ+1 only because its model ignores collisions.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "baselines/message_passing.hpp"
#include "baselines/rand_verify.hpp"
#include "bench_util.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;
  bench::banner("E4", "colors used vs Delta (Thm 5 / Cor 2) + baselines");

  const std::size_t n = 128;
  analysis::Table table(
      "e4_colors",
      "E4: highest color vs Delta (random UDG, n=128; protocol averaged "
      "over 6 trials)");
  table.set_header({"Delta", "k2", "bound k2*D", "mw_max", "mw_distinct",
                    "greedy_max", "mp_max(D+1)", "rv_max", "mw_max/Delta"});

  for (double side : {12.0, 9.5, 8.0, 6.6, 5.6}) {
    Rng rng(mix_seed(0xE4, static_cast<std::uint64_t>(side * 10)));
    const auto net = graph::random_udg(n, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph);

    const auto agg = analysis::run_core_trials(
        net.graph, mp.params,
        analysis::uniform_schedule(n, 2 * mp.params.threshold()), 6,
        mix_seed(0xE4F0, static_cast<std::uint64_t>(side)));

    Rng crng(mix_seed(0xE4C0, static_cast<std::uint64_t>(side)));
    const auto greedy = graph::greedy_coloring_random(net.graph, crng);
    const auto mpc = baselines::mp_random_coloring(net.graph, crng);

    baselines::RandVerifyParams rv;
    rv.n = n;
    rv.delta = mp.delta;
    const auto rvr = baselines::run_rand_verify(
        net.graph, rv, radio::WakeSchedule::synchronous(n),
        mix_seed(0xE4D0, static_cast<std::uint64_t>(side)), 30000000);

    table.add_row(
        {analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
         analysis::Table::num(
             static_cast<std::uint64_t>(mp.kappa2 * mp.delta)),
         analysis::Table::num(agg.max_color.mean(), 0),
         analysis::Table::num(agg.distinct_colors.mean(), 0),
         analysis::Table::num(
             static_cast<std::int64_t>(graph::max_color(greedy))),
         analysis::Table::num(
             static_cast<std::int64_t>(graph::max_color(mpc.colors))),
         analysis::Table::num(
             static_cast<std::int64_t>(rvr.max_color)),
         analysis::Table::num(agg.max_color.mean() / mp.delta, 2)});
  }
  table.emit();
  std::printf(
      "Paper shape: mw_max grows linearly in Delta and stays below "
      "k2*Delta; the Delta+1 columns show what the idealized "
      "message-passing model buys.\n");
  return 0;
}
