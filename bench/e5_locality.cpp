/// Experiment E5 — Locality of the color assignment (Theorem 4).
///
/// Paper claim: the highest color in any neighborhood depends only on the
/// *local* density — φ_v ≤ κ₂·θ_v (statement; the derivation gives
/// (κ₂+1)θ_v + κ₂) — so sparse regions keep low colors even when dense
/// regions exist elsewhere.  We deploy strongly non-uniform (clustered)
/// networks, bucket nodes by their local density θ_v, and report the
/// highest neighborhood color φ_v per bucket.

#include <algorithm>
#include <map>

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/runner.hpp"
#include "geom/spatial_grid.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main() {
  using namespace urn;
  bench::banner("E5", "locality: highest neighborhood color vs local "
                      "density theta_v (Thm 4)");

  // Clustered deployment: dense blobs in a large sparse field, connected
  // by scattered background nodes.
  Rng rng(0xE5);
  auto net = graph::clustered_udg(6, 30, 14.0, 0.8, 1.5, rng);
  {
    // Add sparse background nodes so low-density buckets exist.
    auto bg = graph::random_udg(120, 14.0, 1.5, rng);
    std::vector<geom::Vec2> pts = net.positions;
    pts.insert(pts.end(), bg.positions.begin(), bg.positions.end());
    net = graph::GeometricGraph{};
    net.positions = std::move(pts);
    graph::GraphBuilder builder(net.positions.size());
    const geom::SpatialGrid grid(net.positions, 1.5);
    for (std::uint32_t i = 0; i < net.positions.size(); ++i) {
      grid.for_each_within(i, 1.5, [&](std::uint32_t j) {
        if (j > i) builder.add_edge(i, j);
      });
    }
    net.graph = builder.build();
  }

  const auto mp = bench::measured_params(net.graph, 64);
  std::printf("deployment: n=%zu Delta=%u k2=%u (clustered + background)\n\n",
              net.graph.num_nodes(), mp.delta, mp.kappa2);

  Rng wrng(0xE5F0);
  const auto ws = radio::WakeSchedule::uniform(
      net.graph.num_nodes(), 2 * mp.params.threshold(), wrng);
  const auto run = core::run_coloring(net.graph, mp.params, ws, 0xE5AA);
  URN_CHECK(run.all_decided);
  std::printf("run valid=%d max_color=%d\n\n", run.check.valid() ? 1 : 0,
              run.max_color);

  // Bucket nodes by theta_v.
  std::map<std::uint32_t, Samples> phi_by_theta;  // bucket lo -> phis
  const std::uint32_t bucket = 5;
  double max_ratio = 0.0;
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    const auto theta = graph::local_density_theta(net.graph, v);
    const auto phi = graph::highest_neighborhood_color(net.graph, run.colors, v);
    phi_by_theta[(theta / bucket) * bucket].add(static_cast<double>(phi));
    max_ratio = std::max(max_ratio, static_cast<double>(phi) / theta);
  }

  analysis::Table table(
      "e5_locality",
      "E5: highest neighborhood color phi_v by local density theta_v");
  table.set_header({"theta bucket", "nodes", "mean_phi", "max_phi",
                    "bound (k2+1)*theta+k2"});
  for (auto& [lo, phis] : phi_by_theta) {
    const std::uint32_t theta_hi = lo + bucket - 1;
    table.add_row(
        {std::to_string(lo) + "-" + std::to_string(theta_hi),
         analysis::Table::num(static_cast<std::uint64_t>(phis.count())),
         analysis::Table::num(phis.mean(), 0),
         analysis::Table::num(phis.max(), 0),
         analysis::Table::num(static_cast<std::uint64_t>(
             (mp.kappa2 + 1) * theta_hi + mp.kappa2))});
  }
  table.emit();

  const core::LocalityReport loc =
      core::check_locality(net.graph, run.colors, mp.kappa2);
  std::printf("max phi_v/theta_v ratio: %.2f (k2=%u); derivable bound "
              "holds: %s\n",
              loc.max_ratio, mp.kappa2, loc.holds ? "yes" : "no");
  std::printf("Paper shape: phi grows with theta (locality) — nodes in "
              "sparse areas keep small colors regardless of the dense "
              "clusters elsewhere.\n");
  return 0;
}
