/// Experiment E6 — Robustness to arbitrary wake-up patterns (Sect. 2).
///
/// Paper claim: all results hold for *every* wake-up distribution; the
/// time bound is per-node, measured from the node's own wake-up.  We run
/// the same deployment under six schedules — from the synchronous extreme
/// to sequential wake-up with gaps longer than a whole passive phase —
/// and show per-node latency statistics stay in the same band while
/// validity stays at 1.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace urn;
  const bench::TraceArgs trace = bench::parse_trace_args(argc, argv, "e6");
  bench::banner("E6", "per-node latency under wake-up patterns (model "
                      "claim, Sect. 2)");

  const std::size_t n = 192;
  Rng rng(0xE6);
  const auto net = graph::random_udg(n, 9.0, 1.5, rng);
  const auto mp = bench::measured_params(net.graph, 48);
  std::printf("deployment: n=%zu Delta=%u k2=%u\n\n", n, mp.delta,
              mp.kappa2);

  const radio::Slot T = mp.params.threshold();
  const radio::Slot P = mp.params.passive_slots();
  const std::size_t trials = 8;

  struct Pattern {
    const char* name;
    analysis::ScheduleFactory factory;
  };
  // Every factory obeys the ScheduleFactory thread-safety contract
  // (experiment.hpp): randomness derives from the trial seed alone, and
  // captures are by value — `positions` included, so no factory reads
  // state it does not own when --jobs fans trials out across workers.
  const std::vector<geom::Vec2> positions = net.positions;
  const Pattern patterns[] = {
      {"synchronous", analysis::synchronous_schedule(n)},
      {"uniform(2T)", analysis::uniform_schedule(n, 2 * T)},
      {"uniform(10T)", analysis::uniform_schedule(n, 10 * T)},
      {"poisson", [n](std::uint64_t s) {
         Rng r(mix_seed(s, 1));
         return radio::WakeSchedule::poisson(n, 50.0, r);
       }},
      {"sequential(P+64)", [n, P](std::uint64_t s) {
         Rng r(mix_seed(s, 2));
         return radio::WakeSchedule::sequential(n, P + 64, r);
       }},
      {"wavefront", [positions, P](std::uint64_t s) {
         Rng r(mix_seed(s, 3));
         return radio::WakeSchedule::wavefront(positions,
                                               static_cast<double>(P) / 2.0,
                                               200, r);
       }},
      {"staged(4xT)", [n, T](std::uint64_t s) {
         Rng r(mix_seed(s, 4));
         return radio::WakeSchedule::staged(n, 4, T, r);
       }},
  };

  analysis::Table table(
      "e6_wakeup",
      "E6: per-node decision latency by wake-up pattern (8 trials each)");
  table.set_header(
      {"pattern", "valid", "mean_T", "p95_T", "max_T", "resets/node"});
  bench::BenchSummary summary("e6_wakeup");
  obs::RunLedger ledger;
  summary.set("n", static_cast<std::uint64_t>(n));
  summary.set("delta", mp.delta);
  summary.set("kappa2", mp.kappa2);
  summary.set("jobs", static_cast<std::uint64_t>(trace.resolved_jobs()));
  for (const Pattern& p : patterns) {
    const auto agg = analysis::run_core_trials(net.graph, mp.params,
                                               p.factory, trials, 0xE6F0,
                                               trace.exec());
    bench::ledger_from_aggregate(ledger, agg);
    table.add_row({p.name, analysis::Table::num(agg.valid_fraction(), 2),
                   analysis::Table::num(agg.mean_latency.mean(), 0),
                   analysis::Table::num(agg.p95_latency.mean(), 0),
                   analysis::Table::num(agg.max_latency.max(), 0),
                   analysis::Table::num(agg.resets_per_node.mean(), 2)});
    const std::string prefix = std::string("pattern.") + p.name;
    summary.set(prefix + ".valid_fraction", agg.valid_fraction());
    summary.set(prefix + ".mean_latency", agg.mean_latency.mean());
    summary.set(prefix + ".max_latency", agg.max_latency.max());

    // --trace / --metrics-out: record trial 0 of the adversarial
    // wavefront pattern, the most interesting schedule of the set.
    if (trace.enabled() && std::string(p.name) == "wavefront") {
      const std::uint64_t trial_seed = mix_seed(0xE6F0, 0);
      const auto run = bench::run_traced(trace, net.graph, mp.params,
                                         p.factory(trial_seed), trial_seed);
      summary.set("traced.pattern", p.name);
      summary.set("traced.valid", run.check.valid());
      summary.set_medium("traced", run.medium);
      bench::explain_emit(summary, trace, mp.params);
    }
  }
  table.emit();
  bench::ledger_emit(summary, ledger);
  summary.add_profile();
  summary.emit();
  std::printf("Paper shape: latency (measured from each node's own wake-up) "
              "stays in the same band for every pattern; no starvation "
              "under adversarial wavefront or staged deployment.\n");
  return 0;
}
