/// Experiment E7 — "Simulation results show that significantly smaller
/// values suffice" (Sect. 4, end).
///
/// The paper's analytical constants make the failure probability ≤ 2n⁻³
/// but are enormous (γ ≈ 90, σ ≈ 900, α ≈ 2900 for UDG-like κ).  This
/// experiment quantifies the remark: we sweep a scale factor applied to
/// the calibrated practical constants and report the correctness/time
/// trade-off, and we run the full analytical constants on a smaller
/// instance to show they work but cost ~2 orders of magnitude more time.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;
  bench::banner("E7", "constants trade-off: correctness vs running time");

  const std::size_t n = 192;
  Rng rng(0xE7);
  const auto net = graph::random_udg(n, 9.0, 1.5, rng);
  const auto mp = bench::measured_params(net.graph, 48);
  std::printf("deployment: n=%zu Delta=%u k1=%u k2=%u\n", n, mp.delta,
              mp.kappa1, mp.kappa2);
  std::printf("practical constants: alpha=%.0f beta=%.0f gamma=%.0f "
              "sigma=%.0f\n\n",
              mp.params.alpha, mp.params.beta, mp.params.gamma,
              mp.params.sigma);

  analysis::Table table(
      "e7_constants",
      "E7: validity and latency vs constant scale (x practical defaults, "
      "20 trials each)");
  table.set_header({"scale", "valid", "complete", "mean_T", "max_T",
                    "resets/node"});
  const auto sched =
      analysis::uniform_schedule(n, 2 * mp.params.threshold());
  for (double scale : {0.25, 0.5, 0.75, 1.0, 1.5}) {
    const core::Params p = mp.params.scaled(scale);
    const auto agg = analysis::run_core_trials(net.graph, p, sched, 20,
                                               mix_seed(0xE7F0, static_cast<std::uint64_t>(scale * 100)));
    table.add_row({analysis::Table::num(scale, 2),
                   analysis::Table::num(agg.valid_fraction(), 2),
                   analysis::Table::num(agg.completed_fraction(), 2),
                   analysis::Table::num(agg.mean_latency.mean(), 0),
                   analysis::Table::num(agg.max_latency.max(), 0),
                   analysis::Table::num(agg.resets_per_node.mean(), 2)});
  }
  table.emit();

  // The paper's analytical constants on a smaller instance.
  Rng rng2(0xE7A);
  const auto small = graph::random_udg(64, 5.2, 1.5, rng2);
  const auto smp = bench::measured_params(small.graph);
  const core::Params analytical = core::Params::analytical(
      64, smp.delta, smp.kappa1, smp.kappa2);
  const core::Params practical = core::Params::practical(
      64, smp.delta, smp.kappa1, smp.kappa2);

  analysis::Table t2("e7_analytical",
                     "E7b: paper's analytical constants vs calibrated "
                     "practical ones (n=64, 3 trials each)");
  t2.set_header({"constants", "alpha", "gamma", "sigma", "valid", "mean_T",
                 "max_T"});
  for (const auto& [name, params] :
       {std::pair{"analytical", analytical}, std::pair{"practical", practical}}) {
    const auto agg = analysis::run_core_trials(
        small.graph, params, analysis::uniform_schedule(64, 1000), 3,
        0xE7B0);
    t2.add_row({name, analysis::Table::num(params.alpha, 0),
                analysis::Table::num(params.gamma, 0),
                analysis::Table::num(params.sigma, 0),
                analysis::Table::num(agg.valid_fraction(), 2),
                analysis::Table::num(agg.mean_latency.mean(), 0),
                analysis::Table::num(agg.max_latency.max(), 0)});
  }
  t2.emit();
  std::printf("Paper claim reproduced: constants ~40x smaller than the "
              "analytical ones still yield correct colorings on random "
              "deployments, ~2 orders of magnitude faster.\n");
  return 0;
}
