/// Experiment E8 — Bounded independence beyond unit disks: obstacles and
/// unit ball graphs (Sect. 2, Fig. 1; Corollary 3, Lemma 9).
///
/// Paper claims: (a) obstacles break the disk shape but "typically cause
/// only small increases in κ₁ or κ₂", and the algorithm's bounds degrade
/// only through κ₂; (b) for unit ball graphs over a metric of doubling
/// dimension ρ, κ₂ ≤ 4^ρ and the UDG bounds carry over for constant ρ.
/// We measure κ on obstacle-BIGs with growing wall counts and on UBGs of
/// growing dimension, run the protocol with the measured κ, and report
/// validity, colors, and latency.

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace urn;
  const bench::TraceArgs trace = bench::parse_trace_args(argc, argv, "e8");
  bench::banner("E8", "obstacle BIGs and unit ball graphs (Cor 3, Lemma 9)");

  const std::size_t trials = 6;

  analysis::Table t1("e8_obstacles",
                     "E8a: obstacle BIGs — walls cut UDG links "
                     "(n=160, radius 1.5, 6 trials each)");
  t1.set_header({"walls", "edges", "Delta", "k1", "k2", "valid", "mean_T",
                 "max_color"});
  for (std::size_t walls : {0u, 15u, 40u, 90u}) {
    Rng rng(mix_seed(0xE8, walls));
    auto segs = graph::random_walls(walls, 10.0, 1.0, 4.0, rng);
    const auto net =
        graph::random_obstacle_big(160, 10.0, 1.5, std::move(segs), rng);
    const auto mp = bench::measured_params(net.graph);
    const auto agg = analysis::run_core_trials(
        net.graph, mp.params,
        analysis::uniform_schedule(160, 2 * mp.params.threshold()), trials,
        mix_seed(0xE8F0, walls), trace.exec());
    t1.add_row(
        {analysis::Table::num(static_cast<std::uint64_t>(walls)),
         analysis::Table::num(static_cast<std::uint64_t>(net.graph.num_edges())),
         analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa1)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
         analysis::Table::num(agg.valid_fraction(), 2),
         analysis::Table::num(agg.mean_latency.mean(), 0),
         analysis::Table::num(agg.max_color.mean(), 0)});
  }
  t1.emit();

  analysis::Table t2("e8_unit_ball",
                     "E8b: unit ball graphs in d dimensions (n=110, "
                     "6 trials each; Lemma 9: k2 <= 4^rho)");
  t2.set_header({"dim", "Delta", "k1", "k2", "valid", "mean_T",
                 "max_color", "bound k2*D"});
  for (std::size_t dim : {1u, 2u, 3u}) {
    Rng rng(mix_seed(0xE8B, dim));
    // Volume scaled so the degree stays moderate in each dimension.
    const double side = dim == 1 ? 16.0 : (dim == 2 ? 5.2 : 3.1);
    const auto ball = graph::random_unit_ball(110, dim, side, rng);
    const auto mp = bench::measured_params(ball.graph);
    const auto agg = analysis::run_core_trials(
        ball.graph, mp.params,
        analysis::uniform_schedule(110, 2 * mp.params.threshold()), trials,
        mix_seed(0xE8C0, dim), trace.exec());
    t2.add_row(
        {analysis::Table::num(static_cast<std::uint64_t>(dim)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa1)),
         analysis::Table::num(static_cast<std::uint64_t>(mp.kappa2)),
         analysis::Table::num(agg.valid_fraction(), 2),
         analysis::Table::num(agg.mean_latency.mean(), 0),
         analysis::Table::num(agg.max_color.mean(), 0),
         analysis::Table::num(
             static_cast<std::uint64_t>(mp.kappa2 * mp.delta))});
  }
  t2.emit();
  bench::BenchSummary summary("e8_big");
  summary.set("trials", static_cast<std::uint64_t>(trials));
  summary.set("jobs", static_cast<std::uint64_t>(trace.resolved_jobs()));
  summary.add_profile();
  summary.emit();
  std::printf("Paper shape: walls shrink edges but kappa stays a small "
              "constant (the algorithm never relied on disk geometry); in "
              "UBGs kappa2 grows with the doubling dimension and the "
              "time/color bounds scale through kappa2 only.\n");
  return 0;
}
