/// Experiment E9 — Head-to-head against the Busch et al.-style baseline
/// (Sect. 3 comparison).
///
/// Paper claim: restricted to one-hop coloring, the technique of [2]
/// yields O(Δ) colors in O(Δ³ log n) time, while this paper's algorithm
/// needs O(κ₂⁴ Δ log n) — linear instead of cubic in Δ.  Our rand-verify
/// reconstruction uses a Θ(Δ² log n) verification window (the price of no
/// collision detection), so its latency should grow ≈ quadratically in Δ
/// while the paper's algorithm grows linearly; the crossover sits at small
/// Δ.  The idealized message-passing coloring is listed (in rounds, not
/// slots) as the collision-free reference.

#include <cmath>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "baselines/message_passing.hpp"
#include "baselines/rand_verify.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main() {
  using namespace urn;
  bench::banner("E9", "this paper vs rand-verify (Busch-style) vs "
                      "message passing");

  const std::size_t n = 128;
  analysis::Table table(
      "e9_baselines",
      "E9: per-node latency (slots) vs Delta — protocol vs baselines "
      "(random UDG, n=128, 4 trials each)");
  table.set_header({"Delta", "mw_mean_T", "mw_max_T", "rv_mean_T",
                    "rv_max_T", "rv/mw", "mw_colors", "rv_colors",
                    "mp_rounds"});

  std::vector<double> deltas, kappas, mw_means, rv_means;
  for (double side : {13.0, 10.0, 8.0, 6.6, 5.6}) {
    Rng rng(mix_seed(0xE9, static_cast<std::uint64_t>(side * 10)));
    const auto net = graph::random_udg(n, side, 1.5, rng);
    const auto mp = bench::measured_params(net.graph);

    const auto agg = analysis::run_core_trials(
        net.graph, mp.params, analysis::synchronous_schedule(n), 4,
        mix_seed(0xE9F0, static_cast<std::uint64_t>(side)));

    baselines::RandVerifyParams rv;
    rv.n = n;
    rv.delta = mp.delta;
    Samples rv_lat, rv_max, rv_colors;
    for (std::uint64_t t = 0; t < 4; ++t) {
      const auto r = baselines::run_rand_verify(
          net.graph, rv, radio::WakeSchedule::synchronous(n),
          mix_seed(0xE9A0 + t, static_cast<std::uint64_t>(side)), 60000000);
      URN_CHECK(r.all_decided);
      Samples lat;
      for (radio::Slot s : r.latency) lat.add(static_cast<double>(s));
      rv_lat.add(lat.mean());
      rv_max.add(lat.max());
      rv_colors.add(static_cast<double>(r.max_color));
    }

    Rng mrng(mix_seed(0xE9B0, static_cast<std::uint64_t>(side)));
    const auto mpc = baselines::mp_random_coloring(net.graph, mrng);

    deltas.push_back(mp.delta);
    kappas.push_back(mp.kappa2);
    mw_means.push_back(agg.mean_latency.mean());
    rv_means.push_back(rv_lat.mean());
    table.add_row(
        {analysis::Table::num(static_cast<std::uint64_t>(mp.delta)),
         analysis::Table::num(agg.mean_latency.mean(), 0),
         analysis::Table::num(agg.max_latency.max(), 0),
         analysis::Table::num(rv_lat.mean(), 0),
         analysis::Table::num(rv_max.max(), 0),
         analysis::Table::num(rv_lat.mean() / agg.mean_latency.mean(), 2),
         analysis::Table::num(agg.max_color.mean(), 0),
         analysis::Table::num(rv_colors.mean(), 0),
         analysis::Table::num(
             static_cast<std::uint64_t>(mpc.rounds))});
  }
  table.emit();

  // Estimate growth exponents: log T vs log Delta.  The protocol's raw
  // exponent is inflated by κ₂ drifting upward with density (its windows
  // scale with κ₂), so we also report the κ₂²-normalized exponent, which
  // is the Δ-dependence Theorem 3 isolates.
  std::vector<double> lx, lmw, lmw_norm, lrv;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    lx.push_back(std::log(deltas[i]));
    lmw.push_back(std::log(mw_means[i]));
    lmw_norm.push_back(std::log(mw_means[i] / (kappas[i] * kappas[i])));
    lrv.push_back(std::log(rv_means[i]));
  }
  const LinearFit f_mw = fit_line(lx, lmw);
  const LinearFit f_mwn = fit_line(lx, lmw_norm);
  const LinearFit f_rv = fit_line(lx, lrv);
  std::printf("Growth exponents (log-log slope in Delta): this paper ~%.2f "
              "raw, ~%.2f after k2^2 normalization; rand-verify ~%.2f\n",
              f_mw.slope, f_mwn.slope, f_rv.slope);
  // Extrapolated crossover where the baseline's steeper growth overtakes
  // the protocol's larger constants.
  if (f_rv.slope > f_mw.slope) {
    const double cross = std::exp((f_mw.intercept - f_rv.intercept) /
                                  (f_rv.slope - f_mw.slope));
    std::printf("Extrapolated crossover at Delta ~ %.0f.\n", cross);
  }
  std::printf(
      "Paper shape, partially reproduced: the baseline's latency grows "
      "with a higher Delta-exponent (extra Delta factors), as the paper's "
      "O(D^3 log n) vs O(D log n) comparison predicts — but our "
      "reconstruction of [2] is leaner than the original (no TDMA frame "
      "structure), so at these sizes its absolute constants win; see "
      "EXPERIMENTS.md E9 for the discrepancy discussion.\n");
  return 0;
}
