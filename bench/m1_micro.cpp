/// M1 — micro-benchmarks of the substrate (google-benchmark): simulator
/// throughput, graph generation, κ computation, χ(P) evaluation, and the
/// baselines' inner loops.  These justify the experiment sizes used in
/// E1–E9 (the simulator sustains tens of millions of node-slots/s).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/message_passing.hpp"
#include "core/chi.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "obs/bintrace.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/telemetry.hpp"
#include "support/rng.hpp"

namespace {

using namespace urn;

void BM_RandomUdgGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double side = 1.5 * std::sqrt(static_cast<double>(n) / 2.8);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto net = graph::random_udg(n, side, 1.5, rng);
    benchmark::DoNotOptimize(net.graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RandomUdgGeneration)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Kappa2Exact(benchmark::State& state) {
  Rng rng(2);
  const auto net = graph::random_udg(
      static_cast<std::size_t>(state.range(0)), 7.0, 1.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::kappa2(net.graph).value);
  }
}
BENCHMARK(BM_Kappa2Exact)->Arg(64)->Arg(128);

void BM_Chi(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::int64_t> counters;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    counters.push_back(rng.range(-500, 500));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::chi(counters, 25));
  }
}
BENCHMARK(BM_Chi)->Arg(4)->Arg(16)->Arg(64);

void BM_ProtocolSlots(benchmark::State& state) {
  // Whole-protocol throughput in node-slots per second.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const double side = 1.5 * std::sqrt(static_cast<double>(n) / 2.8);
  const auto net = graph::random_udg(n, side, 1.5, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const auto params = core::Params::practical(n, delta, 5, 12);
  std::uint64_t seed = 10;
  std::int64_t node_slots = 0;
  for (auto _ : state) {
    const auto run = core::run_coloring(
        net.graph, params, radio::WakeSchedule::synchronous(n), seed++);
    benchmark::DoNotOptimize(run.max_color);
    node_slots += static_cast<std::int64_t>(run.medium.slots_run) *
                  static_cast<std::int64_t>(n);
  }
  state.SetItemsProcessed(node_slots);
}
BENCHMARK(BM_ProtocolSlots)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ProtocolSlotsTraced(benchmark::State& state) {
  // Same workload as BM_ProtocolSlots but with a live MetricsSink
  // (window 16) attached — the cost of observability when it is ON.
  // Compare against BM_ProtocolSlots, which instantiates the engine with
  // NullSink: that pair quantifies the zero-overhead claim (NullSink is
  // compiled out) and the marginal cost of live metrics.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const double side = 1.5 * std::sqrt(static_cast<double>(n) / 2.8);
  const auto net = graph::random_udg(n, side, 1.5, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const auto params = core::Params::practical(n, delta, 5, 12);
  std::uint64_t seed = 10;
  std::int64_t node_slots = 0;
  core::TraceOptions trace;
  trace.metrics = true;
  trace.metrics_window = 16;
  for (auto _ : state) {
    const auto run = core::run_coloring_traced(
        net.graph, params, radio::WakeSchedule::synchronous(n), seed++,
        trace);
    benchmark::DoNotOptimize(run.series->size());
    node_slots += static_cast<std::int64_t>(run.medium.slots_run) *
                  static_cast<std::int64_t>(n);
  }
  state.SetItemsProcessed(node_slots);
}
BENCHMARK(BM_ProtocolSlotsTraced)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

// ---- Data-layout family ---------------------------------------------------
// The SoA engine-core numbers: the batched draw loop replaced per-draw
// double conversion with one integer threshold compare, and the per-slot
// decided/awake scans walk a one-byte-per-node klass array instead of
// scattered node objects.  These pin both effects in isolation; m2's
// whole-run rates show what they buy end to end.

void BM_BernoulliPerDraw(benchmark::State& state) {
  // Pre-SoA style: one uint64→double conversion + double compare per
  // node per slot (p = p_active at Δ=101, κ₂=12 — the m2 gate cell).
  const auto n = static_cast<std::size_t>(state.range(0));
  const double p = 1.0 / 1212.0;
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) rngs.emplace_back(mix_seed(7, v));
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (std::size_t v = 0; v < n; ++v) {
      if (rngs[v].uniform() < p) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BernoulliPerDraw)->Arg(2048);

void BM_BernoulliBatch(benchmark::State& state) {
  // The batch_slots draw: raw 53-bit mantissa against a precomputed
  // integer threshold — bit-identical accept/reject to uniform() < p
  // (proof in core::ColoringNode::batch_slots), no int→double convert.
  const auto n = static_cast<std::size_t>(state.range(0));
  const double p = 1.0 / 1212.0;
  const auto tx_cut = static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) rngs.emplace_back(mix_seed(7, v));
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (std::size_t v = 0; v < n; ++v) {
      if ((rngs[v]() >> 11) < tx_cut) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BernoulliBatch)->Arg(2048);

/// Stand-in for the pre-SoA node object: the hot fields the old decided
/// scan loaded, padded by the cold payload (queue, competitor lists,
/// stats, transition log) that rode along in every cache line fetch.
struct AosScanNode {
  std::uint8_t phase = 0;
  bool active = false;
  std::int64_t counter = 0;
  std::int64_t passive_remaining = 0;
  std::int32_t color_index = 0;
  std::byte cold[160]{};
};

void BM_AwakeScanAoS(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<AosScanNode> nodes(n);
  for (std::size_t v = 0; v < n; ++v) {
    nodes[v].phase = v % 5 == 0 ? 1 : 2;  // 20% undecided, like late-run
  }
  std::uint64_t decided = 0;
  for (auto _ : state) {
    for (std::size_t v = 0; v < n; ++v) {
      if (nodes[v].phase == 2) ++decided;
    }
  }
  benchmark::DoNotOptimize(decided);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AwakeScanAoS)->Arg(2048)->Arg(100000);

void BM_AwakeScanSoA(benchmark::State& state) {
  // Same scan over the engine-owned hot block: one byte per node.
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ColoringHot hot(n);
  for (std::size_t v = 0; v < n; ++v) {
    hot.klass[v] = v % 5 == 0 ? core::ColoringHot::kCount
                              : core::ColoringHot::kDecidedOther;
  }
  std::uint64_t decided = 0;
  for (auto _ : state) {
    for (std::size_t v = 0; v < n; ++v) {
      if (hot.decided(static_cast<graph::NodeId>(v))) ++decided;
    }
  }
  benchmark::DoNotOptimize(decided);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AwakeScanSoA)->Arg(2048)->Arg(100000);

void BM_EventSinkRecord(benchmark::State& state) {
  // Raw sink throughput: how fast can a RingSink absorb events.
  obs::RingSink ring(1 << 12);
  std::int64_t recorded = 0;
  for (auto _ : state) {
    for (obs::Slot s = 0; s < 1024; ++s) {
      ring.record(obs::Event::transmit(
          s, static_cast<obs::NodeId>(s & 63),
          static_cast<std::uint8_t>(obs::MsgCode::kCompete), /*color=*/0,
          /*counter=*/s));
    }
    recorded += 1024;
    benchmark::DoNotOptimize(ring.recorded());
  }
  state.SetItemsProcessed(recorded);
}
BENCHMARK(BM_EventSinkRecord);

// ---- trace-capture overhead -----------------------------------------------
// The BM_Sink* family drives the same synthetic event mix through every
// sink so items/s compare directly: NullSink is the compiled-out floor,
// MemorySink the in-memory ceiling, and JsonlSink vs BinSink is the
// serialization gap that motivates the binary format (the PR gate cites
// BinSink >= 5x JsonlSink events/s from these numbers).

/// One protocol-shaped event per call, cycling through the kinds whose
/// serializations differ most (transmit with value, delivery, phase).
obs::Event synthetic_event(obs::Slot s) {
  const auto node = static_cast<obs::NodeId>(s & 63);
  switch (s % 3) {
    case 0:
      return obs::Event::transmit(
          s, node, static_cast<std::uint8_t>(obs::MsgCode::kCompete),
          /*color=*/static_cast<std::int32_t>(s & 7), /*counter=*/s);
    case 1:
      return obs::Event::delivery(
          s, node, static_cast<obs::NodeId>((s + 1) & 63),
          static_cast<std::uint8_t>(obs::MsgCode::kAssign),
          /*color=*/static_cast<std::int32_t>(s & 7));
    default:
      return obs::Event::phase_change(
          s, node, static_cast<std::uint8_t>(obs::PhaseCode::kVerify),
          /*color=*/static_cast<std::int32_t>(s & 7));
  }
}

/// The shared 1024-event batch, built once outside the timed region so
/// items/s measures sink cost alone, not event construction.
const std::vector<obs::Event>& synthetic_batch() {
  static const std::vector<obs::Event> batch = [] {
    std::vector<obs::Event> v;
    for (obs::Slot s = 0; s < 1024; ++s) v.push_back(synthetic_event(s));
    return v;
  }();
  return batch;
}

template <typename Sink>
void sink_throughput(benchmark::State& state, Sink& sink) {
  const auto& batch = synthetic_batch();
  std::int64_t recorded = 0;
  for (auto _ : state) {
    for (const auto& e : batch) sink.record(e);
    recorded += static_cast<std::int64_t>(batch.size());
  }
  sink.flush();
  state.SetItemsProcessed(recorded);
}

void BM_SinkNull(benchmark::State& state) {
  obs::NullSink sink;
  sink_throughput(state, sink);
}
BENCHMARK(BM_SinkNull);

void BM_SinkMemory(benchmark::State& state) {
  obs::MemorySink sink;
  sink_throughput(state, sink);
  benchmark::DoNotOptimize(sink.size());
}
BENCHMARK(BM_SinkMemory);

void BM_SinkJsonl(benchmark::State& state) {
  obs::JsonlSink sink("m1_sink_bench.jsonl");
  sink_throughput(state, sink);
  benchmark::DoNotOptimize(sink.written());
  std::remove("m1_sink_bench.jsonl");
}
BENCHMARK(BM_SinkJsonl);

void BM_SinkBin(benchmark::State& state) {
  obs::BinSink sink("m1_sink_bench.bin");
  sink_throughput(state, sink);
  benchmark::DoNotOptimize(sink.written());
  std::remove("m1_sink_bench.bin");
}
BENCHMARK(BM_SinkBin);

void BM_SinkBinRing(benchmark::State& state) {
  // Flight-recorder mode: bounded memory, no I/O until flush.
  obs::BinSink sink("m1_sink_bench_ring.bin", /*ring_capacity=*/1 << 12);
  sink_throughput(state, sink);
  benchmark::DoNotOptimize(sink.written());
  std::remove("m1_sink_bench_ring.bin");
}
BENCHMARK(BM_SinkBinRing);

void BM_GreedyColoring(benchmark::State& state) {
  Rng rng(5);
  const auto net = graph::random_udg(
      static_cast<std::size_t>(state.range(0)), 12.0, 1.4, rng);
  for (auto _ : state) {
    auto colors = graph::greedy_coloring(net.graph);
    benchmark::DoNotOptimize(graph::max_color(colors));
  }
}
BENCHMARK(BM_GreedyColoring)->Arg(1024);

void BM_LubyMis(benchmark::State& state) {
  Rng grng(6);
  const auto net = graph::random_udg(
      static_cast<std::size_t>(state.range(0)), 12.0, 1.4, grng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto mis = baselines::luby_mis(net.graph, rng);
    benchmark::DoNotOptimize(mis.mis.size());
  }
}
BENCHMARK(BM_LubyMis)->Arg(1024);

void BM_MpColoring(benchmark::State& state) {
  Rng grng(7);
  const auto net = graph::random_udg(
      static_cast<std::size_t>(state.range(0)), 12.0, 1.4, grng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto r = baselines::mp_random_coloring(net.graph, rng);
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_MpColoring)->Arg(1024);

// --- Telemetry family -----------------------------------------------------
//
// The zero-overhead claim has two halves.  Disabled: BM_ProtocolSlots
// runs the engine with the default NullEngineProbe — the probe hooks are
// `if constexpr`-eliminated, so BM_TelemetryProtocolProbed vs
// BM_ProtocolSlots is the *entire* cost of turning telemetry on, and
// there is no disabled-path cost left to measure.  Enabled: the
// primitives below must stay in the low-ns range (one relaxed fetch_add
// per counter hit, three per histogram record).

void BM_TelemetryCounterAdd(benchmark::State& state) {
  obs::telemetry::Counter counter;
  std::uint64_t i = 0;
  for (auto _ : state) {
    counter.add(++i & 7);
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TelemetryCounterAdd);

void BM_TelemetryGaugeSet(benchmark::State& state) {
  obs::telemetry::Gauge gauge;
  std::int64_t i = 0;
  for (auto _ : state) {
    gauge.set(++i & 1023);
  }
  benchmark::DoNotOptimize(gauge.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TelemetryGaugeSet);

void BM_TelemetryHistogramRecord(benchmark::State& state) {
  obs::telemetry::Histogram hist;
  std::uint64_t i = 0;
  for (auto _ : state) {
    hist.record(++i & 0xffff);
  }
  benchmark::DoNotOptimize(hist.snapshot().count);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TelemetryHistogramRecord);

void BM_TelemetrySnapshot(benchmark::State& state) {
  // Reading the registry (what the background snapshotter pays per
  // interval): `range(0)` counters plus one histogram.
  obs::telemetry::Registry registry;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    registry.counter("bench.counter" + std::to_string(i)).add(7);
  }
  obs::telemetry::Histogram& hist = registry.histogram("bench.hist");
  for (std::uint64_t v = 0; v < 4096; ++v) hist.record(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.snapshot().counters.size());
  }
}
BENCHMARK(BM_TelemetrySnapshot)->Arg(16)->Arg(64);

void BM_TelemetryProtocolProbed(benchmark::State& state) {
  // Whole-protocol throughput with a live engine probe — compare
  // against BM_ProtocolSlots (identical workload, probe compiled out).
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const double side = 1.5 * std::sqrt(static_cast<double>(n) / 2.8);
  const auto net = graph::random_udg(n, side, 1.5, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const auto params = core::Params::practical(n, delta, 5, 12);
  obs::telemetry::Registry registry;
  core::TraceOptions trace;
  trace.telemetry = &registry;
  std::uint64_t seed = 10;
  std::int64_t node_slots = 0;
  for (auto _ : state) {
    const auto run = core::run_coloring_traced(
        net.graph, params, radio::WakeSchedule::synchronous(n), seed++,
        trace);
    benchmark::DoNotOptimize(run.max_color);
    node_slots += static_cast<std::int64_t>(run.medium.slots_run) *
                  static_cast<std::int64_t>(n);
  }
  state.SetItemsProcessed(node_slots);
}
BENCHMARK(BM_TelemetryProtocolProbed)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
