/// M2 — whole-run engine throughput (node-slots/s).
///
/// M1 micro-benchmarks individual substrate pieces; M2 measures what the
/// ROADMAP north-star actually asks for: how fast a *complete* protocol
/// execution runs end-to-end on the untraced hot path, across an
/// n × Δ × wake-pattern grid on both UDG and obstacle-BIG deployments.
/// Every experiment sweep (E2/E3 n·Δ grids, E8 BIG families) is bounded
/// by this number, so engine hot-path work is invisible without it.
///
/// Each grid cell builds a fixed-seed deployment, runs `core::run_coloring`
/// to quiescence `--reps` times, and reports the best node-slots/s (best
/// of reps = least scheduler noise).  Summary keys split into two classes:
///
///  * exact keys (`m2.<cell>.slots_run`, `.node_slots`, `.delta`, ...):
///    fixed-seed deterministic — the bench regression diff compares them
///    bit-for-bit, so a throughput change can never hide a behavior
///    change;
///  * rate keys (`engine.noderate.<cell>`): wall-clock throughput —
///    `urn_bench_diff` puts every key containing `.noderate.` into the
///    rate tolerance class (presence-checked, value compared only under
///    `--rate-tol`), so committed baselines track throughput without
///    flaking on machine speed.
///
/// `--smoke` shrinks the grid to a few-second fixture scenario (summary
/// name `m2_smoke`, baselined under bench/baseline/); the full grid emits
/// `BENCH_m2_macro.json`.  `--jobs N` fans grid cells out across workers
/// (deterministic exact keys for every N; rates then measure *contended*
/// cores, which the text output flags).
///
/// The `delayed` pattern wakes every node only after a long empty prefix
/// — the wake-gap fast-forward regime: the engine must not pay per-slot
/// cost for slots in which nothing can happen.

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/runner.hpp"
#include "exec/parallel.hpp"
#include "graph/generators.hpp"
#include "obs/telemetry.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

namespace {

using namespace urn;

struct CellSpec {
  std::string family;  ///< "udg" | "big"
  std::size_t n = 0;
  double side = 0.0;
  double radius = 1.5;
  std::size_t walls = 0;  ///< BIG only
  std::string pattern;    ///< "sync" | "uniform" | "delayed"
  std::uint64_t seed = 0;
  /// Hard slot cap (0 = run to quiescence).  The n=100k cells use this:
  /// a capped fixed-slot window keeps the exact keys deterministic while
  /// holding the cell to seconds instead of a full-convergence run.
  radio::Slot max_slots = 0;
};

struct CellResult {
  std::string id;  ///< e.g. "udg.n2048.d67.sync"
  std::uint32_t delta = 0;
  std::int64_t slots_run = 0;
  std::uint64_t transmissions = 0;
  bool all_decided = false;
  std::int64_t node_slots = 0;
  double best_rate = 0.0;  ///< node-slots/s, best over reps
  double seconds = 0.0;    ///< wall clock of the best rep
};

/// Wake slots for all nodes land inside [delay, delay + 2·threshold];
/// the leading `delay` slots are pure wake-gap.
constexpr radio::Slot kDelayedPrefix = 250000;

graph::Graph build_graph(const CellSpec& spec) {
  Rng rng(mix_seed(0x32AC20, spec.seed));
  if (spec.family == "big") {
    auto segs =
        graph::random_walls(spec.walls, spec.side, 1.0, 4.0, rng);
    return graph::random_obstacle_big(spec.n, spec.side, spec.radius,
                                      std::move(segs), rng)
        .graph;
  }
  return graph::random_udg(spec.n, spec.side, spec.radius, rng).graph;
}

radio::WakeSchedule make_schedule(const CellSpec& spec,
                                  const core::Params& params) {
  Rng wrng(mix_seed(0x32ACFE, spec.seed));
  if (spec.pattern == "sync") return radio::WakeSchedule::synchronous(spec.n);
  const radio::Slot window = 2 * params.threshold();
  if (spec.pattern == "uniform") {
    return radio::WakeSchedule::uniform(spec.n, window, wrng);
  }
  // "delayed": uniform window shifted past a long empty prefix.
  const auto base = radio::WakeSchedule::uniform(spec.n, window, wrng);
  std::vector<radio::Slot> slots = base.slots();
  for (radio::Slot& s : slots) s += kDelayedPrefix;
  return radio::WakeSchedule(std::move(slots));
}

CellResult run_cell(const CellSpec& spec, std::size_t reps,
                    obs::telemetry::Registry* telemetry) {
  const graph::Graph g = build_graph(spec);
  const auto delta = std::max(2u, g.max_closed_degree());
  const core::Params params =
      core::Params::practical(spec.n, delta, 5, 12);
  const radio::WakeSchedule schedule = make_schedule(spec, params);

  // With --telemetry-* the reps run probed (zero-event NullSink engine
  // path): exact keys stay bit-identical, only the rates shift by the
  // probe's few-ns-per-slot cost.
  core::TraceOptions topts;
  topts.telemetry = telemetry;

  CellResult r;
  r.id = spec.family + ".n" + std::to_string(spec.n) + ".d" +
         std::to_string(delta) + "." + spec.pattern;
  r.delta = delta;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::RunResult run =
        telemetry != nullptr
            ? core::run_coloring_traced(g, params, schedule,
                                        mix_seed(0x32AC5D, spec.seed), topts,
                                        spec.max_slots)
            : core::run_coloring(g, params, schedule,
                                 mix_seed(0x32AC5D, spec.seed),
                                 spec.max_slots);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    r.slots_run = static_cast<std::int64_t>(run.medium.slots_run);
    r.transmissions = run.medium.transmissions;
    r.all_decided = run.all_decided;
    r.node_slots = r.slots_run * static_cast<std::int64_t>(spec.n);
    const double rate = static_cast<double>(r.node_slots) / dt.count();
    if (rate > r.best_rate) {
      r.best_rate = rate;
      r.seconds = dt.count();
    }
  }
  return r;
}

std::vector<CellSpec> make_grid(bool smoke) {
  // Side lengths put the measured max closed degree Δ near the label:
  // mean closed degree ≈ n·π·r²/side².  The high-Δ UDG cell (Δ ≥ 64) is
  // the configuration the PR gate tracks.
  std::vector<CellSpec> grid;
  const char* patterns_full[] = {"sync", "uniform", "delayed"};
  const char* patterns_smoke[] = {"sync", "delayed"};
  if (smoke) {
    for (const char* p : patterns_smoke) {
      grid.push_back({"udg", 96, 6.5, 1.5, 0, p, 1});
      grid.push_back({"big", 96, 6.5, 1.5, 12, p, 2});
    }
    // Capped n=100k cell: working set ~100x the L2-resident grid above
    // (4.8 MB of RNG state alone), so cache behavior at scale shows up
    // even in the fixture — the small cap keeps the sanitizer legs fast.
    grid.push_back({"udg", 100000, 210.0, 1.5, 0, "sync", 14, 600});
    return grid;
  }
  for (const char* p : patterns_full) {
    grid.push_back({"udg", 1024, 21.0, 1.5, 0, p, 11});   // Δ ≈ 16
    grid.push_back({"udg", 2048, 14.5, 1.5, 0, p, 12});   // Δ ≥ 64 (gate)
    grid.push_back({"big", 1024, 18.0, 1.5, 40, p, 13});  // walls cut links
  }
  // Memory-scale cell: 100k nodes (~10 MB hot state + RNG streams) in a
  // fixed 12k-slot window.  Quiescence at this n takes minutes; a capped
  // window measures the same hot loop with deterministic exact keys.
  grid.push_back({"udg", 100000, 210.0, 1.5, 0, "sync", 14, 12000});
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.add_bool("smoke", false,
                 "few-second fixture grid (summary name m2_smoke)");
  flags.add_int("reps", 0,
                "timed repetitions per cell, best rate wins "
                "(0 = 3, or 1 with --smoke)");
  flags.add_int("jobs", 1,
                "worker threads across grid cells (0 = all hardware "
                "threads); exact keys stay deterministic, rates measure "
                "contended cores when > 1");
  flags.add_string("filter", "",
                   "only run cells whose id contains this substring");
  flags.add_string("trace-bin", "",
                   "after the timed grid, record one extra untimed run of "
                   "the first grid cell as a compact binary event log "
                   "(analyze with urn_trace / urn_explain); never affects "
                   "the timed rates or the summary keys");
  flags.add_bool("progress", false,
                 "print a one-line cells-done/ETA progress meter to "
                 "stderr every telemetry interval");
  flags.add_string("telemetry-out", "",
                   "stream live telemetry snapshots to this JSONL file "
                   "(watch with urn_top --in FILE)");
  flags.add_string("telemetry-prom", "",
                   "rewrite this file as Prometheus text exposition on "
                   "every telemetry snapshot");
  flags.add_int("telemetry-interval", 1000,
                "telemetry / progress snapshot period in milliseconds");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.usage("m2_macro").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("m2_macro").c_str());
    return 0;
  }
  const bool smoke = flags.get_bool("smoke");
  const auto reps = static_cast<std::size_t>(
      flags.get_int("reps") > 0 ? flags.get_int("reps") : (smoke ? 1 : 3));
  const std::size_t jobs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("jobs")));
  const std::string filter = flags.get_string("filter");

  bench::banner("M2", "whole-run engine throughput in node-slots/s "
                      "(UDG and BIG, n x Delta x wake pattern)");

  std::vector<CellSpec> grid = make_grid(smoke);
  if (!filter.empty()) {
    std::vector<CellSpec> kept;
    for (const CellSpec& spec : grid) {
      const std::string id = spec.family + ".n" + std::to_string(spec.n) +
                             "." + spec.pattern;
      if (id.find(filter) != std::string::npos) kept.push_back(spec);
    }
    grid = std::move(kept);
  }
  if (grid.empty()) {
    std::fprintf(stderr, "error: --filter matched no grid cell\n");
    return 2;
  }

  const std::size_t resolved = exec::resolve_jobs(jobs);
  if (resolved > 1) {
    std::printf("note: --jobs %zu — rates below measure contended cores\n",
                resolved);
  }

  // --progress and --telemetry-* share one snapshotter: a cells-done
  // counter feeds the stderr ETA line, and with an export path set the
  // reps additionally run with engine probes into the same registry.
  const bool progress = flags.get_bool("progress");
  const std::string telemetry_out = flags.get_string("telemetry-out");
  const std::string telemetry_prom = flags.get_string("telemetry-prom");
  const bool exporting = !telemetry_out.empty() || !telemetry_prom.empty();
  obs::telemetry::Registry* telemetry = nullptr;
  obs::telemetry::Counter* cells_done = nullptr;
  std::optional<obs::telemetry::PoolProbe> pool_probe;
  std::optional<obs::telemetry::Snapshotter> snapshotter;
  if (progress || exporting) {
    obs::telemetry::Registry& reg = obs::telemetry::Registry::global();
    reg.clear();
    cells_done = &reg.counter("m2.cells_done");
    reg.gauge("m2.cells_total").set(static_cast<std::int64_t>(grid.size()));
    if (exporting) {
      telemetry = &reg;
      pool_probe.emplace(reg, resolved);
    }
    obs::telemetry::SnapshotterOptions sopts;
    sopts.jsonl_path = telemetry_out;
    sopts.prom_path = telemetry_prom;
    sopts.interval_ms = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, flags.get_int("telemetry-interval")));
    if (progress) {
      const std::size_t total_cells = grid.size();
      sopts.on_snapshot = [total_cells](
                              const obs::telemetry::Snapshot& s) {
        const std::uint64_t* found = s.find_counter("m2.cells_done");
        const std::uint64_t done = found != nullptr ? *found : 0;
        const double eta =
            (done > 0 && done < total_cells)
                ? s.uptime_s * static_cast<double>(total_cells - done) /
                      static_cast<double>(done)
                : 0.0;
        std::fprintf(stderr,
                     "\rm2: %llu/%zu cells | %.1fs elapsed | eta %.0fs   ",
                     static_cast<unsigned long long>(done), total_cells,
                     s.uptime_s, eta);
      };
    }
    snapshotter.emplace(reg, std::move(sopts));
  }

  // One grid cell per "trial": exact keys are bit-identical for every
  // jobs value (fixed per-cell seeds); only the rates vary with load.
  struct Partial {
    std::vector<CellResult> cells;
  };
  const Partial all = exec::parallel_for_trials<Partial>(
      grid.size(), {jobs, 1, nullptr, pool_probe ? &*pool_probe : nullptr},
      [&](Partial& acc, std::size_t i) {
        acc.cells.push_back(run_cell(grid[i], reps, telemetry));
        if (cells_done != nullptr) cells_done->add(1);
      },
      [](Partial& into, Partial&& chunk) {
        for (CellResult& r : chunk.cells) into.cells.push_back(std::move(r));
      });

  if (snapshotter.has_value()) {
    snapshotter->stop();  // final snapshot carries the completed grid
    if (progress) std::fprintf(stderr, "\n");
    if (!telemetry_out.empty()) {
      std::printf("(telemetry: %llu snapshots -> %s; watch live with "
                  "urn_top --in %s)\n",
                  static_cast<unsigned long long>(
                      snapshotter->snapshots_taken()),
                  telemetry_out.c_str(), telemetry_out.c_str());
    }
    if (!telemetry_prom.empty()) {
      std::printf("(telemetry: prometheus exposition -> %s)\n",
                  telemetry_prom.c_str());
    }
  }

  bench::BenchSummary summary(smoke ? "m2_smoke" : "m2_macro");
  summary.set("cells", static_cast<std::uint64_t>(all.cells.size()));
  summary.set("reps", static_cast<std::uint64_t>(reps));
  summary.set("jobs", static_cast<std::uint64_t>(resolved));

  std::printf("%-24s %8s %10s %12s %10s\n", "cell", "Delta", "slots",
              "node-slots", "Mns/s");
  double high_delta_rate = 0.0;
  for (const CellResult& r : all.cells) {
    std::printf("%-24s %8u %10lld %12lld %10.1f\n", r.id.c_str(), r.delta,
                static_cast<long long>(r.slots_run),
                static_cast<long long>(r.node_slots), r.best_rate / 1e6);
    const std::string cell = "m2." + r.id;
    summary.set(cell + ".delta", r.delta);
    summary.set(cell + ".slots_run", r.slots_run);
    summary.set(cell + ".node_slots", r.node_slots);
    summary.set(cell + ".transmissions", r.transmissions);
    summary.set(cell + ".all_decided", r.all_decided);
    summary.set("engine.noderate." + r.id, r.best_rate);
    if (r.delta >= 64 && r.best_rate > high_delta_rate) {
      high_delta_rate = r.best_rate;
    }
  }
  if (high_delta_rate > 0.0) {
    // The PR-gate headline: best whole-run rate on a Δ ≥ 64 cell.
    summary.set("engine.noderate.headline.highdelta", high_delta_rate);
    std::printf("\nheadline: high-Delta whole-run rate %.1f M node-slots/s\n",
                high_delta_rate / 1e6);
  }
  summary.add_profile();
  summary.emit();

  // --trace-bin: one extra untimed traced run of the first grid cell,
  // after the summary is written, so the emitted keys are identical with
  // and without the flag.  This is the capture the CI throughput-smoke
  // leg feeds to `urn_explain summarize`.
  const std::string trace_bin = flags.get_string("trace-bin");
  if (!trace_bin.empty()) {
    const CellSpec& spec = grid.front();
    const graph::Graph g = build_graph(spec);
    const auto delta = std::max(2u, g.max_closed_degree());
    const core::Params params =
        core::Params::practical(spec.n, delta, 5, 12);
    core::TraceOptions topts;
    topts.events_bin = trace_bin;
    const core::RunResult run = core::run_coloring_traced(
        g, params, make_schedule(spec, params),
        mix_seed(0x32AC5D, spec.seed), topts);
    std::printf("(trace: %llu events -> %s; attribute with urn_explain "
                "summarize %s --kappa2 %u --passive-slots %lld)\n",
                static_cast<unsigned long long>(run.events_recorded),
                trace_bin.c_str(), trace_bin.c_str(), params.kappa2,
                static_cast<long long>(params.passive_slots()));
  }
  return 0;
}
