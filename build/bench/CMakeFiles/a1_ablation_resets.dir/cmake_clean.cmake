file(REMOVE_RECURSE
  "CMakeFiles/a1_ablation_resets.dir/a1_ablation_resets.cpp.o"
  "CMakeFiles/a1_ablation_resets.dir/a1_ablation_resets.cpp.o.d"
  "a1_ablation_resets"
  "a1_ablation_resets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_ablation_resets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
