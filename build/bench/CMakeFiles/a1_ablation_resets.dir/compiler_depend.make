# Empty compiler generated dependencies file for a1_ablation_resets.
# This may be replaced when dependencies are built.
