file(REMOVE_RECURSE
  "CMakeFiles/a2_ablation_alpha.dir/a2_ablation_alpha.cpp.o"
  "CMakeFiles/a2_ablation_alpha.dir/a2_ablation_alpha.cpp.o.d"
  "a2_ablation_alpha"
  "a2_ablation_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_ablation_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
