# Empty compiler generated dependencies file for a2_ablation_alpha.
# This may be replaced when dependencies are built.
