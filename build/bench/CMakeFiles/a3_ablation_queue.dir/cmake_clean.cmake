file(REMOVE_RECURSE
  "CMakeFiles/a3_ablation_queue.dir/a3_ablation_queue.cpp.o"
  "CMakeFiles/a3_ablation_queue.dir/a3_ablation_queue.cpp.o.d"
  "a3_ablation_queue"
  "a3_ablation_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_ablation_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
