# Empty compiler generated dependencies file for a3_ablation_queue.
# This may be replaced when dependencies are built.
