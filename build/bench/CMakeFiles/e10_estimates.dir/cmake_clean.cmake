file(REMOVE_RECURSE
  "CMakeFiles/e10_estimates.dir/e10_estimates.cpp.o"
  "CMakeFiles/e10_estimates.dir/e10_estimates.cpp.o.d"
  "e10_estimates"
  "e10_estimates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
