# Empty compiler generated dependencies file for e10_estimates.
# This may be replaced when dependencies are built.
