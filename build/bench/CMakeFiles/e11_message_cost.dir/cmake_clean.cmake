file(REMOVE_RECURSE
  "CMakeFiles/e11_message_cost.dir/e11_message_cost.cpp.o"
  "CMakeFiles/e11_message_cost.dir/e11_message_cost.cpp.o.d"
  "e11_message_cost"
  "e11_message_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_message_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
