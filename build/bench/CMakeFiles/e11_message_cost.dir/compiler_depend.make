# Empty compiler generated dependencies file for e11_message_cost.
# This may be replaced when dependencies are built.
