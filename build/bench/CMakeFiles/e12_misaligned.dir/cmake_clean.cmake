file(REMOVE_RECURSE
  "CMakeFiles/e12_misaligned.dir/e12_misaligned.cpp.o"
  "CMakeFiles/e12_misaligned.dir/e12_misaligned.cpp.o.d"
  "e12_misaligned"
  "e12_misaligned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_misaligned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
