# Empty compiler generated dependencies file for e12_misaligned.
# This may be replaced when dependencies are built.
