file(REMOVE_RECURSE
  "CMakeFiles/e13_tdma.dir/e13_tdma.cpp.o"
  "CMakeFiles/e13_tdma.dir/e13_tdma.cpp.o.d"
  "e13_tdma"
  "e13_tdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_tdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
