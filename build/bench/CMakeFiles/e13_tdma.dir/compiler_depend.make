# Empty compiler generated dependencies file for e13_tdma.
# This may be replaced when dependencies are built.
