file(REMOVE_RECURSE
  "CMakeFiles/e14_leader_election.dir/e14_leader_election.cpp.o"
  "CMakeFiles/e14_leader_election.dir/e14_leader_election.cpp.o.d"
  "e14_leader_election"
  "e14_leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
