# Empty compiler generated dependencies file for e14_leader_election.
# This may be replaced when dependencies are built.
