file(REMOVE_RECURSE
  "CMakeFiles/e15_faults.dir/e15_faults.cpp.o"
  "CMakeFiles/e15_faults.dir/e15_faults.cpp.o.d"
  "e15_faults"
  "e15_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
