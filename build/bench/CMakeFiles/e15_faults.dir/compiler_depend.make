# Empty compiler generated dependencies file for e15_faults.
# This may be replaced when dependencies are built.
