file(REMOVE_RECURSE
  "CMakeFiles/e1_correctness.dir/e1_correctness.cpp.o"
  "CMakeFiles/e1_correctness.dir/e1_correctness.cpp.o.d"
  "e1_correctness"
  "e1_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
