# Empty compiler generated dependencies file for e1_correctness.
# This may be replaced when dependencies are built.
