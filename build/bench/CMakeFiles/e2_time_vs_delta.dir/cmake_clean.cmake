file(REMOVE_RECURSE
  "CMakeFiles/e2_time_vs_delta.dir/e2_time_vs_delta.cpp.o"
  "CMakeFiles/e2_time_vs_delta.dir/e2_time_vs_delta.cpp.o.d"
  "e2_time_vs_delta"
  "e2_time_vs_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_time_vs_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
