# Empty compiler generated dependencies file for e2_time_vs_delta.
# This may be replaced when dependencies are built.
