file(REMOVE_RECURSE
  "CMakeFiles/e3_time_vs_n.dir/e3_time_vs_n.cpp.o"
  "CMakeFiles/e3_time_vs_n.dir/e3_time_vs_n.cpp.o.d"
  "e3_time_vs_n"
  "e3_time_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_time_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
