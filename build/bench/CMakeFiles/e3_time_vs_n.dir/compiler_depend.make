# Empty compiler generated dependencies file for e3_time_vs_n.
# This may be replaced when dependencies are built.
