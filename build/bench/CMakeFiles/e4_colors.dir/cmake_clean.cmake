file(REMOVE_RECURSE
  "CMakeFiles/e4_colors.dir/e4_colors.cpp.o"
  "CMakeFiles/e4_colors.dir/e4_colors.cpp.o.d"
  "e4_colors"
  "e4_colors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_colors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
