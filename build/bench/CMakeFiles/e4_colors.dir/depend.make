# Empty dependencies file for e4_colors.
# This may be replaced when dependencies are built.
