file(REMOVE_RECURSE
  "CMakeFiles/e5_locality.dir/e5_locality.cpp.o"
  "CMakeFiles/e5_locality.dir/e5_locality.cpp.o.d"
  "e5_locality"
  "e5_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
