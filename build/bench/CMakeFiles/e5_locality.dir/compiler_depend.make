# Empty compiler generated dependencies file for e5_locality.
# This may be replaced when dependencies are built.
