file(REMOVE_RECURSE
  "CMakeFiles/e6_wakeup.dir/e6_wakeup.cpp.o"
  "CMakeFiles/e6_wakeup.dir/e6_wakeup.cpp.o.d"
  "e6_wakeup"
  "e6_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
