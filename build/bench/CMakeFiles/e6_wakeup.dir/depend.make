# Empty dependencies file for e6_wakeup.
# This may be replaced when dependencies are built.
