file(REMOVE_RECURSE
  "CMakeFiles/e7_constants.dir/e7_constants.cpp.o"
  "CMakeFiles/e7_constants.dir/e7_constants.cpp.o.d"
  "e7_constants"
  "e7_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
