# Empty compiler generated dependencies file for e7_constants.
# This may be replaced when dependencies are built.
