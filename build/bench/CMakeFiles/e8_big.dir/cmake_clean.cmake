file(REMOVE_RECURSE
  "CMakeFiles/e8_big.dir/e8_big.cpp.o"
  "CMakeFiles/e8_big.dir/e8_big.cpp.o.d"
  "e8_big"
  "e8_big.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_big.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
