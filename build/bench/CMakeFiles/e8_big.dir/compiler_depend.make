# Empty compiler generated dependencies file for e8_big.
# This may be replaced when dependencies are built.
