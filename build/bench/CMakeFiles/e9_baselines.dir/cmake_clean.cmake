file(REMOVE_RECURSE
  "CMakeFiles/e9_baselines.dir/e9_baselines.cpp.o"
  "CMakeFiles/e9_baselines.dir/e9_baselines.cpp.o.d"
  "e9_baselines"
  "e9_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
