# Empty compiler generated dependencies file for e9_baselines.
# This may be replaced when dependencies are built.
