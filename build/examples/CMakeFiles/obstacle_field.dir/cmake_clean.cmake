file(REMOVE_RECURSE
  "CMakeFiles/obstacle_field.dir/obstacle_field.cpp.o"
  "CMakeFiles/obstacle_field.dir/obstacle_field.cpp.o.d"
  "obstacle_field"
  "obstacle_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obstacle_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
