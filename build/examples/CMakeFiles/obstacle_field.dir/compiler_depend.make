# Empty compiler generated dependencies file for obstacle_field.
# This may be replaced when dependencies are built.
