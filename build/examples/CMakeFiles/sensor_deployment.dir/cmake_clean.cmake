file(REMOVE_RECURSE
  "CMakeFiles/sensor_deployment.dir/sensor_deployment.cpp.o"
  "CMakeFiles/sensor_deployment.dir/sensor_deployment.cpp.o.d"
  "sensor_deployment"
  "sensor_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
