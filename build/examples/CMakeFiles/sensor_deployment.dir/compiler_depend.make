# Empty compiler generated dependencies file for sensor_deployment.
# This may be replaced when dependencies are built.
