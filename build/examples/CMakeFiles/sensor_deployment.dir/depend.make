# Empty dependencies file for sensor_deployment.
# This may be replaced when dependencies are built.
