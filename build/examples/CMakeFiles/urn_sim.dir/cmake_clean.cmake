file(REMOVE_RECURSE
  "CMakeFiles/urn_sim.dir/urn_sim.cpp.o"
  "CMakeFiles/urn_sim.dir/urn_sim.cpp.o.d"
  "urn_sim"
  "urn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
