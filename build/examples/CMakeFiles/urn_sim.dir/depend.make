# Empty dependencies file for urn_sim.
# This may be replaced when dependencies are built.
