file(REMOVE_RECURSE
  "CMakeFiles/wakeup_adversary.dir/wakeup_adversary.cpp.o"
  "CMakeFiles/wakeup_adversary.dir/wakeup_adversary.cpp.o.d"
  "wakeup_adversary"
  "wakeup_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wakeup_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
