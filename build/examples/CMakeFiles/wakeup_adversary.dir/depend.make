# Empty dependencies file for wakeup_adversary.
# This may be replaced when dependencies are built.
