file(REMOVE_RECURSE
  "CMakeFiles/urn_analysis.dir/experiment.cpp.o"
  "CMakeFiles/urn_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/urn_analysis.dir/histogram.cpp.o"
  "CMakeFiles/urn_analysis.dir/histogram.cpp.o.d"
  "CMakeFiles/urn_analysis.dir/table.cpp.o"
  "CMakeFiles/urn_analysis.dir/table.cpp.o.d"
  "liburn_analysis.a"
  "liburn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
