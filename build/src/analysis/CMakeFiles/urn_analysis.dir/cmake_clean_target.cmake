file(REMOVE_RECURSE
  "liburn_analysis.a"
)
