# Empty dependencies file for urn_analysis.
# This may be replaced when dependencies are built.
