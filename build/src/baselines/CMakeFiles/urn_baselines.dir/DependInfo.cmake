
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/message_passing.cpp" "src/baselines/CMakeFiles/urn_baselines.dir/message_passing.cpp.o" "gcc" "src/baselines/CMakeFiles/urn_baselines.dir/message_passing.cpp.o.d"
  "/root/repo/src/baselines/rand_verify.cpp" "src/baselines/CMakeFiles/urn_baselines.dir/rand_verify.cpp.o" "gcc" "src/baselines/CMakeFiles/urn_baselines.dir/rand_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/urn_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/urn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/urn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/urn_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
