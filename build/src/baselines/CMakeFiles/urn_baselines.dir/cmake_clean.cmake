file(REMOVE_RECURSE
  "CMakeFiles/urn_baselines.dir/message_passing.cpp.o"
  "CMakeFiles/urn_baselines.dir/message_passing.cpp.o.d"
  "CMakeFiles/urn_baselines.dir/rand_verify.cpp.o"
  "CMakeFiles/urn_baselines.dir/rand_verify.cpp.o.d"
  "liburn_baselines.a"
  "liburn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
