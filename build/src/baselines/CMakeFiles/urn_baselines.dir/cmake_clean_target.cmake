file(REMOVE_RECURSE
  "liburn_baselines.a"
)
