# Empty compiler generated dependencies file for urn_baselines.
# This may be replaced when dependencies are built.
