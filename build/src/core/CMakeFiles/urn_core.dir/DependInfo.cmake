
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chi.cpp" "src/core/CMakeFiles/urn_core.dir/chi.cpp.o" "gcc" "src/core/CMakeFiles/urn_core.dir/chi.cpp.o.d"
  "/root/repo/src/core/estimation.cpp" "src/core/CMakeFiles/urn_core.dir/estimation.cpp.o" "gcc" "src/core/CMakeFiles/urn_core.dir/estimation.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/urn_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/urn_core.dir/params.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/urn_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/urn_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/urn_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/urn_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/tdma.cpp" "src/core/CMakeFiles/urn_core.dir/tdma.cpp.o" "gcc" "src/core/CMakeFiles/urn_core.dir/tdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/urn_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/urn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/urn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/urn_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
