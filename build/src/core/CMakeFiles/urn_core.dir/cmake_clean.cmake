file(REMOVE_RECURSE
  "CMakeFiles/urn_core.dir/chi.cpp.o"
  "CMakeFiles/urn_core.dir/chi.cpp.o.d"
  "CMakeFiles/urn_core.dir/estimation.cpp.o"
  "CMakeFiles/urn_core.dir/estimation.cpp.o.d"
  "CMakeFiles/urn_core.dir/params.cpp.o"
  "CMakeFiles/urn_core.dir/params.cpp.o.d"
  "CMakeFiles/urn_core.dir/protocol.cpp.o"
  "CMakeFiles/urn_core.dir/protocol.cpp.o.d"
  "CMakeFiles/urn_core.dir/runner.cpp.o"
  "CMakeFiles/urn_core.dir/runner.cpp.o.d"
  "CMakeFiles/urn_core.dir/tdma.cpp.o"
  "CMakeFiles/urn_core.dir/tdma.cpp.o.d"
  "liburn_core.a"
  "liburn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
