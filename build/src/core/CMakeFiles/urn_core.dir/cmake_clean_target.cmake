file(REMOVE_RECURSE
  "liburn_core.a"
)
