# Empty dependencies file for urn_core.
# This may be replaced when dependencies are built.
