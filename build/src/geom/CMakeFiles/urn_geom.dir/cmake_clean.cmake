file(REMOVE_RECURSE
  "CMakeFiles/urn_geom.dir/segment.cpp.o"
  "CMakeFiles/urn_geom.dir/segment.cpp.o.d"
  "CMakeFiles/urn_geom.dir/spatial_grid.cpp.o"
  "CMakeFiles/urn_geom.dir/spatial_grid.cpp.o.d"
  "liburn_geom.a"
  "liburn_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
