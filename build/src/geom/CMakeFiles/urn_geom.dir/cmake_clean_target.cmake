file(REMOVE_RECURSE
  "liburn_geom.a"
)
