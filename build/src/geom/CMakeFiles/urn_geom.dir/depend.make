# Empty dependencies file for urn_geom.
# This may be replaced when dependencies are built.
