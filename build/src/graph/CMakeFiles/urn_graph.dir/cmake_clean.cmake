file(REMOVE_RECURSE
  "CMakeFiles/urn_graph.dir/coloring.cpp.o"
  "CMakeFiles/urn_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/urn_graph.dir/generators.cpp.o"
  "CMakeFiles/urn_graph.dir/generators.cpp.o.d"
  "CMakeFiles/urn_graph.dir/graph.cpp.o"
  "CMakeFiles/urn_graph.dir/graph.cpp.o.d"
  "CMakeFiles/urn_graph.dir/independence.cpp.o"
  "CMakeFiles/urn_graph.dir/independence.cpp.o.d"
  "CMakeFiles/urn_graph.dir/io.cpp.o"
  "CMakeFiles/urn_graph.dir/io.cpp.o.d"
  "CMakeFiles/urn_graph.dir/traversal.cpp.o"
  "CMakeFiles/urn_graph.dir/traversal.cpp.o.d"
  "liburn_graph.a"
  "liburn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
