file(REMOVE_RECURSE
  "liburn_graph.a"
)
