# Empty dependencies file for urn_graph.
# This may be replaced when dependencies are built.
