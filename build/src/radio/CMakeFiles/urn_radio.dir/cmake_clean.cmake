file(REMOVE_RECURSE
  "CMakeFiles/urn_radio.dir/wakeup.cpp.o"
  "CMakeFiles/urn_radio.dir/wakeup.cpp.o.d"
  "liburn_radio.a"
  "liburn_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
