file(REMOVE_RECURSE
  "liburn_radio.a"
)
