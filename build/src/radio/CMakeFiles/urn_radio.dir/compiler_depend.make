# Empty compiler generated dependencies file for urn_radio.
# This may be replaced when dependencies are built.
