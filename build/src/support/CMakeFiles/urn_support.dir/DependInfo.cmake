
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cpp" "src/support/CMakeFiles/urn_support.dir/cli.cpp.o" "gcc" "src/support/CMakeFiles/urn_support.dir/cli.cpp.o.d"
  "/root/repo/src/support/ids.cpp" "src/support/CMakeFiles/urn_support.dir/ids.cpp.o" "gcc" "src/support/CMakeFiles/urn_support.dir/ids.cpp.o.d"
  "/root/repo/src/support/mathutil.cpp" "src/support/CMakeFiles/urn_support.dir/mathutil.cpp.o" "gcc" "src/support/CMakeFiles/urn_support.dir/mathutil.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/urn_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/urn_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/urn_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/urn_support.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
