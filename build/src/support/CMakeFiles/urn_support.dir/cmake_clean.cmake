file(REMOVE_RECURSE
  "CMakeFiles/urn_support.dir/cli.cpp.o"
  "CMakeFiles/urn_support.dir/cli.cpp.o.d"
  "CMakeFiles/urn_support.dir/ids.cpp.o"
  "CMakeFiles/urn_support.dir/ids.cpp.o.d"
  "CMakeFiles/urn_support.dir/mathutil.cpp.o"
  "CMakeFiles/urn_support.dir/mathutil.cpp.o.d"
  "CMakeFiles/urn_support.dir/rng.cpp.o"
  "CMakeFiles/urn_support.dir/rng.cpp.o.d"
  "CMakeFiles/urn_support.dir/stats.cpp.o"
  "CMakeFiles/urn_support.dir/stats.cpp.o.d"
  "liburn_support.a"
  "liburn_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urn_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
