file(REMOVE_RECURSE
  "liburn_support.a"
)
