# Empty dependencies file for urn_support.
# This may be replaced when dependencies are built.
