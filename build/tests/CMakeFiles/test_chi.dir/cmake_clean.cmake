file(REMOVE_RECURSE
  "CMakeFiles/test_chi.dir/test_chi.cpp.o"
  "CMakeFiles/test_chi.dir/test_chi.cpp.o.d"
  "test_chi"
  "test_chi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
