# Empty dependencies file for test_chi.
# This may be replaced when dependencies are built.
