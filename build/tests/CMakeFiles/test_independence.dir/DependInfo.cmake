
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_independence.cpp" "tests/CMakeFiles/test_independence.dir/test_independence.cpp.o" "gcc" "tests/CMakeFiles/test_independence.dir/test_independence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/urn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/urn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/urn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/urn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/urn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/urn_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/urn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
