file(REMOVE_RECURSE
  "CMakeFiles/test_independence.dir/test_independence.cpp.o"
  "CMakeFiles/test_independence.dir/test_independence.cpp.o.d"
  "test_independence"
  "test_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
