# Empty compiler generated dependencies file for test_independence.
# This may be replaced when dependencies are built.
