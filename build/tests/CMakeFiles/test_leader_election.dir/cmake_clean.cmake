file(REMOVE_RECURSE
  "CMakeFiles/test_leader_election.dir/test_leader_election.cpp.o"
  "CMakeFiles/test_leader_election.dir/test_leader_election.cpp.o.d"
  "test_leader_election"
  "test_leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
