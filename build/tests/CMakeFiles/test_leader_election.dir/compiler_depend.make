# Empty compiler generated dependencies file for test_leader_election.
# This may be replaced when dependencies are built.
