file(REMOVE_RECURSE
  "CMakeFiles/test_misaligned.dir/test_misaligned.cpp.o"
  "CMakeFiles/test_misaligned.dir/test_misaligned.cpp.o.d"
  "test_misaligned"
  "test_misaligned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misaligned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
