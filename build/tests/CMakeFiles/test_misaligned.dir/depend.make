# Empty dependencies file for test_misaligned.
# This may be replaced when dependencies are built.
