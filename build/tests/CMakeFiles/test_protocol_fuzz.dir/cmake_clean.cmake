file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_fuzz.dir/test_protocol_fuzz.cpp.o"
  "CMakeFiles/test_protocol_fuzz.dir/test_protocol_fuzz.cpp.o.d"
  "test_protocol_fuzz"
  "test_protocol_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
