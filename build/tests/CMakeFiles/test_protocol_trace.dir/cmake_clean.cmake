file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_trace.dir/test_protocol_trace.cpp.o"
  "CMakeFiles/test_protocol_trace.dir/test_protocol_trace.cpp.o.d"
  "test_protocol_trace"
  "test_protocol_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
