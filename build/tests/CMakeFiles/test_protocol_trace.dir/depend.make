# Empty dependencies file for test_protocol_trace.
# This may be replaced when dependencies are built.
