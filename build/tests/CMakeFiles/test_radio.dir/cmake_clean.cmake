file(REMOVE_RECURSE
  "CMakeFiles/test_radio.dir/test_radio.cpp.o"
  "CMakeFiles/test_radio.dir/test_radio.cpp.o.d"
  "test_radio"
  "test_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
