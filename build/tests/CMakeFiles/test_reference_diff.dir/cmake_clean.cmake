file(REMOVE_RECURSE
  "CMakeFiles/test_reference_diff.dir/test_reference_diff.cpp.o"
  "CMakeFiles/test_reference_diff.dir/test_reference_diff.cpp.o.d"
  "test_reference_diff"
  "test_reference_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
