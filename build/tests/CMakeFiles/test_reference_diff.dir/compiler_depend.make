# Empty compiler generated dependencies file for test_reference_diff.
# This may be replaced when dependencies are built.
