file(REMOVE_RECURSE
  "CMakeFiles/test_runner_integration.dir/test_runner_integration.cpp.o"
  "CMakeFiles/test_runner_integration.dir/test_runner_integration.cpp.o.d"
  "test_runner_integration"
  "test_runner_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runner_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
