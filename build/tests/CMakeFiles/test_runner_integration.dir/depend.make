# Empty dependencies file for test_runner_integration.
# This may be replaced when dependencies are built.
