/// \file obstacle_field.cpp
/// \brief Indoor deployment with walls: the bounded-independence model in
///        action (Sect. 2, Fig. 1).
///
/// Walls cut radio links, so the connectivity graph is no longer a unit
/// disk graph — but it remains a bounded independence graph with slightly
/// larger κ, and the algorithm (which never relied on disk geometry) runs
/// unchanged.  We build a small "office floor" with rooms, measure κ₁/κ₂
/// with and without the walls, run the protocol, and verify the locality
/// property across dense and sparse rooms.

#include <cstdio>

#include "core/runner.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "graph/traversal.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;

  // --- 1. An office floor: outer area 16x10, three interior walls with
  //        door gaps.
  std::vector<geom::Segment> walls = {
      // vertical wall x=5 with a door gap at y in (4, 5).
      {{5.0, 0.0}, {5.0, 4.0}},
      {{5.0, 5.0}, {5.0, 10.0}},
      // vertical wall x=10, door near the bottom.
      {{10.0, 1.5}, {10.0, 10.0}},
      // horizontal half wall in the right room.
      {{10.0, 5.0}, {14.5, 5.0}},
  };

  Rng rng(77);
  std::vector<geom::Vec2> pts;
  // Left room: dense sensor cluster. Middle room: sparse. Right: medium.
  for (int i = 0; i < 120; ++i) {
    pts.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 10.0)});
  }
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(5.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(10.0, 16.0), rng.uniform(0.0, 10.0)});
  }

  const auto open_net = graph::obstacle_big(pts, {}, 1.8);
  const auto net = graph::obstacle_big(pts, walls, 1.8);
  std::printf("office floor: n=%zu; edges %zu without walls -> %zu with "
              "walls\n",
              pts.size(), open_net.graph.num_edges(), net.graph.num_edges());
  std::printf("connected: %s (the protocol needs no connectivity — every "
              "component colors itself)\n",
              graph::is_connected(net.graph) ? "yes" : "no");

  const auto k1_open = graph::kappa1(open_net.graph, {.sample = 48});
  const auto k2_open = graph::kappa2(open_net.graph, {.sample = 48});
  const auto k1 = graph::kappa1(net.graph, {.sample = 48});
  const auto k2 = graph::kappa2(net.graph, {.sample = 48});
  std::printf("independence: kappa1 %u -> %u, kappa2 %u -> %u "
              "(walls cause only a small increase — the BIG premise)\n",
              k1_open.value, k1.value, k2_open.value, k2.value);

  // --- 2. Run the protocol on the walled graph. -------------------------
  const auto delta = net.graph.max_closed_degree();
  const core::Params params = core::Params::practical(
      pts.size(), delta, std::max(2u, k1.value), std::max(2u, k2.value));
  Rng wrng(78);
  const auto ws = radio::WakeSchedule::uniform(
      pts.size(), 2 * params.threshold(), wrng);
  const auto run = core::run_coloring(net.graph, params, ws, 1234);
  std::printf("\nprotocol: correct=%s complete=%s max_color=%d "
              "(Delta=%u, bound (k2+1)Delta=%u)\n",
              run.check.correct ? "yes" : "no",
              run.check.complete ? "yes" : "no", run.max_color, delta,
              (params.kappa2 + 1) * delta);
  if (!run.check.valid()) return 1;

  // --- 3. Locality per room: sparse rooms keep low colors. --------------
  auto room_of = [](geom::Vec2 p) {
    if (p.x < 5.0) return 0;
    if (p.x < 10.0) return 1;
    return 2;
  };
  const char* room_names[] = {"left (dense)", "middle (sparse)",
                              "right (medium)"};
  for (int room = 0; room < 3; ++room) {
    graph::Color high = 0;
    std::uint32_t max_deg = 0;
    std::size_t count = 0;
    for (graph::NodeId v = 0; v < pts.size(); ++v) {
      if (room_of(pts[v]) != room) continue;
      ++count;
      high = std::max(high, run.colors[v]);
      max_deg = std::max(max_deg, net.graph.closed_degree(v));
    }
    std::printf("room %-16s: %3zu nodes, max closed degree %2u, highest "
                "color %3d\n",
                room_names[room], count, max_deg, high);
  }
  std::printf("-> highest colors follow room density, not global Delta "
              "(Theorem 4's locality).\n");
  return 0;
}
