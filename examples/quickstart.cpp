/// \file quickstart.cpp
/// \brief 30-second tour of the library: build a random unit disk graph,
///        run the Moscibroda–Wattenhofer coloring protocol from scratch,
///        validate the result, and print a summary.

#include <cstdio>

#include "analysis/experiment.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "support/rng.hpp"

int main() {
  using namespace urn;

  // 1. Deploy 200 sensor nodes uniformly in a 10×10 field; nodes within
  //    distance 1.5 of each other can communicate (a unit disk graph).
  Rng rng(42);
  const graph::GeometricGraph net = graph::random_udg(200, 10.0, 1.5, rng);
  const auto delta = net.graph.max_closed_degree();
  std::printf("network: n=%zu  m=%zu  Delta=%u  avg_deg=%.1f\n",
              net.graph.num_nodes(), net.graph.num_edges(), delta,
              net.graph.average_degree());

  // 2. Measure the bounded-independence parameters of this deployment
  //    (every UDG satisfies kappa1 <= 5, kappa2 <= 18).
  const auto k1 = graph::kappa1(net.graph);
  const auto k2 = graph::kappa2(net.graph);
  std::printf("independence: kappa1=%u  kappa2=%u\n", k1.value, k2.value);

  // 3. Configure the protocol with the estimates every node is given
  //    (n, Delta, kappa1, kappa2) and the practical constants.
  const core::Params params = core::Params::practical(
      net.graph.num_nodes(), delta, k1.value, k2.value);

  // 4. Nodes wake up asynchronously — here uniformly over 2000 slots —
  //    and run the protocol entirely from scratch.
  radio::WakeSchedule schedule =
      radio::WakeSchedule::uniform(net.graph.num_nodes(), 2000, rng);
  const core::RunResult run =
      core::run_coloring(net.graph, params, schedule, /*seed=*/7);

  // 5. Inspect the outcome.
  std::printf("run: slots=%lld  all_decided=%s  leaders=%zu\n",
              static_cast<long long>(run.medium.slots_run),
              run.all_decided ? "yes" : "no", run.num_leaders);
  std::printf("coloring: correct=%s complete=%s  max_color=%d "
              "(theorem bound kappa2*Delta=%u)\n",
              run.check.correct ? "yes" : "no",
              run.check.complete ? "yes" : "no", run.max_color,
              k2.value * delta);
  std::printf("latency: max T_v=%lld slots  mean=%.0f slots\n",
              static_cast<long long>(run.max_latency()),
              run.mean_latency());

  const core::LocalityReport locality =
      core::check_locality(net.graph, run.colors, k2.value);
  std::printf("locality (Thm 4): phi_v <= (kappa2+1)*theta_v + kappa2 "
              "holds=%s (max phi/theta ratio %.2f, kappa2=%u)\n",
              locality.holds ? "yes" : "no", locality.max_ratio, k2.value);

  return run.check.valid() ? 0 : 1;
}
