/// \file sensor_deployment.cpp
/// \brief The paper's motivating scenario end to end: a staggered aerial
///        sensor deployment colors itself from scratch, then turns the
///        coloring into a TDMA schedule (Sect. 1).
///
/// A vehicle drops sensors while moving across the field, so nodes wake
/// in a spatial wave (nothing is synchronized); on the shared channel
/// there is no MAC, no collision detection, no topology knowledge — the
/// chicken-and-egg setting.  After the protocol finishes we derive the
/// TDMA schedule, verify it is free of direct interference, and report
/// the per-node bandwidth share, which tracks local density (Theorem 4).

#include <algorithm>
#include <cstdio>

#include "core/runner.hpp"
#include "core/tdma.hpp"
#include "geom/spatial_grid.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main() {
  using namespace urn;

  // --- 1. Deployment: 300 sensors along a 30x8 corridor. ----------------
  Rng rng(2026);
  const std::size_t n = 300;
  graph::GeometricGraph net;
  {
    std::vector<geom::Vec2> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(0.0, 30.0), rng.uniform(0.0, 8.0)});
    }
    graph::GraphBuilder b(n);
    const geom::SpatialGrid grid(pts, 1.6);
    for (std::uint32_t i = 0; i < n; ++i) {
      grid.for_each_within(i, 1.6, [&](std::uint32_t j) {
        if (j > i) b.add_edge(i, j);
      });
    }
    net.graph = b.build();
    net.positions = std::move(pts);
  }
  const auto delta = net.graph.max_closed_degree();
  const auto k1 = std::max(2u, graph::kappa1(net.graph, {.sample = 64}).value);
  const auto k2 = std::max(k1, graph::kappa2(net.graph, {.sample = 64}).value);
  std::printf("corridor deployment: n=%zu m=%zu Delta=%u kappa1=%u "
              "kappa2=%u\n",
              n, net.graph.num_edges(), delta, k1, k2);

  // --- 2. Wavefront wake-up: the drop vehicle moves at a finite speed. --
  const core::Params params = core::Params::practical(n, delta, k1, k2);
  Rng wrng(7);
  const auto schedule = radio::WakeSchedule::wavefront(
      net.positions, /*slots_per_unit=*/static_cast<double>(
          params.passive_slots()),
      /*jitter=*/500, wrng);
  std::printf("wake-up wave: first node at slot 0, last at slot %lld\n",
              static_cast<long long>(schedule.latest()));

  // --- 3. Color from scratch. -------------------------------------------
  const core::RunResult run =
      core::run_coloring(net.graph, params, schedule, 99);
  std::printf("coloring: correct=%s complete=%s colors<=%d leaders=%zu\n",
              run.check.correct ? "yes" : "no",
              run.check.complete ? "yes" : "no", run.max_color + 1,
              run.num_leaders);
  Samples latency;
  for (radio::Slot t : run.latency) latency.add(static_cast<double>(t));
  std::printf("per-node latency from own wake-up: mean=%.0f p95=%.0f "
              "max=%.0f slots\n",
              latency.mean(), latency.percentile(95.0), latency.max());
  if (!run.check.valid()) return 1;

  // --- 4. Derive and audit the TDMA schedule. ---------------------------
  const core::TdmaSchedule tdma = core::derive_tdma(net.graph, run.colors);
  const core::TdmaReport report = core::analyze_tdma(net.graph, tdma);
  std::printf("\nTDMA: global frame=%u slots\n", tdma.frame);
  std::printf("  direct interference free: %s (paper: coloring => no two "
              "neighbors share a slot)\n",
              report.direct_interference_free ? "yes" : "no");
  std::printf("  max same-slot transmitters seen by a listener: %u "
              "(bounded by kappa1=%u)\n",
              report.max_neighbor_transmitters, k1);
  std::printf("  max same-slot transmitters within two hops: %u "
              "(bounded by kappa2=%u)\n",
              report.max_two_hop_transmitters, k2);

  // --- 5. Bandwidth share tracks local density (Theorem 4). -------------
  Samples share_sparse, share_dense;
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto deg = net.graph.closed_degree(v);
    (deg <= delta / 3 ? share_sparse : share_dense)
        .add(tdma.bandwidth_share(v));
  }
  if (share_sparse.count() > 0 && share_dense.count() > 0) {
    std::printf("\nbandwidth share under local frames (1/local_frame):\n");
    std::printf("  sparse nodes (deg <= Delta/3): mean %.4f\n",
                share_sparse.mean());
    std::printf("  dense nodes: mean %.4f\n", share_dense.mean());
    std::printf("  -> sparse regions transmit %.1fx more often (locality, "
                "Thm 4)\n",
                share_sparse.mean() / share_dense.mean());
  }
  return 0;
}
