/// \file urn_sim.cpp
/// \brief Scenario runner: the whole library behind one command line.
///
/// Examples:
///   urn_sim                                     # defaults: 200-node UDG
///   urn_sim --n 400 --side 11 --radius 1.5 --wake uniform --trials 5
///   urn_sim --topology clustered --wake wavefront --seed 3
///   urn_sim --topology obstacles --walls 40 --tdma
///   urn_sim --analytical --n 48 --side 4.5      # the paper's constants

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/runner.hpp"
#include "core/tdma.hpp"
#include "exec/chunk.hpp"
#include "exec/parallel.hpp"
#include "obs/postmortem.hpp"
#include "obs/telemetry.hpp"
#include "geom/spatial_grid.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

urn::graph::GeometricGraph build_topology(const urn::CliFlags& flags,
                                          urn::Rng& rng) {
  using namespace urn;
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const double side = flags.get_double("side");
  const double radius = flags.get_double("radius");
  const std::string topology = flags.get_string("topology");
  if (topology == "udg") return graph::random_udg(n, side, radius, rng);
  if (topology == "grid") {
    const auto edge = static_cast<std::size_t>(std::sqrt(double(n)));
    return graph::grid_udg(edge, edge, side / double(edge), radius,
                           0.15 * side / double(edge), rng);
  }
  if (topology == "clustered") {
    return graph::clustered_udg(std::max<std::size_t>(1, n / 30), 30, side,
                                radius / 2.0, radius, rng);
  }
  if (topology == "obstacles") {
    const auto walls = static_cast<std::size_t>(flags.get_int("walls"));
    auto segs = graph::random_walls(walls, side, radius, 3 * radius, rng);
    auto big = graph::random_obstacle_big(n, side, radius, std::move(segs),
                                          rng);
    return {std::move(big.graph), std::move(big.positions)};
  }
  URN_CHECK_MSG(false, "unknown --topology " << topology);
  return {};
}

urn::radio::WakeSchedule build_wake(const urn::CliFlags& flags,
                                    const urn::graph::GeometricGraph& net,
                                    const urn::core::Params& params,
                                    urn::Rng& rng) {
  using namespace urn;
  const std::string wake = flags.get_string("wake");
  const std::size_t n = net.graph.num_nodes();
  if (wake == "sync") return radio::WakeSchedule::synchronous(n);
  if (wake == "uniform") {
    return radio::WakeSchedule::uniform(n, 2 * params.threshold(), rng);
  }
  if (wake == "sequential") {
    return radio::WakeSchedule::sequential(n, params.passive_slots(), rng);
  }
  if (wake == "poisson") return radio::WakeSchedule::poisson(n, 50.0, rng);
  if (wake == "wavefront") {
    return radio::WakeSchedule::wavefront(
        net.positions, static_cast<double>(params.threshold()) / 4.0, 200,
        rng);
  }
  URN_CHECK_MSG(false, "unknown --wake " << wake);
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace urn;

  CliFlags flags;
  flags.add_int("n", 200, "number of nodes");
  flags.add_double("side", 10.0, "field side length");
  flags.add_double("radius", 1.5, "transmission radius");
  flags.add_string("topology", "udg",
                   "udg | grid | clustered | obstacles");
  flags.add_int("walls", 30, "wall count for --topology obstacles");
  flags.add_string("wake", "uniform",
                   "sync | uniform | sequential | poisson | wavefront");
  flags.add_int("trials", 1, "independent trials to run");
  flags.add_int("jobs", 1,
                "worker threads for the trial loop (0 = all hardware "
                "threads); results are bit-identical for every value");
  flags.add_int("seed", 1, "master seed");
  flags.add_bool("analytical", false,
                 "use the paper's analytical constants (slow!)");
  flags.add_double("scale", 1.0, "scale factor on the protocol constants");
  flags.add_bool("tdma", false, "derive and audit a TDMA schedule");
  flags.add_bool("verbose", false, "per-trial details");
  flags.add_string("trace", "",
                   "record trial 0 as a JSONL event log (see urn_trace)");
  flags.add_string("trace-bin", "",
                   "record trial 0 as a compact binary event log "
                   "(urn_trace auto-detects the format)");
  flags.add_int("trace-bin-ring", 0,
                "bound the binary log to the most recent N events "
                "(0 = keep every event)");
  flags.add_string("metrics-out", "",
                   "write trial 0's per-window metrics series as CSV");
  flags.add_int("metrics-window", 16, "metrics window width in slots");
  flags.add_bool("monitor", false,
                 "check the paper's invariants online on every trial; any "
                 "violation fails the run with exit 2");
  flags.add_string("telemetry-out", "",
                   "stream live telemetry snapshots to this JSONL file "
                   "(watch with urn_top --in FILE)");
  flags.add_string("telemetry-prom", "",
                   "rewrite this file as Prometheus text exposition on "
                   "every telemetry snapshot");
  flags.add_int("telemetry-interval", 1000,
                "telemetry snapshot period in milliseconds");
  flags.add_string("postmortem-dir", "",
                   "write per-trial postmortem bundles (checkpoint + "
                   "flight-recorder ring + manifest) under this directory; "
                   "inspect/resume with urn_postmortem");
  flags.add_int("checkpoint-every", 0,
                "checkpoint period in slots for the postmortem bundles "
                "(0 = one snapshot at the start of each trial)");
  flags.add_bool("dump-on-violation", false,
                 "capture a full postmortem bundle (checkpoint + ring + "
                 "monitor report) for a trial whose invariant monitor "
                 "fires; implies --monitor");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.usage("urn_sim").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("urn_sim").c_str());
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  Rng rng(seed);
  const graph::GeometricGraph net = build_topology(flags, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  graph::KappaOptions kopts;
  if (net.graph.num_nodes() > 250) kopts.sample = 64;
  const auto k1 = std::max(2u, graph::kappa1(net.graph, kopts).value);
  const auto k2 = std::max(k1, graph::kappa2(net.graph, kopts).value);
  std::printf("topology %s: n=%zu m=%zu Delta=%u kappa1=%u kappa2=%u\n",
              flags.get_string("topology").c_str(), net.graph.num_nodes(),
              net.graph.num_edges(), delta, k1, k2);

  core::Params params =
      flags.get_bool("analytical")
          ? core::Params::analytical(net.graph.num_nodes(), delta, k1, k2)
          : core::Params::practical(net.graph.num_nodes(), delta, k1, k2);
  params = params.scaled(flags.get_double("scale"));
  std::printf("constants: alpha=%.1f beta=%.1f gamma=%.1f sigma=%.1f "
              "(threshold %lld slots)\n",
              params.alpha, params.beta, params.gamma, params.sigma,
              static_cast<long long>(params.threshold()));

  core::TraceOptions trace;
  trace.events_jsonl = flags.get_string("trace");
  trace.events_bin = flags.get_string("trace-bin");
  trace.bin_ring = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("trace-bin-ring")));
  trace.metrics = !flags.get_string("metrics-out").empty();
  trace.metrics_window =
      std::max<std::int64_t>(1, flags.get_int("metrics-window"));
  // Postmortem bundles: each trial writes its own subdirectory
  // (<dir>/trialNNNN) so the parallel trial loop never shares files.
  core::PostmortemOptions postmortem;
  postmortem.dir = flags.get_string("postmortem-dir");
  postmortem.checkpoint_every =
      std::max<std::int64_t>(0, flags.get_int("checkpoint-every"));
  postmortem.dump_on_violation = flags.get_bool("dump-on-violation");
  if (postmortem.dir.empty() &&
      (postmortem.checkpoint_every > 0 || postmortem.dump_on_violation)) {
    postmortem.dir = "postmortem";
  }
  const bool monitor =
      flags.get_bool("monitor") || postmortem.dump_on_violation;
  const bool tracing =
      trace.metrics || !trace.events_jsonl.empty() || !trace.events_bin.empty();
  // Reject unwritable destinations up front rather than aborting mid-run.
  for (const std::string& path :
       {trace.events_jsonl, trace.events_bin,
        flags.get_string("metrics-out"), flags.get_string("telemetry-out"),
        flags.get_string("telemetry-prom")}) {
    if (path.empty()) continue;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 2;
    }
    std::fclose(f);
  }
  if (postmortem.enabled() &&
      !obs::postmortem::ensure_dir(postmortem.dir)) {
    std::fprintf(stderr, "error: cannot write %s\n", postmortem.dir.c_str());
    return 2;
  }

  const auto trials = static_cast<std::size_t>(flags.get_int("trials"));
  const auto jobs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("jobs")));
  const bool verbose = flags.get_bool("verbose");

  // Live telemetry: every trial runs with an engine probe feeding the
  // global registry (zero-event NullSink path — see core::TraceOptions),
  // the pool reports per-worker utilization, and a background snapshotter
  // streams the registry to JSONL / Prometheus.  Probes read counts only,
  // so results stay bit-identical to an uninstrumented run.
  obs::telemetry::Registry* telemetry = nullptr;
  std::optional<obs::telemetry::PoolProbe> pool_probe;
  std::optional<obs::telemetry::Snapshotter> snapshotter;
  const std::string telemetry_out = flags.get_string("telemetry-out");
  const std::string telemetry_prom = flags.get_string("telemetry-prom");
  if (!telemetry_out.empty() || !telemetry_prom.empty()) {
    telemetry = &obs::telemetry::Registry::global();
    telemetry->clear();
    pool_probe.emplace(*telemetry, exec::resolve_jobs(jobs));
    obs::telemetry::SnapshotterOptions sopts;
    sopts.jsonl_path = telemetry_out;
    sopts.prom_path = telemetry_prom;
    sopts.interval_ms = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, flags.get_int("telemetry-interval")));
    snapshotter.emplace(*telemetry, sopts);
  }

  // The trial loop fans out over the deterministic executor: each trial
  // is a pure function of mix_seed(seed, t), workers own their sinks and
  // RNG streams outright, and per-chunk partials merge in trial order —
  // so every statistic is bit-identical for any --jobs.  Output is
  // collected into the partials and printed in trial order afterwards.
  struct SimPartial {
    std::size_t valid = 0;
    std::uint64_t monitored_events = 0;
    Samples mean_lat, max_lat, colors;
    std::vector<std::string> verbose_lines;
    std::optional<core::RunResult> trial0;  // carries trace artifacts
    std::optional<core::RunResult> last;    // feeds the --tdma audit
    struct Violation {
      std::size_t trial;
      obs::MonitorReport report;
      std::string bundle;  // postmortem bundle dir ("" when not captured)
    };
    std::optional<Violation> violation;
  };
  const SimPartial sim = exec::parallel_for_trials<SimPartial>(
      trials, {jobs, 0, nullptr, pool_probe ? &*pool_probe : nullptr},
      [&](SimPartial& acc, std::size_t t) {
        Rng wrng(mix_seed(seed, 1000 + t));
        const auto schedule = build_wake(flags, net, params, wrng);
        // Trial 0 carries the trace/metrics sinks; --monitor and
        // --telemetry-* apply to every trial.  Sinks and probes never
        // touch the RNG streams, so traced and monitored runs are
        // bit-identical to what run_coloring would have produced.
        core::TraceOptions topts =
            (tracing && t == 0) ? trace : core::TraceOptions{};
        topts.monitor = monitor;
        topts.telemetry = telemetry;
        if (postmortem.enabled()) {
          topts.postmortem = postmortem;
          topts.postmortem.dir =
              postmortem.dir + "/" + exec::trial_tag(t);
          topts.postmortem.trial = t;
        }
        const bool use_traced = monitor || telemetry != nullptr ||
                                postmortem.enabled() || (tracing && t == 0);
        const auto run =
            use_traced
                ? core::run_coloring_traced(net.graph, params, schedule,
                                            mix_seed(seed, t), topts)
                : core::run_coloring(net.graph, params, schedule,
                                     mix_seed(seed, t));
        if (run.monitor.has_value()) {
          acc.monitored_events += run.monitor->events_seen;
          if (!run.monitor->ok() && !acc.violation.has_value()) {
            acc.violation = SimPartial::Violation{t, *run.monitor,
                                                  run.bundle};
          }
        }
        if (run.check.valid()) ++acc.valid;
        acc.mean_lat.add(run.mean_latency());
        acc.max_lat.add(static_cast<double>(run.max_latency()));
        acc.colors.add(static_cast<double>(run.max_color));
        if (verbose) {
          char line[160];
          std::snprintf(line, sizeof(line),
                        "  trial %zu: valid=%d slots=%lld leaders=%zu "
                        "max_color=%d meanT=%.0f",
                        t, run.check.valid() ? 1 : 0,
                        static_cast<long long>(run.medium.slots_run),
                        run.num_leaders, run.max_color, run.mean_latency());
          acc.verbose_lines.emplace_back(line);
        }
        if (t == 0) acc.trial0 = run;
        acc.last = run;
      },
      [](SimPartial& into, SimPartial&& chunk) {
        into.valid += chunk.valid;
        into.monitored_events += chunk.monitored_events;
        into.mean_lat.merge(chunk.mean_lat);
        into.max_lat.merge(chunk.max_lat);
        into.colors.merge(chunk.colors);
        for (std::string& line : chunk.verbose_lines) {
          into.verbose_lines.push_back(std::move(line));
        }
        if (chunk.trial0.has_value()) into.trial0 = std::move(chunk.trial0);
        if (chunk.last.has_value()) into.last = std::move(chunk.last);
        if (chunk.violation.has_value() &&
            (!into.violation.has_value() ||
             chunk.violation->trial < into.violation->trial)) {
          into.violation = std::move(chunk.violation);
        }
      });

  if (snapshotter.has_value()) {
    snapshotter->stop();  // flush a final snapshot before reporting
    if (!telemetry_out.empty()) {
      std::printf("(telemetry: %llu snapshots -> %s; watch live with "
                  "urn_top --in %s)\n",
                  static_cast<unsigned long long>(
                      snapshotter->snapshots_taken()),
                  telemetry_out.c_str(), telemetry_out.c_str());
    }
    if (!telemetry_prom.empty()) {
      std::printf("(telemetry: prometheus exposition -> %s)\n",
                  telemetry_prom.c_str());
    }
  }
  if (sim.violation.has_value()) {
    std::fprintf(stderr, "trial %zu: INVARIANT VIOLATIONS\n",
                 sim.violation->trial);
    obs::print_first_violation(sim.violation->report, stderr);
    obs::print_monitor_report(sim.violation->report, stderr);
    if (!sim.violation->bundle.empty()) {
      std::fprintf(stderr,
                   "postmortem bundle: %s (inspect with urn_postmortem)\n",
                   sim.violation->bundle.c_str());
    }
    return 2;
  }
  if (tracing && sim.trial0.has_value()) {
    const core::RunResult& run = *sim.trial0;
    for (const std::string& out : {trace.events_jsonl, trace.events_bin}) {
      if (out.empty()) continue;
      std::printf("(trace: %llu events -> %s)\n",
                  static_cast<unsigned long long>(run.events_recorded),
                  out.c_str());
    }
    if (run.series.has_value()) {
      const std::string out = flags.get_string("metrics-out");
      if (run.series->write_csv_file(out)) {
        std::printf("(metrics: %zu windows -> %s)\n", run.series->size(),
                    out.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
      }
    }
  }
  for (const std::string& line : sim.verbose_lines) {
    std::printf("%s\n", line.c_str());
  }
  const std::size_t valid = sim.valid;
  const Samples& mean_lat = sim.mean_lat;
  const Samples& max_lat = sim.max_lat;
  const Samples& colors = sim.colors;
  std::printf("result: valid %zu/%zu | mean T %.0f | max T %.0f | "
              "max color %.0f (bound (k2+1)*Delta=%u)\n",
              valid, trials, mean_lat.mean(), max_lat.max(), colors.max(),
              (k2 + 1) * delta);
  if (monitor) {
    std::printf("monitor: %llu events across %zu trials, 0 violations\n",
                static_cast<unsigned long long>(sim.monitored_events),
                trials);
  }

  if (flags.get_bool("tdma") && sim.last.has_value() &&
      sim.last->check.valid()) {
    const core::RunResult& last = *sim.last;
    const auto tdma = core::derive_tdma(net.graph, last.colors);
    const auto rep = core::analyze_tdma(net.graph, tdma);
    std::printf("tdma: frame=%u direct-free=%s max-nbr-tx=%u "
                "max-2hop-tx=%u clean-rx=%.2f\n",
                tdma.frame, rep.direct_interference_free ? "yes" : "no",
                rep.max_neighbor_transmitters, rep.max_two_hop_transmitters,
                rep.clean_reception_fraction);
  }
  return valid == trials ? 0 : 1;
}
