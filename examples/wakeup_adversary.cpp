/// \file wakeup_adversary.cpp
/// \brief Stress-testing asynchronous wake-up (Sect. 2): the model demands
///        correctness under *every* wake-up pattern, and the per-node time
///        bound counts from each node's own wake-up.
///
/// We run one deployment under three hostile patterns — staged bursts
/// (whole groups appear at once into a half-initialized network), a slow
/// spatial wavefront, and strict one-by-one sequential wake-up — and show
/// that (a) the coloring stays correct, (b) per-node latency distributions
/// stay in the same band, i.e. late wakers are not starved by the
/// established structure around them.

#include <cstdio>

#include "analysis/histogram.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main() {
  using namespace urn;

  Rng rng(31337);
  const std::size_t n = 200;
  const auto net = graph::random_udg(n, 9.0, 1.5, rng);
  const auto delta = net.graph.max_closed_degree();
  const auto k1 = std::max(2u, graph::kappa1(net.graph, {.sample = 48}).value);
  const auto k2 = std::max(k1, graph::kappa2(net.graph, {.sample = 48}).value);
  const core::Params params = core::Params::practical(n, delta, k1, k2);
  std::printf("deployment: n=%zu Delta=%u kappa2=%u, threshold=%lld "
              "slots\n\n",
              n, delta, k2, static_cast<long long>(params.threshold()));

  struct Scenario {
    const char* name;
    radio::WakeSchedule schedule;
  };
  Rng wrng(4);
  Scenario scenarios[] = {
      {"synchronous (baseline)", radio::WakeSchedule::synchronous(n)},
      {"staged bursts (4 groups, 2 thresholds apart)",
       radio::WakeSchedule::staged(n, 4, 2 * params.threshold(), wrng)},
      {"slow wavefront across the field",
       radio::WakeSchedule::wavefront(
           net.positions, static_cast<double>(params.threshold()), 300,
           wrng)},
      {"strictly sequential (one node per passive phase)",
       radio::WakeSchedule::sequential(n, params.passive_slots(), wrng)},
  };

  for (const Scenario& sc : scenarios) {
    const auto run = core::run_coloring(net.graph, params, sc.schedule, 55);
    Samples lat;
    for (radio::Slot t : run.latency) lat.add(static_cast<double>(t));
    std::printf("%-48s\n", sc.name);
    std::printf("  wake span %8lld slots | valid=%s | latency mean=%6.0f "
                "p95=%6.0f max=%6.0f\n",
                static_cast<long long>(sc.schedule.latest()),
                run.check.valid() ? "yes" : "NO ", lat.mean(),
                lat.percentile(95.0), lat.max());

    // Starvation check: compare the latency of the last quarter of wakers
    // against the first quarter — late arrivals must not pay extra.
    Samples early, late;
    std::vector<std::pair<radio::Slot, radio::Slot>> by_wake;
    for (graph::NodeId v = 0; v < n; ++v) {
      by_wake.emplace_back(run.wake_slot[v],
                           run.decision_slot[v] - run.wake_slot[v]);
    }
    std::sort(by_wake.begin(), by_wake.end());
    for (std::size_t i = 0; i < by_wake.size(); ++i) {
      if (i < n / 4) early.add(static_cast<double>(by_wake[i].second));
      if (i >= 3 * n / 4) late.add(static_cast<double>(by_wake[i].second));
    }
    std::printf("  first-quarter wakers mean T=%6.0f | last-quarter "
                "mean T=%6.0f (ratio %.2f)\n",
                early.mean(), late.mean(), late.mean() / early.mean());
    std::printf("%s\n",
                analysis::Histogram::render(lat, 6, 40).c_str());
    if (!run.check.valid()) return 1;
  }
  std::printf("No starvation: late wakers decide about as fast as early "
              "ones under every pattern — the per-node O(Delta log n) "
              "guarantee of Theorem 3.\n");
  return 0;
}
