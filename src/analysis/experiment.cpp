#include "analysis/experiment.hpp"

#include <optional>
#include <utility>

#include "exec/chunk.hpp"
#include "exec/parallel.hpp"
#include "obs/telemetry.hpp"
#include "support/rng.hpp"

namespace urn::analysis {

ScheduleFactory synchronous_schedule(std::size_t n) {
  return [n](std::uint64_t) { return radio::WakeSchedule::synchronous(n); };
}

ScheduleFactory uniform_schedule(std::size_t n, radio::Slot window) {
  return [n, window](std::uint64_t trial_seed) {
    Rng rng(mix_seed(trial_seed, 0x5c4edu));
    return radio::WakeSchedule::uniform(n, window, rng);
  };
}

namespace {

/// The earliest violation inside one trial's monitor report: lowest
/// slot; ties broken by invariant declaration order (deterministic).
[[nodiscard]] std::optional<CoreAggregate::FirstViolation>
earliest_violation(const obs::MonitorReport& report, std::size_t trial) {
  std::optional<CoreAggregate::FirstViolation> best;
  for (std::size_t i = 0; i < obs::kNumInvariants; ++i) {
    const auto& inv = report.invariants[i];
    if (inv.count == 0) continue;
    if (!best || inv.first_slot < best->slot) {
      best = CoreAggregate::FirstViolation{
          trial, static_cast<obs::Invariant>(i), inv.first_slot,
          inv.first_node, inv.first_what};
    }
  }
  return best;
}

}  // namespace

void record_run(CoreAggregate& agg, const core::RunResult& run,
                std::size_t trial) {
  ++agg.trials;
  if (run.check.valid()) ++agg.valid;
  if (run.all_decided) ++agg.completed;
  if (!run.latency.empty()) {
    Samples lat;
    for (radio::Slot t : run.latency) lat.add(static_cast<double>(t));
    agg.max_latency.add(lat.max());
    agg.mean_latency.add(lat.mean());
    agg.p95_latency.add(lat.percentile(95.0));
  }
  agg.max_color.add(static_cast<double>(run.max_color));
  agg.distinct_colors.add(
      static_cast<double>(graph::distinct_colors(run.colors)));
  agg.leaders.add(static_cast<double>(run.num_leaders));
  const auto n = static_cast<double>(run.colors.size());
  agg.resets_per_node.add(n > 0 ? static_cast<double>(run.total_resets) / n
                                : 0.0);
  agg.slots_run.add(static_cast<double>(run.medium.slots_run));

  if (run.monitor.has_value()) {
    agg.monitor_events += run.monitor->events_seen;
    agg.monitor_violations += run.monitor->total_violations();
    auto fv = earliest_violation(*run.monitor, trial);
    if (fv.has_value() && (!agg.first_violation.has_value() ||
                           fv->trial < agg.first_violation->trial)) {
      agg.first_violation = std::move(fv);
    }
  }
  if (!run.bundle.empty()) agg.bundles.push_back(run.bundle);
}

void record_run(CoreAggregate& agg, const core::RunResult& run) {
  record_run(agg, run, agg.trials);
}

void CoreAggregate::merge(const CoreAggregate& other) {
  trials += other.trials;
  valid += other.valid;
  completed += other.completed;
  max_latency.merge(other.max_latency);
  mean_latency.merge(other.mean_latency);
  p95_latency.merge(other.p95_latency);
  max_color.merge(other.max_color);
  distinct_colors.merge(other.distinct_colors);
  leaders.merge(other.leaders);
  resets_per_node.merge(other.resets_per_node);
  slots_run.merge(other.slots_run);
  monitor_events += other.monitor_events;
  monitor_violations += other.monitor_violations;
  if (other.first_violation.has_value() &&
      (!first_violation.has_value() ||
       other.first_violation->trial < first_violation->trial)) {
    first_violation = other.first_violation;
  }
  bundles.insert(bundles.end(), other.bundles.begin(), other.bundles.end());
}

CoreAggregate run_core_trials(const graph::Graph& g,
                              const core::Params& params,
                              const ScheduleFactory& schedules,
                              std::size_t trials, std::uint64_t seed0,
                              const TrialExecOptions& exec) {
  core::TraceOptions topts;
  topts.monitor = exec.monitor;
  topts.telemetry = exec.telemetry;
  const bool traced = exec.monitor || exec.telemetry != nullptr ||
                      exec.postmortem.enabled();
  // One pool probe for the whole trial loop; per-run engine probes are
  // constructed inside run_coloring_traced (worker-local, like the
  // monitor sink — sharded counters make the shared registry safe).
  std::optional<obs::telemetry::PoolProbe> pool_probe;
  if (exec.telemetry != nullptr) {
    pool_probe.emplace(*exec.telemetry, exec::resolve_jobs(exec.jobs));
  }
  return exec::parallel_for_trials<CoreAggregate>(
      trials,
      exec::ExecOptions{exec.jobs, exec.chunk, exec.spans,
                        pool_probe ? &*pool_probe : nullptr},
      [&](CoreAggregate& agg, std::size_t t) {
        const std::uint64_t trial_seed = mix_seed(seed0, t);
        const radio::WakeSchedule schedule = schedules(trial_seed);
        // Monitored trials run on the sink-templated engine path; the
        // monitor sink is constructed per trial, so all monitor state is
        // worker-local.  Either way the RunResult is bit-identical.
        // Postmortem trials redirect their bundle into a per-trial
        // subdirectory so concurrent workers never share files.
        core::TraceOptions trial_topts = topts;
        if (exec.postmortem.enabled()) {
          trial_topts.postmortem = exec.postmortem;
          trial_topts.postmortem.dir =
              exec.postmortem.dir + "/" + exec::trial_tag(t);
          trial_topts.postmortem.trial = t;
        }
        const core::RunResult run =
            traced ? core::run_coloring_traced(g, params, schedule,
                                               trial_seed, trial_topts,
                                               exec.max_slots)
                   : core::run_coloring(g, params, schedule, trial_seed,
                                        exec.max_slots);
        record_run(agg, run, t);
      },
      [](CoreAggregate& into, CoreAggregate&& part) { into.merge(part); });
}

CoreAggregate run_core_trials(const graph::Graph& g,
                              const core::Params& params,
                              const ScheduleFactory& schedules,
                              std::size_t trials, std::uint64_t seed0,
                              radio::Slot max_slots) {
  TrialExecOptions exec;
  exec.max_slots = max_slots;
  return run_core_trials(g, params, schedules, trials, seed0, exec);
}

void record_explain(ExplainAggregate& agg,
                    const obs::ExplainReport& report) {
  ++agg.trials;
  agg.nodes += report.nodes.size();
  agg.decided_nodes += report.decided_nodes;
  agg.exact_nodes += report.exact_nodes;
  agg.fig2_violations += report.fig2_violations;
  for (std::size_t c = 0; c < obs::kNumCauses; ++c) {
    agg.totals[c] += report.totals[c];
    for (std::size_t b = 0; b < obs::kNumPhaseBuckets; ++b) {
      agg.phase_totals[b][c] += report.phase_totals[b][c];
    }
  }
  std::int64_t latency_sum = 0;
  std::size_t decided = 0;
  for (const obs::NodeAttribution& n : report.nodes) {
    if (!n.decided) continue;
    latency_sum += n.latency();
    ++decided;
  }
  agg.mean_latency.add(decided ? static_cast<double>(latency_sum) /
                                     static_cast<double>(decided)
                               : 0.0);
  agg.top_share.add(report.share(report.top_cause()));
}

void ExplainAggregate::merge(const ExplainAggregate& other) {
  trials += other.trials;
  nodes += other.nodes;
  decided_nodes += other.decided_nodes;
  exact_nodes += other.exact_nodes;
  fig2_violations += other.fig2_violations;
  for (std::size_t c = 0; c < obs::kNumCauses; ++c) {
    totals[c] += other.totals[c];
    for (std::size_t b = 0; b < obs::kNumPhaseBuckets; ++b) {
      phase_totals[b][c] += other.phase_totals[b][c];
    }
  }
  mean_latency.merge(other.mean_latency);
  top_share.merge(other.top_share);
}

ExplainAggregate run_explained_trials(const graph::Graph& g,
                                      const core::Params& params,
                                      const ScheduleFactory& schedules,
                                      std::size_t trials, std::uint64_t seed0,
                                      const TrialExecOptions& exec,
                                      radio::MediumOptions medium) {
  obs::ExplainConfig config;
  config.kappa2 = params.kappa2;
  config.passive_slots = params.passive_slots();
  return exec::parallel_for_trials<ExplainAggregate>(
      trials, exec::ExecOptions{exec.jobs, exec.chunk, exec.spans, nullptr},
      [&](ExplainAggregate& agg, std::size_t t) {
        const std::uint64_t trial_seed = mix_seed(seed0, t);
        const radio::WakeSchedule schedule = schedules(trial_seed);
        // Capture in memory (worker-local sink) and attribute in-process:
        // no file round-trip, and sinks never touch RNG streams, so the
        // run itself is bit-identical to an untraced one.
        obs::MemorySink events;
        core::TraceOptions topts;
        topts.monitor = exec.monitor;
        topts.memory = &events;
        const core::RunResult run = core::run_coloring_traced(
            g, params, schedule, trial_seed, topts, exec.max_slots, medium);
        (void)run;
        record_explain(agg, obs::explain_trace(events.events(), config));
      },
      [](ExplainAggregate& into, ExplainAggregate&& part) {
        into.merge(part);
      });
}

void record_leader_run(LeaderAggregate& agg,
                       const core::LeaderElectionResult& run) {
  ++agg.trials;
  if (run.all_covered) ++agg.covered;
  agg.leaders.add(static_cast<double>(run.leaders.size()));
  Samples cover;
  for (radio::Slot s : run.cover_latency) {
    if (s >= 0) cover.add(static_cast<double>(s));
  }
  agg.mean_cover_latency.add(cover.count() ? cover.mean() : 0.0);
  agg.max_cover_latency.add(cover.count() ? cover.max() : 0.0);
  agg.slots_run.add(static_cast<double>(run.medium.slots_run));
  agg.collisions.add(static_cast<double>(run.medium.collisions));
}

void LeaderAggregate::merge(const LeaderAggregate& other) {
  trials += other.trials;
  covered += other.covered;
  leaders.merge(other.leaders);
  mean_cover_latency.merge(other.mean_cover_latency);
  max_cover_latency.merge(other.max_cover_latency);
  slots_run.merge(other.slots_run);
  collisions.merge(other.collisions);
}

LeaderAggregate run_leader_trials(const graph::Graph& g,
                                  const core::Params& params,
                                  const ScheduleFactory& schedules,
                                  std::size_t trials, std::uint64_t seed0,
                                  const TrialExecOptions& exec) {
  core::TraceOptions topts;
  topts.monitor = exec.monitor;
  topts.telemetry = exec.telemetry;
  const bool traced = exec.monitor || exec.telemetry != nullptr;
  std::optional<obs::telemetry::PoolProbe> pool_probe;
  if (exec.telemetry != nullptr) {
    pool_probe.emplace(*exec.telemetry, exec::resolve_jobs(exec.jobs));
  }
  return exec::parallel_for_trials<LeaderAggregate>(
      trials,
      exec::ExecOptions{exec.jobs, exec.chunk, exec.spans,
                        pool_probe ? &*pool_probe : nullptr},
      [&](LeaderAggregate& agg, std::size_t t) {
        const std::uint64_t trial_seed = mix_seed(seed0, t);
        const radio::WakeSchedule schedule = schedules(trial_seed);
        record_leader_run(
            agg, traced ? core::run_leader_election_traced(
                              g, params, schedule, trial_seed, topts,
                              exec.max_slots)
                        : core::run_leader_election(g, params, schedule,
                                                    trial_seed,
                                                    exec.max_slots));
      },
      [](LeaderAggregate& into, LeaderAggregate&& part) {
        into.merge(part);
      });
}

}  // namespace urn::analysis
