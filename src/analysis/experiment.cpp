#include "analysis/experiment.hpp"

#include "support/rng.hpp"

namespace urn::analysis {

ScheduleFactory synchronous_schedule(std::size_t n) {
  return [n](std::uint64_t) { return radio::WakeSchedule::synchronous(n); };
}

ScheduleFactory uniform_schedule(std::size_t n, radio::Slot window) {
  return [n, window](std::uint64_t trial_seed) {
    Rng rng(mix_seed(trial_seed, 0x5c4edu));
    return radio::WakeSchedule::uniform(n, window, rng);
  };
}

void record_run(CoreAggregate& agg, const core::RunResult& run) {
  ++agg.trials;
  if (run.check.valid()) ++agg.valid;
  if (run.all_decided) ++agg.completed;
  if (!run.latency.empty()) {
    Samples lat;
    for (radio::Slot t : run.latency) lat.add(static_cast<double>(t));
    agg.max_latency.add(lat.max());
    agg.mean_latency.add(lat.mean());
    agg.p95_latency.add(lat.percentile(95.0));
  }
  agg.max_color.add(static_cast<double>(run.max_color));
  agg.distinct_colors.add(
      static_cast<double>(graph::distinct_colors(run.colors)));
  agg.leaders.add(static_cast<double>(run.num_leaders));
  const auto n = static_cast<double>(run.colors.size());
  agg.resets_per_node.add(n > 0 ? static_cast<double>(run.total_resets) / n
                                : 0.0);
  agg.slots_run.add(static_cast<double>(run.medium.slots_run));
}

CoreAggregate run_core_trials(const graph::Graph& g,
                              const core::Params& params,
                              const ScheduleFactory& schedules,
                              std::size_t trials, std::uint64_t seed0,
                              radio::Slot max_slots) {
  CoreAggregate agg;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t trial_seed = mix_seed(seed0, t);
    const radio::WakeSchedule schedule = schedules(trial_seed);
    const core::RunResult run =
        core::run_coloring(g, params, schedule, trial_seed, max_slots);
    record_run(agg, run);
  }
  return agg;
}

}  // namespace urn::analysis
