/// \file experiment.hpp
/// \brief Replicated-trials harness: run the protocol over many seeds and
///        aggregate the quantities every experiment reports.

#pragma once

#include <cstdint>
#include <functional>

#include "core/params.hpp"
#include "core/runner.hpp"
#include "graph/graph.hpp"
#include "radio/wakeup.hpp"
#include "support/stats.hpp"

namespace urn::analysis {

/// Produces the wake schedule for a given trial (fresh randomness per
/// trial; deterministic in the trial seed).
using ScheduleFactory =
    std::function<radio::WakeSchedule(std::uint64_t trial_seed)>;

/// A ScheduleFactory for the all-at-slot-0 schedule.
[[nodiscard]] ScheduleFactory synchronous_schedule(std::size_t n);

/// A ScheduleFactory waking each node uniformly in [0, window].
[[nodiscard]] ScheduleFactory uniform_schedule(std::size_t n,
                                               radio::Slot window);

/// Aggregates over `trials` independent protocol executions.
struct CoreAggregate {
  std::size_t trials = 0;
  std::size_t valid = 0;      ///< runs with a correct & complete coloring
  std::size_t completed = 0;  ///< runs where all nodes decided in budget

  Samples max_latency;   ///< per-trial max T_v
  Samples mean_latency;  ///< per-trial mean T_v
  Samples p95_latency;   ///< per-trial 95th-percentile T_v
  Samples max_color;     ///< per-trial highest color
  Samples distinct_colors;
  Samples leaders;          ///< per-trial |C₀|
  Samples resets_per_node;  ///< per-trial total resets / n
  Samples slots_run;        ///< per-trial simulated slots

  [[nodiscard]] double valid_fraction() const {
    return trials ? static_cast<double>(valid) / static_cast<double>(trials)
                  : 0.0;
  }
  [[nodiscard]] double completed_fraction() const {
    return trials
               ? static_cast<double>(completed) / static_cast<double>(trials)
               : 0.0;
  }
};

/// Run `trials` seeded executions of the core protocol and aggregate.
/// Trial t uses master seed mix(seed0, t) for both the schedule and the run.
[[nodiscard]] CoreAggregate run_core_trials(
    const graph::Graph& g, const core::Params& params,
    const ScheduleFactory& schedules, std::size_t trials,
    std::uint64_t seed0, radio::Slot max_slots = 0);

/// Record one already-computed run into an aggregate (for custom loops).
void record_run(CoreAggregate& agg, const core::RunResult& run);

}  // namespace urn::analysis
