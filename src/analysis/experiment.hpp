/// \file experiment.hpp
/// \brief Replicated-trials harness: run the protocol over many seeds and
///        aggregate the quantities every experiment reports.
///
/// Trials execute on the deterministic parallel executor
/// (`exec::parallel_for_trials`): trial t is a pure function of
/// `mix_seed(seed0, t)`, chunks of the trial index space run on worker
/// threads, and per-chunk partial aggregates are merged in trial order —
/// so `run_core_trials(..., jobs = k)` is **bit-identical** to the serial
/// path for every k and every chunk size.
///
/// ## Thread-safety contract (ScheduleFactory and friends)
///
/// With `jobs > 1` a `ScheduleFactory` is invoked concurrently from
/// several worker threads, one call per trial.  A factory must therefore
/// be a *pure function* of its `trial_seed`:
///
///  * derive all randomness from `trial_seed` (as `uniform_schedule`
///    does — a fresh local `Rng` per call), never from captured RNG or
///    counter state;
///  * capture by value, or capture `const` data that outlives the trial
///    loop and is only read (e.g. a positions vector for wavefront
///    schedules);
///  * never mutate captured state — a by-reference capture of anything
///    mutable makes trial results depend on scheduling.
///
/// The factories returned by `synchronous_schedule` and
/// `uniform_schedule` satisfy the contract.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/runner.hpp"
#include "graph/graph.hpp"
#include "obs/explain.hpp"
#include "obs/monitor.hpp"
#include "radio/wakeup.hpp"
#include "support/stats.hpp"

namespace urn::analysis {

/// Produces the wake schedule for a given trial (fresh randomness per
/// trial; deterministic in the trial seed).  See the thread-safety
/// contract in the file comment.
using ScheduleFactory =
    std::function<radio::WakeSchedule(std::uint64_t trial_seed)>;

/// A ScheduleFactory for the all-at-slot-0 schedule.
[[nodiscard]] ScheduleFactory synchronous_schedule(std::size_t n);

/// A ScheduleFactory waking each node uniformly in [0, window].
[[nodiscard]] ScheduleFactory uniform_schedule(std::size_t n,
                                               radio::Slot window);

/// Execution knobs for the trial loops.  The defaults reproduce the
/// historical serial behavior exactly.
struct TrialExecOptions {
  /// Worker threads, calling thread included; 0 = all hardware threads.
  std::size_t jobs = 1;
  /// Trials per executor chunk; 0 = automatic.  Results never depend on
  /// this (merge happens in trial order), only wall-clock does.
  std::size_t chunk = 0;
  /// Run every trial monitored (obs::InvariantMonitorSink): the
  /// aggregate then carries violation counts and the first violation
  /// with its originating trial index.  Monitored runs are bit-identical
  /// to unmonitored ones (sinks never touch RNG streams).
  bool monitor = false;
  /// Hard slot cap per run (0 = default budget).
  radio::Slot max_slots = 0;
  /// Optional wall-clock timeline (obs::SpanSink): each executor chunk
  /// is recorded on its worker's track, giving a per-worker utilization
  /// view exportable to Perfetto via `urn_trace --export chrome:`.
  /// Spans never feed back into results.  Not owned; must outlive the
  /// call.
  obs::SpanSink* spans = nullptr;
  /// Optional live telemetry registry: every trial then runs with an
  /// engine probe feeding it (slot/medium counters, the live
  /// `engine.undecided` gauge, decision-latency histogram) and the trial
  /// pool reports per-worker utilization into it.  Telemetry alone keeps
  /// the zero-event NullSink engine path (see core::TraceOptions) and
  /// never changes results — probes read counts, they never touch RNG
  /// streams.  Not owned; must outlive the call.
  obs::telemetry::Registry* telemetry = nullptr;
  /// Postmortem checkpointing (core::PostmortemOptions).  When enabled,
  /// `postmortem.dir` is treated as a *base* directory: trial t writes
  /// its bundle under `<dir>/<exec::trial_tag(t)>/` so concurrent trials
  /// never collide.  Checkpointed trials stay bit-identical (the
  /// checkpointer only reads engine state).
  core::PostmortemOptions postmortem;
};

/// Aggregates over `trials` independent protocol executions.
struct CoreAggregate {
  std::size_t trials = 0;
  std::size_t valid = 0;      ///< runs with a correct & complete coloring
  std::size_t completed = 0;  ///< runs where all nodes decided in budget

  Samples max_latency;   ///< per-trial max T_v
  Samples mean_latency;  ///< per-trial mean T_v
  Samples p95_latency;   ///< per-trial 95th-percentile T_v
  Samples max_color;     ///< per-trial highest color
  Samples distinct_colors;
  Samples leaders;          ///< per-trial |C₀|
  Samples resets_per_node;  ///< per-trial total resets / n
  Samples slots_run;        ///< per-trial simulated slots

  /// Earliest invariant violation across the monitored trials,
  /// identified by its originating trial index ("first" = lowest trial,
  /// then lowest slot within that trial — the order a serial monitored
  /// loop would report).
  struct FirstViolation {
    std::size_t trial = 0;
    obs::Invariant invariant = obs::Invariant::kPhaseLegality;
    obs::Slot slot = -1;
    obs::NodeId node = obs::kNoNode;
    std::string what;
  };

  // Populated only when trials ran with TrialExecOptions::monitor.
  std::uint64_t monitor_events = 0;      ///< sum of events checked
  std::uint64_t monitor_violations = 0;  ///< sum over all invariants
  std::optional<FirstViolation> first_violation;
  /// Postmortem bundle directories captured on violation, in trial order
  /// (only with TrialExecOptions::postmortem + dump_on_violation).
  std::vector<std::string> bundles;

  [[nodiscard]] bool monitor_ok() const { return monitor_violations == 0; }

  /// Fold `other` (the aggregate of a later block of trials) into this
  /// one.  Sample streams concatenate in order, so merging chunk
  /// aggregates in trial order is bit-identical to one serial loop.
  void merge(const CoreAggregate& other);

  [[nodiscard]] double valid_fraction() const {
    return trials ? static_cast<double>(valid) / static_cast<double>(trials)
                  : 0.0;
  }
  [[nodiscard]] double completed_fraction() const {
    return trials
               ? static_cast<double>(completed) / static_cast<double>(trials)
               : 0.0;
  }
};

/// Run `trials` seeded executions of the core protocol and aggregate.
/// Trial t uses master seed mix(seed0, t) for both the schedule and the
/// run — the same derivation for every jobs count.
[[nodiscard]] CoreAggregate run_core_trials(
    const graph::Graph& g, const core::Params& params,
    const ScheduleFactory& schedules, std::size_t trials,
    std::uint64_t seed0, const TrialExecOptions& exec);

/// Serial-compatible overload (jobs = 1, no monitor).
[[nodiscard]] CoreAggregate run_core_trials(
    const graph::Graph& g, const core::Params& params,
    const ScheduleFactory& schedules, std::size_t trials,
    std::uint64_t seed0, radio::Slot max_slots = 0);

/// Record one already-computed run into an aggregate (for custom loops).
/// `trial` is the run's global trial index (used to attribute monitor
/// violations); the two-argument form uses the aggregate's own count,
/// which is correct for serial loops that record trial 0, 1, 2, ...
void record_run(CoreAggregate& agg, const core::RunResult& run,
                std::size_t trial);
void record_run(CoreAggregate& agg, const core::RunResult& run);

/// Cause-attribution aggregate over replicated trials (obs::explain).
/// Slot totals and exactness counters sum; the per-trial sample streams
/// concatenate in trial order — so merging chunk aggregates follows the
/// same order-preserving algebra as `CoreAggregate::merge` and parallel
/// explain sweeps are bit-identical to serial ones.
struct ExplainAggregate {
  std::size_t trials = 0;
  std::size_t nodes = 0;          ///< sum of per-trial node counts
  std::size_t decided_nodes = 0;
  std::size_t exact_nodes = 0;    ///< decided nodes whose causes sum exactly
  std::size_t fig2_violations = 0;

  /// Network-wide slot totals per cause, summed over trials.
  std::int64_t totals[obs::kNumCauses] = {};
  /// Cause totals cross-tabulated by Fig. 2 region, summed over trials.
  std::int64_t phase_totals[obs::kNumPhaseBuckets][obs::kNumCauses] = {};

  Samples mean_latency;  ///< per-trial mean decision latency
  Samples top_share;     ///< per-trial share of the trial's top cause

  /// True iff every decided node in every trial passed the exactness
  /// invariant (causes sum to recorded latency).
  [[nodiscard]] bool exact_ok() const {
    return exact_nodes == decided_nodes;
  }

  /// Fold `other` (a later block of trials) into this one.
  void merge(const ExplainAggregate& other);
};

/// Record one trial's attribution report into an aggregate.
void record_explain(ExplainAggregate& agg, const obs::ExplainReport& report);

/// Run `trials` seeded executions with in-memory event capture and
/// aggregate their cause attributions.  Same seed derivation and
/// executor as `run_core_trials`: bit-identical for every jobs count.
[[nodiscard]] ExplainAggregate run_explained_trials(
    const graph::Graph& g, const core::Params& params,
    const ScheduleFactory& schedules, std::size_t trials,
    std::uint64_t seed0, const TrialExecOptions& exec = {},
    radio::MediumOptions medium = {});

/// Aggregates over repeated leader-election (C₀-layer) executions — the
/// leader-election twin of `CoreAggregate`.
struct LeaderAggregate {
  std::size_t trials = 0;
  std::size_t covered = 0;  ///< runs where every node was covered

  Samples leaders;             ///< per-trial |C₀|
  Samples mean_cover_latency;  ///< per-trial mean cover time
  Samples max_cover_latency;   ///< per-trial max cover time
  Samples slots_run;           ///< per-trial simulated slots
  Samples collisions;          ///< per-trial collision count

  /// Fold `other` (a later block of trials) into this one; same
  /// order-preserving semantics as `CoreAggregate::merge`.
  void merge(const LeaderAggregate& other);

  [[nodiscard]] double covered_fraction() const {
    return trials ? static_cast<double>(covered) / static_cast<double>(trials)
                  : 0.0;
  }
};

/// Record one already-computed election into an aggregate.  Cover
/// statistics are over covered nodes only (cover_latency >= 0).
void record_leader_run(LeaderAggregate& agg,
                       const core::LeaderElectionResult& run);

/// Run `trials` seeded leader elections (first protocol stage only) on
/// the same executor and seed derivation as `run_core_trials`.
[[nodiscard]] LeaderAggregate run_leader_trials(
    const graph::Graph& g, const core::Params& params,
    const ScheduleFactory& schedules, std::size_t trials,
    std::uint64_t seed0, const TrialExecOptions& exec = {});

}  // namespace urn::analysis
