#include "analysis/histogram.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace urn::analysis {

Histogram::Histogram(const std::vector<double>& values, std::size_t bins) {
  URN_CHECK(bins >= 1);
  URN_CHECK(!values.empty());
  lo_ = *std::min_element(values.begin(), values.end());
  hi_ = *std::max_element(values.begin(), values.end());
  if (hi_ <= lo_) hi_ = lo_ + 1.0;  // degenerate: all values equal
  bin_width_ = (hi_ - lo_) / static_cast<double>(bins);
  counts_.assign(bins, 0);
  for (double v : values) {
    auto bin = static_cast<std::size_t>((v - lo_) / bin_width_);
    bin = std::min(bin, bins - 1);
    ++counts_[bin];
  }
  total_ = values.size();
}

double Histogram::bin_low(std::size_t bin) const {
  URN_CHECK(bin < counts_.size());
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin) + bin_width_;
}

void Histogram::print(std::ostream& os, std::size_t width) const {
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    os << '[' << std::setw(10) << std::fixed << std::setprecision(0)
       << bin_low(b) << ", " << std::setw(10) << bin_high(b) << ") "
       << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
}

std::string Histogram::render(const Samples& samples, std::size_t bins,
                              std::size_t width) {
  const Histogram h(samples.values(), bins);
  std::ostringstream os;
  h.print(os, width);
  return os.str();
}

}  // namespace urn::analysis
