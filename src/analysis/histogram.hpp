/// \file histogram.hpp
/// \brief ASCII histograms for latency / color distributions in the
///        examples and experiment binaries.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace urn::analysis {

/// A fixed-bin histogram over a sample set.
class Histogram {
 public:
  /// Bins `values` into `bins` equal-width buckets over [min, max].
  /// \pre bins >= 1; values non-empty.
  Histogram(const std::vector<double>& values, std::size_t bins);

  [[nodiscard]] std::size_t num_bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Render as rows of "[lo, hi) ####… count"; `width` is the bar length
  /// of the fullest bin.
  void print(std::ostream& os, std::size_t width = 50) const;

  /// Convenience: render a Samples object.
  [[nodiscard]] static std::string render(const Samples& samples,
                                          std::size_t bins,
                                          std::size_t width = 50);

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  double bin_width_ = 0.0;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace urn::analysis
