#include "analysis/table.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "support/check.hpp"

namespace urn::analysis {

Table::Table(std::string name, std::string title)
    : name_(std::move(name)), title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  URN_CHECK(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  URN_CHECK_MSG(row.size() == header_.size(),
                "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }
std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

std::string Table::write_csv(const std::string& dir) const {
  const std::string path = dir + "/" + name_ + ".csv";
  std::ofstream out(path);
  URN_CHECK_MSG(out.good(), "cannot open " << path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return path;
}

void Table::emit() const {
  print(std::cout);
  if (const char* dir = std::getenv("URN_BENCH_CSV")) {
    const std::string path = write_csv(dir);
    std::cout << "[csv] " << path << '\n';
  }
}

}  // namespace urn::analysis
