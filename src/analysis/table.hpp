/// \file table.hpp
/// \brief Fixed-width result tables for the benchmark harness.
///
/// Every bench binary prints its series as one of these tables (the rows a
/// paper table would hold) and, when the environment variable
/// `URN_BENCH_CSV` names a directory, also writes `<name>.csv` there.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace urn::analysis {

/// A simple column-formatted table with CSV export.
class Table {
 public:
  /// \param name  machine name (used for the CSV file name)
  /// \param title human-readable caption printed above the table
  Table(std::string name, std::string title);

  /// Define the column headers; must be called before any row.
  void set_header(std::vector<std::string> header);

  /// Append a row (cells already formatted). Must match header arity.
  void add_row(std::vector<std::string> row);

  /// Format helpers.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string num(std::int64_t v);
  [[nodiscard]] static std::string num(std::uint64_t v);

  /// Print with aligned columns.
  void print(std::ostream& os) const;

  /// Write CSV to `<dir>/<name>.csv`; returns the path written.
  std::string write_csv(const std::string& dir) const;

  /// Print to stdout and, if URN_BENCH_CSV is set, export CSV there.
  void emit() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string name_;
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace urn::analysis
