#include "baselines/message_passing.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace urn::baselines {

MisResult luby_mis(const graph::Graph& g, Rng& rng) {
  MisResult result;
  const std::size_t n = g.num_nodes();
  std::vector<bool> live(n, true);
  std::vector<bool> marked(n, false);
  std::size_t live_count = n;

  while (live_count > 0) {
    ++result.rounds;
    // Mark phase.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!live[v]) continue;
      std::uint32_t deg = 0;
      for (graph::NodeId u : g.neighbors(v)) deg += live[u] ? 1u : 0u;
      marked[v] = (deg == 0) || rng.chance(1.0 / (2.0 * deg));
    }
    // Resolve: a mark survives unless a marked live neighbor has higher
    // degree (ties broken towards the higher id).
    std::vector<graph::NodeId> joiners;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!live[v] || !marked[v]) continue;
      bool beaten = false;
      for (graph::NodeId u : g.neighbors(v)) {
        if (!live[u] || !marked[u]) continue;
        const auto dv = g.degree(v);
        const auto du = g.degree(u);
        if (du > dv || (du == dv && u > v)) {
          beaten = true;
          break;
        }
      }
      if (!beaten) joiners.push_back(v);
    }
    for (graph::NodeId v : joiners) {
      if (!live[v]) continue;  // may have been removed by a prior joiner
      result.mis.push_back(v);
      live[v] = false;
      --live_count;
      for (graph::NodeId u : g.neighbors(v)) {
        if (live[u]) {
          live[u] = false;
          --live_count;
        }
      }
    }
    std::fill(marked.begin(), marked.end(), false);
  }
  std::sort(result.mis.begin(), result.mis.end());
  return result;
}

MpColoringResult mp_random_coloring(const graph::Graph& g, Rng& rng) {
  MpColoringResult result;
  const std::size_t n = g.num_nodes();
  result.colors.assign(n, graph::kUncolored);
  std::vector<graph::Color> proposal(n, graph::kUncolored);
  std::size_t uncolored = n;

  while (uncolored > 0) {
    ++result.rounds;
    // Propose a random color from {0,…,deg(v)} \ finalized neighbor colors.
    for (graph::NodeId v = 0; v < n; ++v) {
      proposal[v] = graph::kUncolored;
      if (result.colors[v] != graph::kUncolored) continue;
      // Palette is exactly {0, …, deg(v)} — never more than Δ+1 colors.
      std::vector<bool> used(g.degree(v) + 1, false);
      for (graph::NodeId u : g.neighbors(v)) {
        const graph::Color c = result.colors[u];
        if (c != graph::kUncolored &&
            static_cast<std::size_t>(c) < used.size()) {
          used[static_cast<std::size_t>(c)] = true;
        }
      }
      std::vector<graph::Color> free;
      for (std::size_t c = 0; c < used.size(); ++c) {
        if (!used[c]) free.push_back(static_cast<graph::Color>(c));
      }
      URN_CHECK(!free.empty());  // palette {0..deg} always has a free color
      proposal[v] = free[rng.below(free.size())];
    }
    // Keep proposals that no uncolored neighbor duplicated.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (proposal[v] == graph::kUncolored) continue;
      bool conflict = false;
      for (graph::NodeId u : g.neighbors(v)) {
        if (proposal[u] != graph::kUncolored && proposal[u] == proposal[v]) {
          conflict = true;
          break;
        }
      }
      if (!conflict) {
        result.colors[v] = proposal[v];
        --uncolored;
      }
    }
  }
  return result;
}

}  // namespace urn::baselines
