/// \file message_passing.hpp
/// \brief Idealized synchronous message-passing baselines (Sect. 3).
///
/// The paper contrasts the unstructured radio model with the classic
/// message-passing model, "which abstracts away … interference, collisions,
/// asynchronous wake-up": nodes know their neighbors, rounds are
/// synchronous, and every message is delivered.  These reference algorithms
/// quantify what that idealization buys:
///
///  * `luby_mis` — Luby's randomized maximal independent set [17],
///    O(log n) rounds in expectation.
///  * `mp_random_coloring` — the trial-based randomized (Δ+1)-coloring
///    (each round every uncolored node proposes a random free color and
///    keeps it if no uncolored neighbor proposed the same), the standard
///    message-passing counterpart referenced via [16,17].
///
/// A "round" here would cost many slots on a real radio channel; experiment
/// E4/E9 reports rounds separately and never conflates them with slots.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace urn::baselines {

/// Result of a synchronous message-passing MIS computation.
struct MisResult {
  std::vector<graph::NodeId> mis;
  std::uint32_t rounds = 0;
};

/// Luby's algorithm: each round, every live node marks itself with
/// probability 1/(2·deg); marks beaten by a marked neighbor of higher
/// degree (ties by id) are dropped; surviving marks join the MIS and
/// N[MIS] leaves the graph.
[[nodiscard]] MisResult luby_mis(const graph::Graph& g, Rng& rng);

/// Result of a synchronous message-passing coloring.
struct MpColoringResult {
  std::vector<graph::Color> colors;
  std::uint32_t rounds = 0;
};

/// Trial-based randomized (Δ+1)-coloring: every uncolored node proposes a
/// uniform color from {0,…,deg(v)} minus its neighbors' final colors and
/// finalizes unless an uncolored neighbor proposed the same color this
/// round.  Terminates in O(log n) rounds w.h.p.; uses ≤ Δ+1 colors.
[[nodiscard]] MpColoringResult mp_random_coloring(const graph::Graph& g,
                                                  Rng& rng);

}  // namespace urn::baselines
