#include "baselines/rand_verify.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace urn::baselines {

void RandVerifyNode::on_wake(radio::SlotContext& ctx) {
  URN_CHECK(params_ != nullptr && id_ == ctx.id);
  state_ = State::kListen;
  listen_remaining_ = params_->listen_slots();
  forbidden_.assign(static_cast<std::size_t>(params_->palette()), false);
}

void RandVerifyNode::pick_candidate(urn::Rng& rng) {
  // Uniform pick among non-forbidden palette colors; the palette has
  // ⌈p·Δ⌉+1 ≥ Δ+1 entries and at most Δ−1 neighbors can have decided,
  // so a free color always exists.
  std::int32_t free = 0;
  for (bool f : forbidden_) free += f ? 0 : 1;
  URN_CHECK(free > 0);
  auto pick = static_cast<std::int32_t>(
      rng.below(static_cast<std::uint64_t>(free)));
  for (std::int32_t c = 0; c < params_->palette(); ++c) {
    if (forbidden_[static_cast<std::size_t>(c)]) continue;
    if (pick == 0) {
      candidate_ = c;
      return;
    }
    --pick;
  }
  URN_CHECK(false);  // unreachable
}

std::optional<radio::Message> RandVerifyNode::on_slot(
    radio::SlotContext& ctx) {
  switch (state_) {
    case State::kListen: {
      if (listen_remaining_ > 0) {
        --listen_remaining_;
        return std::nullopt;
      }
      state_ = State::kVerify;
      verify_remaining_ = params_->verify_slots();
      pick_candidate(ctx.random());
      [[fallthrough]];
    }
    case State::kVerify: {
      if (verify_remaining_ == 0) {
        state_ = State::kDecided;
        return on_slot(ctx);
      }
      --verify_remaining_;
      if (ctx.random().chance(params_->p_send())) {
        return radio::make_compete(id_, candidate_, 0);
      }
      return std::nullopt;
    }
    case State::kDecided: {
      if (ctx.random().chance(params_->p_send())) {
        return radio::make_decided(id_, candidate_);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void RandVerifyNode::on_receive(radio::SlotContext& ctx,
                                const radio::Message& msg) {
  if (msg.type == radio::MsgType::kDecided) {
    const auto c = static_cast<std::size_t>(msg.color_index);
    if (c < forbidden_.size()) forbidden_[c] = true;
    if (state_ == State::kVerify && msg.color_index == candidate_) {
      ++restarts_;
      verify_remaining_ = params_->verify_slots();
      pick_candidate(ctx.random());
    }
    return;
  }
  if (msg.type == radio::MsgType::kCompete && state_ == State::kVerify &&
      msg.color_index == candidate_) {
    // A neighbor claims our candidate: restart with a fresh pick.
    ++restarts_;
    verify_remaining_ = params_->verify_slots();
    pick_candidate(ctx.random());
  }
}

Slot RandVerifyResult::max_latency() const {
  Slot best = 0;
  for (Slot t : latency) best = std::max(best, t);
  return best;
}

RandVerifyResult run_rand_verify(const graph::Graph& g,
                                 const RandVerifyParams& params,
                                 const radio::WakeSchedule& schedule,
                                 std::uint64_t seed, Slot max_slots) {
  URN_CHECK(schedule.size() == g.num_nodes());
  URN_CHECK(max_slots > 0);
  std::vector<RandVerifyNode> nodes;
  nodes.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) nodes.emplace_back(&params, v);
  radio::Engine<RandVerifyNode> engine(g, schedule, std::move(nodes), seed);
  const radio::RunStats stats = engine.run(max_slots);

  RandVerifyResult result;
  result.medium = stats;
  result.all_decided = stats.all_decided;
  result.colors.resize(g.num_nodes(), graph::kUncolored);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    result.colors[v] = engine.node(v).color();
    result.total_restarts += engine.node(v).restarts();
    if (engine.decision_slot(v) != radio::Engine<RandVerifyNode>::kUndecided) {
      result.latency.push_back(engine.decision_latency(v));
    }
  }
  result.check = graph::validate(g, result.colors);
  result.max_color = graph::max_color(result.colors);
  return result;
}

}  // namespace urn::baselines
