/// \file rand_verify.hpp
/// \brief Rand-verify coloring baseline — a reconstruction in the spirit of
///        Busch, Magdon-Ismail, Sivrikaya, Yener (DISC 2004), restricted to
///        one-hop coloring as discussed in the paper's related work.
///
/// Busch et al.'s protocol has no public implementation; this is a faithful
/// *behavioral* reconstruction in the same unstructured radio model used by
/// the paper's comparison (Sect. 3): a node picks a random color from an
/// O(Δ) palette and defends it through a long verification window — long
/// enough (Θ(Δ² log n) slots) that, without collision detection, two
/// conflicting neighbors still hear each other w.h.p.  The claimed
/// asymptotics in the paper's comparison are O(Δ) colors in O(Δ³ log n)
/// time, versus the main algorithm's O(κ₂⁴ Δ log n); the shape to
/// reproduce (experiment E9) is the much steeper growth in Δ.
///
/// Message reuse: `kCompete` carries a color *claim* (color_index =
/// candidate), `kDecided` the final color.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/coloring.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "support/mathutil.hpp"

namespace urn::baselines {

using graph::NodeId;
using radio::Slot;

/// Parameters of the rand-verify baseline.
struct RandVerifyParams {
  std::uint64_t n = 2;       ///< network size estimate
  std::uint32_t delta = 2;   ///< max closed degree estimate
  double listen_factor = 2.0;   ///< initial listen window: ⌈l·Δ log n⌉
  double verify_factor = 0.5;   ///< verification window: ⌈v·Δ² log n⌉
  double palette_factor = 2.0;  ///< palette size: ⌈p·Δ⌉ colors

  [[nodiscard]] Slot listen_slots() const {
    return ceil_mul_log(listen_factor * delta, n);
  }
  [[nodiscard]] Slot verify_slots() const {
    return ceil_mul_log(verify_factor * delta * delta, n);
  }
  [[nodiscard]] std::int32_t palette() const {
    return static_cast<std::int32_t>(palette_factor * delta) + 1;
  }
  [[nodiscard]] double p_send() const {
    return 1.0 / static_cast<double>(delta);
  }
};

/// One rand-verify participant; plugged into radio::Engine<RandVerifyNode>.
class RandVerifyNode {
 public:
  RandVerifyNode() = default;
  RandVerifyNode(const RandVerifyParams* params, NodeId id)
      : params_(params), id_(id) {}

  void on_wake(radio::SlotContext& ctx);
  std::optional<radio::Message> on_slot(radio::SlotContext& ctx);
  void on_receive(radio::SlotContext& ctx, const radio::Message& msg);
  [[nodiscard]] bool decided() const { return state_ == State::kDecided; }

  [[nodiscard]] graph::Color color() const {
    return decided() ? candidate_ : graph::kUncolored;
  }
  /// Number of verification restarts (conflicts observed).
  [[nodiscard]] std::uint32_t restarts() const { return restarts_; }

 private:
  enum class State : std::uint8_t { kListen, kVerify, kDecided };

  void pick_candidate(urn::Rng& rng);

  const RandVerifyParams* params_ = nullptr;
  NodeId id_ = graph::kInvalidNode;
  State state_ = State::kListen;
  Slot listen_remaining_ = 0;
  Slot verify_remaining_ = 0;
  std::int32_t candidate_ = graph::kUncolored;
  std::vector<bool> forbidden_;
  std::uint32_t restarts_ = 0;
};

static_assert(radio::NodeProtocol<RandVerifyNode>);

/// Convenience runner mirroring core::run_coloring.
struct RandVerifyResult {
  std::vector<graph::Color> colors;
  std::vector<Slot> latency;  ///< per decided node
  bool all_decided = false;
  graph::ColoringCheck check;
  graph::Color max_color = graph::kUncolored;
  radio::RunStats medium;
  std::uint64_t total_restarts = 0;

  [[nodiscard]] Slot max_latency() const;
};

[[nodiscard]] RandVerifyResult run_rand_verify(
    const graph::Graph& g, const RandVerifyParams& params,
    const radio::WakeSchedule& schedule, std::uint64_t seed,
    Slot max_slots);

}  // namespace urn::baselines
