#include "core/checkpoint.hpp"

#include "core/protocol.hpp"
#include "radio/engine.hpp"
#include "support/check.hpp"

namespace urn::core {

namespace pm = obs::postmortem;

namespace {

/// Sanity caps on scenario counts from disk: anything beyond these marks
/// a corrupt file rather than a real run (the engine itself scales far
/// beyond, but a truncated-length read must not trigger a huge alloc).
constexpr std::uint64_t kMaxScenarioNodes = 1ull << 32;
constexpr std::uint64_t kMaxScenarioEdges = 1ull << 36;

std::vector<ColoringNode> build_nodes(const CheckpointScenario& s) {
  std::vector<ColoringNode> nodes;
  nodes.reserve(s.num_nodes);
  for (graph::NodeId v = 0; v < s.num_nodes; ++v) {
    nodes.emplace_back(&s.params, v);
  }
  return nodes;
}

graph::Graph rebuild_graph(const CheckpointScenario& s) {
  graph::GraphBuilder builder(s.num_nodes);
  for (const auto& [u, v] : s.edges) builder.add_edge(u, v);
  return builder.build();
}

}  // namespace

CheckpointScenario make_scenario(const graph::Graph& g, const Params& params,
                                 const radio::WakeSchedule& schedule,
                                 std::uint64_t seed, Slot max_slots,
                                 radio::MediumOptions medium,
                                 std::uint64_t trial,
                                 std::vector<std::uint8_t> offsets) {
  CheckpointScenario s;
  s.params = params;
  s.num_nodes = g.num_nodes();
  s.edges.reserve(g.num_edges());
  // CSR adjacency stores both directions; keep each edge once (u < v).
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const graph::NodeId u : g.neighbors(v)) {
      if (v < u) s.edges.emplace_back(v, u);
    }
  }
  s.wake_slots.assign(schedule.slots().begin(), schedule.slots().end());
  s.offsets = std::move(offsets);
  s.seed = seed;
  s.trial = trial;
  s.max_slots = max_slots;
  s.medium = medium;
  return s;
}

std::string render_scenario(const CheckpointScenario& s) {
  pm::Writer w;
  // Params.
  w.u64(s.params.n);
  w.u32(s.params.delta);
  w.u32(s.params.kappa1);
  w.u32(s.params.kappa2);
  w.f64(s.params.alpha);
  w.f64(s.params.beta);
  w.f64(s.params.gamma);
  w.f64(s.params.sigma);
  w.boolean(s.params.remember_served);
  w.u8(static_cast<std::uint8_t>(s.params.reset_policy));
  // Topology.
  w.u64(s.num_nodes);
  w.u64(s.edges.size());
  for (const auto& [u, v] : s.edges) {
    w.u32(u);
    w.u32(v);
  }
  // Schedule + offsets.
  w.u64(s.wake_slots.size());
  for (const Slot slot : s.wake_slots) w.i64(slot);
  w.u64(s.offsets.size());
  for (const std::uint8_t o : s.offsets) w.u8(o);
  // Run identity.
  w.u64(s.seed);
  w.u64(s.trial);
  w.i64(s.max_slots);
  w.f64(s.medium.drop_probability);
  return w.data();
}

bool read_scenario(pm::Reader& r, CheckpointScenario& out) {
  out.params.n = r.u64();
  out.params.delta = r.u32();
  out.params.kappa1 = r.u32();
  out.params.kappa2 = r.u32();
  out.params.alpha = r.f64();
  out.params.beta = r.f64();
  out.params.gamma = r.f64();
  out.params.sigma = r.f64();
  out.params.remember_served = r.boolean();
  out.params.reset_policy = static_cast<ResetPolicy>(r.u8());

  const std::uint64_t n = r.u64();
  if (!r.ok() || n > kMaxScenarioNodes) return false;
  out.num_nodes = static_cast<std::size_t>(n);
  const std::uint64_t num_edges = r.u64();
  if (!r.ok() || num_edges > kMaxScenarioEdges ||
      num_edges * 8 > r.remaining()) {
    return false;
  }
  out.edges.clear();
  out.edges.reserve(static_cast<std::size_t>(num_edges));
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    const graph::NodeId u = static_cast<graph::NodeId>(r.u32());
    const graph::NodeId v = static_cast<graph::NodeId>(r.u32());
    if (u >= out.num_nodes || v >= out.num_nodes) return false;
    out.edges.emplace_back(u, v);
  }
  const std::uint64_t n_wake = r.u64();
  if (!r.ok() || n_wake != n) return false;
  out.wake_slots.clear();
  out.wake_slots.reserve(static_cast<std::size_t>(n_wake));
  for (std::uint64_t i = 0; i < n_wake; ++i) {
    out.wake_slots.push_back(r.i64());
  }
  const std::uint64_t n_off = r.u64();
  if (!r.ok() || (n_off != 0 && n_off != n)) return false;
  out.offsets.clear();
  out.offsets.reserve(static_cast<std::size_t>(n_off));
  for (std::uint64_t i = 0; i < n_off; ++i) {
    const std::uint8_t o = r.u8();
    if (o > 1) return false;
    out.offsets.push_back(o);
  }
  out.seed = r.u64();
  out.trial = r.u64();
  out.max_slots = r.i64();
  out.medium.drop_probability = r.f64();
  if (out.max_slots <= 0) return false;
  return r.ok();
}

LoadedCheckpoint load_checkpoint(const std::string& path) {
  LoadedCheckpoint out;
  const pm::CheckpointFile file = pm::read_checkpoint_file(path);
  if (!file.ok) {
    out.error = file.error;
    return out;
  }
  out.kind = file.kind;
  out.version = file.version;
  out.position = file.position;
  out.engine_state = file.engine_state;
  pm::Reader r(file.scenario);
  if (!read_scenario(r, out.scenario)) {
    out.error = path + ": corrupt scenario section";
    return out;
  }
  if (out.kind == pm::EngineKind::kMisaligned &&
      out.scenario.offsets.size() != out.scenario.num_nodes) {
    out.error = path + ": misaligned checkpoint without phase offsets";
    return out;
  }
  out.graph = rebuild_graph(out.scenario);
  out.ok = true;
  return out;
}

ResumeResult resume_coloring(const LoadedCheckpoint& ck) {
  ResumeResult out;
  if (!ck.ok) {
    out.error = ck.error.empty() ? "checkpoint not loaded" : ck.error;
    return out;
  }
  const CheckpointScenario& s = ck.scenario;
  radio::WakeSchedule schedule(s.wake_slots);
  pm::Reader r(ck.engine_state);

  if (ck.kind == pm::EngineKind::kAligned) {
    radio::Engine<ColoringNode> engine(
        ck.graph, schedule, build_nodes(s),
        s.seed, s.medium);
    if (!engine.load_state(r)) {
      out.error = "corrupt engine-state section (aligned)";
      return out;
    }
    const radio::RunStats stats = engine.run(s.max_slots);
    out.run = harvest_coloring(engine, ck.graph, schedule, stats);
  } else {
    radio::MisalignedEngine<ColoringNode> engine(
        ck.graph, schedule,
        build_nodes(s), s.offsets,
        s.seed);
    if (!engine.load_state(r)) {
      out.error = "corrupt engine-state section (misaligned)";
      return out;
    }
    const radio::RunStats stats = engine.run(s.max_slots);
    out.run = harvest_coloring(engine, ck.graph, schedule, stats);
  }
  out.ok = true;
  return out;
}

namespace {

template <typename EngineT>
void summarize_nodes(const EngineT& engine, std::size_t n,
                     CheckpointSummary& out) {
  out.nodes.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const ColoringNode& node = engine.node(v);
    NodeSnapshot snap;
    snap.phase = static_cast<std::uint8_t>(node.phase());
    snap.color_index =
        node.decided() ? node.color() : node.verifying_color();
    snap.counter = node.counter();
    snap.decided = node.decided();
    snap.awake = engine.is_awake(v);
    snap.decision_slot = engine.decision_slot(v);
    snap.leader = node.leader();
    snap.intra_cluster = node.intra_cluster_color();
    snap.competitors = node.competitors();
    if (snap.awake) ++out.awake;
    if (snap.decided) ++out.decided;
    out.nodes.push_back(snap);
  }
  out.stats = engine.stats();
}

}  // namespace

CheckpointSummary describe_checkpoint(const LoadedCheckpoint& ck) {
  CheckpointSummary out;
  if (!ck.ok) {
    out.error = ck.error.empty() ? "checkpoint not loaded" : ck.error;
    return out;
  }
  const CheckpointScenario& s = ck.scenario;
  radio::WakeSchedule schedule(s.wake_slots);
  pm::Reader r(ck.engine_state);
  out.position = ck.position;

  if (ck.kind == pm::EngineKind::kAligned) {
    radio::Engine<ColoringNode> engine(
        ck.graph, schedule, build_nodes(s),
        s.seed, s.medium);
    if (!engine.load_state(r)) {
      out.error = "corrupt engine-state section (aligned)";
      return out;
    }
    summarize_nodes(engine, s.num_nodes, out);
    for (graph::NodeId v = 0; v < s.num_nodes; ++v) {
      if (engine.is_dead(v)) {
        out.nodes[v].dead = true;
        ++out.dead;
      }
    }
  } else {
    radio::MisalignedEngine<ColoringNode> engine(
        ck.graph, schedule,
        build_nodes(s), s.offsets,
        s.seed);
    if (!engine.load_state(r)) {
      out.error = "corrupt engine-state section (misaligned)";
      return out;
    }
    summarize_nodes(engine, s.num_nodes, out);
  }
  out.ok = true;
  return out;
}

}  // namespace urn::core
