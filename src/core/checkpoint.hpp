/// \file checkpoint.hpp
/// \brief Core side of the postmortem checkpoint format: the scenario
///        section codec, checkpoint loading, and bit-identical resume.
///
/// The obs layer (obs/postmortem.hpp) defines the container format and
/// the engine hook but knows nothing about graphs, params or protocols.
/// This header supplies the missing halves:
///
///  * `CheckpointScenario` — everything needed to reconstruct the engine
///    from scratch: params, graph edges, wake schedule, per-node phase
///    offsets (misaligned runs), master seed, resolved slot budget and
///    medium options.  Serialized as the checkpoint's scenario section,
///    making the file self-contained — resuming never re-runs a topology
///    or schedule generator.
///  * `load_checkpoint` / `resume_coloring` — parse a `checkpoint.urnc`,
///    rebuild the matching engine (aligned or misaligned), restore its
///    serialized state, and run to completion.  The resumed run is
///    bit-identical to the uninterrupted one: same RNG draw sequence,
///    same `RunStats`, same per-node final state (pinned by
///    tests/test_postmortem.cpp and the test_reference_diff fuzz grid).
///  * `describe_checkpoint` — a human-inspectable summary of the frozen
///    engine state (per-node phase/color/counter), used by
///    `tools/urn_postmortem inspect`.

#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/runner.hpp"
#include "obs/postmortem.hpp"
#include "radio/misaligned_engine.hpp"

namespace urn::core {

/// The constructor arguments of the engine under checkpoint, in
/// serializable form.  `offsets` is empty for aligned-engine runs.
struct CheckpointScenario {
  Params params;
  std::size_t num_nodes = 0;
  /// Undirected edge list, each pair once with u < v.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  std::vector<Slot> wake_slots;
  std::vector<std::uint8_t> offsets;  ///< misaligned phase offsets (or empty)
  std::uint64_t seed = 0;
  std::uint64_t trial = 0;    ///< trial label (manifest/bundle naming)
  Slot max_slots = 0;         ///< resolved run cap (never 0 in a checkpoint)
  radio::MediumOptions medium;
};

/// Capture a scenario from live run inputs (extracts the edge list from
/// the CSR graph).
[[nodiscard]] CheckpointScenario make_scenario(
    const graph::Graph& g, const Params& params,
    const radio::WakeSchedule& schedule, std::uint64_t seed, Slot max_slots,
    radio::MediumOptions medium = {}, std::uint64_t trial = 0,
    std::vector<std::uint8_t> offsets = {});

/// Serialize the scenario section (handed to obs::postmortem::Checkpointer
/// as the pre-rendered scenario bytes).
[[nodiscard]] std::string render_scenario(const CheckpointScenario& s);

/// Decode a scenario section.  Returns false on truncated/corrupt bytes.
[[nodiscard]] bool read_scenario(obs::postmortem::Reader& r,
                                 CheckpointScenario& out);

/// A fully parsed checkpoint: header, decoded scenario, rebuilt graph,
/// and the raw engine-state bytes (decoded by the matching engine's
/// `load_state` at resume time).
struct LoadedCheckpoint {
  obs::postmortem::EngineKind kind = obs::postmortem::EngineKind::kAligned;
  std::uint16_t version = 0;
  std::int64_t position = 0;  ///< slot (aligned) or half-slot (misaligned)
  CheckpointScenario scenario;
  graph::Graph graph;  ///< rebuilt from scenario.edges
  std::string engine_state;
  bool ok = false;
  std::string error;  ///< one-line diagnostic when !ok
};

[[nodiscard]] LoadedCheckpoint load_checkpoint(const std::string& path);

/// Resume outcome; `ok == false` means the engine state failed to load
/// (version/graph mismatch or corrupt bytes) and `run` is meaningless.
struct ResumeResult {
  RunResult run;
  bool ok = false;
  std::string error;
};

/// Rebuild the engine recorded in `ck` (aligned or misaligned), restore
/// its state, and run to the scenario's slot budget.  The result is
/// field-for-field identical to the uninterrupted run's `run_coloring`
/// result.
[[nodiscard]] ResumeResult resume_coloring(const LoadedCheckpoint& ck);

/// Frozen per-node protocol view for human-readable state dumps.
struct NodeSnapshot {
  std::uint8_t phase = 0;       ///< core::Phase as its integer code
  std::int32_t color_index = 0; ///< A_i / C_i index being verified or held
  std::int64_t counter = 0;     ///< c_v
  bool decided = false;
  bool awake = false;
  bool dead = false;            ///< aligned engine only
  Slot decision_slot = -1;
  graph::NodeId leader = graph::kInvalidNode;
  std::int32_t intra_cluster = -1;
  std::size_t competitors = 0;  ///< |P_v|
};

/// Aggregate + per-node summary of a checkpoint's frozen engine state.
struct CheckpointSummary {
  std::int64_t position = 0;
  radio::RunStats stats;
  std::size_t awake = 0;
  std::size_t decided = 0;
  std::size_t dead = 0;
  std::vector<NodeSnapshot> nodes;
  bool ok = false;
  std::string error;
};

/// Reconstruct the checkpointed engine and read its state out without
/// running it (the `urn_postmortem inspect` backend).
[[nodiscard]] CheckpointSummary describe_checkpoint(
    const LoadedCheckpoint& ck);

/// Harvest a RunResult from a finished engine (shared by the straight
/// runner path and the resume path so both extract identically).  Works
/// for both engine flavors: only the common accessor surface is used.
template <typename EngineT>
[[nodiscard]] RunResult harvest_coloring(const EngineT& engine,
                                         const graph::Graph& g,
                                         const radio::WakeSchedule& schedule,
                                         const radio::RunStats& stats) {
  RunResult result;
  result.medium = stats;
  result.all_decided = stats.all_decided;
  result.colors.resize(g.num_nodes(), graph::kUncolored);
  result.wake_slot.resize(g.num_nodes());
  result.decision_slot.resize(g.num_nodes());
  result.leader_of.resize(g.num_nodes(), graph::kInvalidNode);
  result.intra_cluster.resize(g.num_nodes(), -1);

  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& node = engine.node(v);
    result.wake_slot[v] = schedule.wake_slot(v);
    result.decision_slot[v] = engine.decision_slot(v);
    result.colors[v] = node.color();
    if (engine.decision_slot(v) != EngineT::kUndecided) {
      result.latency.push_back(engine.decision_latency(v));
    }
    if (node.is_leader()) ++result.num_leaders;
    result.leader_of[v] = node.leader();
    result.intra_cluster[v] = node.intra_cluster_color();
    result.total_resets += node.stats().resets;
    result.max_verify_states =
        std::max(result.max_verify_states, node.stats().verify_states);
    result.duplicate_serves += node.stats().duplicate_serves;
  }

  result.check = graph::validate(g, result.colors);
  result.max_color = graph::max_color(result.colors);
  return result;
}

}  // namespace urn::core
