#include "core/chi.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"

namespace urn::core {

std::int64_t chi(std::span<const std::int64_t> counters,
                 std::int64_t critical_range) {
  URN_CHECK(critical_range >= 0);

  // Forbidden intervals [d − R, d + R], clipped to the region ≤ 0
  // (values above 0 can never constrain χ ≤ 0).
  struct Interval {
    std::int64_t lo;
    std::int64_t hi;
  };
  std::vector<Interval> forbidden;
  forbidden.reserve(counters.size());
  for (std::int64_t d : counters) {
    const std::int64_t lo = d - critical_range;
    const std::int64_t hi = d + critical_range;
    if (lo > 0) continue;  // entirely above the feasible region
    forbidden.push_back({lo, std::min<std::int64_t>(hi, 0)});
  }
  if (forbidden.empty()) return 0;

  // Merge into disjoint intervals, then walk downward from 0.
  std::sort(forbidden.begin(), forbidden.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  merged.push_back(forbidden.front());
  for (std::size_t i = 1; i < forbidden.size(); ++i) {
    if (forbidden[i].lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, forbidden[i].hi);
    } else {
      merged.push_back(forbidden[i]);
    }
  }

  std::int64_t candidate = 0;
  for (auto it = merged.rbegin(); it != merged.rend(); ++it) {
    if (candidate >= it->lo && candidate <= it->hi) {
      candidate = it->lo - 1;
    }
  }
  return candidate;
}

}  // namespace urn::core
