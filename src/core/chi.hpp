/// \file chi.hpp
/// \brief The counter-reset target χ(P_v) of Algorithm 1, line 15.
///
/// χ(P_v) is the **maximum** value x such that x ≤ 0 and x lies outside the
/// critical range [d_v(w) − R, d_v(w) + R] of every locally stored
/// competitor counter d_v(w), where R = ⌈γ ζ_i log n⌉.  Resetting to χ(P_v)
/// (instead of plain 0) is what prevents cascading resets: the new counter
/// is guaranteed to be outside every known competitor's critical range.

#pragma once

#include <cstdint>
#include <span>

namespace urn::core {

/// Compute χ for the given competitor counter values and critical range R.
///
/// \param counters current (aged) values d_v(w) for each w ∈ P_v
/// \param critical_range R ≥ 0
/// \return the largest x ≤ 0 with |x − d| > R for every d in `counters`
[[nodiscard]] std::int64_t chi(std::span<const std::int64_t> counters,
                               std::int64_t critical_range);

}  // namespace urn::core
