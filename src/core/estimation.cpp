#include "core/estimation.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/mathutil.hpp"

namespace urn::core {

std::uint32_t EstimationParams::num_phases() const {
  return ceil_log2(n) + 1;
}

std::int64_t EstimationParams::slots_per_phase() const {
  return ceil_mul_log(slots_factor, n);
}

EstimationResult estimate_degrees(const graph::Graph& g,
                                  const EstimationParams& params,
                                  std::uint64_t seed) {
  URN_CHECK(params.n >= 2);
  const std::size_t n = g.num_nodes();
  const std::uint32_t phases = params.num_phases();
  const std::int64_t L = params.slots_per_phase();

  EstimationResult result;
  result.degree_estimate.assign(n, 1);
  result.local_max_estimate.assign(n, 1);
  if (n == 0) return result;

  // successes[v] per phase, reused across phases.
  std::vector<std::uint32_t> best_successes(n, 0);
  std::vector<std::uint32_t> best_phase(n, 0);
  std::vector<std::uint32_t> successes(n, 0);
  std::vector<bool> transmitting(n, false);
  std::vector<std::uint32_t> tx_neighbors(n, 0);

  Rng rng(seed);
  for (std::uint32_t k = 0; k < phases; ++k) {
    const double p = 1.0 / static_cast<double>(1u << std::min(k, 30u));
    std::fill(successes.begin(), successes.end(), 0u);
    for (std::int64_t slot = 0; slot < L; ++slot) {
      for (graph::NodeId v = 0; v < n; ++v) transmitting[v] = rng.chance(p);
      std::fill(tx_neighbors.begin(), tx_neighbors.end(), 0u);
      for (graph::NodeId v = 0; v < n; ++v) {
        if (!transmitting[v]) continue;
        for (graph::NodeId u : g.neighbors(v)) ++tx_neighbors[u];
      }
      for (graph::NodeId v = 0; v < n; ++v) {
        if (!transmitting[v] && tx_neighbors[v] == 1) ++successes[v];
      }
    }
    for (graph::NodeId v = 0; v < n; ++v) {
      if (successes[v] > best_successes[v]) {
        best_successes[v] = successes[v];
        best_phase[v] = k;
      }
    }
    result.slots += L;
  }

  for (graph::NodeId v = 0; v < n; ++v) {
    // Closed-degree estimate: the peak phase has 2^k ≈ open degree; +1
    // for the node itself.  A node that heard nothing in every phase is
    // (estimated) isolated.
    result.degree_estimate[v] =
        best_successes[v] == 0 ? 1u : (1u << best_phase[v]) + 1u;
  }

  // Exchange phase: each node takes the maximum estimate over its closed
  // neighborhood.  (A standard gossip round in the radio model; computed
  // directly here — the estimator above is the contested part, the
  // exchange is a plain local broadcast.)
  for (graph::NodeId v = 0; v < n; ++v) {
    std::uint32_t local = result.degree_estimate[v];
    for (graph::NodeId u : g.neighbors(v)) {
      local = std::max(local, result.degree_estimate[u]);
    }
    result.local_max_estimate[v] = local;
  }
  return result;
}

}  // namespace urn::core
