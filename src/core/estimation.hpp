/// \file estimation.hpp
/// \brief Local degree estimation — the paper's future-work direction
///        (Sect. 6), implemented as an optional pre-phase.
///
/// The conclusions note that in single-hop networks nodes can
/// "approximately count the number of their neighbors" (Jurdziński et al.
/// [9]) and ask whether such techniques extend to multi-hop networks so
/// the *local* maximum degree could replace the global estimate Δ.
///
/// We implement the geometric-probing estimator in the multi-hop radio
/// model: in probe phase k = 0, 1, …, K every participating node transmits
/// a probe with probability 2^{−k} in each of L slots.  The expected
/// number of *successful* receptions at a node of closed degree δ peaks in
/// the phase with 2^k ≈ δ (per-slot success probability δp(1−p)^{δ−1} is
/// maximized at p ≈ 1/δ), so each node estimates δ̂ = 2^{k*} from its
/// best phase.  A final exchange phase spreads the estimates so each node
/// can take a local maximum.
///
/// Faithfulness caveat (stated in the paper as the open problem): this
/// pre-phase assumes the participating nodes run it together — we use it
/// with synchronous or bounded-window wake-up.  The asynchronous multi-hop
/// adaptation is exactly what the paper leaves open.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "radio/wakeup.hpp"
#include "support/rng.hpp"

namespace urn::core {

/// Parameters of the probing estimator.
struct EstimationParams {
  std::uint64_t n = 2;        ///< network size estimate (sets K and L)
  double slots_factor = 8.0;  ///< L = ⌈factor·log n⌉ slots per phase

  [[nodiscard]] std::uint32_t num_phases() const;  ///< K = ⌈log2 n⌉ + 1
  [[nodiscard]] std::int64_t slots_per_phase() const;
};

/// Per-node outcome of the estimation pre-phase.
struct EstimationResult {
  /// δ̂_v: estimated closed degree per node.
  std::vector<std::uint32_t> degree_estimate;
  /// max of δ̂ over the closed neighborhood (after the exchange phase) —
  /// the quantity that can replace Δ locally.
  std::vector<std::uint32_t> local_max_estimate;
  /// Total slots consumed by the pre-phase.
  std::int64_t slots = 0;
};

/// Run the estimation pre-phase on g (all nodes participating).
/// Deterministic in `seed`.
[[nodiscard]] EstimationResult estimate_degrees(const graph::Graph& g,
                                                const EstimationParams& params,
                                                std::uint64_t seed);

}  // namespace urn::core
