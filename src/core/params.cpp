#include "core/params.hpp"

#include <cmath>

#include "support/check.hpp"

namespace urn::core {

Params Params::practical(std::uint64_t n, std::uint32_t delta,
                         std::uint32_t kappa1, std::uint32_t kappa2) {
  Params p;
  p.n = n;
  p.delta = delta;
  p.kappa1 = kappa1;
  p.kappa2 = kappa2;
  // Calibrated in experiment E7 (see EXPERIMENTS.md): the smallest multiples
  // of κ₂ for which every one of 60 seeded runs on random UDGs (n = 150 and
  // 400) produced a correct coloring.  The κ₂ scaling matches the analysis:
  // per-slot delivery probability is Θ(1/κ₂) per Lemma 2, so windows must
  // grow linearly in κ₂ to keep the expected in-window deliveries constant.
  const double k2 = kappa2;
  p.alpha = 2.0 * k2;
  p.beta = 2.5 * k2;
  p.gamma = 2.5 * k2;
  p.sigma = 6.0 * k2;
  p.validate();
  return p;
}

Params Params::analytical(std::uint64_t n, std::uint32_t delta,
                          std::uint32_t kappa1, std::uint32_t kappa2) {
  Params p;
  p.n = n;
  p.delta = delta;
  p.kappa1 = kappa1;
  p.kappa2 = kappa2;
  p.validate();

  const double k1 = kappa1;
  const double k2 = kappa2;
  const double d = delta;
  const double inv_e = 1.0 / std::exp(1.0);
  const double term1 = std::pow(inv_e * (1.0 - 1.0 / k2), k1 / k2);
  const double term2 = std::pow(inv_e * (1.0 - 1.0 / (k2 * d)), 1.0 / k2);
  p.gamma = 5.0 * k2 / (term1 * term2);
  p.sigma = 10.0 * std::exp(2.0) * k2 /
            ((1.0 - 1.0 / k2) * (1.0 - 1.0 / (k2 * d)));
  p.alpha = 2.0 * p.gamma * k2 + p.sigma + 2.0;
  p.beta = p.gamma;
  return p;
}

Params Params::scaled(double factor) const {
  URN_CHECK(factor > 0.0);
  Params p = *this;
  p.alpha *= factor;
  p.beta *= factor;
  p.gamma *= factor;
  p.sigma *= factor;
  return p;
}

void Params::validate() const {
  URN_CHECK_MSG(n >= 2, "need n >= 2");
  URN_CHECK_MSG(delta >= 2, "the analysis requires Delta >= 2");
  URN_CHECK_MSG(kappa2 >= 2,
                "kappa2 >= 2 required: with kappa2 = 1 a leader would "
                "transmit in every slot and never hear a request");
  URN_CHECK_MSG(kappa1 >= 1 && kappa1 <= kappa2, "need 1 <= kappa1 <= kappa2");
  URN_CHECK(alpha > 0.0 && beta > 0.0 && gamma > 0.0 && sigma > 0.0);
}

}  // namespace urn::core
