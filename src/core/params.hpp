/// \file params.hpp
/// \brief Protocol parameters (Sect. 4): the estimates n, Δ, κ₁, κ₂ every
///        node is given, and the four tunable constants α, β, γ, σ.
///
/// The constants trade running time against failure probability: "the
/// higher the parameters, the less likely the algorithm fails …, but the
/// higher the running time."  `Params::analytical` implements the paper's
/// proof-driven values (end of Sect. 4, plus the constraints α > 2γκ₂+σ+1
/// from Lemma 7 and β ≥ γ from Lemma 8).  `Params::practical` uses small
/// constants calibrated by experiment E7 — the paper itself notes that
/// "simulation results show that … significantly smaller values suffice."
///
/// All ⌈·⌉ quantities follow the paper's rounding convention (Sect. 5).

#pragma once

#include <cstdint>

#include "support/mathutil.hpp"

namespace urn::core {

/// Counter-reset policy ablation (experiment A1).
enum class ResetPolicy : std::uint8_t {
  /// The paper's technique: reset to χ(P_v) only when a received counter is
  /// within the critical range (Alg. 1 l. 29).
  kCriticalRange,
  /// The strawman discussed in Sect. 4: reset to 0 whenever a higher
  /// counter is heard — exhibits cascading resets and starvation.
  kNaive,
  /// Never reset — fast but forfeits the correctness guarantee.
  kNone,
};

/// Immutable parameter set shared by every node of a run.
struct Params {
  /// Estimate of the number of nodes (may be an overestimate).
  std::uint64_t n = 2;
  /// Estimate of the maximum closed degree Δ (paper: δ_v includes v).
  std::uint32_t delta = 2;
  /// Bounded-independence parameters of the graph family.
  std::uint32_t kappa1 = 5;
  std::uint32_t kappa2 = 18;

  /// Tunable constants (Sect. 4).  Prefer the `practical()` /
  /// `analytical()` factories over these raw defaults; `practical()` sets
  /// calibrated values that scale with κ₂ (see params.cpp).
  double alpha = 36.0;  ///< passive-listening length factor
  double beta = 45.0;   ///< leader assignment-broadcast length factor
  double gamma = 45.0;  ///< critical-range factor
  double sigma = 108.0; ///< decision-threshold factor

  /// Extension (off = paper-faithful): leaders remember nodes they already
  /// served and never hand out a second intra-cluster color (ablation A3).
  bool remember_served = false;

  /// Counter-reset strategy (paper default; others for ablation A1).
  ResetPolicy reset_policy = ResetPolicy::kCriticalRange;

  /// ⌈αΔ log n⌉ — passive phase length on entering any A_i.
  [[nodiscard]] std::int64_t passive_slots() const {
    return ceil_mul_log(alpha * delta, n);
  }

  /// ⌈σΔ log n⌉ — counter threshold for joining C_i.
  [[nodiscard]] std::int64_t threshold() const {
    return ceil_mul_log(sigma * delta, n);
  }

  /// ⌈γ ζ_i log n⌉ with ζ₀ = 1 and ζ_i = Δ for i > 0 (Alg. 1 line 2).
  [[nodiscard]] std::int64_t critical_range(std::int32_t color_index) const {
    const double zeta = (color_index == 0) ? 1.0 : static_cast<double>(delta);
    return ceil_mul_log(gamma * zeta, n);
  }

  /// ⌈β log n⌉ — per-request assignment broadcast window (Alg. 3 line 18).
  [[nodiscard]] std::int64_t assign_window() const {
    return ceil_mul_log(beta, n);
  }

  /// Sending probability of non-leader active nodes: 1/(κ₂Δ).
  [[nodiscard]] double p_active() const {
    return 1.0 / (static_cast<double>(kappa2) * static_cast<double>(delta));
  }

  /// Sending probability of leaders: 1/κ₂.
  [[nodiscard]] double p_leader() const {
    return 1.0 / static_cast<double>(kappa2);
  }

  /// First color a node with intra-cluster color tc verifies: tc·(κ₂+1)
  /// (Alg. 2 line 4).
  [[nodiscard]] std::int32_t first_verify_color(std::int32_t tc) const {
    return tc * (static_cast<std::int32_t>(kappa2) + 1);
  }

  /// Practical defaults (calibrated in experiment E7).
  [[nodiscard]] static Params practical(std::uint64_t n, std::uint32_t delta,
                                        std::uint32_t kappa1,
                                        std::uint32_t kappa2);

  /// The paper's analytical constants (end of Sect. 4):
  ///   γ = 5κ₂ / ( [ (1/e)(1−1/κ₂) ]^{κ₁/κ₂} · [ (1/e)(1−1/(κ₂Δ)) ]^{1/κ₂} )
  ///   σ = 10e²κ₂ / ( (1−1/κ₂)(1−1/(κ₂Δ)) )
  /// plus α = 2γκ₂ + σ + 2 (Lemma 7 requires α > 2γκ₂ + σ + 1) and β = γ
  /// (Lemma 8 requires β ≥ γ).  Valid for Δ ≥ 2, κ₂ ≥ 2.
  [[nodiscard]] static Params analytical(std::uint64_t n, std::uint32_t delta,
                                         std::uint32_t kappa1,
                                         std::uint32_t kappa2);

  /// Copy with all four constants multiplied by `factor` (experiment E7).
  [[nodiscard]] Params scaled(double factor) const;

  /// Throws urn::CheckError if the parameter set is unusable.
  void validate() const;
};

}  // namespace urn::core
