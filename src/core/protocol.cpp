#include "core/protocol.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/chi.hpp"
#include "obs/event.hpp"
#include "support/check.hpp"

namespace urn::core {

// The obs layer mirrors Phase as small integer codes; keep them in sync.
static_assert(static_cast<std::uint8_t>(Phase::kVerify) ==
              static_cast<std::uint8_t>(obs::PhaseCode::kVerify));
static_assert(static_cast<std::uint8_t>(Phase::kRequest) ==
              static_cast<std::uint8_t>(obs::PhaseCode::kRequest));
static_assert(static_cast<std::uint8_t>(Phase::kDecided) ==
              static_cast<std::uint8_t>(obs::PhaseCode::kDecided));

void ColoringNode::on_wake(radio::SlotContext& ctx) {
  URN_CHECK(params_ != nullptr);
  URN_CHECK(hot_ != nullptr);  // engines attach_hot before any callback
  URN_CHECK(id_ == ctx.id);
  enter_verify(0, ctx);  // upon waking up, a node is initially in A_0
}

void ColoringNode::enter_verify(std::int32_t color_index,
                                const radio::SlotContext& ctx) {
  hot_->klass[id_] = ColoringHot::kPassive;
  color_index_ = color_index;
  hot_->passive_remaining[id_] = passive_slots_;
  hot_->counter[id_] = 0;
  clear_competitors();  // P_v := ∅ (Alg. 1 l. 1)
  ++stats_.verify_states;
  record_transition(ctx.now, ctx);
}

void ColoringNode::enter_decided(std::int32_t color_index,
                                 const radio::SlotContext& ctx) {
  // kLeader ⟺ decided with color 0: only the A₀ threshold decision
  // reaches here with color_index == 0 (Alg. 3's leader entry).
  hot_->klass[id_] = color_index == 0 ? ColoringHot::kLeader
                                      : ColoringHot::kDecidedOther;
  color_index_ = color_index;  // color_v := i (Alg. 3 l. 1)
  clear_competitors();
  if (color_index == 0) {
    next_tc_ = 0;  // tc := 0, Q := ∅ (Alg. 3 l. 7–8)
    queue_.clear();
    serve_remaining_ = 0;
  }
  record_transition(ctx.now, ctx);
}

void ColoringNode::record_transition(Slot slot,
                                     const radio::SlotContext& ctx) {
  if (ctx.tracing()) {
    ctx.emit(obs::Event::phase_change(
        slot, id_, static_cast<std::uint8_t>(phase()), color_index_));
  }
  if (transitions_.size() >= kMaxTransitions) return;
  // A well-behaved run needs ≤ κ₂ + 3 entries; one up-front reservation
  // avoids the doubling reallocations on every node's log.
  if (transitions_.empty()) transitions_.reserve(8);
  transitions_.push_back({slot, phase(), color_index_});
}


void ColoringNode::on_receive(radio::SlotContext& ctx,
                              const radio::Message& msg) {
  switch (phase()) {
    case Phase::kVerify: {
      // A message from a node in C_i covering us (Alg. 1 l. 10/23)?
      const bool from_c0 = (msg.type == radio::MsgType::kDecided &&
                            msg.color_index == 0) ||
                           msg.type == radio::MsgType::kAssign;
      if (color_index_ == 0 && from_c0) {
        leader_ = msg.sender;  // L(v) := w
        hot_->klass[id_] = ColoringHot::kRequest;
        record_transition(ctx.now, ctx);
        return;
      }
      if (color_index_ > 0 && msg.type == radio::MsgType::kDecided &&
          msg.color_index == color_index_) {
        enter_verify(color_index_ + 1, ctx);  // A_suc = A_{i+1}
        return;
      }
      // Competitor report M_A^i(w, c_w) (Alg. 1 l. 6–9 / 27–30).
      if (msg.type == radio::MsgType::kCompete &&
          msg.color_index == color_index_) {
        const bool active = hot_->klass[id_] == ColoringHot::kCount;
        std::int64_t& counter = hot_->counter[id_];
        switch (params_->reset_policy) {
          case ResetPolicy::kCriticalRange: {
            store_competitor(msg.sender, msg.counter, ctx.now);
            if (active) {
              const std::int64_t range = critical_range_now();
              if (std::llabs(counter - msg.counter) <= range) {
                counter = chi_of_competitors(ctx.now);  // Alg. 1 l. 29
                ++stats_.resets;
                if (ctx.tracing()) {
                  ctx.emit(obs::Event::reset(ctx.now, id_, color_index_,
                                             counter));
                }
              }
            }
            break;
          }
          case ResetPolicy::kNaive: {
            // Strawman of Sect. 4: any higher counter resets us to 0.
            if (active && msg.counter > counter) {
              counter = 0;
              ++stats_.resets;
              if (ctx.tracing()) {
                ctx.emit(obs::Event::reset(ctx.now, id_, color_index_, 0));
              }
            }
            break;
          }
          case ResetPolicy::kNone:
            break;
        }
      }
      return;
    }

    case Phase::kRequest: {
      // Alg. 2 l. 3: M_C^0(L(v), v, tc_v) from our leader, addressed to us.
      if (msg.type == radio::MsgType::kAssign && msg.sender == leader_ &&
          msg.target == id_) {
        tc_ = msg.tc;
        ++stats_.assignments_heard;
        enter_verify(params_->first_verify_color(tc_), ctx);
      }
      return;
    }

    case Phase::kDecided: {
      if (color_index_ != 0) return;
      // Leader: enqueue new requests addressed to us (Alg. 3 l. 10–12).
      if (msg.type != radio::MsgType::kRequest || msg.target != id_) return;
      const NodeId requester = msg.sender;
      if (queue_.contains(requester)) return;  // already queued
      const bool was_served =
          std::find(served_.begin(), served_.end(), requester) !=
          served_.end();
      if (was_served) {
        ++stats_.duplicate_serves;
        if (params_->remember_served) return;  // extension: never re-serve
      }
      queue_.push_back(requester);
      return;
    }
  }
}

void ColoringNode::batch_cold_slot(NodeId v, Slot now, ColoringNode* nodes,
                                   Rng* rngs,
                                   std::vector<radio::Message>& out) {
  radio::SlotContext ctx;
  ctx.id = v;
  ctx.now = now;
  ctx.rng = &rngs[v];
  if (std::optional<radio::Message> msg = nodes[v].on_slot(ctx)) {
    out.push_back(*msg);
  }
}

void ColoringNode::store_competitor(NodeId who, std::int64_t value,
                                    Slot now) {
  const NodeId* ids = comp_who_.begin();
  const std::size_t n = comp_who_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (ids[i] == who) {
      comp_value_[i] = value;
      comp_stamp_[i] = now;
      return;
    }
  }
  comp_who_.push_back(who);
  comp_value_.push_back(value);
  comp_stamp_.push_back(now);
}

void ColoringNode::clear_competitors() {
  comp_who_.clear();
  comp_value_.clear();
  comp_stamp_.clear();
}

std::int64_t ColoringNode::chi_of_competitors(Slot now) const {
  // Scratch reused across calls (χ runs on every activation and every
  // counter reset; a per-call allocation was measurable).  thread_local
  // because experiment sweeps run one engine per worker thread.
  static thread_local std::vector<std::int64_t> aged;
  aged.clear();
  aged.reserve(comp_who_.size());
  for (std::size_t i = 0; i < comp_who_.size(); ++i) {
    aged.push_back(comp_value_[i] + (now - comp_stamp_[i]));
  }
  return chi(aged, critical_range_now());
}

// ---- postmortem checkpointing ---------------------------------------------

namespace {
/// Sanity cap on per-node container counts read from a checkpoint: a
/// node's competitors/queue/served lists are bounded by its neighborhood,
/// so anything this large marks a corrupt file, not a big run.
constexpr std::uint32_t kMaxCheckpointList = 1u << 24;
}  // namespace

void ColoringNode::save_state(obs::postmortem::Writer& w) const {
  // The URNC v1 layout predates the SoA hot block: it stores the
  // (phase, active) pair, which the klass byte round-trips through
  // losslessly (klass is a pure function of phase, active and color —
  // see load_state), so checkpoints stay byte-compatible.
  w.u8(static_cast<std::uint8_t>(phase()));
  w.boolean(hot_->klass[id_] == ColoringHot::kCount);
  w.u32(id_);
  w.i32(color_index_);
  w.i32(tc_);
  w.i64(hot_->counter[id_]);
  w.i64(hot_->passive_remaining[id_]);
  w.u32(static_cast<std::uint32_t>(comp_who_.size()));
  for (std::size_t i = 0; i < comp_who_.size(); ++i) {
    w.u32(comp_who_[i]);
    w.i64(comp_value_[i]);
    w.i64(comp_stamp_[i]);
  }
  w.u32(leader_);
  // RingQueue serialized front-to-back; push_back on load rebuilds the
  // same FIFO order (buffer capacity is not observable state).
  w.u32(static_cast<std::uint32_t>(queue_.size()));
  for (std::size_t i = 0; i < queue_.size(); ++i) w.u32(queue_.at(i));
  w.u32(static_cast<std::uint32_t>(served_.size()));
  for (const NodeId v : served_) w.u32(v);
  w.i32(next_tc_);
  w.i64(serve_remaining_);
  w.i32(serve_tc_);
  w.u32(stats_.resets);
  w.u32(stats_.verify_states);
  w.u32(stats_.assignments_heard);
  w.u32(stats_.duplicate_serves);
  w.u32(static_cast<std::uint32_t>(transitions_.size()));
  for (const Transition& t : transitions_) {
    w.i64(t.slot);
    w.u8(static_cast<std::uint8_t>(t.phase));
    w.i32(t.color_index);
  }
}

bool ColoringNode::load_state(obs::postmortem::Reader& r) {
  URN_CHECK(hot_ != nullptr);
  const std::uint8_t phase = r.u8();
  if (phase > static_cast<std::uint8_t>(Phase::kDecided)) return false;
  const bool active = r.boolean();
  if (r.u32() != id_) return false;  // checkpoint applied to wrong node
  color_index_ = r.i32();
  tc_ = r.i32();
  hot_->counter[id_] = r.i64();
  hot_->passive_remaining[id_] = r.i64();
  // Reconstruct the klass byte from the v1 (phase, active, color) triple.
  switch (static_cast<Phase>(phase)) {
    case Phase::kVerify:
      hot_->klass[id_] = active ? ColoringHot::kCount : ColoringHot::kPassive;
      break;
    case Phase::kRequest:
      hot_->klass[id_] = ColoringHot::kRequest;
      break;
    case Phase::kDecided:
      hot_->klass[id_] = color_index_ == 0 ? ColoringHot::kLeader
                                           : ColoringHot::kDecidedOther;
      break;
  }

  const std::uint32_t n_comp = r.u32();
  if (!r.ok() || n_comp > kMaxCheckpointList) return false;
  clear_competitors();
  for (std::uint32_t i = 0; i < n_comp; ++i) {
    comp_who_.push_back(r.u32());
    comp_value_.push_back(r.i64());
    comp_stamp_.push_back(r.i64());
  }
  leader_ = r.u32();

  const std::uint32_t n_queue = r.u32();
  if (!r.ok() || n_queue > kMaxCheckpointList) return false;
  queue_.clear();
  for (std::uint32_t i = 0; i < n_queue; ++i) queue_.push_back(r.u32());

  const std::uint32_t n_served = r.u32();
  if (!r.ok() || n_served > kMaxCheckpointList) return false;
  served_.clear();
  served_.reserve(n_served);
  for (std::uint32_t i = 0; i < n_served; ++i) served_.push_back(r.u32());

  next_tc_ = r.i32();
  serve_remaining_ = r.i64();
  serve_tc_ = r.i32();
  stats_.resets = r.u32();
  stats_.verify_states = r.u32();
  stats_.assignments_heard = r.u32();
  stats_.duplicate_serves = r.u32();

  const std::uint32_t n_trans = r.u32();
  if (!r.ok() || n_trans > kMaxTransitions) return false;
  transitions_.clear();
  transitions_.reserve(n_trans);
  for (std::uint32_t i = 0; i < n_trans; ++i) {
    Transition t;
    t.slot = r.i64();
    t.phase = static_cast<Phase>(r.u8());
    t.color_index = r.i32();
    transitions_.push_back(t);
  }
  return r.ok();
}

}  // namespace urn::core
