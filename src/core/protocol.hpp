/// \file protocol.hpp
/// \brief The coloring protocol of Sect. 4 — Algorithms 1, 2 and 3 as a
///        single per-node state machine driven by the radio engine.
///
/// State diagram (Fig. 2):
///
///     Z ──wake──▶ A₀ ──c_v ≥ σΔlog n──▶ C₀ (leader)
///                 │ M_C⁰                      │ serves FIFO queue of
///                 ▼                           │ M_R requests with
///                 R ──M_C⁰(L(v),v,tc)──▶ A_{tc(κ₂+1)} ─▶ … ─▶ C_i
///                                             │ M_C^i
///                                             ▼
///                                           A_{i+1}
///
/// Faithfulness notes (mapped to paper lines):
///  * passive phase of ⌈αΔ log n⌉ slots on every A_i entry (Alg. 1 l. 4);
///  * competitor list P_v stores (value, slot) pairs; the per-slot +1 aging
///    of d_v(w) (Alg. 1 l. 5/18) is computed lazily as value + elapsed;
///  * reset to χ(P_v) only when a received counter is within the critical
///    range ⌈γζ_i log n⌉ (Alg. 1 l. 29);
///  * threshold test precedes the transmission attempt within a slot
///    (Alg. 1 l. 19 before l. 22), and a node that decides starts behaving
///    as C_i in the same slot;
///  * leaders keep a requester in the queue for the whole ⌈β log n⌉
///    broadcast window and re-admit it afterwards if it requests again
///    (Alg. 3 l. 10 checks only current queue membership) — the optional
///    `remember_served` extension suppresses re-admission (ablation A3);
///  * any message from a node in C₀ (beacon or assignment) identifies a
///    leader to an A₀ listener (Fig. 2 transition M_C⁰).
///
/// **Draw-order spec v1** (fixed in PR 5, preserved verbatim since):
/// every node draws only from its own `mix_seed(seed, id)` xoshiro
/// stream, in its awake-list visit order — (wake slot, id) ascending
/// while the network is waking, id-ascending once all nodes are awake —
/// and the medium draws drop chances from `mix_seed(seed, 0xFADED)` in
/// first-touch listener order.  Every engine (optimized, misaligned,
/// naive reference) and both protocol sweeps (the scalar `on_slot` loop
/// and the SoA `batch_slots` pass) implement this same sequence, which
/// is what makes them bit-comparable; `tests/test_reference_diff.cpp`
/// is the arbiter.  Changing the spec (a v2) means re-baselining every
/// exact key under bench/.

#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "graph/coloring.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "support/check.hpp"
#include "support/containers.hpp"
#include "support/rng.hpp"

namespace urn::core {

using graph::NodeId;
using radio::Slot;

/// Top-level protocol states (A_i and C_i carry the color index i).
enum class Phase : std::uint8_t {
  kVerify,   ///< A_i: verifying / competing for color i (Algorithm 1)
  kRequest,  ///< R: requesting an intra-cluster color (Algorithm 2)
  kDecided,  ///< C_i: color i fixed (Algorithm 3)
};

/// Engine-owned structure-of-arrays block holding every `ColoringNode`
/// field the per-slot sweep reads or writes.  The engine constructs one
/// block per run and attaches every node to it (`attach_hot`); a node
/// indexes the arrays with its own id.  The cold tail (competitor
/// `SmallVec`, leader `RingQueue`, stats, transition log) stays inside
/// the node object and is touched only on receive events and phase
/// transitions, so the hot sweep streams three small arrays instead of
/// striding over 200+-byte node records.
///
/// `klass` collapses the old (phase, active, leader?) triple into one
/// byte, ordered so the per-slot dispatch and the decided test are each
/// a single compare.  Invariants: `kLeader` ⟺ decided with color 0
/// (only an A₀ threshold decision yields color 0), `kCount` ⟺ the old
/// `active_` flag, and the checkpoint codec round-trips through the
/// original (phase, active) pair so the URNC v1 layout is unchanged.
struct ColoringHot {
  enum Klass : std::uint8_t {
    kPassive = 0,       ///< A_i, passive listening (Alg. 1 l. 4–14)
    kCount = 1,         ///< A_i, actively counting (Alg. 1 l. 15–26)
    kRequest = 2,       ///< R, requesting (Algorithm 2)
    kDecidedOther = 3,  ///< C_i with i > 0, announcing (Alg. 3 l. 4)
    kLeader = 4,        ///< C₀, serving its cluster (Algorithm 3)
  };

  explicit ColoringHot(std::size_t n)
      : klass(n, kPassive), counter(n, 0), passive_remaining(n, 0) {}

  /// O(1) decided test without touching the node object.
  [[nodiscard]] bool decided(NodeId v) const {
    return klass[v] >= kDecidedOther;
  }

  std::vector<std::uint8_t> klass;              ///< state byte per node
  std::vector<std::int64_t> counter;            ///< c_v
  std::vector<std::int64_t> passive_remaining;  ///< passive slots left

  // Params-derived scalars shared by every node of a run (all nodes are
  // built from one immutable `Params`); cached here so the batched sweep
  // compares against registers instead of re-loading per-node copies.
  std::int64_t threshold = 0;  ///< ⌈σΔ log n⌉
  double p_active = 0.0;       ///< 1/(κ₂Δ)
};

/// Per-node event counters for experiments and ablations.
struct NodeStats {
  std::uint32_t resets = 0;            ///< counter resets via Alg. 1 l. 29
  std::uint32_t verify_states = 0;     ///< number of A_i states entered
  std::uint32_t assignments_heard = 0; ///< intra-cluster colors received
  std::uint32_t duplicate_serves = 0;  ///< leader only: re-served requesters
};

/// One state-machine transition, recorded for tracing/verification.
/// The sequence of these per node must follow Fig. 2:
/// A₀ → {C₀ | R}, R → A_{tc(κ₂+1)}, A_i → {C_i | A_{i+1}} for i > 0.
/// When the engine carries an event sink, each record is also emitted as
/// an obs::EventKind::kPhase event (plus kReset / kServe for Alg. 1 l. 29
/// resets and Alg. 3 window completions).
struct Transition {
  Slot slot = 0;                ///< local slot of the transition
  Phase phase = Phase::kVerify; ///< state entered
  std::int32_t color_index = 0; ///< i of A_i / C_i (unused for R)
};

/// One protocol participant; plugged into radio::Engine<ColoringNode>.
///
/// Hot per-slot state (state byte, counter, passive countdown) lives in
/// an engine-owned `ColoringHot` SoA block — see `Hot` / `attach_hot`.
/// A node must be attached to a block before any callback runs; the
/// engines attach every node in their constructors, and unit tests
/// drive a node standalone by attaching a one-entry block.
class ColoringNode {
 public:
  /// Engine-discovered SoA hot-state type (radio::HotStateOf).
  using Hot = ColoringHot;

  ColoringNode() = default;

  /// \param params shared parameter set (must outlive the node)
  /// \param id this node's identifier
  ///
  /// Params-derived quantities used every slot (threshold, sending
  /// probabilities, passive length, critical ranges) are computed once
  /// here: `Params` is immutable for the lifetime of a run, and e.g.
  /// `threshold()` hides a `std::log` that would otherwise run per
  /// node-slot on the hot path.
  ColoringNode(const Params* params, NodeId id)
      : id_(id),
        threshold_(params->threshold()),
        p_active_(params->p_active()),
        p_leader_(params->p_leader()),
        params_(params),
        passive_slots_(params->passive_slots()),
        assign_window_(params->assign_window()),
        critical_range0_(params->critical_range(0)),
        critical_rangeN_(params->critical_range(1)) {}

  /// Point this node at the run's SoA hot block and reset its hot entry
  /// to the pre-wake state.  Also publishes the shared Params-derived
  /// scalars (threshold, p_active) into the block — identical for every
  /// node of a run, asserted in debug builds.
  void attach_hot(ColoringHot* hot) {
    hot_ = hot;
    URN_DCHECK(id_ < hot->klass.size());
    URN_DCHECK(hot->threshold == 0 || hot->threshold == threshold_);
    hot->threshold = threshold_;
    hot->p_active = p_active_;
    hot->klass[id_] = ColoringHot::kPassive;
    hot->counter[id_] = 0;
    hot->passive_remaining[id_] = 0;
  }

  // --- radio::NodeProtocol interface -------------------------------------

  void on_wake(radio::SlotContext& ctx);
  std::optional<radio::Message> on_slot(radio::SlotContext& ctx);
  void on_receive(radio::SlotContext& ctx, const radio::Message& msg);
  [[nodiscard]] bool decided() const {
    return hot_->klass[id_] >= ColoringHot::kDecidedOther;
  }

  /// One whole-slot protocol pass over the engine's awake list — the
  /// structure-of-arrays replacement for calling `on_slot` per node.
  /// Bit-identical to the scalar loop by construction (draw-order spec
  /// v1 of PR 5 is preserved exactly):
  ///
  ///  * nodes are visited in ascending awake-list position — the scalar
  ///    loop's exact order — so messages land in the same transmitter
  ///    order (which pins the medium-RNG drop-draw sequence under
  ///    drop_probability > 0);
  ///  * each node's own RNG consumption is unchanged: the fast classes
  ///    draw the one raw xoshiro word their scalar `chance(p_active)`
  ///    would, rephrased as an exact integer compare (see the proof at
  ///    the cutoff computation), and the cold classes (activation with
  ///    its χ reset and possible threshold decision, leader service) run
  ///    the full scalar `on_slot`.
  ///
  /// The win over the scalar loop is mechanical, not semantic: one
  /// branch on the hot `klass` byte instead of the nested phase
  /// dispatch, no per-node SlotContext / std::optional<Message>
  /// construction on the non-transmitting fast path, and a Bernoulli
  /// compare against a precomputed integer cutoff instead of an
  /// int→double conversion + double compare per draw.  Only called on
  /// untraced engines (no sink), where `ctx.tracing()` is false for
  /// every node.
  static void batch_slots(ColoringHot& hot, const NodeId* awake,
                          std::size_t count, Slot now, ColoringNode* nodes,
                          Rng* rngs, std::vector<radio::Message>& out);

 private:
  /// The irregular minority of `batch_slots` node-slots (activation with
  /// its χ reset and possible threshold decision, leader service): runs
  /// the full scalar `on_slot`, so RNG consumption and message position
  /// match the scalar loop trivially.  Deliberately defined out of line
  /// (protocol.cpp) — with `on_slot` expanded in place the fused loop
  /// grows past what the compiler will keep in registers (measured ~25%
  /// throughput loss).
  static void batch_cold_slot(NodeId v, Slot now, ColoringNode* nodes,
                              Rng* rngs, std::vector<radio::Message>& out);

 public:

  // --- inspection ---------------------------------------------------------

  [[nodiscard]] Phase phase() const {
    const std::uint8_t k = hot_->klass[id_];
    if (k <= ColoringHot::kCount) return Phase::kVerify;
    return k == ColoringHot::kRequest ? Phase::kRequest : Phase::kDecided;
  }
  /// Final color (graph::kUncolored until decided).
  [[nodiscard]] graph::Color color() const {
    return decided() ? color_index_ : graph::kUncolored;
  }
  /// Color index currently verified (only meaningful in kVerify).
  [[nodiscard]] std::int32_t verifying_color() const { return color_index_; }
  [[nodiscard]] bool is_leader() const {
    return hot_->klass[id_] == ColoringHot::kLeader;
  }
  /// Leader this node associated with (kInvalidNode for leaders / pre-R).
  [[nodiscard]] NodeId leader() const { return leader_; }
  /// Intra-cluster color received from the leader (−1 before assignment).
  [[nodiscard]] std::int32_t intra_cluster_color() const { return tc_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t counter() const { return hot_->counter[id_]; }
  /// Current competitor-list size |P_v|.
  [[nodiscard]] std::size_t competitors() const { return comp_who_.size(); }
  /// The node's state-transition history (capped at kMaxTransitions).
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }

  /// Transition-log capacity; a well-behaved run needs ≤ κ₂ + 3 entries.
  static constexpr std::size_t kMaxTransitions = 256;

  // --- postmortem checkpointing -------------------------------------------

  /// Serialize every mutable protocol field (the Params-derived caches
  /// are reconstructed by the constructor from the scenario and are
  /// skipped).  Layout is part of the URNC checkpoint format.
  void save_state(obs::postmortem::Writer& w) const;

  /// Restore fields written by `save_state` into a node constructed with
  /// the same (params, id).  Returns false on a truncated/corrupt buffer.
  [[nodiscard]] bool load_state(obs::postmortem::Reader& r);

 private:
  void enter_verify(std::int32_t color_index, const radio::SlotContext& ctx);
  void enter_decided(std::int32_t color_index, const radio::SlotContext& ctx);
  void record_transition(Slot slot, const radio::SlotContext& ctx);
  void store_competitor(NodeId who, std::int64_t value, Slot now);
  void clear_competitors();
  [[nodiscard]] std::int64_t chi_of_competitors(Slot now) const;
  std::optional<radio::Message> leader_slot(radio::SlotContext& ctx);
  std::optional<radio::Message> count_slot(radio::SlotContext& ctx);

  /// ⌈γζ_i log n⌉ for the current color index, from the cached pair.
  [[nodiscard]] std::int64_t critical_range_now() const {
    return color_index_ == 0 ? critical_range0_ : critical_rangeN_;
  }

  // Hot per-slot state lives in the engine-owned SoA block; the fields
  // kept here are read on transitions, receive events, or only for the
  // transmitting minority of slots.
  ColoringHot* hot_ = nullptr;    ///< run-wide SoA block (attach_hot)
  NodeId id_ = graph::kInvalidNode;
  std::int32_t color_index_ = 0;  ///< i of the current A_i / C_i
  std::int32_t tc_ = -1;          ///< intra-cluster color
  std::int64_t threshold_ = 0;    ///< cached ⌈σΔ log n⌉
  double p_active_ = 0.0;         ///< cached 1/(κ₂Δ)
  double p_leader_ = 0.0;         ///< cached 1/κ₂

  // Cached Params-derived constants for colder paths.
  const Params* params_ = nullptr;
  std::int64_t passive_slots_ = 0;
  std::int64_t assign_window_ = 0;
  std::int64_t critical_range0_ = 0;  ///< ζ = 1 (color index 0)
  std::int64_t critical_rangeN_ = 0;  ///< ζ = Δ (color index > 0)

  // P_v with the stored counter copies d_v(w), aged lazily as
  // value + (now − stamp) (Alg. 1 l. 5/18).  Parallel arrays rather than
  // an array of records: every matching competitor report delivered to a
  // verifying node scans the membership for the sender — the single
  // hottest receive-path loop, ~10⁸ executions in a large run — and the
  // id-only scan walks contiguous 4-byte keys instead of striding
  // 24-byte structs (6× fewer cache lines per scan).
  SmallVec<NodeId, 8> comp_who_;          ///< P_v membership (scan key)
  SmallVec<std::int64_t, 8> comp_value_;  ///< d_v(w) as of comp_stamp_
  SmallVec<Slot, 8> comp_stamp_;          ///< slot the value was stored

  NodeId leader_ = graph::kInvalidNode;  ///< L(v)

  // Leader (C₀) service state (Algorithm 3).
  RingQueue<NodeId> queue_;              ///< FIFO request queue Q
  std::vector<NodeId> served_;           ///< requesters already served
  std::int32_t next_tc_ = 0;             ///< running intra-cluster color
  std::int64_t serve_remaining_ = 0;     ///< slots left in current window
  std::int32_t serve_tc_ = 0;

  NodeStats stats_;
  std::vector<Transition> transitions_;
};

// ---- hot-path definitions -------------------------------------------------
// `on_slot` (and the leader service slot it dispatches to) runs once per
// node per slot inside the engine's fully-inlined loop; defining it here
// lets the engine template inline it instead of paying an out-of-line
// call (and a by-value std::optional<Message> return) per node-slot.

inline std::optional<radio::Message> ColoringNode::on_slot(
    radio::SlotContext& ctx) {
  switch (hot_->klass[id_]) {
    case ColoringHot::kPassive: {
      // Passive listening phase (Alg. 1 l. 4–14): d_v(w) copies age
      // implicitly; no transmissions.
      std::int64_t& passive = hot_->passive_remaining[id_];
      if (passive > 0) {
        --passive;
        return std::nullopt;
      }
      // c_v := χ(P_v) (Alg. 1 l. 15), then become active.  The naive /
      // no-reset ablations skip χ and start from 0.
      hot_->counter[id_] =
          (params_->reset_policy == ResetPolicy::kCriticalRange)
              ? chi_of_competitors(ctx.now)
              : 0;
      hot_->klass[id_] = ColoringHot::kCount;
      return count_slot(ctx);
    }

    case ColoringHot::kCount:
      return count_slot(ctx);

    case ColoringHot::kRequest: {
      // Alg. 2 l. 2: transmit M_R(v, L(v)) with probability 1/(κ₂Δ).
      if (ctx.random().chance(p_active_)) {
        return radio::make_request(id_, leader_);
      }
      return std::nullopt;
    }

    case ColoringHot::kLeader:
      return leader_slot(ctx);

    default: {  // kDecidedOther
      // Alg. 3 l. 4: non-leader C_i keeps announcing its color.
      if (ctx.random().chance(p_active_)) {
        return radio::make_decided(id_, color_index_);
      }
      return std::nullopt;
    }
  }
}

inline std::optional<radio::Message> ColoringNode::count_slot(
    radio::SlotContext& ctx) {
  std::int64_t& counter = hot_->counter[id_];
  ++counter;  // Alg. 1 l. 17
  if (counter >= threshold_) {
    // Alg. 1 l. 19–20: decide color i and start Algorithm 3 at once.
    enter_decided(color_index_, ctx);
    return on_slot(ctx);
  }
  if (ctx.random().chance(p_active_)) {
    return radio::make_compete(id_, color_index_, counter);
  }
  return std::nullopt;
}

inline std::optional<radio::Message> ColoringNode::leader_slot(
    radio::SlotContext& ctx) {
  // Start serving the next request if idle (Alg. 3 l. 15–17).
  if (serve_remaining_ == 0 && !queue_.empty()) {
    serve_tc_ = ++next_tc_;
    serve_remaining_ = assign_window_;
  }
  if (serve_remaining_ > 0) {
    const NodeId target = queue_.front();
    --serve_remaining_;
    const bool transmit = ctx.random().chance(p_leader_);
    if (serve_remaining_ == 0) {
      // Window exhausted: remove w from Q (Alg. 3 l. 21).
      served_.push_back(target);
      queue_.pop_front();
      if (ctx.tracing()) {
        ctx.emit(obs::Event::serve(ctx.now, id_, target, serve_tc_));
      }
    }
    if (transmit) return radio::make_assign(id_, target, serve_tc_);
    return std::nullopt;
  }
  // Idle beacon (Alg. 3 l. 13–14).
  if (ctx.random().chance(p_leader_)) {
    return radio::make_decided(id_, 0);
  }
  return std::nullopt;
}

inline void ColoringNode::batch_slots(ColoringHot& hot, const NodeId* awake,
                                      std::size_t count, Slot now,
                                      ColoringNode* nodes, Rng* rngs,
                                      std::vector<radio::Message>& out) {
  const double p = hot.p_active;
  if (!(p > 0.0 && p < 1.0)) {
    // Degenerate transmit probability: `chance(p)` consumes no
    // randomness, so there is nothing to batch — run the scalar slots.
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId v = awake[i];
      radio::SlotContext ctx;
      ctx.id = v;
      ctx.now = now;
      ctx.rng = &rngs[v];
      if (std::optional<radio::Message> msg = nodes[v].on_slot(ctx)) {
        out.push_back(*msg);
      }
    }
    return;
  }

  // Exact integer form of the Bernoulli draw.  `uniform() < p` computes
  // (double)u · 2⁻⁵³ < p with u = (x >> 11) ∈ [0, 2⁵³); every step is
  // exact (u has ≤ 53 significant bits, and scaling by a power of two
  // neither rounds nor over/underflows here), so the comparison holds
  // iff u < p·2⁵³ over the reals, iff u < ⌈p·2⁵³⌉ for integral u.  With
  // 0 < p < 1, p·2⁵³ and its ceiling are themselves computed exactly in
  // double, so the cutoff is the true ⌈p·2⁵³⌉ and the integer compare
  // reproduces the double compare bit-for-bit — while keeping the draw
  // free of the int→double conversion on the critical path.
  const auto tx_cut = static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));

  std::uint8_t* klass = hot.klass.data();
  std::int64_t* counter = hot.counter.data();
  std::int64_t* passive = hot.passive_remaining.data();
  const std::int64_t threshold = hot.threshold;

  // The awake list holds distinct live node ids and is id-sorted from
  // the slot the last node wakes, so a full list IS the identity
  // permutation: walk ids directly and spare the hot loop one dependent
  // load per node-slot.  This is the steady state of every long run
  // (all awake, none deactivated).
  const bool identity = count == hot.klass.size();

  // One fused pass in scalar node order.  The branch chain is ordered
  // by late-run frequency: once a node decides it spends every further
  // slot in kDecidedOther, so long runs are dominated by the first
  // test, a one-byte load + compare + one RNG draw per node-slot.  The
  // irregular work (activation, threshold decisions, leader service)
  // lives out of line in `batch_cold_slot` so the loop body stays small
  // enough for the compiler to keep its state in registers.
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId v = identity ? static_cast<NodeId>(i) : awake[i];
    const std::uint8_t k = klass[v];
    if (k == ColoringHot::kDecidedOther) {
      // Alg. 3 l. 4: non-leader C_i keeps announcing its color.
      if ((rngs[v]() >> 11) < tx_cut) {
        out.push_back(radio::make_decided(v, nodes[v].color_index_));
      }
    } else if (k == ColoringHot::kCount) {
      const std::int64_t c = counter[v] + 1;  // Alg. 1 l. 17
      if (c >= threshold) {
        batch_cold_slot(v, now, nodes, rngs, out);  // decides (re-increments)
      } else {
        counter[v] = c;
        if ((rngs[v]() >> 11) < tx_cut) {
          out.push_back(radio::make_compete(v, nodes[v].color_index_, c));
        }
      }
    } else if (k == ColoringHot::kPassive) {
      std::int64_t& left = passive[v];
      if (left > 0) {
        --left;  // Alg. 1 l. 4–14: listen silently
      } else {
        batch_cold_slot(v, now, nodes, rngs, out);  // activates (χ, …)
      }
    } else if (k == ColoringHot::kRequest) {
      // Alg. 2 l. 2: transmit M_R(v, L(v)) with probability 1/(κ₂Δ).
      if ((rngs[v]() >> 11) < tx_cut) {
        out.push_back(radio::make_request(v, nodes[v].leader_));
      }
    } else {  // kLeader
      batch_cold_slot(v, now, nodes, rngs, out);  // Algorithm 3 service
    }
  }
}

static_assert(radio::NodeProtocol<ColoringNode>);

}  // namespace urn::core
