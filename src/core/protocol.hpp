/// \file protocol.hpp
/// \brief The coloring protocol of Sect. 4 — Algorithms 1, 2 and 3 as a
///        single per-node state machine driven by the radio engine.
///
/// State diagram (Fig. 2):
///
///     Z ──wake──▶ A₀ ──c_v ≥ σΔlog n──▶ C₀ (leader)
///                 │ M_C⁰                      │ serves FIFO queue of
///                 ▼                           │ M_R requests with
///                 R ──M_C⁰(L(v),v,tc)──▶ A_{tc(κ₂+1)} ─▶ … ─▶ C_i
///                                             │ M_C^i
///                                             ▼
///                                           A_{i+1}
///
/// Faithfulness notes (mapped to paper lines):
///  * passive phase of ⌈αΔ log n⌉ slots on every A_i entry (Alg. 1 l. 4);
///  * competitor list P_v stores (value, slot) pairs; the per-slot +1 aging
///    of d_v(w) (Alg. 1 l. 5/18) is computed lazily as value + elapsed;
///  * reset to χ(P_v) only when a received counter is within the critical
///    range ⌈γζ_i log n⌉ (Alg. 1 l. 29);
///  * threshold test precedes the transmission attempt within a slot
///    (Alg. 1 l. 19 before l. 22), and a node that decides starts behaving
///    as C_i in the same slot;
///  * leaders keep a requester in the queue for the whole ⌈β log n⌉
///    broadcast window and re-admit it afterwards if it requests again
///    (Alg. 3 l. 10 checks only current queue membership) — the optional
///    `remember_served` extension suppresses re-admission (ablation A3);
///  * any message from a node in C₀ (beacon or assignment) identifies a
///    leader to an A₀ listener (Fig. 2 transition M_C⁰).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "graph/coloring.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "support/containers.hpp"

namespace urn::core {

using graph::NodeId;
using radio::Slot;

/// Top-level protocol states (A_i and C_i carry the color index i).
enum class Phase : std::uint8_t {
  kVerify,   ///< A_i: verifying / competing for color i (Algorithm 1)
  kRequest,  ///< R: requesting an intra-cluster color (Algorithm 2)
  kDecided,  ///< C_i: color i fixed (Algorithm 3)
};

/// Per-node event counters for experiments and ablations.
struct NodeStats {
  std::uint32_t resets = 0;            ///< counter resets via Alg. 1 l. 29
  std::uint32_t verify_states = 0;     ///< number of A_i states entered
  std::uint32_t assignments_heard = 0; ///< intra-cluster colors received
  std::uint32_t duplicate_serves = 0;  ///< leader only: re-served requesters
};

/// One state-machine transition, recorded for tracing/verification.
/// The sequence of these per node must follow Fig. 2:
/// A₀ → {C₀ | R}, R → A_{tc(κ₂+1)}, A_i → {C_i | A_{i+1}} for i > 0.
/// When the engine carries an event sink, each record is also emitted as
/// an obs::EventKind::kPhase event (plus kReset / kServe for Alg. 1 l. 29
/// resets and Alg. 3 window completions).
struct Transition {
  Slot slot = 0;                ///< local slot of the transition
  Phase phase = Phase::kVerify; ///< state entered
  std::int32_t color_index = 0; ///< i of A_i / C_i (unused for R)
};

/// One protocol participant; plugged into radio::Engine<ColoringNode>.
class ColoringNode {
 public:
  ColoringNode() = default;

  /// \param params shared parameter set (must outlive the node)
  /// \param id this node's identifier
  ///
  /// Params-derived quantities used every slot (threshold, sending
  /// probabilities, passive length, critical ranges) are computed once
  /// here: `Params` is immutable for the lifetime of a run, and e.g.
  /// `threshold()` hides a `std::log` that would otherwise run per
  /// node-slot on the hot path.
  ColoringNode(const Params* params, NodeId id)
      : id_(id),
        threshold_(params->threshold()),
        p_active_(params->p_active()),
        p_leader_(params->p_leader()),
        params_(params),
        passive_slots_(params->passive_slots()),
        assign_window_(params->assign_window()),
        critical_range0_(params->critical_range(0)),
        critical_rangeN_(params->critical_range(1)) {}

  // --- radio::NodeProtocol interface -------------------------------------

  void on_wake(radio::SlotContext& ctx);
  std::optional<radio::Message> on_slot(radio::SlotContext& ctx);
  void on_receive(radio::SlotContext& ctx, const radio::Message& msg);
  [[nodiscard]] bool decided() const { return phase_ == Phase::kDecided; }

  // --- inspection ---------------------------------------------------------

  [[nodiscard]] Phase phase() const { return phase_; }
  /// Final color (graph::kUncolored until decided).
  [[nodiscard]] graph::Color color() const {
    return decided() ? color_index_ : graph::kUncolored;
  }
  /// Color index currently verified (only meaningful in kVerify).
  [[nodiscard]] std::int32_t verifying_color() const { return color_index_; }
  [[nodiscard]] bool is_leader() const {
    return decided() && color_index_ == 0;
  }
  /// Leader this node associated with (kInvalidNode for leaders / pre-R).
  [[nodiscard]] NodeId leader() const { return leader_; }
  /// Intra-cluster color received from the leader (−1 before assignment).
  [[nodiscard]] std::int32_t intra_cluster_color() const { return tc_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t counter() const { return counter_; }
  /// Current competitor-list size |P_v|.
  [[nodiscard]] std::size_t competitors() const { return competitors_.size(); }
  /// The node's state-transition history (capped at kMaxTransitions).
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }

  /// Transition-log capacity; a well-behaved run needs ≤ κ₂ + 3 entries.
  static constexpr std::size_t kMaxTransitions = 256;

  // --- postmortem checkpointing -------------------------------------------

  /// Serialize every mutable protocol field (the Params-derived caches
  /// are reconstructed by the constructor from the scenario and are
  /// skipped).  Layout is part of the URNC checkpoint format.
  void save_state(obs::postmortem::Writer& w) const;

  /// Restore fields written by `save_state` into a node constructed with
  /// the same (params, id).  Returns false on a truncated/corrupt buffer.
  [[nodiscard]] bool load_state(obs::postmortem::Reader& r);

 private:
  /// A locally stored competitor counter d_v(w): `value` as of `stamp`,
  /// aged by +1 per slot (Alg. 1 l. 5/18), evaluated lazily.
  struct Competitor {
    NodeId who = graph::kInvalidNode;
    std::int64_t value = 0;
    Slot stamp = 0;

    [[nodiscard]] std::int64_t aged(Slot now) const {
      return value + (now - stamp);
    }
  };

  void enter_verify(std::int32_t color_index, const radio::SlotContext& ctx);
  void enter_decided(std::int32_t color_index, const radio::SlotContext& ctx);
  void record_transition(Slot slot, const radio::SlotContext& ctx);
  void store_competitor(NodeId who, std::int64_t value, Slot now);
  [[nodiscard]] std::int64_t chi_of_competitors(Slot now) const;
  std::optional<radio::Message> leader_slot(radio::SlotContext& ctx);

  /// ⌈γζ_i log n⌉ for the current color index, from the cached pair.
  [[nodiscard]] std::int64_t critical_range_now() const {
    return color_index_ == 0 ? critical_range0_ : critical_rangeN_;
  }

  // Hot fields first: everything `on_slot` touches in its non-transmitting
  // fast paths (a decided node reads phase_/color_index_/p_active_; an
  // active verifier additionally counter_/threshold_) sits in the first
  // 64 bytes, so the engine's per-slot sweep over all nodes streams one
  // cache line per node instead of scattering across the object.
  Phase phase_ = Phase::kVerify;
  bool active_ = false;
  NodeId id_ = graph::kInvalidNode;
  std::int32_t color_index_ = 0;  ///< i of the current A_i / C_i
  std::int32_t tc_ = -1;          ///< intra-cluster color
  std::int64_t counter_ = 0;      ///< c_v
  std::int64_t passive_remaining_ = 0;
  std::int64_t threshold_ = 0;    ///< cached ⌈σΔ log n⌉
  double p_active_ = 0.0;         ///< cached 1/(κ₂Δ)
  double p_leader_ = 0.0;         ///< cached 1/κ₂

  // Cached Params-derived constants for colder paths.
  const Params* params_ = nullptr;
  std::int64_t passive_slots_ = 0;
  std::int64_t assign_window_ = 0;
  std::int64_t critical_range0_ = 0;  ///< ζ = 1 (color index 0)
  std::int64_t critical_rangeN_ = 0;  ///< ζ = Δ (color index > 0)

  SmallVec<Competitor, 8> competitors_;  ///< P_v with stored d_v(w)

  NodeId leader_ = graph::kInvalidNode;  ///< L(v)

  // Leader (C₀) service state (Algorithm 3).
  RingQueue<NodeId> queue_;              ///< FIFO request queue Q
  std::vector<NodeId> served_;           ///< requesters already served
  std::int32_t next_tc_ = 0;             ///< running intra-cluster color
  std::int64_t serve_remaining_ = 0;     ///< slots left in current window
  std::int32_t serve_tc_ = 0;

  NodeStats stats_;
  std::vector<Transition> transitions_;
};

// ---- hot-path definitions -------------------------------------------------
// `on_slot` (and the leader service slot it dispatches to) runs once per
// node per slot inside the engine's fully-inlined loop; defining it here
// lets the engine template inline it instead of paying an out-of-line
// call (and a by-value std::optional<Message> return) per node-slot.

inline std::optional<radio::Message> ColoringNode::on_slot(
    radio::SlotContext& ctx) {
  switch (phase_) {
    case Phase::kVerify: {
      if (!active_) {
        // Passive listening phase (Alg. 1 l. 4–14): d_v(w) copies age
        // implicitly; no transmissions.
        if (passive_remaining_ > 0) {
          --passive_remaining_;
          return std::nullopt;
        }
        // c_v := χ(P_v) (Alg. 1 l. 15), then become active.  The naive /
        // no-reset ablations skip χ and start from 0.
        counter_ = (params_->reset_policy == ResetPolicy::kCriticalRange)
                       ? chi_of_competitors(ctx.now)
                       : 0;
        active_ = true;
      }
      ++counter_;  // Alg. 1 l. 17
      if (counter_ >= threshold_) {
        // Alg. 1 l. 19–20: decide color i and start Algorithm 3 at once.
        enter_decided(color_index_, ctx);
        return on_slot(ctx);
      }
      if (ctx.random().chance(p_active_)) {
        return radio::make_compete(id_, color_index_, counter_);
      }
      return std::nullopt;
    }

    case Phase::kRequest: {
      // Alg. 2 l. 2: transmit M_R(v, L(v)) with probability 1/(κ₂Δ).
      if (ctx.random().chance(p_active_)) {
        return radio::make_request(id_, leader_);
      }
      return std::nullopt;
    }

    case Phase::kDecided: {
      if (color_index_ == 0) return leader_slot(ctx);
      // Alg. 3 l. 4: non-leader C_i keeps announcing its color.
      if (ctx.random().chance(p_active_)) {
        return radio::make_decided(id_, color_index_);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

inline std::optional<radio::Message> ColoringNode::leader_slot(
    radio::SlotContext& ctx) {
  // Start serving the next request if idle (Alg. 3 l. 15–17).
  if (serve_remaining_ == 0 && !queue_.empty()) {
    serve_tc_ = ++next_tc_;
    serve_remaining_ = assign_window_;
  }
  if (serve_remaining_ > 0) {
    const NodeId target = queue_.front();
    --serve_remaining_;
    const bool transmit = ctx.random().chance(p_leader_);
    if (serve_remaining_ == 0) {
      // Window exhausted: remove w from Q (Alg. 3 l. 21).
      served_.push_back(target);
      queue_.pop_front();
      if (ctx.tracing()) {
        ctx.emit(obs::Event::serve(ctx.now, id_, target, serve_tc_));
      }
    }
    if (transmit) return radio::make_assign(id_, target, serve_tc_);
    return std::nullopt;
  }
  // Idle beacon (Alg. 3 l. 13–14).
  if (ctx.random().chance(p_leader_)) {
    return radio::make_decided(id_, 0);
  }
  return std::nullopt;
}

static_assert(radio::NodeProtocol<ColoringNode>);

}  // namespace urn::core
