#include "core/runner.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "core/checkpoint.hpp"
#include "obs/bintrace.hpp"
#include "obs/profile.hpp"
#include "obs/sink.hpp"
#include "obs/telemetry.hpp"
#include "support/check.hpp"

namespace urn::core {

Slot RunResult::max_latency() const {
  Slot best = 0;
  for (Slot t : latency) best = std::max(best, t);
  return best;
}

double RunResult::mean_latency() const {
  if (latency.empty()) return 0.0;
  double sum = 0.0;
  for (Slot t : latency) sum += static_cast<double>(t);
  return sum / static_cast<double>(latency.size());
}

Slot default_slot_budget(const Params& params,
                         const radio::WakeSchedule& schedule) {
  // Theorem 3: every node decides within O(κ₂⁴ Δ log n) of its wake-up.
  // Budget = last wake + a large multiple of the per-state quantities.
  const double k2 = params.kappa2;
  const Slot per_state = params.passive_slots() + 3 * params.threshold() +
                         2 * params.critical_range(1);
  const auto states = static_cast<Slot>(3.0 * (k2 + 2.0));
  return schedule.latest() + states * per_state + 10000;
}

namespace {

/// The one shared execution path: build nodes, run the (sink-templated)
/// engine, extract everything the experiments need.  `run_coloring` calls
/// this with the zero-overhead NullSink instantiation; the traced variant
/// with a real sink.
template <obs::EventSink S,
          typename T = obs::telemetry::NullEngineProbe,
          typename C = obs::postmortem::NullCheckpointer>
RunResult run_impl(const graph::Graph& g, const Params& params,
                   const radio::WakeSchedule& schedule, std::uint64_t seed,
                   Slot max_slots, radio::MediumOptions medium, S* sink,
                   obs::SpanSink* spans = nullptr, T* probe = nullptr,
                   C* ckpt = nullptr) {
  params.validate();
  URN_CHECK(schedule.size() == g.num_nodes());
  if (max_slots == 0) max_slots = default_slot_budget(params, schedule);

  obs::ProfileScope profile("core.run_coloring");

  std::vector<ColoringNode> nodes;
  nodes.reserve(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes.emplace_back(&params, v);
  }
  radio::Engine<ColoringNode, S, T, C> engine(g, schedule, std::move(nodes),
                                              seed, medium, sink);
  engine.set_span_sink(spans);
  if constexpr (T::kEnabled) {
    engine.set_telemetry(probe);
  }
  if constexpr (C::kEnabled) {
    engine.set_checkpointer(ckpt);
  }
  const radio::RunStats stats = engine.run(max_slots);

  // The extraction lives in harvest_coloring so the checkpoint-resume
  // path (core/checkpoint.cpp) produces field-for-field identical
  // results by construction.
  RunResult result = harvest_coloring(engine, g, schedule, stats);
  if constexpr (T::kEnabled) {
    if (probe != nullptr) {
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (engine.decision_slot(v) !=
            radio::Engine<ColoringNode, S, T, C>::kUndecided) {
          probe->record_decision_latency(
              static_cast<std::uint64_t>(engine.decision_latency(v)));
        }
      }
    }
  }

  // Thread-safe `add`: run_impl executes concurrently under the trial
  // executor (exec::parallel_for_trials).
  auto& counters = obs::CounterRegistry::global();
  counters.add("core.run_coloring.runs", 1);
  counters.add("core.run_coloring.slots",
               static_cast<std::uint64_t>(stats.slots_run));
  counters.add("core.run_coloring.node_slots",
               static_cast<std::uint64_t>(stats.slots_run) * g.num_nodes());
  return result;
}

/// Run only the first stage (leader election + cluster association) on
/// the same sink-templated engine path as `run_impl`: identical node
/// construction, medium options and event emission — only the stopping
/// rule differs (manual stepping until every node is covered).
template <obs::EventSink S,
          typename T = obs::telemetry::NullEngineProbe>
LeaderElectionResult leader_election_impl(const graph::Graph& g,
                                          const Params& params,
                                          const radio::WakeSchedule& schedule,
                                          std::uint64_t seed, Slot max_slots,
                                          radio::MediumOptions medium, S* sink,
                                          obs::SpanSink* spans = nullptr,
                                          T* probe = nullptr) {
  params.validate();
  URN_CHECK(schedule.size() == g.num_nodes());
  if (max_slots == 0) max_slots = default_slot_budget(params, schedule);

  obs::ProfileScope profile("core.run_leader_election");

  std::vector<ColoringNode> nodes;
  nodes.reserve(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes.emplace_back(&params, v);
  }
  radio::Engine<ColoringNode, S, T> engine(g, schedule, std::move(nodes),
                                           seed, medium, sink);
  engine.set_span_sink(spans);
  if constexpr (T::kEnabled) {
    engine.set_telemetry(probe);
    // Step()-driven loop below: run()'s automatic probe bracketing never
    // fires, so bracket the run here.
    if (probe != nullptr) probe->begin_run();
  }

  LeaderElectionResult result;
  result.leader_of.assign(g.num_nodes(), graph::kInvalidNode);
  result.cover_latency.assign(g.num_nodes(), -1);

  // "Covered" = decided (leader or any later color) or past A₀ (knows a
  // leader).  We step manually and record first-coverage times.
  auto covered = [&engine](graph::NodeId v) {
    const ColoringNode& node = engine.node(v);
    if (node.decided()) return true;
    if (node.phase() == Phase::kRequest) return true;
    return node.phase() == Phase::kVerify && node.verifying_color() > 0;
  };
  std::size_t uncovered = g.num_nodes();
  while (engine.current_slot() < max_slots && uncovered > 0) {
    engine.step();
    const Slot now = engine.current_slot() - 1;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (result.cover_latency[v] >= 0) continue;
      if (now < schedule.wake_slot(v)) continue;
      if (covered(v)) {
        result.cover_latency[v] = now - schedule.wake_slot(v);
        --uncovered;
      }
    }
  }
  engine.flush();  // step()-driven loop: run()'s automatic flush never fires
  result.all_covered = uncovered == 0;
  result.medium = engine.stats();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const ColoringNode& node = engine.node(v);
    if (node.is_leader()) result.leaders.push_back(v);
    result.leader_of[v] = node.leader();
    if constexpr (T::kEnabled) {
      if (probe != nullptr && result.cover_latency[v] >= 0) {
        probe->record_decision_latency(
            static_cast<std::uint64_t>(result.cover_latency[v]));
      }
    }
  }
  if constexpr (T::kEnabled) {
    if (probe != nullptr) probe->end_run();
  }

  auto& counters = obs::CounterRegistry::global();
  counters.add("core.run_leader_election.runs", 1);
  counters.add("core.run_leader_election.slots",
               static_cast<std::uint64_t>(result.medium.slots_run));
  return result;
}

/// The sink stack every traced entry point shares: metrics + JSONL +
/// binary log + online monitor + caller-owned memory capture, each
/// optional, fanned out through nested TeeSinks.
struct TraceSinks {
  using Inner = obs::TeeSink<obs::MetricsSink, obs::JsonlSink>;
  using Mid = obs::TeeSink<Inner, obs::BinSink>;
  using Tee = obs::TeeSink<Mid, obs::InvariantMonitorSink>;
  using Outer = obs::TeeSink<Tee, obs::MemorySink>;

  obs::MetricsSink metrics;
  std::optional<obs::JsonlSink> jsonl;
  std::optional<obs::BinSink> bin;
  std::optional<obs::InvariantMonitorSink> monitor;
  std::optional<Inner> inner;
  std::optional<Mid> mid;
  std::optional<Tee> tee;
  std::optional<Outer> outer;

  /// Destructor-path flush: a traced runner that exits early (slot-budget
  /// exhaustion mid-harvest, an exception from a protocol callback) must
  /// not leave buffered tail events unwritten.  `finish_into` flushes the
  /// same sinks first on the normal path, so this is an idempotent no-op
  /// there.
  ~TraceSinks() {
    if (jsonl) jsonl->flush();
    if (bin) bin->flush();
  }

  TraceSinks(const graph::Graph& g, const Params& params,
             const radio::WakeSchedule& schedule, const TraceOptions& trace)
      : metrics(trace.metrics_window) {
    if (!trace.events_jsonl.empty()) {
      jsonl.emplace(trace.events_jsonl);
      URN_CHECK_MSG(jsonl->ok(),
                    "traced run: cannot open " << trace.events_jsonl);
    }
    if (!trace.events_bin.empty()) {
      bin.emplace(trace.events_bin, trace.bin_ring);
      URN_CHECK_MSG(bin->ok(),
                    "traced run: cannot open " << trace.events_bin);
    }
    if (trace.monitor) {
      monitor.emplace(make_monitor_config(g, params, schedule));
    }
    inner.emplace(trace.metrics ? &metrics : nullptr,
                  jsonl ? &*jsonl : nullptr);
    mid.emplace(&*inner, bin ? &*bin : nullptr);
    tee.emplace(&*mid, monitor ? &*monitor : nullptr);
    outer.emplace(&*tee, trace.memory);
  }

  /// Harvest the artifacts into a result that carries the shared
  /// `series` / `events_recorded` / `monitor` fields, and account the
  /// tracing overhead under `trace.overhead.*` (deterministic event /
  /// byte counts; final-flush wall clock lands under `.ns` keys, which
  /// the bench regression diff ignores).
  /// True when `trace` requests no event-consuming sink at all — the
  /// telemetry-only case, which runs on the NullSink engine instantiation
  /// (probe only, zero event overhead).
  static bool event_free(const TraceOptions& trace) {
    return !trace.metrics && trace.events_jsonl.empty() &&
           trace.events_bin.empty() && !trace.monitor &&
           trace.memory == nullptr;
  }

  template <typename Result>
  void finish_into(Result& result, Slot slots_run,
                   const TraceOptions& trace) {
    if (trace.metrics) result.series = metrics.finish(slots_run);
    auto& counters = obs::CounterRegistry::global();
    if (jsonl || bin) {
      obs::ProfileScope flush_scope("trace.overhead.flush");
      if (jsonl) jsonl->flush();
      if (bin) bin->flush();
    }
    if (jsonl) {
      result.events_recorded = jsonl->written();
      counters.add("trace.overhead.jsonl.events", jsonl->written());
      counters.add("trace.overhead.jsonl.bytes", jsonl->bytes());
    }
    if (bin) {
      result.events_recorded = bin->written();
      counters.add("trace.overhead.bin.events", bin->written());
      counters.add("trace.overhead.bin.bytes", bin->bytes());
    }
    if (monitor) result.monitor = monitor->report();
  }
};

namespace pm = obs::postmortem;

/// Render the bundle's `manifest.json`: run identity, scenario shape, and
/// which files the bundle contains.
std::string manifest_json(const PostmortemOptions& po,
                          const CheckpointScenario& s,
                          const pm::Checkpointer& ckpt,
                          const RunResult& result,
                          const std::string& ring_path) {
  std::string j = "{";
  j += "\"format\":\"urn-postmortem-bundle\"";
  j += ",\"checkpoint_version\":" + std::to_string(pm::kCkptVersion);
  j += ",\"engine\":\"aligned\"";
  j += ",\"trial\":" + std::to_string(po.trial);
  j += ",\"seed\":" + std::to_string(s.seed);
  j += ",\"nodes\":" + std::to_string(s.num_nodes);
  j += ",\"edges\":" + std::to_string(s.edges.size());
  j += ",\"max_slots\":" + std::to_string(s.max_slots);
  j += ",\"drop_probability\":" + std::to_string(s.medium.drop_probability);
  j += ",\"checkpoint_every\":" + std::to_string(po.checkpoint_every);
  j += ",\"checkpoints_written\":" +
       std::to_string(ckpt.checkpoints_written());
  j += ",\"last_checkpoint_position\":" +
       std::to_string(ckpt.last_position());
  j += ",\"checkpoint_file\":\"" + pm::json_escape(ckpt.path()) + "\"";
  j += ",\"ring_file\":\"" + pm::json_escape(ring_path) + "\"";
  j += ",\"slots_run\":" + std::to_string(result.medium.slots_run);
  j += std::string(",\"all_decided\":") +
       (result.all_decided ? "true" : "false");
  if (result.monitor) {
    j += ",\"violations\":" +
         std::to_string(result.monitor->total_violations());
  }
  j += "}\n";
  return j;
}

/// The postmortem-enabled traced run: periodic checkpoints into the
/// bundle directory, a flight-recorder ring there by default, a crash
/// handler armed for the duration of the run, a manifest always, and the
/// full bundle (monitor + telemetry snapshots) on invariant violation.
RunResult run_coloring_postmortem(const graph::Graph& g, const Params& params,
                                  const radio::WakeSchedule& schedule,
                                  std::uint64_t seed,
                                  const TraceOptions& trace, Slot max_slots,
                                  radio::MediumOptions medium) {
  const PostmortemOptions& po = trace.postmortem;
  params.validate();
  URN_CHECK(schedule.size() == g.num_nodes());
  // Resolve the budget here: the checkpoint scenario must record the
  // actual cap so a resumed run stops at the same slot.
  if (max_slots == 0) max_slots = default_slot_budget(params, schedule);
  URN_CHECK_MSG(pm::ensure_dir(po.dir),
                "postmortem: cannot create bundle dir " << po.dir);

  TraceOptions local = trace;
  if (po.dump_on_violation) local.monitor = true;
  if (local.events_bin.empty()) {
    // Default flight recorder: a bounded ring inside the bundle.
    local.events_bin = po.dir + "/" + pm::kRingFileName;
    if (local.bin_ring == 0) local.bin_ring = 4096;
  }

  const CheckpointScenario scenario =
      make_scenario(g, params, schedule, seed, max_slots, medium, po.trial);
  pm::Checkpointer ckpt(po.dir + "/" + pm::kCkptFileName,
                        pm::EngineKind::kAligned, po.checkpoint_every,
                        render_scenario(scenario));

  TraceSinks sinks(g, params, schedule, local);
  pm::arm_crash_handler(po.dir);
  if (sinks.bin) {
    pm::set_crash_flush(
        [](void* arg) { static_cast<obs::BinSink*>(arg)->flush(); },
        &*sinks.bin);
  }

  RunResult result;
  if (local.telemetry != nullptr) {
    obs::telemetry::EngineProbe probe(*local.telemetry);
    result = run_impl(g, params, schedule, seed, max_slots, medium,
                      &*sinks.outer, local.spans, &probe, &ckpt);
  } else {
    result = run_impl<typename TraceSinks::Outer,
                      obs::telemetry::NullEngineProbe, pm::Checkpointer>(
        g, params, schedule, seed, max_slots, medium, &*sinks.outer,
        local.spans, nullptr, &ckpt);
  }
  pm::set_crash_flush(nullptr, nullptr);
  pm::disarm_crash_handler();
  sinks.finish_into(result, result.medium.slots_run, local);
  URN_CHECK_MSG(!ckpt.failed(),
                "postmortem: checkpoint write failed under " << po.dir);

  pm::write_text_file(po.dir + "/" + pm::kManifestFileName,
                      manifest_json(po, scenario, ckpt, result,
                                    local.events_bin));
  if (po.dump_on_violation && result.monitor && !result.monitor->ok()) {
    pm::write_text_file(po.dir + "/" + pm::kMonitorFileName,
                        pm::monitor_report_json(*result.monitor));
    if (local.telemetry != nullptr) {
      pm::write_text_file(
          po.dir + "/" + pm::kTelemetryFileName,
          obs::telemetry::to_jsonl_line(local.telemetry->snapshot()));
    }
    result.bundle = po.dir;
  }
  return result;
}

}  // namespace

obs::MonitorConfig make_monitor_config(const graph::Graph& g,
                                       const Params& params,
                                       const radio::WakeSchedule& schedule) {
  obs::MonitorConfig config;
  config.kappa2 = params.kappa2;
  // Theorem 3 budget is per node, measured from its own wake-up: the run
  // budget minus the latest wake slot it covers.
  config.latency_budget =
      default_slot_budget(params, schedule) - schedule.latest();
  config.theta.reserve(g.num_nodes());
  config.adj_offsets.reserve(g.num_nodes() + 1);
  config.adj.reserve(2 * g.num_edges());
  config.adj_offsets.push_back(0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    config.theta.push_back(graph::local_density_theta(g, v));
    for (graph::NodeId u : g.neighbors(v)) config.adj.push_back(u);
    config.adj_offsets.push_back(
        static_cast<std::uint32_t>(config.adj.size()));
  }
  return config;
}

RunResult run_coloring(const graph::Graph& g, const Params& params,
                       const radio::WakeSchedule& schedule,
                       std::uint64_t seed, Slot max_slots,
                       radio::MediumOptions medium) {
  return run_impl<obs::NullSink>(g, params, schedule, seed, max_slots,
                                 medium, nullptr);
}

RunResult run_coloring_traced(const graph::Graph& g, const Params& params,
                              const radio::WakeSchedule& schedule,
                              std::uint64_t seed, const TraceOptions& trace,
                              Slot max_slots, radio::MediumOptions medium) {
  if (trace.postmortem.enabled()) {
    return run_coloring_postmortem(g, params, schedule, seed, trace,
                                   max_slots, medium);
  }
  if (trace.telemetry != nullptr) {
    obs::telemetry::EngineProbe probe(*trace.telemetry);
    if (TraceSinks::event_free(trace)) {
      // Telemetry-only: probe on the NullSink instantiation — no event
      // construction, no sink fan-out, untraced throughput.
      return run_impl<obs::NullSink, obs::telemetry::EngineProbe>(
          g, params, schedule, seed, max_slots, medium, nullptr,
          trace.spans, &probe);
    }
    TraceSinks sinks(g, params, schedule, trace);
    RunResult result =
        run_impl(g, params, schedule, seed, max_slots, medium, &*sinks.outer,
                 trace.spans, &probe);
    sinks.finish_into(result, result.medium.slots_run, trace);
    return result;
  }
  TraceSinks sinks(g, params, schedule, trace);
  RunResult result = run_impl(g, params, schedule, seed, max_slots, medium,
                              &*sinks.outer, trace.spans);
  sinks.finish_into(result, result.medium.slots_run, trace);
  return result;
}

LeaderElectionResult run_leader_election(const graph::Graph& g,
                                         const Params& params,
                                         const radio::WakeSchedule& schedule,
                                         std::uint64_t seed, Slot max_slots,
                                         radio::MediumOptions medium) {
  return leader_election_impl<obs::NullSink>(g, params, schedule, seed,
                                             max_slots, medium, nullptr);
}

LeaderElectionResult run_leader_election_traced(
    const graph::Graph& g, const Params& params,
    const radio::WakeSchedule& schedule, std::uint64_t seed,
    const TraceOptions& trace, Slot max_slots, radio::MediumOptions medium) {
  if (trace.telemetry != nullptr) {
    obs::telemetry::EngineProbe probe(*trace.telemetry);
    if (TraceSinks::event_free(trace)) {
      return leader_election_impl<obs::NullSink,
                                  obs::telemetry::EngineProbe>(
          g, params, schedule, seed, max_slots, medium, nullptr,
          trace.spans, &probe);
    }
    TraceSinks sinks(g, params, schedule, trace);
    LeaderElectionResult result =
        leader_election_impl(g, params, schedule, seed, max_slots, medium,
                             &*sinks.outer, trace.spans, &probe);
    sinks.finish_into(result, result.medium.slots_run, trace);
    return result;
  }
  TraceSinks sinks(g, params, schedule, trace);
  LeaderElectionResult result = leader_election_impl(
      g, params, schedule, seed, max_slots, medium, &*sinks.outer,
      trace.spans);
  sinks.finish_into(result, result.medium.slots_run, trace);
  return result;
}

LocalityReport check_locality(const graph::Graph& g,
                              const std::vector<graph::Color>& colors,
                              std::uint32_t kappa2) {
  URN_CHECK(colors.size() == g.num_nodes());
  LocalityReport report;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto theta =
        static_cast<double>(graph::local_density_theta(g, v));
    const graph::Color phi = graph::highest_neighborhood_color(g, colors, v);
    if (phi == graph::kUncolored) continue;
    const double ratio = static_cast<double>(phi) / theta;
    if (ratio > report.max_ratio) {
      report.max_ratio = ratio;
      report.worst = v;
    }
    const double derivable_bound =
        (static_cast<double>(kappa2) + 1.0) * theta +
        static_cast<double>(kappa2);
    if (static_cast<double>(phi) > derivable_bound) {
      report.holds = false;
    }
  }
  return report;
}

}  // namespace urn::core
