/// \file runner.hpp
/// \brief One-call execution of the coloring protocol on a graph, plus the
///        per-run verification of the paper's theorems.
///
/// `run_coloring` wires a `ColoringNode` per vertex into the radio engine,
/// runs to quiescence (every node awake and decided) or a slot cap, and
/// extracts everything the experiments need: the coloring itself, per-node
/// decision latencies T_v (Sect. 2), cluster structure, medium statistics,
/// and protocol event counters.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "radio/engine.hpp"
#include "radio/wakeup.hpp"

namespace urn::core {

/// Everything measured in a single protocol execution.
struct RunResult {
  /// Final colors (graph::kUncolored for undecided nodes on timeout).
  std::vector<graph::Color> colors;
  /// Wake slot per node (copied from the schedule).
  std::vector<Slot> wake_slot;
  /// Decision slot per node (−1 if the run timed out before deciding).
  std::vector<Slot> decision_slot;
  /// T_v = decision − wake per node (only nodes that decided).
  std::vector<Slot> latency;

  radio::RunStats medium;   ///< transmissions / deliveries / collisions
  bool all_decided = false; ///< completeness within the slot budget

  graph::ColoringCheck check;  ///< correctness + completeness validation
  graph::Color max_color = graph::kUncolored;

  std::size_t num_leaders = 0;
  /// leader() per node (kInvalidNode for leaders themselves / undecided).
  std::vector<graph::NodeId> leader_of;
  /// Intra-cluster color per node (−1 for leaders / unassigned).
  std::vector<std::int32_t> intra_cluster;

  std::uint64_t total_resets = 0;
  std::uint32_t max_verify_states = 0;  ///< max #A_i states any node entered
  std::uint64_t duplicate_serves = 0;

  /// Per-window medium/protocol time series; only populated by
  /// `run_coloring_traced` with `TraceOptions::metrics` set.
  std::optional<obs::TimeSeries> series;
  /// Events streamed to the event logs (`events_jsonl` / `events_bin`;
  /// 0 when not tracing).
  std::uint64_t events_recorded = 0;
  /// Online invariant report; only populated with `TraceOptions::monitor`.
  std::optional<obs::MonitorReport> monitor;
  /// Postmortem bundle directory; non-empty when a violation bundle was
  /// captured (`PostmortemOptions::dump_on_violation` and the monitor
  /// fired).
  std::string bundle;

  /// Max T_v over decided nodes (0 if none).
  [[nodiscard]] Slot max_latency() const;
  /// Mean T_v over decided nodes (0 if none).
  [[nodiscard]] double mean_latency() const;
};

/// Postmortem checkpointing knobs for `run_coloring_traced`.  When `dir`
/// is set the run writes a self-contained bundle directory: a versioned
/// `checkpoint.urnc` (periodic when `checkpoint_every > 0`, else a single
/// snapshot at the first slot), a flight-recorder binary event ring
/// (`ring.bin`, unless `TraceOptions::events_bin` already points
/// somewhere), and a `manifest.json`.  With `dump_on_violation` the
/// invariant monitor is forced on and a violation additionally captures
/// `monitor.json` (+ `telemetry.json` when a registry is attached) and
/// reports the bundle in `RunResult::bundle`.  A fatal signal during the
/// run leaves a `CRASH.txt` next to the flushed ring.
struct PostmortemOptions {
  /// Bundle directory (created if missing).  Empty = postmortem off.
  std::string dir;
  /// Checkpoint period in slots (0 = one snapshot at the first slot).
  radio::Slot checkpoint_every = 0;
  /// Capture a full bundle and fill `RunResult::bundle` when the
  /// invariant monitor reports violations (implies
  /// `TraceOptions::monitor`).
  bool dump_on_violation = false;
  /// Trial label recorded in the manifest (bundle naming under the
  /// parallel executor uses `exec::trial_tag`).
  std::uint64_t trial = 0;

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// Observability knobs for `run_coloring_traced`.  Everything defaults to
/// off; the plain `run_coloring` path stays on the zero-overhead
/// `obs::NullSink` engine instantiation.
struct TraceOptions {
  /// Collect a per-window obs::TimeSeries into RunResult::series.
  bool metrics = false;
  /// Window width in slots for the time series (≥ 1).
  radio::Slot metrics_window = 1;
  /// When non-empty, stream every event to this JSONL file (the format
  /// `urn_trace` consumes).
  std::string events_jsonl;
  /// When non-empty, stream every event to this compact binary file
  /// (`obs::BinSink`; ~4–5× smaller and far cheaper to write than JSONL;
  /// `urn_trace` auto-detects it by magic).
  std::string events_bin;
  /// Ring capacity for the binary log: 0 = keep everything; N > 0 = keep
  /// only the last N events in O(N) memory ("flight recorder" mode; the
  /// header records how many were dropped).
  std::size_t bin_ring = 0;
  /// Check the paper's invariants online (`make_monitor_config` builds
  /// the configuration) and fill `RunResult::monitor`.
  bool monitor = false;
  /// Optional wall-clock span timeline: the engine records per-slot
  /// phase residencies (wake-up processing / protocol step / medium
  /// resolution) into it.  Not owned; must outlive the run.
  obs::SpanSink* spans = nullptr;
  /// Optional live telemetry: run the engine with an
  /// `obs::telemetry::EngineProbe` feeding this registry (slot/medium
  /// counters, the live `engine.undecided` gauge, and the
  /// `run.decision_latency` histogram).  Telemetry alone does NOT turn
  /// on event emission: with every other knob off the run executes on
  /// the NullSink engine instantiation plus the probe, so a monitored
  /// sweep keeps its untraced throughput.  Not owned; must outlive the
  /// run.
  obs::telemetry::Registry* telemetry = nullptr;
  /// Optional in-memory event capture: every event is also recorded
  /// into this sink (unbounded; intended for in-process analysis such
  /// as `obs::explain_trace` — no file round-trip).  Not owned; must
  /// outlive the run.
  obs::MemorySink* memory = nullptr;
  /// Periodic checkpointing + violation bundle capture (see
  /// `PostmortemOptions`).  Only honored by `run_coloring_traced`; the
  /// leader-election entry points ignore it.
  PostmortemOptions postmortem;
};

/// Build the full `obs::MonitorConfig` for a run on `g`: κ₂ and the
/// Theorem 3 per-node latency budget from `params`/`schedule`, θ_v per
/// node, and the CSR adjacency for the conflict / leader-independence
/// checks.  O(n·Δ²) for the θ computation — intended for monitored
/// (opt-in) runs, not the hot path.
[[nodiscard]] obs::MonitorConfig make_monitor_config(
    const graph::Graph& g, const Params& params,
    const radio::WakeSchedule& schedule);

/// Execute the protocol.
///
/// \param g          the network graph
/// \param params     protocol parameters (validated)
/// \param schedule   wake slot per node; size must equal g.num_nodes()
/// \param seed       master seed; every node derives its own stream
/// \param max_slots  hard cap (0 = a generous default derived from params)
/// \param medium     failure-injection knobs (default: ideal medium)
[[nodiscard]] RunResult run_coloring(const graph::Graph& g,
                                     const Params& params,
                                     const radio::WakeSchedule& schedule,
                                     std::uint64_t seed, Slot max_slots = 0,
                                     radio::MediumOptions medium = {});

/// `run_coloring` with observability: identical protocol execution (same
/// seeds, same RNG streams, bit-identical coloring), but run on an engine
/// instantiation that emits structured events into the sinks requested by
/// `trace` — a per-window metrics series and/or a JSONL event log.
[[nodiscard]] RunResult run_coloring_traced(
    const graph::Graph& g, const Params& params,
    const radio::WakeSchedule& schedule, std::uint64_t seed,
    const TraceOptions& trace, Slot max_slots = 0,
    radio::MediumOptions medium = {});

/// A conservative default slot budget: enough for the theory bound
/// O(κ₂⁴ Δ log n) after the last wake-up, with headroom.
[[nodiscard]] Slot default_slot_budget(const Params& params,
                                       const radio::WakeSchedule& schedule);

/// Theorem 4 verification.  The theorem's statement writes the bound as
/// φ_v ≤ κ₂·θ_v; the bound its own derivation yields (via Corollary 1:
/// color ≤ tc(κ₂+1)+κ₂ with tc ≤ θ_v) is φ_v ≤ (κ₂+1)·θ_v + κ₂, i.e. the
/// same O(κ₂·θ_v) with explicit constants.  `holds` checks the derivable
/// bound; `max_ratio` reports max φ_v/θ_v so experiments can show the
/// ratio is O(κ₂) and usually far smaller.
struct LocalityReport {
  bool holds = true;       ///< φ_v ≤ (κ₂+1)·θ_v + κ₂ everywhere
  double max_ratio = 0.0;  ///< max over v of φ_v / θ_v
  graph::NodeId worst = graph::kInvalidNode;
};

[[nodiscard]] LocalityReport check_locality(
    const graph::Graph& g, const std::vector<graph::Color>& colors,
    std::uint32_t kappa2);

/// Result of running only the first stage of the protocol: leader election
/// plus cluster association — an MIS-and-clustering-from-scratch primitive
/// (the paper's C₀ layer; cf. the clustering lineage of [14] and the MIS
/// algorithm of [21] in its related work).
struct LeaderElectionResult {
  /// Sorted node ids that entered C₀.
  std::vector<graph::NodeId> leaders;
  /// leader() per node (kInvalidNode for leaders / uncovered nodes).
  std::vector<graph::NodeId> leader_of;
  /// Slots from each node's wake-up until it was *covered* (became a
  /// leader or learned its leader).
  std::vector<Slot> cover_latency;
  bool all_covered = false;
  radio::RunStats medium;

  /// Per-window time series; only populated by the traced variant with
  /// `TraceOptions::metrics` set.
  std::optional<obs::TimeSeries> series;
  /// Events streamed to the event logs (`events_jsonl` / `events_bin`;
  /// 0 when not tracing).
  std::uint64_t events_recorded = 0;
  /// Online invariant report; only populated with `TraceOptions::monitor`.
  std::optional<obs::MonitorReport> monitor;
};

/// Run the protocol only until every node is a leader or knows one
/// (i.e. left A₀), then stop.  The leader set is, with high probability,
/// a maximal independent set of g.  Runs on the same sink-templated
/// engine path as `run_coloring`, so failure injection (`medium`) and —
/// via the traced variant — sinks apply to leader-election runs too.
[[nodiscard]] LeaderElectionResult run_leader_election(
    const graph::Graph& g, const Params& params,
    const radio::WakeSchedule& schedule, std::uint64_t seed,
    Slot max_slots = 0, radio::MediumOptions medium = {});

/// `run_leader_election` with observability: identical execution (same
/// seeds and RNG streams), plus the metrics / JSONL / monitor sinks
/// requested by `trace`.
[[nodiscard]] LeaderElectionResult run_leader_election_traced(
    const graph::Graph& g, const Params& params,
    const radio::WakeSchedule& schedule, std::uint64_t seed,
    const TraceOptions& trace, Slot max_slots = 0,
    radio::MediumOptions medium = {});

}  // namespace urn::core
