#include "core/tdma.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace urn::core {

TdmaSchedule derive_tdma(const graph::Graph& g,
                         const std::vector<graph::Color>& colors) {
  URN_CHECK(colors.size() == g.num_nodes());
  TdmaSchedule schedule;
  schedule.slot.resize(g.num_nodes());
  schedule.local_frame.resize(g.num_nodes());

  graph::Color highest = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    URN_CHECK_MSG(colors[v] != graph::kUncolored,
                  "node " << v << " is uncolored");
    schedule.slot[v] = static_cast<std::uint32_t>(colors[v]);
    highest = std::max(highest, colors[v]);
  }
  schedule.frame = static_cast<std::uint32_t>(highest) + 1;

  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    graph::Color local_high = colors[v];
    for (graph::NodeId w : g.two_hop_closed(v)) {
      local_high = std::max(local_high, colors[w]);
    }
    schedule.local_frame[v] = static_cast<std::uint32_t>(local_high) + 1;
  }
  return schedule;
}

TdmaReport analyze_tdma(const graph::Graph& g, const TdmaSchedule& schedule) {
  URN_CHECK(schedule.slot.size() == g.num_nodes());
  TdmaReport report;
  if (g.num_nodes() == 0) {
    report.clean_reception_fraction = 1.0;
    return report;
  }

  // Direct interference: any monochromatic edge.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (graph::NodeId u : g.neighbors(v)) {
      if (schedule.slot[u] == schedule.slot[v]) {
        report.direct_interference_free = false;
      }
    }
  }

  std::size_t clean_receivers = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto two_hop = g.two_hop_closed(v);
    bool all_neighbors_clean = true;

    for (graph::NodeId u : g.neighbors(v)) {
      // Count transmitters v suffers in u's slot.
      const std::uint32_t s = schedule.slot[u];
      std::uint32_t neighbor_tx = 0;
      for (graph::NodeId w : g.neighbors(v)) {
        if (schedule.slot[w] == s) ++neighbor_tx;
      }
      std::uint32_t two_hop_tx = 0;
      for (graph::NodeId w : two_hop) {
        if (w != v && schedule.slot[w] == s) ++two_hop_tx;
      }
      report.max_neighbor_transmitters =
          std::max(report.max_neighbor_transmitters, neighbor_tx);
      report.max_two_hop_transmitters =
          std::max(report.max_two_hop_transmitters, two_hop_tx);
      // v receives u cleanly iff u is the only transmitter among v's
      // neighbors in that slot (exactly the radio model's condition).
      if (neighbor_tx != 1) all_neighbors_clean = false;
    }
    if (all_neighbors_clean) ++clean_receivers;
  }
  report.clean_reception_fraction =
      static_cast<double>(clean_receivers) /
      static_cast<double>(g.num_nodes());
  return report;
}

}  // namespace urn::core
