/// \file tdma.hpp
/// \brief Deriving a TDMA schedule from a vertex coloring (Sect. 1).
///
/// The paper motivates coloring as the initial structure for a
/// time-division MAC: "when associating different colors with different
/// time slots …, a correct coloring corresponds to a MAC layer without
/// direct interference."  This module turns a coloring into that schedule
/// and quantifies the properties the paper argues for:
///
///  * a node with color c transmits in slot (c mod frame) of every frame;
///  * with a *correct* 1-hop coloring no two neighbors ever share a slot
///    (no direct interference; a receiver can still see ≥ 2 transmitters
///    from two hops away — the paper's "at most a small constant number of
///    interfering senders" situation);
///  * the frame can be chosen *locally*: because the highest color in a
///    2-neighborhood depends only on local density (Theorem 4), sparse
///    regions could run shorter frames.  We expose both the global frame
///    (max color + 1) and per-node local frame lengths, and the resulting
///    bandwidth share 1/frame the paper discusses.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"

namespace urn::core {

/// A TDMA schedule derived from a coloring.
struct TdmaSchedule {
  /// Global frame length: highest color + 1.
  std::uint32_t frame = 0;
  /// Slot within the frame assigned to each node (= its color).
  std::vector<std::uint32_t> slot;
  /// Per-node local frame: 1 + the highest color in the node's closed
  /// 2-hop neighborhood (the quantity the paper ties bandwidth to).
  std::vector<std::uint32_t> local_frame;

  /// Bandwidth share of node v under the *local* frame: 1/local_frame[v].
  [[nodiscard]] double bandwidth_share(graph::NodeId v) const {
    return 1.0 / static_cast<double>(local_frame.at(v));
  }
};

/// Build the schedule.  \pre colors is complete (no kUncolored entries).
[[nodiscard]] TdmaSchedule derive_tdma(const graph::Graph& g,
                                       const std::vector<graph::Color>& colors);

/// Interference metrics of a schedule over one frame.
struct TdmaReport {
  /// True iff no two *adjacent* nodes share a slot — the paper's "no
  /// direct interference" property, guaranteed by a correct coloring.
  bool direct_interference_free = true;
  /// Max, over all (listener, slot) pairs, of simultaneously transmitting
  /// 1-hop neighbors of the listener.  Can exceed 1 even under a correct
  /// 1-hop coloring (two same-colored non-adjacent neighbors — the reason
  /// the paper notes full collision-freedom needs distance-2 coloring),
  /// but is bounded by κ₁: same-slot neighbors are independent.
  std::uint32_t max_neighbor_transmitters = 0;
  /// Max, over all (node, slot) pairs, of simultaneously transmitting
  /// 2-hop neighbors: the "interfering senders" the paper bounds by a
  /// small constant (distance-2 conflicts are allowed by a 1-hop coloring).
  std::uint32_t max_two_hop_transmitters = 0;
  /// Fraction of (receiver, frame) pairs in which the receiver can hear
  /// each of its neighbors' slots without any 2-hop collision.
  double clean_reception_fraction = 0.0;
};

/// Statically analyze one frame of the schedule.
[[nodiscard]] TdmaReport analyze_tdma(const graph::Graph& g,
                                      const TdmaSchedule& schedule);

}  // namespace urn::core
