#include "exec/chunk.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "support/check.hpp"

namespace urn::exec {

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t default_chunk(std::size_t trials, std::size_t jobs) {
  if (trials == 0) return 1;
  const std::size_t workers = std::max<std::size_t>(1, jobs);
  // Aim for ~4 chunks per worker so a slow chunk cannot straggle the
  // whole run, but never below one trial per chunk.
  return std::max<std::size_t>(1, trials / (4 * workers));
}

std::vector<TrialRange> chunk_plan(std::size_t trials, std::size_t chunk) {
  std::vector<TrialRange> plan;
  if (trials == 0) return plan;
  URN_CHECK(chunk > 0);
  plan.reserve((trials + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < trials; begin += chunk) {
    plan.push_back({begin, std::min(begin + chunk, trials)});
  }
  return plan;
}

std::string trial_tag(std::size_t trial) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "trial%04zu", trial);
  return buf;
}

}  // namespace urn::exec
