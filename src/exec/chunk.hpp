/// \file chunk.hpp
/// \brief Deterministic partition of a trial index space into ordered
///        chunks.
///
/// The parallel trial executor never lets scheduling decide *what* work
/// exists — only *who* runs it.  `chunk_plan` cuts [0, trials) into
/// consecutive half-open ranges purely from (trials, chunk); workers then
/// claim whole chunks dynamically, and per-chunk partial aggregates are
/// reduced in chunk order.  Because the plan is a pure function of its
/// inputs and the reduction order is the chunk order, results are
/// bit-identical to a serial loop for every thread count.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace urn::exec {

/// Half-open range [begin, end) of trial indices.
struct TrialRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool operator==(const TrialRange&) const = default;
};

/// Resolve a jobs request: 0 means "all hardware threads"; the result is
/// always at least 1.
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs);

/// Default trials-per-chunk for a (trials, jobs) workload: several chunks
/// per worker for load balance, never 0.  Only wall-clock behavior — not
/// results — depends on this choice.
[[nodiscard]] std::size_t default_chunk(std::size_t trials,
                                        std::size_t jobs);

/// Cut [0, trials) into consecutive chunks of `chunk` trials (the last
/// chunk may be shorter).  Every index appears in exactly one range, in
/// increasing order.  \pre chunk > 0 unless trials == 0.
[[nodiscard]] std::vector<TrialRange> chunk_plan(std::size_t trials,
                                                 std::size_t chunk);

/// Canonical per-trial label for artifact paths produced under the
/// parallel executor (postmortem bundle subdirectories, per-trial logs):
/// "trial0007" — zero-padded to four digits so lexicographic order is
/// trial order for any realistic trial count.
[[nodiscard]] std::string trial_tag(std::size_t trial);

}  // namespace urn::exec
