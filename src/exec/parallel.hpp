/// \file parallel.hpp
/// \brief `parallel_for_trials`: deterministic fan-out of a trial index
///        space with merge-safe aggregation.
///
/// Monte-Carlo replication in this repo is embarrassingly parallel:
/// trial t is fully determined by `mix_seed(seed0, t)`.  What is *not*
/// automatically parallel-safe is the aggregation — streaming trial
/// results into one accumulator from many threads would make sample
/// order (and thus percentiles, means computed in sequence, and
/// first-violation reports) depend on scheduling.
///
/// `parallel_for_trials` removes that hazard structurally:
///
///  1. [0, trials) is cut into deterministic chunks (`chunk_plan`);
///  2. each chunk owns a private default-constructed `Partial`; workers
///     claim whole chunks and record trials *in increasing order* into
///     that chunk-local partial (this is the "worker-local storage" —
///     sinks, monitors and samples live in the partial, never shared);
///  3. after the pool drains, partials are merged **in chunk order**,
///     i.e. in trial order.
///
/// If `merge(into, part)` is stream concatenation (as `Samples::merge`,
/// `CoreAggregate::merge` and `RunLedger::merge` are), the final value is
/// bit-identical to a serial loop — for every jobs count and every chunk
/// size.
///
/// Requirements on the callbacks:
///  * `body(Partial&, std::size_t trial)` is invoked concurrently from
///    several threads, but never concurrently on the same Partial; it
///    must not touch shared mutable state (see the ScheduleFactory
///    thread-safety contract in analysis/experiment.hpp).
///  * `merge(Partial& into, Partial&& part)` runs on the calling thread
///    only, in chunk order, starting from a default-constructed `into`.

#pragma once

#include <cstddef>
#include <cstdio>
#include <utility>
#include <vector>

#include "exec/chunk.hpp"
#include "exec/pool.hpp"
#include "obs/span.hpp"

namespace urn::exec {

/// Execution knobs for `parallel_for_trials`.
struct ExecOptions {
  /// Worker threads, calling thread included; 0 = all hardware threads.
  std::size_t jobs = 1;
  /// Trials per chunk; 0 = `default_chunk(trials, jobs)`.  Results do
  /// not depend on this, only wall-clock does.
  std::size_t chunk = 0;
  /// Optional wall-clock timeline: each chunk is recorded as a span on
  /// the executing worker's track ("worker N", N = 0 for the calling
  /// thread).  Spans never feed back into results — determinism holds
  /// with or without one.  Not owned; must outlive the call.
  obs::SpanSink* spans = nullptr;
  /// Optional pool telemetry: per-worker utilization / chunks claimed /
  /// queue wait, reported through `TrialPool::run` (see pool.hpp).  Like
  /// spans, never feeds back into results.  Not owned; must outlive the
  /// call.
  obs::telemetry::PoolProbe* telemetry = nullptr;
};

template <typename Partial, typename Body, typename Merge>
[[nodiscard]] Partial parallel_for_trials(std::size_t trials,
                                          const ExecOptions& options,
                                          Body&& body, Merge&& merge) {
  const std::size_t jobs = resolve_jobs(options.jobs);
  const std::size_t chunk =
      options.chunk != 0 ? options.chunk : default_chunk(trials, jobs);
  const std::vector<TrialRange> plan = chunk_plan(trials, chunk);

  std::vector<Partial> partials(plan.size());
  TrialPool pool(jobs);
  if (options.spans != nullptr) {
    for (std::size_t w = 0; w < jobs; ++w) {
      char label[32];
      std::snprintf(label, sizeof(label), "worker %zu", w);
      options.spans->name_track(static_cast<std::uint32_t>(w), label);
    }
  }
  pool.run(
      plan.size(),
      [&](std::size_t ci) {
        const std::uint64_t t0 =
            options.spans != nullptr ? options.spans->now_ns() : 0;
        Partial& partial = partials[ci];
        for (std::size_t t = plan[ci].begin; t < plan[ci].end; ++t) {
          body(partial, t);
        }
        if (options.spans != nullptr) {
          options.spans->record(
              "chunk",
              static_cast<std::uint32_t>(TrialPool::current_worker()), t0,
              options.spans->now_ns() - t0, static_cast<std::int64_t>(ci));
        }
      },
      options.telemetry);

  Partial out{};
  for (Partial& partial : partials) merge(out, std::move(partial));
  return out;
}

}  // namespace urn::exec
