#include "exec/pool.hpp"

#include "exec/chunk.hpp"

namespace urn::exec {

namespace {
/// Worker index of the current thread (0 = a pool's calling thread).
thread_local std::size_t tls_worker_index = 0;
}  // namespace

std::size_t TrialPool::current_worker() { return tls_worker_index; }

TrialPool::TrialPool(std::size_t jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(jobs_ - 1);
  for (std::size_t i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

TrialPool::~TrialPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TrialPool::drain(const std::function<void(std::size_t)>& fn) {
  for (;;) {
    const std::size_t i = next_chunk_.fetch_add(1);
    if (i >= num_chunks_) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void TrialPool::worker_loop(std::size_t worker_index) {
  tls_worker_index = worker_index;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    drain(*fn_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void TrialPool::run(std::size_t num_chunks,
                    const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty()) {
    // jobs == 1: pure serial path, no atomics, no signalling.
    for (std::size_t i = 0; i < num_chunks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  drain(fn);  // the calling thread is the last worker
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace urn::exec
