#include "exec/pool.hpp"

#include <chrono>

#include "exec/chunk.hpp"
#include "obs/telemetry.hpp"

namespace urn::exec {

namespace {
/// Worker index of the current thread (0 = a pool's calling thread).
thread_local std::size_t tls_worker_index = 0;
}  // namespace

std::size_t TrialPool::current_worker() { return tls_worker_index; }

TrialPool::TrialPool(std::size_t jobs) : jobs_(resolve_jobs(jobs)) {
  workers_.reserve(jobs_ - 1);
  for (std::size_t i = 0; i + 1 < jobs_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

TrialPool::~TrialPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TrialPool::drain(const std::function<void(std::size_t)>& fn) {
  obs::telemetry::PoolProbe* probe = probe_;
  if (probe == nullptr) {
    for (;;) {
      const std::size_t i = next_chunk_.fetch_add(1);
      if (i >= num_chunks_) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }
  // Probed drain: measure busy (inside fn) vs wait (everything else in
  // the claim loop), reported once per worker when the queue runs dry.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point drain_start = Clock::now();
  std::uint64_t busy_ns = 0;
  std::uint64_t chunks = 0;
  for (;;) {
    const std::size_t i = next_chunk_.fetch_add(1);
    if (i >= num_chunks_) break;
    const Clock::time_point t0 = Clock::now();
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    busy_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    ++chunks;
  }
  const std::uint64_t total_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           drain_start)
          .count());
  probe->worker_drained(current_worker(), busy_ns,
                        total_ns > busy_ns ? total_ns - busy_ns : 0, chunks);
}

void TrialPool::worker_loop(std::size_t worker_index) {
  tls_worker_index = worker_index;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    drain(*fn_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void TrialPool::run(std::size_t num_chunks,
                    const std::function<void(std::size_t)>& fn,
                    obs::telemetry::PoolProbe* probe) {
  if (num_chunks == 0) return;
  if (workers_.empty()) {
    // jobs == 1: pure serial path, no atomics, no signalling (probed
    // serial runs still go through drain for uniform accounting).
    if (probe == nullptr) {
      for (std::size_t i = 0; i < num_chunks; ++i) fn(i);
      return;
    }
    probe_ = probe;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    drain(fn);
    probe_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    probe_ = probe;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  drain(fn);  // the calling thread is the last worker
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  probe_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace urn::exec
