/// \file pool.hpp
/// \brief A small persistent thread pool that fans chunk indices out
///        across `std::thread` workers.
///
/// `TrialPool` owns `jobs - 1` worker threads (the calling thread
/// participates as the last worker, so `jobs == 1` never spawns a thread
/// and runs the task inline — the serial path stays the serial path).
/// `run(num_chunks, fn)` invokes `fn(chunk_index)` exactly once for every
/// index in [0, num_chunks); chunks are claimed dynamically off an atomic
/// counter, so which *thread* runs a chunk is nondeterministic — callers
/// must keep per-chunk state (see `parallel_for_trials`) if they need
/// deterministic results.
///
/// Exceptions thrown by `fn` are captured (first one wins) and rethrown
/// on the calling thread after every in-flight chunk has finished.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace urn::obs::telemetry {
class PoolProbe;
}  // namespace urn::obs::telemetry

namespace urn::exec {

class TrialPool {
 public:
  /// \param jobs total workers including the caller; 0 = all hardware
  ///             threads (see `resolve_jobs`).
  explicit TrialPool(std::size_t jobs = 0);
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  /// Total workers, calling thread included.
  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Stable index of the worker executing the current chunk: 0 for the
  /// calling thread, 1..jobs-1 for pool threads.  Thread-local, so it
  /// is meaningful only inside a `run` callback; used to attribute work
  /// to per-worker timeline tracks (obs::SpanSink).
  [[nodiscard]] static std::size_t current_worker();

  /// Invoke `fn(chunk_index)` once per index in [0, num_chunks); blocks
  /// until all chunks completed, then rethrows the first captured
  /// exception, if any.  Not reentrant.
  ///
  /// With a telemetry `probe`, each worker measures its own busy time
  /// (inside `fn`), claim-path wait and chunks claimed, and reports them
  /// in ONE `worker_drained` call when it exhausts the queue — per run,
  /// not per chunk, so instrumentation never touches the claim loop's
  /// scaling.  Without a probe (default) no clocks are read at all.
  void run(std::size_t num_chunks, const std::function<void(std::size_t)>& fn,
           obs::telemetry::PoolProbe* probe = nullptr);

 private:
  void worker_loop(std::size_t worker_index);
  /// Claim-and-run loop shared by workers and the calling thread.
  void drain(const std::function<void(std::size_t)>& fn);

  std::size_t jobs_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for a generation
  std::condition_variable done_cv_;  ///< caller waits for completion
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  // State of the current `run` call (stable while workers are active).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  obs::telemetry::PoolProbe* probe_ = nullptr;
  std::size_t num_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t active_ = 0;  ///< workers still in the current generation
  std::exception_ptr error_;
};

}  // namespace urn::exec
