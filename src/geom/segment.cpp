#include "geom/segment.hpp"

#include <algorithm>
#include <cmath>

namespace urn::geom {

namespace {
constexpr double kEps = 1e-12;
}

int orientation(Vec2 a, Vec2 b, Vec2 c) {
  const double v = (b - a).cross(c - a);
  if (v > kEps) return 1;
  if (v < -kEps) return -1;
  return 0;
}

bool on_segment(const Segment& s, Vec2 p) {
  if (orientation(s.a, s.b, p) != 0) return false;
  return p.x >= std::min(s.a.x, s.b.x) - kEps &&
         p.x <= std::max(s.a.x, s.b.x) + kEps &&
         p.y >= std::min(s.a.y, s.b.y) - kEps &&
         p.y <= std::max(s.a.y, s.b.y) + kEps;
}

bool segments_intersect(const Segment& s1, const Segment& s2) {
  const int o1 = orientation(s1.a, s1.b, s2.a);
  const int o2 = orientation(s1.a, s1.b, s2.b);
  const int o3 = orientation(s2.a, s2.b, s1.a);
  const int o4 = orientation(s2.a, s2.b, s1.b);

  if (o1 != o2 && o3 != o4) return true;

  // Collinear touching cases.
  if (o1 == 0 && on_segment(s1, s2.a)) return true;
  if (o2 == 0 && on_segment(s1, s2.b)) return true;
  if (o3 == 0 && on_segment(s2, s1.a)) return true;
  if (o4 == 0 && on_segment(s2, s1.b)) return true;
  return false;
}

}  // namespace urn::geom
