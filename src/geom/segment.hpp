/// \file segment.hpp
/// \brief Line segments and segment–segment intersection.
///
/// Obstacles (walls) in the bounded-independence-graph generator are
/// segments; a radio link between two nodes exists only if the straight
/// line between them crosses no wall.

#pragma once

#include "geom/vec2.hpp"

namespace urn::geom {

/// A closed line segment from `a` to `b`.
struct Segment {
  Vec2 a;
  Vec2 b;
};

/// Orientation of the triple (a, b, c): >0 counter-clockwise, <0 clockwise,
/// 0 collinear (within epsilon).
[[nodiscard]] int orientation(Vec2 a, Vec2 b, Vec2 c);

/// True if point p lies on segment s (collinear and within its box).
[[nodiscard]] bool on_segment(const Segment& s, Vec2 p);

/// True if segments s1 and s2 intersect (proper or touching).
[[nodiscard]] bool segments_intersect(const Segment& s1, const Segment& s2);

}  // namespace urn::geom
