#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace urn::geom {

SpatialGrid::SpatialGrid(const std::vector<Vec2>& points, double cell)
    : points_(points), cell_(cell) {
  URN_CHECK(cell > 0.0);
  URN_CHECK(!points.empty());

  Vec2 lo = points.front();
  Vec2 hi = points.front();
  for (const Vec2& p : points) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  origin_ = lo;
  nx_ = static_cast<std::int64_t>((hi.x - lo.x) / cell_) + 1;
  ny_ = static_cast<std::int64_t>((hi.y - lo.y) / cell_) + 1;

  const auto num_cells =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  std::vector<std::uint32_t> counts(num_cells, 0);
  std::vector<std::size_t> point_cell(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto [cx, cy] = cell_of(points_[i]);
    const std::size_t c = static_cast<std::size_t>(cy) *
                              static_cast<std::size_t>(nx_) +
                          static_cast<std::size_t>(cx);
    point_cell[i] = c;
    ++counts[c];
  }
  cell_start_.assign(num_cells + 1, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  cell_items_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cell_items_[cursor[point_cell[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::vector<std::uint32_t> SpatialGrid::neighbors_within(
    std::uint32_t i, double radius) const {
  URN_CHECK(radius <= cell_ + 1e-12);
  std::vector<std::uint32_t> out;
  for_each_within(i, radius, [&out](std::uint32_t j) { out.push_back(j); });
  std::sort(out.begin(), out.end());
  return out;
}

std::pair<std::int64_t, std::int64_t> SpatialGrid::cell_of(Vec2 p) const {
  auto cx = static_cast<std::int64_t>((p.x - origin_.x) / cell_);
  auto cy = static_cast<std::int64_t>((p.y - origin_.y) / cell_);
  cx = std::clamp<std::int64_t>(cx, 0, nx_ - 1);
  cy = std::clamp<std::int64_t>(cy, 0, ny_ - 1);
  return {cx, cy};
}

}  // namespace urn::geom
