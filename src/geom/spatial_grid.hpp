/// \file spatial_grid.hpp
/// \brief Uniform-grid spatial index for fixed-radius neighbor queries.
///
/// Unit-disk-graph construction needs all point pairs within distance r.
/// A uniform grid with cell size r makes each query O(points in 9 cells),
/// giving O(n + m) total UDG construction instead of O(n²).

#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace urn::geom {

/// Immutable spatial index over a point set.
class SpatialGrid {
 public:
  /// Builds an index with cell size `cell` over `points`.
  /// \pre cell > 0, points non-empty.
  SpatialGrid(const std::vector<Vec2>& points, double cell);

  /// Indices of all points within distance `radius` of `points[i]`,
  /// excluding `i` itself. \pre radius <= cell size used at construction.
  [[nodiscard]] std::vector<std::uint32_t> neighbors_within(
      std::uint32_t i, double radius) const;

  /// Calls `fn(j)` for each point j != i within `radius` of point i.
  template <typename Fn>
  void for_each_within(std::uint32_t i, double radius, Fn&& fn) const {
    const Vec2 p = points_[i];
    const double r2 = radius * radius;
    const auto [cx, cy] = cell_of(p);
    for (std::int64_t gy = cy - 1; gy <= cy + 1; ++gy) {
      if (gy < 0 || gy >= ny_) continue;
      for (std::int64_t gx = cx - 1; gx <= cx + 1; ++gx) {
        if (gx < 0 || gx >= nx_) continue;
        const std::size_t c = static_cast<std::size_t>(gy) *
                                  static_cast<std::size_t>(nx_) +
                              static_cast<std::size_t>(gx);
        for (std::uint32_t idx = cell_start_[c]; idx < cell_start_[c + 1];
             ++idx) {
          const std::uint32_t j = cell_items_[idx];
          if (j != i && dist2(points_[j], p) <= r2) fn(j);
        }
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> cell_of(Vec2 p) const;

  std::vector<Vec2> points_;
  double cell_;
  Vec2 origin_;
  std::int64_t nx_ = 0;
  std::int64_t ny_ = 0;
  std::vector<std::uint32_t> cell_start_;  // CSR offsets into cell_items_
  std::vector<std::uint32_t> cell_items_;
};

}  // namespace urn::geom
