/// \file vec2.hpp
/// \brief 2-D vector/point primitives for node placement and obstacles.

#pragma once

#include <cmath>

namespace urn::geom {

/// A 2-D point / vector with double coordinates.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; sign gives orientation.
  [[nodiscard]] constexpr double cross(Vec2 o) const {
    return x * o.y - y * o.x;
  }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
};

/// Squared Euclidean distance (preferred on hot paths: no sqrt).
[[nodiscard]] constexpr double dist2(Vec2 a, Vec2 b) {
  return (a - b).norm2();
}

/// Euclidean distance.
[[nodiscard]] inline double dist(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Axis-aligned bounding box.
struct Aabb {
  Vec2 lo;
  Vec2 hi;

  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  [[nodiscard]] constexpr double width() const { return hi.x - lo.x; }
  [[nodiscard]] constexpr double height() const { return hi.y - lo.y; }
};

}  // namespace urn::geom
