#include "graph/coloring.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace urn::graph {

ColoringCheck validate(const Graph& g, const std::vector<Color>& colors) {
  URN_CHECK(colors.size() == g.num_nodes());
  ColoringCheck check;
  check.complete = true;
  check.correct = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (colors[v] == kUncolored) {
      if (check.complete) {
        check.complete = false;
        check.first_uncolored = v;
      }
      continue;
    }
    for (NodeId u : g.neighbors(v)) {
      if (u > v && colors[u] != kUncolored && colors[u] == colors[v]) {
        if (check.correct) {
          check.correct = false;
          check.conflict_u = v;
          check.conflict_v = u;
        }
      }
    }
  }
  return check;
}

Color max_color(const std::vector<Color>& colors) {
  Color best = kUncolored;
  for (Color c : colors) best = std::max(best, c);
  return best;
}

std::size_t distinct_colors(const std::vector<Color>& colors) {
  std::unordered_set<Color> seen;
  for (Color c : colors) {
    if (c != kUncolored) seen.insert(c);
  }
  return seen.size();
}

std::uint32_t local_density_theta(const Graph& g, NodeId v) {
  std::uint32_t theta = 0;
  for (NodeId w : g.two_hop_closed(v)) {
    theta = std::max(theta, g.closed_degree(w));
  }
  return theta;
}

Color highest_neighborhood_color(const Graph& g,
                                 const std::vector<Color>& colors,
                                 NodeId v) {
  URN_CHECK(colors.size() == g.num_nodes());
  Color best = colors[v];
  for (NodeId u : g.neighbors(v)) best = std::max(best, colors[u]);
  return best;
}

std::vector<Color> greedy_coloring(const Graph& g,
                                   std::span<const NodeId> order) {
  std::vector<Color> colors(g.num_nodes(), kUncolored);
  std::vector<bool> used;
  for (NodeId v : order) {
    URN_CHECK(v < g.num_nodes());
    used.assign(g.degree(v) + 2, false);
    for (NodeId u : g.neighbors(v)) {
      const Color c = colors[u];
      if (c != kUncolored && static_cast<std::size_t>(c) < used.size()) {
        used[static_cast<std::size_t>(c)] = true;
      }
    }
    Color pick = 0;
    while (used[static_cast<std::size_t>(pick)]) ++pick;
    colors[v] = pick;
  }
  return colors;
}

std::vector<Color> greedy_coloring(const Graph& g) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  return greedy_coloring(g, order);
}

std::vector<Color> greedy_coloring_random(const Graph& g, Rng& rng) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  return greedy_coloring(g, order);
}

Graph square(const Graph& g) {
  GraphBuilder builder(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.two_hop_closed(v)) {
      if (w > v) builder.add_edge(v, w);
    }
  }
  return builder.build();
}

std::vector<Color> greedy_distance2_coloring(const Graph& g) {
  return greedy_coloring(square(g));
}

ColoringCheck validate_distance2(const Graph& g,
                                 const std::vector<Color>& colors) {
  return validate(square(g), colors);
}

}  // namespace urn::graph
