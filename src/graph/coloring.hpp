/// \file coloring.hpp
/// \brief Vertex colorings: representation, validation, quality metrics,
///        and the centralized greedy baseline.
///
/// A coloring assigns `Color` values (0-based) to nodes; `kUncolored`
/// marks nodes without a decision.  `validate` checks the paper's two
/// requirements (Sect. 5): *correctness* (no two adjacent nodes share a
/// color) and *completeness* (every node has a color).  Locality metrics
/// implement the quantities of Theorem 4: θ_v (max closed degree in N_v²)
/// and φ_v (highest color in the closed neighborhood N_v).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace urn::graph {

using Color = std::int32_t;

inline constexpr Color kUncolored = -1;

/// Outcome of checking a coloring against a graph.
struct ColoringCheck {
  bool complete = false;  ///< every node colored
  bool correct = false;   ///< no monochromatic edge among colored nodes
  NodeId conflict_u = kInvalidNode;  ///< one endpoint of a violation, if any
  NodeId conflict_v = kInvalidNode;
  NodeId first_uncolored = kInvalidNode;

  [[nodiscard]] bool valid() const { return complete && correct; }
};

/// Check correctness and completeness of `colors` on g.
/// \pre colors.size() == g.num_nodes()
[[nodiscard]] ColoringCheck validate(const Graph& g,
                                     const std::vector<Color>& colors);

/// Highest color used (−1 if nothing is colored).
[[nodiscard]] Color max_color(const std::vector<Color>& colors);

/// Number of distinct colors in use (ignoring kUncolored).
[[nodiscard]] std::size_t distinct_colors(const std::vector<Color>& colors);

/// θ_v of Theorem 4: the maximum closed degree δ_w over w ∈ N_v².
[[nodiscard]] std::uint32_t local_density_theta(const Graph& g, NodeId v);

/// φ_v of Theorem 4: the highest color assigned in the closed
/// neighborhood N_v (including v).
[[nodiscard]] Color highest_neighborhood_color(
    const Graph& g, const std::vector<Color>& colors, NodeId v);

/// First-fit greedy coloring scanning nodes in the given order;
/// uses at most Δ+1 colors.
[[nodiscard]] std::vector<Color> greedy_coloring(
    const Graph& g, std::span<const NodeId> order);

/// Greedy coloring in natural node order.
[[nodiscard]] std::vector<Color> greedy_coloring(const Graph& g);

/// Greedy coloring in uniformly random order.
[[nodiscard]] std::vector<Color> greedy_coloring_random(const Graph& g,
                                                        Rng& rng);

/// The square graph G²: an edge between every pair at distance ≤ 2.
/// Coloring G² yields a *distance-2 coloring* of G — the structure the
/// paper notes is "typically argued" necessary for an entirely
/// collision-free TDMA schedule (Sect. 1).
[[nodiscard]] Graph square(const Graph& g);

/// Greedy distance-2 coloring of g (first-fit on G² in natural order).
/// Uses at most Δ(G²)+1 ≤ κ₂Δ+… colors; valid as a coloring of G².
[[nodiscard]] std::vector<Color> greedy_distance2_coloring(const Graph& g);

/// Check that `colors` is a correct *distance-2* coloring of g.
[[nodiscard]] ColoringCheck validate_distance2(const Graph& g,
                                               const std::vector<Color>& colors);

}  // namespace urn::graph
