#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "geom/spatial_grid.hpp"

namespace urn::graph {

namespace {

/// Build a UDG over explicit points using a spatial grid: O(n + m).
Graph udg_from_points(const std::vector<geom::Vec2>& points, double radius) {
  GraphBuilder builder(points.size());
  if (points.empty()) return builder.build();
  const geom::SpatialGrid grid(points, radius);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    grid.for_each_within(i, radius, [&](std::uint32_t j) {
      if (j > i) builder.add_edge(i, j);
    });
  }
  return builder.build();
}

}  // namespace

GeometricGraph random_udg(std::size_t n, double side, double radius,
                          Rng& rng) {
  URN_CHECK(n > 0 && side > 0.0 && radius > 0.0);
  GeometricGraph out;
  out.positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.positions.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  out.graph = udg_from_points(out.positions, radius);
  return out;
}

GeometricGraph grid_udg(std::size_t nx, std::size_t ny, double spacing,
                        double radius, double jitter, Rng& rng) {
  URN_CHECK(nx > 0 && ny > 0 && spacing > 0.0 && radius > 0.0);
  URN_CHECK(jitter >= 0.0);
  GeometricGraph out;
  out.positions.reserve(nx * ny);
  for (std::size_t gy = 0; gy < ny; ++gy) {
    for (std::size_t gx = 0; gx < nx; ++gx) {
      const double x = static_cast<double>(gx) * spacing +
                       rng.uniform(-jitter, jitter);
      const double y = static_cast<double>(gy) * spacing +
                       rng.uniform(-jitter, jitter);
      out.positions.push_back({x, y});
    }
  }
  out.graph = udg_from_points(out.positions, radius);
  return out;
}

GeometricGraph clustered_udg(std::size_t clusters, std::size_t per_cluster,
                             double side, double sigma, double radius,
                             Rng& rng) {
  URN_CHECK(clusters > 0 && per_cluster > 0);
  URN_CHECK(side > 0.0 && sigma >= 0.0 && radius > 0.0);
  GeometricGraph out;
  out.positions.reserve(clusters * per_cluster);
  for (std::size_t c = 0; c < clusters; ++c) {
    const geom::Vec2 center{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    for (std::size_t i = 0; i < per_cluster; ++i) {
      geom::Vec2 p{center.x + sigma * rng.normal(),
                   center.y + sigma * rng.normal()};
      p.x = std::clamp(p.x, 0.0, side);
      p.y = std::clamp(p.y, 0.0, side);
      out.positions.push_back(p);
    }
  }
  out.graph = udg_from_points(out.positions, radius);
  return out;
}

ObstacleGraph obstacle_big(std::vector<geom::Vec2> points,
                           std::vector<geom::Segment> walls, double radius) {
  URN_CHECK(radius > 0.0);
  ObstacleGraph out;
  out.positions = std::move(points);
  out.walls = std::move(walls);
  GraphBuilder builder(out.positions.size());
  if (!out.positions.empty()) {
    const geom::SpatialGrid grid(out.positions, radius);
    for (std::uint32_t i = 0; i < out.positions.size(); ++i) {
      grid.for_each_within(i, radius, [&](std::uint32_t j) {
        if (j <= i) return;
        const geom::Segment link{out.positions[i], out.positions[j]};
        const bool blocked =
            std::any_of(out.walls.begin(), out.walls.end(),
                        [&link](const geom::Segment& wall) {
                          return geom::segments_intersect(link, wall);
                        });
        if (!blocked) builder.add_edge(i, j);
      });
    }
  }
  out.graph = builder.build();
  return out;
}

ObstacleGraph random_obstacle_big(std::size_t n, double side, double radius,
                                  std::vector<geom::Segment> walls,
                                  Rng& rng) {
  URN_CHECK(n > 0 && side > 0.0);
  std::vector<geom::Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return obstacle_big(std::move(points), std::move(walls), radius);
}

std::vector<geom::Segment> random_walls(std::size_t count, double side,
                                        double min_len, double max_len,
                                        Rng& rng) {
  URN_CHECK(0.0 < min_len && min_len <= max_len);
  std::vector<geom::Segment> walls;
  walls.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const geom::Vec2 a{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double len = rng.uniform(min_len, max_len);
    const geom::Vec2 b{a.x + len * std::cos(angle),
                       a.y + len * std::sin(angle)};
    walls.push_back({a, b});
  }
  return walls;
}

BallGraph random_unit_ball(std::size_t n, std::size_t dim, double side,
                           Rng& rng) {
  URN_CHECK(n > 0 && dim >= 1 && dim <= 4 && side > 0.0);
  BallGraph out;
  out.dim = dim;
  out.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::array<double, 4> p{0.0, 0.0, 0.0, 0.0};
    for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(0.0, side);
    out.points.push_back(p);
  }
  GraphBuilder builder(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = out.points[i][d] - out.points[j][d];
        d2 += diff * diff;
      }
      if (d2 <= 1.0) builder.add_edge(i, j);
    }
  }
  out.graph = builder.build();
  return out;
}

Graph path_graph(std::size_t n) {
  GraphBuilder builder(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) builder.add_edge(i, i + 1);
  return builder.build();
}

Graph cycle_graph(std::size_t n) {
  URN_CHECK(n >= 3);
  GraphBuilder builder(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    builder.add_edge(i, static_cast<NodeId>((i + 1) % n));
  }
  return builder.build();
}

Graph star_graph(std::size_t n) {
  URN_CHECK(n >= 1);
  GraphBuilder builder(n);
  for (std::uint32_t i = 1; i < n; ++i) builder.add_edge(0, i);
  return builder.build();
}

Graph complete_graph(std::size_t n) {
  GraphBuilder builder(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) builder.add_edge(i, j);
  }
  return builder.build();
}

Graph empty_graph(std::size_t n) { return GraphBuilder(n).build(); }

Graph gnp(std::size_t n, double p, Rng& rng) {
  URN_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder builder(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.chance(p)) builder.add_edge(i, j);
    }
  }
  return builder.build();
}

}  // namespace urn::graph
