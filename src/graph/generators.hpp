/// \file generators.hpp
/// \brief Network topology generators for all graph families in the paper.
///
/// * Unit disk graphs (Sect. 2, Cor. 2): random, perturbed-grid, and
///   clustered deployments — edge iff Euclidean distance ≤ radius.
/// * Obstacle BIGs (Fig. 1 discussion): UDG links are cut when the line of
///   sight crosses a wall segment; the result is no longer a UDG but stays
///   a bounded independence graph.
/// * Unit ball graphs (Cor. 3): points in a d-dimensional cube, edge iff
///   Euclidean distance ≤ 1; doubling dimension grows with d.
/// * Combinatorial families (path/cycle/star/complete/G(n,p)) for tests
///   and worst-case probes.
///
/// All generators are deterministic in the provided RNG.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geom/segment.hpp"
#include "geom/vec2.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace urn::graph {

/// A graph together with the node positions that produced it.
struct GeometricGraph {
  Graph graph;
  std::vector<geom::Vec2> positions;
};

/// A geometric graph with the obstacle segments that shaped it.
struct ObstacleGraph {
  Graph graph;
  std::vector<geom::Vec2> positions;
  std::vector<geom::Segment> walls;
};

/// A unit ball graph over points in a d-dimensional cube (d ≤ 4).
struct BallGraph {
  Graph graph;
  std::size_t dim = 2;
  std::vector<std::array<double, 4>> points;
};

/// Random UDG: n points uniform in [0, side]², edge iff dist ≤ radius.
[[nodiscard]] GeometricGraph random_udg(std::size_t n, double side,
                                        double radius, Rng& rng);

/// Perturbed grid UDG: nx×ny lattice with given spacing, each point
/// jittered uniformly in a square of half-width `jitter`.
[[nodiscard]] GeometricGraph grid_udg(std::size_t nx, std::size_t ny,
                                      double spacing, double radius,
                                      double jitter, Rng& rng);

/// Clustered UDG: `clusters` Gaussian blobs of `per_cluster` points with
/// standard deviation `sigma`, centers uniform in [0, side]².  Produces
/// strong density contrast — the workload for the locality experiment E5.
[[nodiscard]] GeometricGraph clustered_udg(std::size_t clusters,
                                           std::size_t per_cluster,
                                           double side, double sigma,
                                           double radius, Rng& rng);

/// Obstacle BIG from explicit points and walls: UDG edge (dist ≤ radius)
/// kept only if the segment between the endpoints crosses no wall.
[[nodiscard]] ObstacleGraph obstacle_big(std::vector<geom::Vec2> points,
                                         std::vector<geom::Segment> walls,
                                         double radius);

/// Obstacle BIG with n uniform points and the given walls.
[[nodiscard]] ObstacleGraph random_obstacle_big(
    std::size_t n, double side, double radius,
    std::vector<geom::Segment> walls, Rng& rng);

/// `count` random wall segments with lengths in [min_len, max_len] inside
/// [0, side]².
[[nodiscard]] std::vector<geom::Segment> random_walls(std::size_t count,
                                                      double side,
                                                      double min_len,
                                                      double max_len,
                                                      Rng& rng);

/// Random unit ball graph: n points uniform in [0, side]^dim (dim ≤ 4),
/// edge iff Euclidean distance ≤ 1.  O(n²) construction.
[[nodiscard]] BallGraph random_unit_ball(std::size_t n, std::size_t dim,
                                         double side, Rng& rng);

/// Path 0–1–…–(n−1).
[[nodiscard]] Graph path_graph(std::size_t n);

/// Cycle on n ≥ 3 nodes.
[[nodiscard]] Graph cycle_graph(std::size_t n);

/// Star: node 0 adjacent to all others.
[[nodiscard]] Graph star_graph(std::size_t n);

/// Complete graph K_n.
[[nodiscard]] Graph complete_graph(std::size_t n);

/// Graph with n nodes and no edges.
[[nodiscard]] Graph empty_graph(std::size_t n);

/// Erdős–Rényi G(n, p).
[[nodiscard]] Graph gnp(std::size_t n, double p, Rng& rng);

}  // namespace urn::graph
