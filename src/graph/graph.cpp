#include "graph/graph.hpp"

#include <algorithm>

namespace urn::graph {

std::uint32_t Graph::max_closed_degree() const {
  return max_degree() + (num_nodes() > 0 ? 1u : 0u);
}

std::uint32_t Graph::max_degree() const {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_nodes());
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  URN_DCHECK(u < num_nodes() && v < num_nodes());
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<NodeId> Graph::two_hop_closed(NodeId v) const {
  URN_DCHECK(v < num_nodes());
  std::vector<NodeId> out;
  out.push_back(v);
  for (NodeId u : neighbors(v)) out.push_back(u);
  const std::size_t one_hop_end = out.size();
  for (std::size_t i = 1; i < one_hop_end; ++i) {
    for (NodeId w : neighbors(out[i])) out.push_back(w);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  URN_CHECK_MSG(u < num_nodes_ && v < num_nodes_,
                "edge endpoint out of range: " << u << "," << v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() const {
  Graph g;
  g.offsets_.assign(num_nodes_ + 1, 0);

  // Symmetrize, drop self-loops.
  std::vector<std::pair<NodeId, NodeId>> directed;
  directed.reserve(edges_.size() * 2);
  for (auto [u, v] : edges_) {
    if (u == v) continue;
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  for (auto [u, v] : directed) ++g.offsets_[u + 1];
  for (std::size_t i = 1; i <= num_nodes_; ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(directed.size());
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : directed) g.adjacency_[cursor[u]++] = v;
  return g;
}

}  // namespace urn::graph
