/// \file graph.hpp
/// \brief Immutable undirected graph in compressed-sparse-row form.
///
/// All algorithms in the library (the coloring protocol, the simulator, the
/// independence analysis) operate on this one representation.  Graphs are
/// built through `GraphBuilder`, which deduplicates and symmetrizes edges,
/// then frozen; neighbor lists are sorted so adjacency tests are
/// O(log deg).
///
/// Convention from the paper (Sect. 2): the *degree* δ_v = |N_v| counts the
/// node itself, and N_v denotes the closed neighborhood.  The accessors
/// below expose both open and closed variants explicitly.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace urn::graph {

using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Immutable undirected simple graph (CSR).
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_edges() const { return adjacency_.size() / 2; }

  /// Sorted open neighborhood of v (excludes v).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    URN_DCHECK(v < num_nodes());
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Open degree |N(v) \ {v}|.
  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    URN_DCHECK(v < num_nodes());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Closed degree δ_v = |N_v| (paper convention: includes v).
  [[nodiscard]] std::uint32_t closed_degree(NodeId v) const {
    return degree(v) + 1;
  }

  /// Maximum closed degree Δ over all nodes (paper's Δ); 1 for edgeless.
  [[nodiscard]] std::uint32_t max_closed_degree() const;

  /// Maximum open degree over all nodes; 0 for edgeless graphs.
  [[nodiscard]] std::uint32_t max_degree() const;

  /// Average open degree.
  [[nodiscard]] double average_degree() const;

  /// O(log deg) adjacency test.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Sorted closed 2-hop neighborhood N_v² (nodes within distance ≤ 2,
  /// including v itself).
  [[nodiscard]] std::vector<NodeId> two_hop_closed(NodeId v) const;

 private:
  friend class GraphBuilder;

  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // size 2m, sorted per node
};

/// Incremental edge-list builder; `build()` symmetrizes, deduplicates,
/// drops self-loops, and freezes into CSR form.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {}

  /// Record an undirected edge {u, v}. Self-loops and duplicates are
  /// tolerated and removed at build time.
  void add_edge(NodeId u, NodeId v);

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }

  /// Freeze into an immutable Graph. The builder may be reused afterwards.
  [[nodiscard]] Graph build() const;

 private:
  std::size_t num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace urn::graph
