#include "graph/independence.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace urn::graph {

bool is_independent_set(const Graph& g, std::span<const NodeId> nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i] == nodes[j] || g.has_edge(nodes[i], nodes[j])) {
        return false;
      }
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                std::span<const NodeId> nodes) {
  if (!is_independent_set(g, nodes)) return false;
  std::vector<bool> in_set(g.num_nodes(), false);
  std::vector<bool> dominated(g.num_nodes(), false);
  for (NodeId v : nodes) {
    in_set[v] = true;
    dominated[v] = true;
    for (NodeId u : g.neighbors(v)) dominated[u] = true;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!dominated[v]) return false;
  }
  return true;
}

std::vector<NodeId> greedy_mis(const Graph& g,
                               std::span<const NodeId> order) {
  std::vector<bool> blocked(g.num_nodes(), false);
  std::vector<NodeId> mis;
  for (NodeId v : order) {
    URN_CHECK(v < g.num_nodes());
    if (blocked[v]) continue;
    mis.push_back(v);
    blocked[v] = true;
    for (NodeId u : g.neighbors(v)) blocked[u] = true;
  }
  return mis;
}

std::vector<NodeId> greedy_mis_random(const Graph& g, Rng& rng) {
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  return greedy_mis(g, order);
}

namespace {

/// Dynamic bitset of `words` 64-bit words, flat storage.
class BitMatrixRow {
 public:
  BitMatrixRow(std::uint64_t* data, std::size_t words)
      : data_(data), words_(words) {}

  void set(std::size_t i) { data_[i >> 6] |= 1ULL << (i & 63); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (data_[i >> 6] >> (i & 63)) & 1ULL;
  }
  [[nodiscard]] const std::uint64_t* data() const { return data_; }
  [[nodiscard]] std::size_t words() const { return words_; }

 private:
  std::uint64_t* data_;
  std::size_t words_;
};

struct MisInstance {
  std::size_t k = 0;      // number of vertices
  std::size_t words = 0;  // bitset words
  std::vector<std::uint64_t> adj;  // k rows of `words` words each

  [[nodiscard]] const std::uint64_t* row(std::size_t v) const {
    return adj.data() + v * words;
  }
};

std::uint32_t popcount_words(const std::uint64_t* w, std::size_t n) {
  std::uint32_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::uint32_t>(__builtin_popcountll(w[i]));
  }
  return c;
}

/// Branch-and-bound maximum independent set over a candidate bitset.
class MisSolver {
 public:
  explicit MisSolver(const MisInstance& inst) : inst_(inst) {}

  std::uint32_t solve() {
    std::vector<std::uint64_t> all(inst_.words, 0);
    for (std::size_t v = 0; v < inst_.k; ++v) {
      all[v >> 6] |= 1ULL << (v & 63);
    }
    best_ = greedy_bound(all);
    recurse(all, 0);
    return best_;
  }

 private:
  /// Greedy min-degree MIS on the candidate set; a quick lower bound that
  /// lets the branch-and-bound prune early.
  std::uint32_t greedy_bound(std::vector<std::uint64_t> cand) const {
    std::uint32_t size = 0;
    while (true) {
      std::size_t pick = inst_.k;
      std::uint32_t pick_deg = 0;
      for (std::size_t v = 0; v < inst_.k; ++v) {
        if (!((cand[v >> 6] >> (v & 63)) & 1ULL)) continue;
        std::uint32_t deg = 0;
        const std::uint64_t* row = inst_.row(v);
        for (std::size_t w = 0; w < inst_.words; ++w) {
          deg += static_cast<std::uint32_t>(
              __builtin_popcountll(row[w] & cand[w]));
        }
        if (pick == inst_.k || deg < pick_deg) {
          pick = v;
          pick_deg = deg;
        }
      }
      if (pick == inst_.k) break;
      ++size;
      const std::uint64_t* row = inst_.row(pick);
      for (std::size_t w = 0; w < inst_.words; ++w) cand[w] &= ~row[w];
      cand[pick >> 6] &= ~(1ULL << (pick & 63));
    }
    return size;
  }

  void recurse(std::vector<std::uint64_t>& cand, std::uint32_t current) {
    const std::uint32_t remaining = popcount_words(cand.data(), inst_.words);
    if (current + remaining <= best_) return;
    if (remaining == 0) {
      best_ = std::max(best_, current);
      return;
    }

    // Pick the candidate with the highest degree inside the candidate set;
    // isolated candidates are all taken at once.
    std::size_t pick = inst_.k;
    std::uint32_t pick_deg = 0;
    std::uint32_t isolated = 0;
    for (std::size_t v = 0; v < inst_.k; ++v) {
      if (!((cand[v >> 6] >> (v & 63)) & 1ULL)) continue;
      std::uint32_t deg = 0;
      const std::uint64_t* row = inst_.row(v);
      for (std::size_t w = 0; w < inst_.words; ++w) {
        deg += static_cast<std::uint32_t>(
            __builtin_popcountll(row[w] & cand[w]));
      }
      if (deg == 0) {
        ++isolated;
      } else if (pick == inst_.k || deg > pick_deg) {
        pick = v;
        pick_deg = deg;
      }
    }
    if (pick == inst_.k) {
      // All remaining candidates are mutually non-adjacent.
      best_ = std::max(best_, current + isolated);
      return;
    }

    // Branch 1: include `pick` — remove it and its neighbors.
    std::vector<std::uint64_t> with = cand;
    const std::uint64_t* row = inst_.row(pick);
    for (std::size_t w = 0; w < inst_.words; ++w) with[w] &= ~row[w];
    with[pick >> 6] &= ~(1ULL << (pick & 63));
    recurse(with, current + 1);

    // Branch 2: exclude `pick`.
    std::vector<std::uint64_t> without = cand;
    without[pick >> 6] &= ~(1ULL << (pick & 63));
    recurse(without, current);
  }

  const MisInstance& inst_;
  std::uint32_t best_ = 0;
};

MisInstance induce(const Graph& g, std::span<const NodeId> nodes) {
  MisInstance inst;
  inst.k = nodes.size();
  inst.words = (inst.k + 63) / 64;
  inst.adj.assign(inst.k * inst.words, 0);
  std::unordered_map<NodeId, std::size_t> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) index[nodes[i]] = i;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (NodeId u : g.neighbors(nodes[i])) {
      const auto it = index.find(u);
      if (it == index.end()) continue;
      const std::size_t j = it->second;
      inst.adj[i * inst.words + (j >> 6)] |= 1ULL << (j & 63);
      inst.adj[j * inst.words + (i >> 6)] |= 1ULL << (i & 63);
    }
  }
  return inst;
}

/// Greedy (min-degree) MIS size of an induced subgraph — lower bound used
/// when the neighborhood is too large for exact search.
std::uint32_t greedy_induced_mis(const Graph& g,
                                 std::span<const NodeId> nodes) {
  const MisInstance inst = induce(g, nodes);
  return MisSolver(inst).solve();  // unreachable for big inputs; see caller
}

std::uint32_t neighborhood_mis(const Graph& g, std::span<const NodeId> nodes,
                               std::size_t exact_limit, bool& exact) {
  if (nodes.size() <= exact_limit) {
    const MisInstance inst = induce(g, nodes);
    return MisSolver(inst).solve();
  }
  exact = false;
  // Greedy lower bound on the oversized neighborhood: min-degree first-fit
  // over the induced subgraph, computed with hash-set adjacency.
  std::unordered_map<NodeId, std::uint32_t> deg_in;
  deg_in.reserve(nodes.size());
  for (NodeId v : nodes) deg_in[v] = 0;
  for (NodeId v : nodes) {
    for (NodeId u : g.neighbors(v)) {
      if (deg_in.count(u)) ++deg_in[v];
    }
  }
  std::vector<NodeId> order(nodes.begin(), nodes.end());
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return deg_in[a] < deg_in[b] || (deg_in[a] == deg_in[b] && a < b);
  });
  std::unordered_map<NodeId, bool> blocked;
  for (NodeId v : nodes) blocked[v] = false;
  std::uint32_t size = 0;
  for (NodeId v : order) {
    if (blocked[v]) continue;
    ++size;
    blocked[v] = true;
    for (NodeId u : g.neighbors(v)) {
      const auto it = blocked.find(u);
      if (it != blocked.end()) it->second = true;
    }
  }
  return size;
}

std::vector<NodeId> nodes_to_evaluate(const Graph& g,
                                      const KappaOptions& opts) {
  std::vector<NodeId> eval;
  if (opts.sample == 0 || opts.sample >= g.num_nodes()) {
    eval.resize(g.num_nodes());
    std::iota(eval.begin(), eval.end(), 0u);
    return eval;
  }
  Rng rng(opts.seed);
  std::vector<NodeId> all(g.num_nodes());
  std::iota(all.begin(), all.end(), 0u);
  rng.shuffle(all);
  eval.assign(all.begin(),
              all.begin() + static_cast<std::ptrdiff_t>(opts.sample));
  // Always include the max-degree node: the κ maximum is usually there.
  NodeId densest = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(densest)) densest = v;
  }
  eval.push_back(densest);
  return eval;
}

}  // namespace

std::uint32_t max_independent_set_size(const Graph& g,
                                       std::span<const NodeId> nodes) {
  URN_CHECK(nodes.size() <= 4096);
  if (nodes.empty()) return 0;
  return greedy_induced_mis(g, nodes);
}

KappaResult kappa1(const Graph& g, const KappaOptions& opts) {
  KappaResult result;
  for (NodeId v : nodes_to_evaluate(g, opts)) {
    std::vector<NodeId> hood;
    hood.push_back(v);
    for (NodeId u : g.neighbors(v)) hood.push_back(u);
    result.value = std::max(
        result.value,
        neighborhood_mis(g, hood, opts.exact_limit, result.exact));
  }
  if (opts.sample != 0 && opts.sample < g.num_nodes()) result.exact = false;
  return result;
}

KappaResult kappa2(const Graph& g, const KappaOptions& opts) {
  KappaResult result;
  for (NodeId v : nodes_to_evaluate(g, opts)) {
    const std::vector<NodeId> hood = g.two_hop_closed(v);
    result.value = std::max(
        result.value,
        neighborhood_mis(g, hood, opts.exact_limit, result.exact));
  }
  if (opts.sample != 0 && opts.sample < g.num_nodes()) result.exact = false;
  return result;
}

}  // namespace urn::graph
