/// \file independence.hpp
/// \brief Independent sets and the bounded-independence parameters κ₁, κ₂.
///
/// The paper's model (Sect. 2) characterizes a bounded independence graph
/// by κ₁ / κ₂ — the largest independent set in any closed 1-hop / 2-hop
/// neighborhood.  Maximum independent set is NP-hard in general, but the
/// neighborhoods of the graphs we study are small, so an exact
/// branch-and-bound is feasible; a greedy fallback (lower bound) kicks in
/// beyond a configurable subproblem size.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace urn::graph {

/// True if no two nodes in `nodes` are adjacent in g.
[[nodiscard]] bool is_independent_set(const Graph& g,
                                      std::span<const NodeId> nodes);

/// True if `nodes` is independent and no further node can be added
/// (i.e. a maximal independent set).
[[nodiscard]] bool is_maximal_independent_set(const Graph& g,
                                              std::span<const NodeId> nodes);

/// Greedy maximal independent set scanning nodes in the given order.
[[nodiscard]] std::vector<NodeId> greedy_mis(const Graph& g,
                                             std::span<const NodeId> order);

/// Greedy MIS in uniformly random order.
[[nodiscard]] std::vector<NodeId> greedy_mis_random(const Graph& g, Rng& rng);

/// Exact maximum-independent-set size of the subgraph induced by `nodes`,
/// via branch and bound.  Intended for neighborhood-sized subproblems.
/// \pre nodes.size() <= 4096 (bitset-backed).
[[nodiscard]] std::uint32_t max_independent_set_size(
    const Graph& g, std::span<const NodeId> nodes);

/// Result of a κ computation.
struct KappaResult {
  std::uint32_t value = 0;  ///< the (lower-bound or exact) κ
  bool exact = true;        ///< false if any neighborhood used the greedy fallback
};

/// Options controlling the κ computation cost.
struct KappaOptions {
  /// Neighborhoods larger than this use a greedy lower bound instead of
  /// exact branch and bound.
  std::size_t exact_limit = 160;
  /// If > 0, evaluate only this many uniformly sampled nodes (plus the
  /// highest-degree node) instead of all nodes.
  std::size_t sample = 0;
  /// RNG seed used when sampling.
  std::uint64_t seed = 1;
};

/// κ₁: max independent set size over all closed 1-hop neighborhoods.
[[nodiscard]] KappaResult kappa1(const Graph& g, const KappaOptions& opts = {});

/// κ₂: max independent set size over all closed 2-hop neighborhoods.
[[nodiscard]] KappaResult kappa2(const Graph& g, const KappaOptions& opts = {});

}  // namespace urn::graph
