#include "graph/io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace urn::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# urn edge list\n";
  os << "nodes " << g.num_nodes() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) os << v << ' ' << u << '\n';
    }
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  std::size_t n = 0;
  bool have_nodes = false;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;
    if (first == "nodes") {
      URN_CHECK_MSG(!have_nodes, "duplicate 'nodes' line at " << line_no);
      URN_CHECK_MSG(static_cast<bool>(ls >> n),
                    "bad 'nodes' line at " << line_no);
      have_nodes = true;
      continue;
    }
    URN_CHECK_MSG(have_nodes, "edge before 'nodes' header at " << line_no);
    std::uint64_t u = 0, v = 0;
    std::istringstream es(first);
    URN_CHECK_MSG(static_cast<bool>(es >> u) && static_cast<bool>(ls >> v),
                  "malformed edge at line " << line_no);
    URN_CHECK_MSG(u < n && v < n, "edge endpoint out of range at line "
                                      << line_no);
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  URN_CHECK_MSG(have_nodes, "missing 'nodes' header");
  GraphBuilder builder(n);
  for (auto [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  URN_CHECK_MSG(out.good(), "cannot open " << path);
  write_edge_list(out, g);
  URN_CHECK_MSG(out.good(), "write failed: " << path);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  URN_CHECK_MSG(in.good(), "cannot open " << path);
  return read_edge_list(in);
}

void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts) {
  static const char* kPalette[] = {
      "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3", "#a6d854",
      "#ffd92f", "#e5c494", "#b3b3b3", "#1b9e77", "#d95f02",
  };
  constexpr std::size_t kPaletteSize = 10;
  if (opts.colors) URN_CHECK(opts.colors->size() == g.num_nodes());
  if (opts.positions) URN_CHECK(opts.positions->size() == g.num_nodes());

  os << "graph " << opts.graph_name << " {\n";
  os << "  node [shape=circle, style=filled];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [";
    if (opts.colors) {
      const Color c = (*opts.colors)[v];
      os << "label=\"" << v << ':' << c << "\"";
      if (c != kUncolored) {
        os << ", fillcolor=\""
           << kPalette[static_cast<std::size_t>(c) % kPaletteSize] << "\"";
      }
    } else {
      os << "label=\"" << v << "\"";
    }
    if (opts.positions) {
      const geom::Vec2 p = (*opts.positions)[v];
      os << ", pos=\"" << p.x << ',' << p.y << "!\"";
    }
    os << "];\n";
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (u > v) os << "  n" << v << " -- n" << u << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace urn::graph
