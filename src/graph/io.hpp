/// \file io.hpp
/// \brief Graph (de)serialization: a simple edge-list text format and
///        Graphviz DOT export (with optional coloring / positions).
///
/// Edge-list format:
///
///     # comment lines start with '#'
///     nodes <n>
///     <u> <v>          # one undirected edge per line, 0-based ids
///
/// The format round-trips exactly (builder semantics: duplicates and
/// self-loops are dropped on load).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"

namespace urn::graph {

/// Write g in edge-list format.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parse an edge-list stream. Throws urn::CheckError on malformed input.
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// Convenience file wrappers. Throw urn::CheckError on I/O failure.
void save_edge_list(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_edge_list(const std::string& path);

/// Options for DOT export.
struct DotOptions {
  /// Optional coloring: nodes are labeled "id:color" and given a fill
  /// color cycling through a small palette.
  const std::vector<Color>* colors = nullptr;
  /// Optional positions: emitted as pin-positions (neato-compatible).
  const std::vector<geom::Vec2>* positions = nullptr;
  std::string graph_name = "urn";
};

/// Write g as an undirected Graphviz graph.
void write_dot(std::ostream& os, const Graph& g, const DotOptions& opts = {});

}  // namespace urn::graph
