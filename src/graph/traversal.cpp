#include "graph/traversal.hpp"

#include <algorithm>
#include <queue>

namespace urn::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  URN_CHECK(source < g.num_nodes());
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

Components connected_components(const Graph& g) {
  Components comps;
  comps.id.assign(g.num_nodes(), kUnreachable);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (comps.id[start] != kUnreachable) continue;
    comps.id[start] = comps.count;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId u : g.neighbors(v)) {
        if (comps.id[u] == kUnreachable) {
          comps.id[u] = comps.count;
          stack.push_back(u);
        }
      }
    }
    ++comps.count;
  }
  return comps;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return connected_components(g).count == 1;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (std::uint32_t d : dist) {
      if (d == kUnreachable) return kUnreachable;
      best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace urn::graph
