/// \file traversal.hpp
/// \brief BFS-based graph queries: distances, components, eccentricity.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace urn::graph {

/// Sentinel distance for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Hop distances from `source` to all nodes (kUnreachable if disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       NodeId source);

/// Component id per node (0-based, contiguous).
struct Components {
  std::vector<std::uint32_t> id;  ///< component id per node
  std::uint32_t count = 0;        ///< number of components
};

[[nodiscard]] Components connected_components(const Graph& g);

/// True if the graph has exactly one connected component (or is empty).
[[nodiscard]] bool is_connected(const Graph& g);

/// Largest BFS eccentricity over all nodes; kUnreachable for disconnected
/// graphs. O(n·(n+m)) — intended for test/bench graphs.
[[nodiscard]] std::uint32_t diameter(const Graph& g);

}  // namespace urn::graph
