#include "obs/bintrace.hpp"

#include <cstring>

#include "obs/trace.hpp"

namespace urn::obs {

namespace {

// Explicit little-endian codecs: the format is defined byte-for-byte,
// independent of host endianness and of Event's in-memory layout.

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void store_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

void store_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

[[nodiscard]] std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

namespace {

/// Serialize `e` into `rec` (\pre spans kBinRecordSize bytes).  The
/// byte-shift loops compile to plain stores on little-endian hosts, so
/// this is memcpy-grade — the hot path of both append_bin and
/// BinSink::record.
void store_record(unsigned char* rec, const Event& e) {
  store_u64(rec, static_cast<std::uint64_t>(e.slot));
  store_u64(rec + 8, static_cast<std::uint64_t>(e.value));
  store_u32(rec + 16, e.node);
  store_u32(rec + 20, e.peer);
  store_u32(rec + 24, static_cast<std::uint32_t>(e.color));
  rec[28] = static_cast<unsigned char>(e.kind);
  rec[29] = e.msg;
  rec[30] = e.phase;
  rec[31] = 0;
}

}  // namespace

void append_bin(std::string& out, const Event& e) {
  unsigned char rec[kBinRecordSize];
  store_record(rec, e);
  out.append(reinterpret_cast<const char*>(rec), kBinRecordSize);
}

bool parse_bin_record(const unsigned char* data, Event& out) {
  Event e;
  e.slot = static_cast<Slot>(get_u64(data));
  e.value = static_cast<std::int64_t>(get_u64(data + 8));
  e.node = get_u32(data + 16);
  e.peer = get_u32(data + 20);
  e.color = static_cast<std::int32_t>(get_u32(data + 24));
  if (data[28] >= kNumEventKinds) return false;
  e.kind = static_cast<EventKind>(data[28]);
  e.msg = data[29];
  e.phase = data[30];
  out = e;
  return true;
}

BinSink::BinSink(const std::string& path, std::size_t ring_capacity)
    : path_(path), capacity_(ring_capacity) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  // BinSink buffers records itself; an unbuffered stream skips stdio's
  // second copy of every 64 KiB chunk.
  std::setvbuf(file_, nullptr, _IONBF, 0);
  if (capacity_ > 0) {
    ring_.reserve(capacity_);
    flush();  // persist the (empty) header immediately
    return;
  }
  // Streaming mode serializes records in place at buffer_[len_]; the
  // size is fixed up front so record() never reallocates.
  buffer_.resize(kFlushThreshold + kBinRecordSize);
  const std::string header = header_bytes();
  std::memcpy(buffer_.data(), header.data(), header.size());
  len_ = header.size();
  flush();
}

BinSink::~BinSink() {
  flush();
  if (file_ != nullptr) std::fclose(file_);
}

std::string BinSink::header_bytes() const {
  std::string header;
  header.reserve(kBinHeaderSize);
  header.append(kBinMagic, sizeof(kBinMagic));
  put_u16(header, kBinVersion);
  put_u16(header, static_cast<std::uint16_t>(kBinRecordSize));
  put_u32(header, capacity_ > 0 ? kBinFlagRing : 0u);
  put_u32(header, 0u);  // reserved
  const std::uint64_t dropped =
      capacity_ > 0 && written_ > capacity_ ? written_ - capacity_ : 0;
  put_u64(header, dropped);
  return header;
}

std::uint64_t BinSink::retained() const {
  if (capacity_ == 0) return written_;
  return written_ < capacity_ ? written_ : capacity_;
}

void BinSink::record(const Event& e) {
  if (file_ == nullptr) return;
  ++written_;
  if (capacity_ > 0) {
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[next_] = e;
      next_ = (next_ + 1) % capacity_;
    }
    return;
  }
  store_record(reinterpret_cast<unsigned char*>(buffer_.data()) + len_, e);
  len_ += kBinRecordSize;
  if (len_ >= kFlushThreshold) flush();
}

void BinSink::flush() {
  if (file_ == nullptr) return;
  if (capacity_ > 0) {
    // Ring mode: rewrite header + retained suffix in place.  The
    // payload size is nondecreasing over time (it grows to capacity_
    // records, then stays constant), so no truncation is ever needed.
    std::string image = header_bytes();
    image.reserve(kBinHeaderSize + ring_.size() * kBinRecordSize);
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      append_bin(image, ring_[(next_ + i) % ring_.size()]);
    }
    std::fseek(file_, 0, SEEK_SET);
    std::fwrite(image.data(), 1, image.size(), file_);
    std::fflush(file_);
    bytes_ = image.size();
    return;
  }
  if (len_ == 0) return;
  std::fwrite(buffer_.data(), 1, len_, file_);
  std::fflush(file_);
  bytes_ += len_;
  len_ = 0;
}

namespace {

/// Read a whole file into a byte string; empty optional-style flag via
/// the bool return.
[[nodiscard]] bool slurp(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out.append(chunk, got);
  }
  std::fclose(f);
  return true;
}

}  // namespace

ParsedBinFile read_bin_file(const std::string& path) {
  ParsedBinFile out;
  std::string data;
  if (!slurp(path, data)) {
    out.error = "cannot open " + path;
    return out;
  }
  if (data.size() < kBinHeaderSize) {
    out.error = path + ": truncated binary trace header";
    return out;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  if (std::memcmp(p, kBinMagic, sizeof(kBinMagic)) != 0) {
    out.error = path + ": not a binary trace (bad magic)";
    return out;
  }
  const std::uint16_t version = get_u16(p + 4);
  const std::uint16_t record_size = get_u16(p + 6);
  if (version > kBinVersion) {
    out.error = path + ": binary trace version " + std::to_string(version) +
                " is newer than this reader (max supported " +
                std::to_string(kBinVersion) + ")";
    return out;
  }
  if (version != kBinVersion) {
    out.error = path + ": unsupported binary trace version " +
                std::to_string(version);
    return out;
  }
  if (record_size != kBinRecordSize) {
    out.error = path + ": unexpected record size " +
                std::to_string(record_size);
    return out;
  }
  out.ring = (get_u32(p + 8) & kBinFlagRing) != 0;
  out.dropped = get_u64(p + 16);
  out.ok = true;

  std::size_t offset = kBinHeaderSize;
  out.events.reserve((data.size() - offset) / kBinRecordSize);
  while (offset + kBinRecordSize <= data.size()) {
    Event e;
    if (parse_bin_record(p + offset, e)) {
      out.events.push_back(e);
    } else {
      ++out.bad_records;
    }
    offset += kBinRecordSize;
  }
  if (offset != data.size()) ++out.bad_records;  // trailing partial record
  return out;
}

ParsedTraceFile read_trace_file(const std::string& path) {
  ParsedTraceFile out;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      out.error = "cannot open " + path;
      return out;
    }
    char magic[sizeof(kBinMagic)] = {};
    const std::size_t got = std::fread(magic, 1, sizeof(magic), f);
    std::fclose(f);
    if (got == 0) {
      // An empty capture is always a broken capture: a real trace has
      // at least a header (URNB) or one event line (JSONL).  Falling
      // through to the JSONL parser would report "ok, 0 events".
      out.error = path + ": empty trace file";
      return out;
    }
    out.binary = got == sizeof(magic) &&
                 std::memcmp(magic, kBinMagic, sizeof(magic)) == 0;
  }
  if (out.binary) {
    ParsedBinFile bin = read_bin_file(path);
    if (!bin.ok) {
      out.error = std::move(bin.error);
      return out;
    }
    out.records = bin.events.size() + bin.bad_records;
    out.bad = bin.bad_records;
    out.dropped = bin.dropped;
    out.events = std::move(bin.events);
    out.ok = true;
    return out;
  }
  ParsedLogFile log = read_jsonl_file(path);
  if (!log.ok) {
    out.error = "cannot open " + path;
    return out;
  }
  if (log.first_line_bad) {
    out.error = path + ": first line is not a URN JSONL event";
    return out;
  }
  out.records = log.lines;
  out.bad = log.bad_lines;
  out.events = std::move(log.events);
  out.ok = true;
  return out;
}

}  // namespace urn::obs
