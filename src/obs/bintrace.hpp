/// \file bintrace.hpp
/// \brief Compact binary trace capture: a fixed-record little-endian
///        event writer (`BinSink`) and its reader (`read_bin_file`).
///
/// JSONL (sink.hpp) is the human-greppable interchange format, but
/// serializing ~80 text bytes per event is what keeps always-on tracing
/// off the table for the dense large-Δ sweeps (E2–E4).  The binary form
/// writes each `Event` as one fixed 32-byte little-endian record behind
/// a 24-byte versioned header — a bounded `memcpy`-grade cost per event
/// (m1_micro's `BM_Sink*` family quantifies the gap against JSONL).
///
/// ## File format (version 1, all integers little-endian)
///
///     header  (24 bytes):
///       [0..4)   magic   "URNB"
///       [4..6)   u16 version       = 1
///       [6..8)   u16 record size   = 32
///       [8..12)  u32 flags         (bit 0: ring mode — suffix only)
///       [12..16) u32 reserved      = 0
///       [16..24) u64 dropped       events evicted before the retained
///                                  suffix (ring mode; 0 when streaming)
///     record  (32 bytes), repeated to EOF:
///       [0..8)   i64 slot          [16..20) u32 node
///       [8..16)  i64 value         [20..24) u32 peer
///       [24..28) i32 color
///       [28] u8 kind   [29] u8 msg   [30] u8 phase   [31] u8 pad = 0
///
/// The record is a field-for-field image of `obs::Event`: every stream
/// of events round-trips bit-exactly through `BinSink` →
/// `read_bin_file`, so every trace consumer (monitor replay, Fig. 2
/// validation, metrics re-derivation, `urn_trace --export`) works
/// unchanged on events read back from a `.bin` capture.
///
/// `BinSink` has two modes:
///  * **streaming** — append every record, buffered in 64 KiB chunks
///    (the binary twin of `JsonlSink`);
///  * **bounded ring** — retain only the most recent `ring_capacity`
///    events in O(1) memory and persist that suffix on `flush()` /
///    destruction (an always-on flight recorder: the file is rewritten
///    in place, never growing beyond header + capacity records).

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace urn::obs {

/// First four bytes of every binary trace file.
inline constexpr char kBinMagic[4] = {'U', 'R', 'N', 'B'};
inline constexpr std::uint16_t kBinVersion = 1;
inline constexpr std::size_t kBinHeaderSize = 24;
inline constexpr std::size_t kBinRecordSize = 32;
/// Header flag bit: the file holds only the most recent events.
inline constexpr std::uint32_t kBinFlagRing = 1u << 0;

/// Serialize `e` as one 32-byte little-endian record appended to `out`.
void append_bin(std::string& out, const Event& e);

/// Decode one 32-byte record (\pre `data` spans kBinRecordSize bytes).
/// Returns false on an out-of-range kind byte.
[[nodiscard]] bool parse_bin_record(const unsigned char* data, Event& out);

/// Binary event writer; see the file comment for the two modes.
class BinSink {
 public:
  /// Opens `path` (truncating) and writes the header.  `ring_capacity`
  /// of 0 streams every event; > 0 bounds retention to the most recent
  /// `ring_capacity` events.  `ok()` reports open failure; records on a
  /// failed sink are silently discarded (same contract as JsonlSink).
  explicit BinSink(const std::string& path, std::size_t ring_capacity = 0);
  BinSink(const BinSink&) = delete;
  BinSink& operator=(const BinSink&) = delete;
  ~BinSink();

  static constexpr bool kEnabled = true;

  void record(const Event& e);
  void flush();

  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  /// Events offered so far (ring mode: may exceed what the file keeps).
  [[nodiscard]] std::uint64_t written() const { return written_; }
  /// Events the file retains (== written() when streaming).
  [[nodiscard]] std::uint64_t retained() const;
  /// File bytes emitted so far, header included.
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] bool ring_mode() const { return capacity_ > 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static constexpr std::size_t kFlushThreshold = 1 << 16;

  /// The 24-byte header image for the current state (ring flushes
  /// refresh the dropped count on every rewrite).
  [[nodiscard]] std::string header_bytes() const;

  std::string path_;
  std::FILE* file_ = nullptr;
  /// Streaming-mode serialization buffer: sized once in the
  /// constructor; record() serializes in place at offset `len_`.
  std::string buffer_;
  std::size_t len_ = 0;          ///< valid bytes in buffer_ (streaming)
  std::size_t capacity_ = 0;     ///< ring capacity (0 = streaming)
  std::vector<Event> ring_;      ///< ring storage (ring mode only)
  std::size_t next_ = 0;         ///< ring overwrite cursor once full
  std::uint64_t written_ = 0;    ///< events offered
  std::uint64_t bytes_ = 0;      ///< file bytes emitted
};

/// Result of reading a binary trace file.
struct ParsedBinFile {
  std::vector<Event> events;
  bool ok = false;           ///< header read and validated
  bool ring = false;         ///< file was captured in ring mode
  std::uint64_t dropped = 0; ///< events evicted before the suffix (ring)
  std::size_t bad_records = 0;  ///< trailing partial / undecodable records
  std::string error;         ///< human-readable reason when !ok
};

/// Read a `BinSink` file back into events.  Tolerant past the header:
/// a truncated tail only bumps `bad_records`.
[[nodiscard]] ParsedBinFile read_bin_file(const std::string& path);

/// A trace log of either format, auto-detected.
struct ParsedTraceFile {
  std::vector<Event> events;
  bool ok = false;
  bool binary = false;      ///< detected format
  std::size_t records = 0;  ///< lines (JSONL) or records (binary) seen
  std::size_t bad = 0;      ///< malformed lines / records (non-fatal)
  std::uint64_t dropped = 0;  ///< ring-mode evictions (binary only)
  std::string error;        ///< set when !ok (unreadable / bad header /
                            ///< first JSONL line unparseable)
};

/// Open `path`, sniff the first four bytes for the binary magic, and
/// parse accordingly (anything else is treated as JSONL).  `ok` is
/// false — with `error` set — when the file cannot be opened, is empty,
/// a binary header is malformed, or a JSONL file's first non-empty line
/// does not parse (i.e. the file is not a trace log at all).  Tails are
/// tolerant in both formats: a trailing partial record / line only
/// bumps `bad`.
[[nodiscard]] ParsedTraceFile read_trace_file(const std::string& path);

}  // namespace urn::obs
