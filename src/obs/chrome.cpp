#include "obs/chrome.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace urn::obs {

namespace {

/// Minimal JSON string escape (quotes, backslashes, control bytes).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Display name of the Fig. 2 state a phase event enters.
std::string phase_state_name(const Event& e) {
  if (e.phase == static_cast<std::uint8_t>(PhaseCode::kRequest)) return "R";
  char buf[24];
  const char head =
      e.phase == static_cast<std::uint8_t>(PhaseCode::kDecided) ? 'C' : 'A';
  std::snprintf(buf, sizeof(buf), "%c%d", head, e.color);
  return buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out.append(buf);
}

/// Microseconds with sub-µs precision for nanosecond span timestamps.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out.append(buf);
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[\n";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "\n]}\n";
}

void ChromeTraceWriter::emit(const std::string& body) {
  if (!first_) os_ << ",\n";
  first_ = false;
  os_ << '{' << body << '}';
  ++emitted_;
}

void ChromeTraceWriter::meta_process(int pid, const char* name) {
  std::string body = "\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,";
  body.append("\"pid\":");
  append_i64(body, pid);
  body.append(",\"tid\":0,\"args\":{\"name\":\"");
  body.append(name);
  body.append("\"}");
  emit(body);
}

void ChromeTraceWriter::meta_thread(int pid, std::uint64_t tid,
                                    const std::string& name) {
  std::string body = "\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,";
  body.append("\"pid\":");
  append_i64(body, pid);
  body.append(",\"tid\":");
  append_i64(body, static_cast<std::int64_t>(tid));
  body.append(",\"args\":{\"name\":\"");
  body.append(escape(name));
  body.append("\"}");
  emit(body);
}

std::size_t ChromeTraceWriter::add_events(const std::vector<Event>& events) {
  const std::size_t before = emitted_;
  if (events.empty()) return 0;
  meta_process(kSlotPid, "slots (one track per node)");

  Slot last_slot = 0;
  for (const Event& e : events) last_slot = std::max(last_slot, e.slot);

  // Track the open Fig. 2 residency per node so each phase event closes
  // the previous slice.  Nodes are named lazily on first sighting.
  struct OpenPhase {
    std::string name;
    Slot since = 0;
  };
  std::map<NodeId, OpenPhase> open;
  std::map<NodeId, bool> seen;

  auto ensure_named = [&](NodeId v) {
    bool& s = seen[v];
    if (!s) {
      s = true;
      meta_thread(kSlotPid, v, "node " + std::to_string(v));
    }
  };
  auto close_slice = [&](NodeId v, const OpenPhase& p, Slot end) {
    std::string body = "\"name\":\"" + escape(p.name) +
                       "\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":";
    append_i64(body, p.since);
    body.append(",\"dur\":");
    append_i64(body, std::max<Slot>(end - p.since, 0));
    body.append(",\"pid\":");
    append_i64(body, kSlotPid);
    body.append(",\"tid\":");
    append_i64(body, v);
    emit(body);
  };

  for (const Event& e : events) {
    ensure_named(e.node);
    if (e.kind == EventKind::kPhase) {
      auto it = open.find(e.node);
      if (it != open.end()) {
        close_slice(e.node, it->second, e.slot);
        open.erase(it);
      }
      open[e.node] = {phase_state_name(e), e.slot};
      continue;
    }
    // Point events: thread-scoped instants at their slot.
    std::string body = "\"name\":\"";
    body.append(kind_name(e.kind));
    body.append("\",\"cat\":\"");
    body.append(e.kind == EventKind::kTransmit ||
                        e.kind == EventKind::kDelivery ||
                        e.kind == EventKind::kCollision ||
                        e.kind == EventKind::kDrop
                    ? "medium"
                    : "protocol");
    body.append("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
    append_i64(body, e.slot);
    body.append(",\"pid\":");
    append_i64(body, kSlotPid);
    body.append(",\"tid\":");
    append_i64(body, e.node);
    body.append(",\"args\":{");
    bool first_arg = true;
    auto arg = [&](const char* key, std::int64_t v) {
      if (!first_arg) body.push_back(',');
      first_arg = false;
      body.push_back('"');
      body.append(key);
      body.append("\":");
      append_i64(body, v);
    };
    if (e.peer != kNoNode) arg("peer", e.peer);
    if (e.color >= 0) arg("color", e.color);
    if (e.kind == EventKind::kTransmit || e.kind == EventKind::kReset ||
        e.kind == EventKind::kDecision || e.kind == EventKind::kServe) {
      arg("value", e.value);
    }
    body.append("}");
    emit(body);
  }

  // Close the still-open residencies (C_i is terminal: extend to the
  // last recorded slot so decided nodes stay visible).
  for (const auto& [v, p] : open) close_slice(v, p, last_slot + 1);
  return emitted_ - before;
}

std::size_t ChromeTraceWriter::add_spans(
    const std::vector<SpanRecord>& spans,
    const std::map<std::uint32_t, std::string>& track_names) {
  const std::size_t before = emitted_;
  if (spans.empty()) return 0;
  meta_process(kSpanPid, "wall clock (one track per worker)");
  for (const auto& [track, name] : track_names) {
    meta_thread(kSpanPid, track, name);
  }
  for (const SpanRecord& s : spans) {
    std::string body = "\"name\":\"";
    body.append(escape(s.name));
    body.append("\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":");
    append_us(body, s.start_ns);
    body.append(",\"dur\":");
    append_us(body, s.dur_ns);
    body.append(",\"pid\":");
    append_i64(body, kSpanPid);
    body.append(",\"tid\":");
    append_i64(body, s.track);
    if (s.arg >= 0) {
      body.append(",\"args\":{\"arg\":");
      append_i64(body, s.arg);
      body.append("}");
    }
    emit(body);
  }
  return emitted_ - before;
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<Event>& events) {
  std::ofstream os(path);
  if (!os) return false;
  ChromeTraceWriter writer(os);
  writer.add_events(events);
  writer.finish();
  return static_cast<bool>(os);
}

bool write_chrome_spans_file(const std::string& path, const SpanSink& spans) {
  std::ofstream os(path);
  if (!os) return false;
  ChromeTraceWriter writer(os);
  writer.add_spans(spans.snapshot(), spans.track_names());
  writer.finish();
  return static_cast<bool>(os);
}

}  // namespace urn::obs
