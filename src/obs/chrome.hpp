/// \file chrome.hpp
/// \brief Chrome trace-event JSON export: render recorded traces as
///        timelines loadable in Perfetto (ui.perfetto.dev) or
///        `chrome://tracing`.
///
/// Two sources map onto two process groups of the same timeline:
///
///  * **Slot events** (`obs::Event`, from JSONL or binary captures) —
///    pid 0, one *thread track per node*.  Fig. 2 phase residencies
///    (A_i / R / C_i) become duration slices (`ph:"X"`), and the medium
///    / protocol point events (wake, tx, rx, collision, drop, reset,
///    decision, serve) become thread-scoped instants (`ph:"i"`).  The
///    timebase is *slots*, rendered as 1 slot = 1 µs so Perfetto's
///    zoom and ruler behave.
///
///  * **Spans** (`obs::SpanRecord`, live wall-clock capture) — pid 1,
///    one thread track per worker / runner, real microsecond timebase.
///
/// Every emitted record carries the four keys timeline tooling requires
/// (`ph`, `ts`, `pid`, `tid`) plus `name`/`cat`; process and thread
/// names ride on `"M"` metadata records.  The output is a single JSON
/// object `{"traceEvents":[...]}` — the storage format Perfetto and
/// `chrome://tracing` both accept.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/span.hpp"

namespace urn::obs {

/// Streaming writer for the Chrome trace-event JSON format.  Call any
/// mix of `add_events` / `add_spans`, then `finish()` (also run by the
/// destructor).  Not thread-safe; drive it from one thread.
class ChromeTraceWriter {
 public:
  /// Process ids of the two track groups.
  static constexpr int kSlotPid = 0;   ///< slot events, node tracks
  static constexpr int kSpanPid = 1;   ///< wall-clock spans, worker tracks

  explicit ChromeTraceWriter(std::ostream& os);
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;
  ~ChromeTraceWriter();

  /// Add one run's slot events as node tracks (see file comment).
  /// Returns the number of trace records emitted.
  std::size_t add_events(const std::vector<Event>& events);

  /// Add wall-clock spans as worker tracks; `track_names` labels them.
  std::size_t add_spans(
      const std::vector<SpanRecord>& spans,
      const std::map<std::uint32_t, std::string>& track_names);

  /// Close the traceEvents array and the outer object.
  void finish();

 private:
  /// Emit one record object given its body (everything between the
  /// braces); handles the comma discipline.
  void emit(const std::string& body);
  void meta_process(int pid, const char* name);
  void meta_thread(int pid, std::uint64_t tid, const std::string& name);

  std::ostream& os_;
  bool first_ = true;
  bool finished_ = false;
  std::size_t emitted_ = 0;
};

/// Convenience wrapper: write `{"traceEvents":[...]}` for `events` to
/// `path`.  Returns false when the file cannot be written.
[[nodiscard]] bool write_chrome_trace_file(const std::string& path,
                                           const std::vector<Event>& events);

/// Convenience wrapper for a span capture.
[[nodiscard]] bool write_chrome_spans_file(const std::string& path,
                                           const SpanSink& spans);

}  // namespace urn::obs
