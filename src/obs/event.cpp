#include "obs/event.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace urn::obs {

namespace {

constexpr std::array<const char*, kNumEventKinds> kKindNames = {
    "wake", "tx", "rx", "collision", "drop",
    "phase", "reset", "decision", "serve"};

constexpr std::array<const char*, 4> kMsgNames = {"compete", "decided",
                                                 "assign", "request"};

constexpr std::array<const char*, 3> kPhaseNames = {"verify", "request",
                                                    "decided"};

void append_key_int(std::string& out, const char* key, std::int64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(",\"").append(key).append("\":").append(buf,
                                                     std::size_t(ptr - buf));
}

void append_key_str(std::string& out, const char* key, const char* v) {
  out.append(",\"").append(key).append("\":\"").append(v).append("\"");
}

/// Locate `"key":` in `line` and return a view starting at the value.
[[nodiscard]] bool find_value(std::string_view line, std::string_view key,
                              std::string_view& value) {
  std::string pattern;
  pattern.reserve(key.size() + 3);
  pattern.push_back('"');
  pattern.append(key);
  pattern.append("\":");
  const std::size_t pos = line.find(pattern);
  if (pos == std::string_view::npos) return false;
  value = line.substr(pos + pattern.size());
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  return !value.empty();
}

[[nodiscard]] bool get_int(std::string_view line, std::string_view key,
                           std::int64_t& out) {
  std::string_view v;
  if (!find_value(line, key, v)) return false;
  const auto [ptr, ec] =
      std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc{};
}

[[nodiscard]] bool get_str(std::string_view line, std::string_view key,
                           std::string_view& out) {
  std::string_view v;
  if (!find_value(line, key, v)) return false;
  if (v.front() != '"') return false;
  v.remove_prefix(1);
  const std::size_t end = v.find('"');
  if (end == std::string_view::npos) return false;
  out = v.substr(0, end);
  return true;
}

}  // namespace

const char* kind_name(EventKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  return idx < kKindNames.size() ? kKindNames[idx] : "?";
}

bool kind_from_name(std::string_view name, EventKind& out) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (name == kKindNames[i]) {
      out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

const char* msg_name(std::uint8_t code) {
  return code < kMsgNames.size() ? kMsgNames[code] : "?";
}

bool msg_from_name(std::string_view name, std::uint8_t& out) {
  for (std::size_t i = 0; i < kMsgNames.size(); ++i) {
    if (name == kMsgNames[i]) {
      out = static_cast<std::uint8_t>(i);
      return true;
    }
  }
  return false;
}

const char* phase_name(std::uint8_t code) {
  return code < kPhaseNames.size() ? kPhaseNames[code] : "?";
}

bool phase_from_name(std::string_view name, std::uint8_t& out) {
  for (std::size_t i = 0; i < kPhaseNames.size(); ++i) {
    if (name == kPhaseNames[i]) {
      out = static_cast<std::uint8_t>(i);
      return true;
    }
  }
  return false;
}

void append_jsonl(std::string& out, const Event& e) {
  out.append("{\"slot\":");
  {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), e.slot);
    out.append(buf, std::size_t(ptr - buf));
  }
  append_key_str(out, "kind", kind_name(e.kind));
  append_key_int(out, "node", static_cast<std::int64_t>(e.node));
  switch (e.kind) {
    case EventKind::kWake:
    case EventKind::kCollision:
      break;
    case EventKind::kTransmit:
      append_key_str(out, "msg", msg_name(e.msg));
      append_key_int(out, "color", e.color);
      if (e.msg == static_cast<std::uint8_t>(MsgCode::kCompete)) {
        append_key_int(out, "value", e.value);
      }
      break;
    case EventKind::kDelivery:
      append_key_int(out, "peer", static_cast<std::int64_t>(e.peer));
      append_key_str(out, "msg", msg_name(e.msg));
      append_key_int(out, "color", e.color);
      break;
    case EventKind::kDrop:
      append_key_int(out, "peer", static_cast<std::int64_t>(e.peer));
      append_key_str(out, "msg", msg_name(e.msg));
      break;
    case EventKind::kPhase:
      append_key_str(out, "phase", phase_name(e.phase));
      append_key_int(out, "color", e.color);
      break;
    case EventKind::kReset:
      append_key_int(out, "color", e.color);
      append_key_int(out, "value", e.value);
      break;
    case EventKind::kDecision:
      append_key_int(out, "color", e.color);
      append_key_int(out, "value", e.value);
      break;
    case EventKind::kServe:
      append_key_int(out, "peer", static_cast<std::int64_t>(e.peer));
      append_key_int(out, "value", e.value);
      break;
  }
  out.append("}\n");
}

bool parse_jsonl_line(std::string_view line, Event& out) {
  Event e;
  std::int64_t slot = 0;
  std::string_view kind;
  if (!get_int(line, "slot", slot)) return false;
  if (!get_str(line, "kind", kind)) return false;
  if (!kind_from_name(kind, e.kind)) return false;
  e.slot = slot;

  std::int64_t node = 0;
  if (!get_int(line, "node", node) || node < 0) return false;
  e.node = static_cast<NodeId>(node);

  std::int64_t peer = 0;
  if (get_int(line, "peer", peer) && peer >= 0) {
    e.peer = static_cast<NodeId>(peer);
  }
  std::int64_t color = 0;
  if (get_int(line, "color", color)) {
    e.color = static_cast<std::int32_t>(color);
  }
  std::int64_t value = 0;
  if (get_int(line, "value", value)) e.value = value;
  std::string_view msg;
  if (get_str(line, "msg", msg) && !msg_from_name(msg, e.msg)) return false;
  std::string_view phase;
  if (get_str(line, "phase", phase) && !phase_from_name(phase, e.phase)) {
    return false;
  }
  out = e;
  return true;
}

}  // namespace urn::obs
