/// \file event.hpp
/// \brief Structured trace events emitted by the radio engines and the
///        protocol state machines.
///
/// One `Event` is a single observable occurrence in a run: a node waking
/// up, a transmission, a clean delivery, a collision at a listener, an
/// injected drop, a Fig. 2 phase transition, a counter reset (Alg. 1
/// l. 29), an irrevocable decision, or a leader completing an assignment
/// window (Alg. 3).  Events are plain data — 32 bytes, no ownership —
/// so the engines can emit millions per second into a sink; the JSONL
/// form (one object per line, see `append_jsonl`) is the on-disk
/// interchange format consumed by `urn_trace` and the trace analyzer.
///
/// This layer deliberately sits *below* radio/core: it knows nothing of
/// `radio::Message` or `core::Phase`; message types and phases are
/// carried as small integer codes whose values mirror those enums
/// (static_asserts at the emission sites pin the correspondence).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace urn::obs {

/// Discrete slot index (mirrors radio::Slot without depending on it).
using Slot = std::int64_t;
/// Node identifier (mirrors graph::NodeId without depending on it).
using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// What happened.  Values are part of the on-disk schema — append only.
enum class EventKind : std::uint8_t {
  kWake = 0,       ///< node left Z and entered A₀
  kTransmit = 1,   ///< node put a message on the air
  kDelivery = 2,   ///< listener received the slot's unique transmission
  kCollision = 3,  ///< ≥2 neighbors transmitted; listener heard silence
  kDrop = 4,       ///< clean reception lost to injected fading
  kPhase = 5,      ///< Fig. 2 state transition (A_i / R / C_i entered)
  kReset = 6,      ///< counter reset to χ(P_v) (Alg. 1 l. 29)
  kDecision = 7,   ///< decided() first became true
  kServe = 8,      ///< leader finished an assignment window (Alg. 3 l. 21)
};

inline constexpr std::size_t kNumEventKinds = 9;

/// Message-type codes for kTransmit / kDelivery / kDrop events; values
/// mirror radio::MsgType (asserted where the engine emits).
enum class MsgCode : std::uint8_t {
  kCompete = 0,
  kDecided = 1,
  kAssign = 2,
  kRequest = 3,
};

/// Phase codes for kPhase events; values mirror core::Phase (asserted at
/// the protocol emission site).
enum class PhaseCode : std::uint8_t {
  kVerify = 0,
  kRequest = 1,
  kDecided = 2,
};

/// One trace event.  Field use by kind:
///
/// | kind       | node      | peer       | msg | phase | color      | value            |
/// |------------|-----------|------------|-----|-------|------------|------------------|
/// | wake       | waker     | —          | —   | —     | —          | —                |
/// | transmit   | sender    | —          | ✓   | —     | msg color  | counter (compete)|
/// | delivery   | receiver  | sender     | ✓   | —     | msg color  | —                |
/// | collision  | listener  | —          | —   | —     | —          | —                |
/// | drop       | receiver  | sender     | ✓   | —     | —          | —                |
/// | phase      | node      | —          | —   | ✓     | i of A_i/C_i | —              |
/// | reset      | node      | —          | —   | —     | verifying i | new counter     |
/// | decision   | node      | —          | —   | —     | final color (−1 n/a) | latency |
/// | serve      | leader    | requester  | —   | —     | —          | assigned tc      |
struct Event {
  Slot slot = 0;
  NodeId node = kNoNode;
  NodeId peer = kNoNode;
  std::int32_t color = -1;
  std::int64_t value = 0;
  EventKind kind = EventKind::kWake;
  std::uint8_t msg = 0;
  std::uint8_t phase = 0;

  // --- factories (keep emission sites one-liners) -----------------------

  [[nodiscard]] static Event wake(Slot s, NodeId v) {
    Event e;
    e.slot = s;
    e.node = v;
    e.kind = EventKind::kWake;
    return e;
  }
  [[nodiscard]] static Event transmit(Slot s, NodeId v, std::uint8_t msg_code,
                                      std::int32_t color,
                                      std::int64_t counter) {
    Event e;
    e.slot = s;
    e.node = v;
    e.kind = EventKind::kTransmit;
    e.msg = msg_code;
    e.color = color;
    e.value = counter;
    return e;
  }
  [[nodiscard]] static Event delivery(Slot s, NodeId receiver, NodeId sender,
                                      std::uint8_t msg_code,
                                      std::int32_t color) {
    Event e;
    e.slot = s;
    e.node = receiver;
    e.peer = sender;
    e.kind = EventKind::kDelivery;
    e.msg = msg_code;
    e.color = color;
    return e;
  }
  [[nodiscard]] static Event collision(Slot s, NodeId listener) {
    Event e;
    e.slot = s;
    e.node = listener;
    e.kind = EventKind::kCollision;
    return e;
  }
  [[nodiscard]] static Event drop(Slot s, NodeId receiver, NodeId sender,
                                  std::uint8_t msg_code) {
    Event e;
    e.slot = s;
    e.node = receiver;
    e.peer = sender;
    e.kind = EventKind::kDrop;
    e.msg = msg_code;
    return e;
  }
  [[nodiscard]] static Event phase_change(Slot s, NodeId v,
                                          std::uint8_t phase_code,
                                          std::int32_t color) {
    Event e;
    e.slot = s;
    e.node = v;
    e.kind = EventKind::kPhase;
    e.phase = phase_code;
    e.color = color;
    return e;
  }
  [[nodiscard]] static Event reset(Slot s, NodeId v, std::int32_t color,
                                   std::int64_t new_counter) {
    Event e;
    e.slot = s;
    e.node = v;
    e.kind = EventKind::kReset;
    e.color = color;
    e.value = new_counter;
    return e;
  }
  [[nodiscard]] static Event decision(Slot s, NodeId v, std::int32_t color,
                                      std::int64_t latency) {
    Event e;
    e.slot = s;
    e.node = v;
    e.kind = EventKind::kDecision;
    e.color = color;
    e.value = latency;
    return e;
  }
  [[nodiscard]] static Event serve(Slot s, NodeId leader, NodeId requester,
                                   std::int64_t tc) {
    Event e;
    e.slot = s;
    e.node = leader;
    e.peer = requester;
    e.kind = EventKind::kServe;
    e.value = tc;
    return e;
  }

  friend bool operator==(const Event&, const Event&) = default;
};

/// Stable schema name of a kind ("wake", "tx", "rx", "collision", "drop",
/// "phase", "reset", "decision", "serve").
[[nodiscard]] const char* kind_name(EventKind kind);

/// Inverse of kind_name; returns false on unknown names.
[[nodiscard]] bool kind_from_name(std::string_view name, EventKind& out);

/// Schema name of a message code ("compete", "decided", "assign",
/// "request"; "?" for out-of-range codes).
[[nodiscard]] const char* msg_name(std::uint8_t code);
[[nodiscard]] bool msg_from_name(std::string_view name, std::uint8_t& out);

/// Schema name of a phase code ("verify", "request", "decided").
[[nodiscard]] const char* phase_name(std::uint8_t code);
[[nodiscard]] bool phase_from_name(std::string_view name, std::uint8_t& out);

/// Append one JSONL line (including the trailing '\n') encoding `e`.
/// Only the fields meaningful for `e.kind` are written; see the table on
/// `Event`.  Example: {"slot":15,"kind":"rx","node":4,"peer":3,
/// "msg":"compete","color":0}
void append_jsonl(std::string& out, const Event& e);

/// Parse one JSONL line produced by `append_jsonl` (tolerates extra
/// whitespace and unknown keys).  Returns false on malformed input or an
/// unknown kind.
[[nodiscard]] bool parse_jsonl_line(std::string_view line, Event& out);

}  // namespace urn::obs
