#include "obs/explain.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "obs/fig2.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace urn::obs {

namespace {

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out.append(buf);
}

/// Round-trip-exact, locale-independent number rendering: integers as
/// integers, everything else with 17 significant digits.
void append_num(std::string& out, double v) {
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    append_i64(out, static_cast<std::int64_t>(v));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf);
}

/// Same-slot claim priority: a collision outranks a drop outranks a
/// contention mark.  (The engine never emits two of these for one node
/// in one slot — a sender cannot listen, and a unique transmission is
/// either dropped or delivered — but handcrafted traces get the
/// deterministic resolution instead of double counting.)
int claim_rank(Cause c) {
  switch (c) {
    case Cause::kCollision: return 3;
    case Cause::kDrop: return 2;
    default: return 1;
  }
}

struct Claim {
  Slot slot = 0;
  Cause cause = Cause::kIdle;
};

/// Per-node working state for the single pass over the trace.
struct NodeWork {
  Fig2Walker walker;
  Slot wake = -1;
  Slot decision = -1;
  std::int32_t final_color = -1;
  bool decided = false;
  std::uint32_t resets = 0;
  std::vector<Event> phases;  ///< kPhase events, trace order
  std::vector<Claim> claims;  ///< per-slot claims, slot order, deduped

  explicit NodeWork(std::uint32_t kappa2) : walker(kappa2) {}

  void claim(Slot s, Cause c) {
    if (!claims.empty() && claims.back().slot == s) {
      if (claim_rank(c) > claim_rank(claims.back().cause)) {
        claims.back().cause = c;
      }
      return;
    }
    claims.push_back({s, c});
  }
};

/// Append `[begin, end) → cause`, merging with an adjacent same-cause
/// predecessor.
void emit_span(std::vector<CauseSpan>* spans, Slot begin, Slot end, Cause c) {
  if (spans == nullptr || end <= begin) return;
  if (!spans->empty() && spans->back().end == begin &&
      spans->back().cause == c) {
    spans->back().end = end;
    return;
  }
  spans->push_back({begin, end, c});
}

/// Unclaimed slots of `[begin, end)` default to kPhaseWait up to
/// `passive_end` and kIdle after it; spans split accordingly.
void emit_default(std::vector<CauseSpan>* spans, Slot begin, Slot end,
                  Slot passive_end, Cause wait_cause) {
  const Slot mid = std::clamp(passive_end, begin, end);
  emit_span(spans, begin, mid, wait_cause);
  emit_span(spans, mid, end, Cause::kIdle);
}

}  // namespace

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::kAsleep: return "asleep";
    case Cause::kPhaseWait: return "phase_wait";
    case Cause::kCollision: return "collision";
    case Cause::kDrop: return "drop";
    case Cause::kContention: return "contention";
    case Cause::kIdle: return "idle";
  }
  return "?";
}

const char* phase_bucket_name(PhaseBucket b) {
  switch (b) {
    case PhaseBucket::kA0: return "a0";
    case PhaseBucket::kAi: return "ai";
    case PhaseBucket::kR: return "r";
  }
  return "?";
}

TraceStats compute_trace_stats(const std::vector<Event>& events) {
  TraceStats stats;
  stats.events = events.size();
  std::vector<NodeId> ids;
  ids.reserve(events.size());
  bool any_slot = false;
  for (const Event& e : events) {
    const auto kind = static_cast<std::size_t>(e.kind);
    if (kind < kNumEventKinds) ++stats.by_kind[kind];
    if (!any_slot) {
      any_slot = true;
      stats.first_slot = stats.last_slot = e.slot;
    } else {
      stats.first_slot = std::min(stats.first_slot, e.slot);
      stats.last_slot = std::max(stats.last_slot, e.slot);
    }
    if (e.node != kNoNode) ids.push_back(e.node);
  }
  std::sort(ids.begin(), ids.end());
  stats.nodes = static_cast<std::size_t>(
      std::unique(ids.begin(), ids.end()) - ids.begin());
  return stats;
}

std::string TraceStats::one_line() const {
  std::string out;
  out.append("events=");
  append_i64(out, static_cast<std::int64_t>(events));
  out.append(" nodes=");
  append_i64(out, static_cast<std::int64_t>(nodes));
  out.append(" slots=[");
  append_i64(out, first_slot);
  out.push_back(',');
  append_i64(out, last_slot);
  out.push_back(']');
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    out.push_back(' ');
    out.append(kind_name(static_cast<EventKind>(k)));
    out.push_back('=');
    append_i64(out, static_cast<std::int64_t>(by_kind[k]));
  }
  return out;
}

double ExplainReport::share(Cause c) const {
  if (c == Cause::kAsleep) return 0.0;
  const std::int64_t denom = total_stall();
  if (denom <= 0) return 0.0;
  return static_cast<double>(totals[static_cast<std::size_t>(c)]) /
         static_cast<double>(denom);
}

Cause ExplainReport::top_cause() const {
  std::size_t best = 1;
  for (std::size_t c = 2; c < kNumCauses; ++c) {
    if (totals[c] > totals[best]) best = c;
  }
  return static_cast<Cause>(best);
}

ExplainReport explain_trace(const std::vector<Event>& events,
                            const ExplainConfig& config) {
  ExplainReport report;
  report.config = config;
  report.stats = compute_trace_stats(events);

  // Pass 1: bucket the stream per node (std::map keeps ascending ids,
  // mirroring build_timelines).
  std::map<NodeId, NodeWork> work;
  auto node_work = [&](NodeId v) -> NodeWork& {
    auto it = work.find(v);
    if (it == work.end()) {
      it = work.emplace(v, NodeWork(config.kappa2)).first;
    }
    return it->second;
  };
  for (const Event& e : events) {
    if (e.node == kNoNode) continue;
    NodeWork& w = node_work(e.node);
    switch (e.kind) {
      case EventKind::kWake:
        if (w.wake < 0) w.wake = e.slot;
        w.walker.wake(e.slot);
        break;
      case EventKind::kPhase: {
        report.fig2_violations += w.walker.advance(e).size();
        w.phases.push_back(e);
        if (e.phase == static_cast<std::uint8_t>(PhaseCode::kDecided) &&
            !w.decided) {
          w.decided = true;
          w.decision = e.slot;
          w.final_color = e.color;
        }
        break;
      }
      case EventKind::kDecision: {
        if (!w.walker.observe_decision(e).empty()) ++report.fig2_violations;
        if (!w.decided) {
          w.decided = true;
          w.decision = e.slot;
          w.final_color = e.color;
        }
        break;
      }
      case EventKind::kCollision:
        w.claim(e.slot, Cause::kCollision);
        break;
      case EventKind::kDrop:
        w.claim(e.slot, Cause::kDrop);
        break;
      case EventKind::kReset:
        ++w.resets;
        w.claim(e.slot, Cause::kContention);
        break;
      case EventKind::kTransmit:
        w.claim(e.slot, Cause::kContention);
        break;
      case EventKind::kDelivery:
      case EventKind::kServe:
        break;  // heard content — classified by the interval default
    }
  }

  // Pass 2: per node, partition [wake, window_end) into Fig. 2 phase
  // intervals and classify each slot (claims override the interval
  // default; unclaimed passive slots are protocol wait, unclaimed
  // active slots are idle backoff).
  report.nodes.reserve(work.size());
  if (config.collect_spans) report.spans.reserve(work.size());
  for (auto& [id, w] : work) {
    NodeAttribution attr;
    attr.node = id;
    attr.wake_slot = w.wake;
    attr.decision_slot = w.decided ? w.decision : -1;
    attr.final_color = w.final_color;
    attr.resets = w.resets;
    attr.decided = w.decided;

    std::vector<CauseSpan> node_spans;
    std::vector<CauseSpan>* spans =
        config.collect_spans ? &node_spans : nullptr;

    if (w.wake >= 0) {
      const Slot window_end =
          w.decided ? w.decision : report.stats.last_slot + 1;
      attr.causes[static_cast<std::size_t>(Cause::kAsleep)] = w.wake;
      emit_span(spans, 0, w.wake, Cause::kAsleep);

      std::size_t next_claim = 0;
      auto close_interval = [&](Slot begin, Slot end, PhaseBucket bucket,
                                Slot passive_until) {
        if (end <= begin) return;
        const std::size_t b = static_cast<std::size_t>(bucket);
        // R-phase slots are protocol wait throughout: the node is
        // parked until a leader serves it.
        const Slot passive_end = bucket == PhaseBucket::kR
                                     ? end
                                     : std::clamp(passive_until, begin, end);
        auto account = [&](Cause c, std::int64_t n) {
          attr.causes[static_cast<std::size_t>(c)] += n;
          attr.by_phase[b][static_cast<std::size_t>(c)] += n;
        };
        Slot cursor = begin;
        std::int64_t claimed_passive = 0;
        std::int64_t claimed_active = 0;
        while (next_claim < w.claims.size() &&
               w.claims[next_claim].slot < end) {
          const Claim& c = w.claims[next_claim];
          ++next_claim;
          if (c.slot < begin) continue;  // pre-wake claim; not expected
          account(c.cause, 1);
          (c.slot < passive_end ? claimed_passive : claimed_active) += 1;
          emit_default(spans, cursor, c.slot, passive_end,
                       Cause::kPhaseWait);
          emit_span(spans, c.slot, c.slot + 1, c.cause);
          cursor = c.slot + 1;
        }
        emit_default(spans, cursor, end, passive_end, Cause::kPhaseWait);
        account(Cause::kPhaseWait, (passive_end - begin) - claimed_passive);
        account(Cause::kIdle, (end - passive_end) - claimed_active);
      };

      // Walk the phase events: each one closes the previous interval.
      // A₀ starts at wake with its passive prefix, whether or not the
      // entry event survives in the trace.
      Slot cursor = w.wake;
      PhaseBucket bucket = PhaseBucket::kA0;
      Slot passive_until = w.wake + config.passive_slots;
      for (const Event& p : w.phases) {
        const Slot s = std::clamp(p.slot, w.wake, window_end);
        close_interval(cursor, s, bucket, passive_until);
        cursor = s;
        if (p.phase == static_cast<std::uint8_t>(PhaseCode::kDecided)) break;
        if (p.phase == static_cast<std::uint8_t>(PhaseCode::kRequest)) {
          bucket = PhaseBucket::kR;
          passive_until = s;
        } else {
          bucket = p.color == 0 ? PhaseBucket::kA0 : PhaseBucket::kAi;
          passive_until = s + config.passive_slots;
        }
      }
      close_interval(cursor, window_end, bucket, passive_until);
    }

    for (std::size_t b = 0; b < kNumPhaseBuckets; ++b) {
      for (std::size_t c = 0; c < kNumCauses; ++c) {
        attr.phase_slots[b] += attr.by_phase[b][c];
        report.phase_totals[b][c] += attr.by_phase[b][c];
      }
    }
    for (std::size_t c = 0; c < kNumCauses; ++c) {
      report.totals[c] += attr.causes[c];
    }
    if (attr.decided) {
      ++report.decided_nodes;
      if (attr.exact()) ++report.exact_nodes;
    }
    report.nodes.push_back(attr);
    if (config.collect_spans) report.spans.push_back(std::move(node_spans));
  }
  return report;
}

ExplainDiff diff_explain(const ExplainReport& a, const ExplainReport& b,
                         const ExplainDiffOptions& options) {
  ExplainDiff diff;

  // Per-decided-node cause vectors; column 0 doubles as the asleep
  // (wake-offset) sample, the rest are the stall decomposition.
  auto gather = [](const ExplainReport& r) {
    std::vector<std::array<std::int64_t, kNumCauses>> rows;
    rows.reserve(r.nodes.size());
    for (const NodeAttribution& n : r.nodes) {
      if (!n.decided) continue;
      std::array<std::int64_t, kNumCauses> row{};
      for (std::size_t c = 0; c < kNumCauses; ++c) row[c] = n.causes[c];
      rows.push_back(row);
    }
    return rows;
  };
  const auto rows_a = gather(a);
  const auto rows_b = gather(b);
  diff.nodes_a = rows_a.size();
  diff.nodes_b = rows_b.size();

  auto mean_latency = [](const ExplainReport& r) {
    std::int64_t total = 0;
    std::size_t n = 0;
    for (const NodeAttribution& node : r.nodes) {
      if (!node.decided) continue;
      total += node.latency();
      ++n;
    }
    return n ? static_cast<double>(total) / static_cast<double>(n) : 0.0;
  };
  diff.mean_latency_a = mean_latency(a);
  diff.mean_latency_b = mean_latency(b);
  diff.speedup = diff.mean_latency_b > 0.0
                     ? diff.mean_latency_a / diff.mean_latency_b
                     : 0.0;

  for (std::size_t c = 0; c < kNumCauses; ++c) {
    CauseDelta& d = diff.causes[c];
    d.cause = static_cast<Cause>(c);
    d.slots_a = a.totals[c];
    d.slots_b = b.totals[c];
    d.share_a = a.share(d.cause);
    d.share_b = b.share(d.cause);
    auto mean_of = [c](const std::vector<std::array<std::int64_t,
                                                    kNumCauses>>& rows) {
      if (rows.empty()) return 0.0;
      std::int64_t total = 0;
      for (const auto& row : rows) total += row[c];
      return static_cast<double>(total) / static_cast<double>(rows.size());
    };
    d.mean_a = mean_of(rows_a);
    d.mean_b = mean_of(rows_b);
    d.delta_mean = d.mean_b - d.mean_a;
  }

  // Bootstrap: resample nodes with replacement, independently per run,
  // from one deterministic stream (fixed draw order: per round, all of
  // A's indices then all of B's — so the CIs replay bit-identically).
  if (!rows_a.empty() && !rows_b.empty() && options.resamples > 0) {
    Rng rng(options.seed);
    std::array<Samples, kNumCauses> deltas;
    for (std::size_t round = 0; round < options.resamples; ++round) {
      std::array<std::int64_t, kNumCauses> sum_a{};
      std::array<std::int64_t, kNumCauses> sum_b{};
      for (std::size_t i = 0; i < rows_a.size(); ++i) {
        const auto& row = rows_a[rng.below(rows_a.size())];
        for (std::size_t c = 0; c < kNumCauses; ++c) sum_a[c] += row[c];
      }
      for (std::size_t i = 0; i < rows_b.size(); ++i) {
        const auto& row = rows_b[rng.below(rows_b.size())];
        for (std::size_t c = 0; c < kNumCauses; ++c) sum_b[c] += row[c];
      }
      for (std::size_t c = 0; c < kNumCauses; ++c) {
        deltas[c].add(static_cast<double>(sum_b[c]) /
                          static_cast<double>(rows_b.size()) -
                      static_cast<double>(sum_a[c]) /
                          static_cast<double>(rows_a.size()));
      }
    }
    const double tail = 100.0 * (1.0 - options.confidence) / 2.0;
    for (std::size_t c = 0; c < kNumCauses; ++c) {
      CauseDelta& d = diff.causes[c];
      d.ci_lo = deltas[c].percentile(tail);
      d.ci_hi = deltas[c].percentile(100.0 - tail);
      d.significant = d.ci_lo > 0.0 || d.ci_hi < 0.0;
    }
  }
  return diff;
}

std::vector<ExplainEntry> explain_entries(const ExplainReport& report) {
  std::vector<ExplainEntry> out;
  auto num = [&](std::string key, double v) {
    out.push_back({std::move(key), v, {}, false});
  };
  auto str = [&](std::string key, std::string v) {
    out.push_back({std::move(key), 0.0, std::move(v), true});
  };
  num("explain.nodes", static_cast<double>(report.nodes.size()));
  num("explain.decided", static_cast<double>(report.decided_nodes));
  num("explain.exact", static_cast<double>(report.exact_nodes));
  num("explain.violations", static_cast<double>(report.fig2_violations));
  num("explain.total_stall", static_cast<double>(report.total_stall()));
  str("explain.top_cause", cause_name(report.top_cause()));
  for (std::size_t c = 0; c < kNumCauses; ++c) {
    const auto cause = static_cast<Cause>(c);
    const std::string base = std::string("explain.cause.") + cause_name(cause);
    num(base + ".slots", static_cast<double>(report.totals[c]));
    if (cause != Cause::kAsleep) num(base + ".share", report.share(cause));
  }
  for (std::size_t b = 0; b < kNumPhaseBuckets; ++b) {
    const auto bucket = static_cast<PhaseBucket>(b);
    const std::string base =
        std::string("explain.phase.") + phase_bucket_name(bucket);
    std::int64_t slots = 0;
    Samples per_node;
    for (const NodeAttribution& n : report.nodes) {
      if (n.wake_slot < 0) continue;
      slots += n.phase_slots[b];
      if (n.decided) per_node.add(static_cast<double>(n.phase_slots[b]));
    }
    num(base + ".slots", static_cast<double>(slots));
    num(base + ".p50", per_node.count() ? per_node.percentile(50.0) : 0.0);
    num(base + ".p95", per_node.count() ? per_node.percentile(95.0) : 0.0);
  }
  return out;
}

std::string explain_json(const ExplainReport& report) {
  std::string out = "{";
  bool first = true;
  for (const ExplainEntry& e : explain_entries(report)) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  \"");
    out.append(e.key);
    out.append("\": ");
    if (e.is_str) {
      out.push_back('"');
      out.append(e.str);
      out.push_back('"');
    } else {
      append_num(out, e.num);
    }
  }
  out.append("\n}\n");
  return out;
}

std::string explain_diff_json(const ExplainDiff& diff) {
  std::string out = "{";
  bool first = true;
  auto num = [&](const std::string& key, double v) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  \"");
    out.append(key);
    out.append("\": ");
    append_num(out, v);
  };
  num("diff.nodes_a", static_cast<double>(diff.nodes_a));
  num("diff.nodes_b", static_cast<double>(diff.nodes_b));
  num("diff.mean_latency_a", diff.mean_latency_a);
  num("diff.mean_latency_b", diff.mean_latency_b);
  num("diff.speedup", diff.speedup);
  for (const CauseDelta& d : diff.causes) {
    const std::string base = std::string("diff.cause.") + cause_name(d.cause);
    num(base + ".slots_a", static_cast<double>(d.slots_a));
    num(base + ".slots_b", static_cast<double>(d.slots_b));
    num(base + ".share_a", d.share_a);
    num(base + ".share_b", d.share_b);
    num(base + ".mean_a", d.mean_a);
    num(base + ".mean_b", d.mean_b);
    num(base + ".delta_mean", d.delta_mean);
    num(base + ".ci_lo", d.ci_lo);
    num(base + ".ci_hi", d.ci_hi);
    num(base + ".significant", d.significant ? 1.0 : 0.0);
  }
  out.append("\n}\n");
  return out;
}

bool write_explain_chrome_file(const std::string& path,
                               const ExplainReport& report) {
  if (report.spans.size() != report.nodes.size()) return false;
  std::ofstream os(path);
  if (!os) return false;
  // One thread track per node; each cause span is an X slice with the
  // same slot-as-µs timebase as the phase timeline export, so the two
  // files line up when loaded side by side in Perfetto.
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) os << ",\n";
    first = false;
    os << '{' << body << '}';
  };
  emit("\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,"
       "\"tid\":0,\"args\":{\"name\":\"latency causes (one track per "
       "node)\"}");
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const NodeAttribution& n = report.nodes[i];
    std::string meta = "\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,"
                       "\"pid\":0,\"tid\":";
    append_i64(meta, n.node);
    meta.append(",\"args\":{\"name\":\"node ");
    append_i64(meta, n.node);
    meta.append("\"}");
    emit(meta);
    for (const CauseSpan& s : report.spans[i]) {
      std::string body = "\"name\":\"";
      body.append(cause_name(s.cause));
      body.append("\",\"cat\":\"cause\",\"ph\":\"X\",\"ts\":");
      append_i64(body, s.begin);
      body.append(",\"dur\":");
      append_i64(body, s.end - s.begin);
      body.append(",\"pid\":0,\"tid\":");
      append_i64(body, n.node);
      emit(body);
    }
  }
  os << "\n]}\n";
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace urn::obs
