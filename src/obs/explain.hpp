/// \file explain.hpp
/// \brief Causal latency attribution: decompose every node's
///        time-to-decision into an exhaustive cause taxonomy, and diff
///        two runs' attributions with bootstrap confidence intervals.
///
/// The paper's headline results are *latency* bounds (Thm 3's
/// O(Δ log n) time-to-decision), and the trace layer records every
/// event that produces that latency.  `explain_trace` replays a
/// complete event trace (JSONL or URNB, via `read_trace_file`) and
/// classifies each pre-decision slot of each node into exactly one
/// `Cause`, with **exact slot accounting**: for every decided node the
/// non-asleep causes sum to the recorded decision latency — a checked
/// invariant (`NodeAttribution::exact`, `ExplainReport::exact_ok`).
///
/// The per-slot classifier is a pure function of the trace, so serial
/// and parallel aggregations are bit-identical (PR 3 merge algebra):
///
///  * slots before the wake event                       → kAsleep
///    (bookkeeping only — excluded from the latency-sum invariant);
///  * a collision heard at the node                     → kCollision;
///  * a message to the node lost to injected fading     → kDrop;
///  * a counter reset (Alg. 1 l. 29) or own transmission→ kContention
///    (the node is actively competing / was set back by a competitor);
///  * otherwise, a slot inside a protocol-mandated wait → kPhaseWait
///    (the passive prefix of an A_i phase, or any R-phase slot spent
///    waiting for the leader);
///  * any remaining slot                                → kIdle
///    (the randomized backoff chose "listen" and nothing happened).
///
/// Slot disjointness is guaranteed by the engine semantics: in one slot
/// a node experiences at most one of {collision, drop, transmit}
/// (senders don't listen; a unique transmission is either dropped or
/// delivered).  Resets co-occur with deliveries and take precedence
/// over the interval default.
///
/// Attribution requires a *complete* trace (wake/phase/decision events
/// present — i.e. not a ring-buffer suffix); nodes with no wake event
/// are reported with empty windows.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace urn::obs {

/// Why a node spent a slot not yet decided.  Order is the on-disk /
/// JSON-key order; append only.
enum class Cause : std::uint8_t {
  kAsleep = 0,     ///< slot before the node's wake event
  kPhaseWait = 1,  ///< protocol-mandated wait (A_i passive prefix, R phase)
  kCollision = 2,  ///< ≥2 neighbors transmitted; node heard silence
  kDrop = 3,       ///< delivery to the node lost to injected fading
  kContention = 4, ///< own transmission, or a competitor-forced reset
  kIdle = 5,       ///< active slot where backoff chose listen, heard nothing
};

inline constexpr std::size_t kNumCauses = 6;

/// Stable schema name ("asleep", "phase_wait", "collision", "drop",
/// "contention", "idle").
[[nodiscard]] const char* cause_name(Cause c);

/// Which Fig. 2 region a slot belongs to, for per-phase profiles.
enum class PhaseBucket : std::uint8_t {
  kA0 = 0,  ///< first verification phase A₀
  kAi = 1,  ///< later verification phases A_i, i > 0
  kR = 2,   ///< request phase (waiting on a leader)
};

inline constexpr std::size_t kNumPhaseBuckets = 3;

/// Stable schema name ("a0", "ai", "r").
[[nodiscard]] const char* phase_bucket_name(PhaseBucket b);

/// Per-kind event counts and slot range for a trace — the shared
/// indexer behind `urn_trace --stats` and `urn_explain summarize`.
struct TraceStats {
  std::size_t events = 0;
  std::size_t by_kind[kNumEventKinds] = {};
  Slot first_slot = 0;  ///< 0 when the trace is empty
  Slot last_slot = 0;   ///< 0 when the trace is empty
  std::size_t nodes = 0;  ///< distinct node ids (kNoNode excluded)

  /// One-line human summary, e.g.
  /// "events=42 nodes=4 slots=[0,17] wake=4 tx=10 rx=8 ...".
  [[nodiscard]] std::string one_line() const;
};

[[nodiscard]] TraceStats compute_trace_stats(const std::vector<Event>& events);

/// Run parameters the trace alone cannot reveal.
struct ExplainConfig {
  /// The run's κ₂ (forwarded to `Fig2Walker`; 0 = unknown, lattice
  /// check skipped).
  std::uint32_t kappa2 = 0;
  /// Passive-listen prefix of each A_i phase, `Params::passive_slots()`.
  /// 0 = unknown: no slot is classified kPhaseWait inside A_i (the
  /// exactness invariant holds regardless; those slots fall to kIdle).
  std::int64_t passive_slots = 0;
  /// Also record contiguous per-node cause spans (for the chrome
  /// icicle export).  Off by default: summaries don't need them.
  bool collect_spans = false;
};

/// One contiguous run of same-cause slots at one node: [begin, end).
struct CauseSpan {
  Slot begin = 0;
  Slot end = 0;
  Cause cause = Cause::kIdle;

  friend bool operator==(const CauseSpan&, const CauseSpan&) = default;
};

/// Attribution profile of a single node over its pre-decision window.
struct NodeAttribution {
  NodeId node = kNoNode;
  Slot wake_slot = -1;      ///< -1 = no wake event seen
  Slot decision_slot = -1;  ///< -1 = undecided at end of trace
  std::int32_t final_color = -1;
  std::uint32_t resets = 0;  ///< kReset events inside the window
  bool decided = false;

  /// Slots per cause over [wake, decision) — or [wake, trace-end+1)
  /// for undecided nodes.  `causes[kAsleep]` counts [0, wake) and is
  /// excluded from the latency-sum invariant.
  std::int64_t causes[kNumCauses] = {};
  /// The same slots cross-tabulated by Fig. 2 region (asleep excluded).
  std::int64_t by_phase[kNumPhaseBuckets][kNumCauses] = {};
  /// Row sums of `by_phase`: total window slots spent in each region.
  std::int64_t phase_slots[kNumPhaseBuckets] = {};

  /// Sum of all non-asleep causes (== latency for decided, exact nodes).
  [[nodiscard]] std::int64_t stall() const {
    std::int64_t total = 0;
    for (std::size_t c = 1; c < kNumCauses; ++c) total += causes[c];
    return total;
  }
  /// Recorded decision latency (decision − wake); -1 if undecided.
  [[nodiscard]] std::int64_t latency() const {
    return decided ? decision_slot - wake_slot : -1;
  }
  /// The checked invariant: causes sum to the decision latency.
  [[nodiscard]] bool exact() const {
    return decided && stall() == latency();
  }
};

/// Whole-trace attribution: per-node profiles plus network-wide and
/// per-phase roll-ups.
struct ExplainReport {
  ExplainConfig config;
  TraceStats stats;

  /// One entry per node seen in the trace, ascending node id.
  std::vector<NodeAttribution> nodes;
  /// Parallel to `nodes` when `config.collect_spans`; empty otherwise.
  std::vector<std::vector<CauseSpan>> spans;

  std::size_t decided_nodes = 0;
  std::size_t exact_nodes = 0;  ///< decided nodes passing `exact()`
  std::size_t fig2_violations = 0;

  /// Network-wide slot totals per cause (all nodes' windows).
  std::int64_t totals[kNumCauses] = {};
  /// Cause totals cross-tabulated by Fig. 2 region.
  std::int64_t phase_totals[kNumPhaseBuckets][kNumCauses] = {};

  /// True iff every decided node's causes sum to its recorded latency.
  [[nodiscard]] bool exact_ok() const {
    return exact_nodes == decided_nodes;
  }
  /// Total non-asleep slots attributed across all nodes.
  [[nodiscard]] std::int64_t total_stall() const {
    std::int64_t total = 0;
    for (std::size_t c = 1; c < kNumCauses; ++c) total += totals[c];
    return total;
  }
  /// `totals[c]` as a share of `total_stall()` (0 when empty; asleep
  /// has no share).
  [[nodiscard]] double share(Cause c) const;
  /// The non-asleep cause with the largest total (ties → lower code).
  [[nodiscard]] Cause top_cause() const;
};

/// Classify every pre-decision slot of every node in `events`.
/// `events` must be in emission order (nondecreasing slot), as written
/// by every sink in this repo.
[[nodiscard]] ExplainReport explain_trace(const std::vector<Event>& events,
                                          const ExplainConfig& config = {});

// --- differential mode -------------------------------------------------

struct ExplainDiffOptions {
  /// Bootstrap resampling rounds for the per-cause CIs.
  std::size_t resamples = 1000;
  /// Seed for the deterministic resampling stream.
  std::uint64_t seed = 0x5EEDEDULL;
  /// Two-sided confidence level of the reported interval.
  double confidence = 0.95;
};

/// Per-cause comparison of two runs (decided nodes only).
struct CauseDelta {
  Cause cause = Cause::kIdle;
  std::int64_t slots_a = 0;  ///< total slots attributed in run A
  std::int64_t slots_b = 0;
  double share_a = 0.0;  ///< share of run A's total stall
  double share_b = 0.0;
  double mean_a = 0.0;  ///< mean slots per decided node, run A
  double mean_b = 0.0;
  double delta_mean = 0.0;  ///< mean_b − mean_a
  /// Bootstrap percentile CI on `delta_mean` (nodes resampled with
  /// replacement, independently per run).
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  /// True when the CI excludes zero — the delta is attributable.
  bool significant = false;
};

/// Statistical comparison of two attribution reports.
struct ExplainDiff {
  std::size_t nodes_a = 0;  ///< decided nodes in run A
  std::size_t nodes_b = 0;
  double mean_latency_a = 0.0;  ///< mean decision latency per node
  double mean_latency_b = 0.0;
  /// mean_latency_a / mean_latency_b (>1 = B faster); 0 if degenerate.
  double speedup = 0.0;
  /// One row per cause, `kAsleep` included (wake-offset drift).
  CauseDelta causes[kNumCauses];
};

/// Compare two runs of the same scenario.  Deterministic: the same
/// (a, b, options) always produces bit-identical CIs.
[[nodiscard]] ExplainDiff diff_explain(const ExplainReport& a,
                                       const ExplainReport& b,
                                       const ExplainDiffOptions& options = {});

// --- exports ------------------------------------------------------------

/// One flat machine-readable entry (dotted key, numeric or string
/// value) — the single source for both `explain_json` and the
/// `explain.*` bench keys.
struct ExplainEntry {
  std::string key;
  double num = 0.0;
  std::string str;  ///< used instead of `num` when `is_str`
  bool is_str = false;
};

/// Flat `explain.*` entries for a report: per-cause slot totals and
/// shares, top cause, exactness counters, and per-phase p50/p95 stall
/// slots over nodes.
[[nodiscard]] std::vector<ExplainEntry> explain_entries(
    const ExplainReport& report);

/// `explain_entries` rendered as one flat JSON object (stable key
/// order, trailing newline).
[[nodiscard]] std::string explain_json(const ExplainReport& report);

/// Flat JSON object for a diff (per-cause deltas + CIs).
[[nodiscard]] std::string explain_diff_json(const ExplainDiff& diff);

/// Write a chrome://tracing "icicle" of per-node cause spans (one tid
/// per node, one X slice per span; 1 slot = 1 µs).  Requires a report
/// built with `collect_spans`.  Returns false on I/O failure or when
/// spans were not collected.
[[nodiscard]] bool write_explain_chrome_file(const std::string& path,
                                             const ExplainReport& report);

}  // namespace urn::obs
