#include "obs/fig2.hpp"

#include <sstream>

namespace urn::obs {

namespace {

[[nodiscard]] bool is_verify(const Event& e) {
  return e.phase == static_cast<std::uint8_t>(PhaseCode::kVerify);
}
[[nodiscard]] bool is_request(const Event& e) {
  return e.phase == static_cast<std::uint8_t>(PhaseCode::kRequest);
}
[[nodiscard]] bool is_decided(const Event& e) {
  return e.phase == static_cast<std::uint8_t>(PhaseCode::kDecided);
}

[[nodiscard]] std::string describe(const Event& e) {
  std::ostringstream os;
  os << phase_name(e.phase);
  if (!is_request(e)) os << "(" << e.color << ")";
  return std::move(os).str();
}

}  // namespace

std::vector<std::string> Fig2Walker::advance(const Event& e) {
  std::vector<std::string> errors;

  if (!started_) {
    started_ = true;
    if (!is_verify(e) || e.color != 0) {
      errors.push_back("first transition is " + describe(e) +
                       ", expected verify(0) [Z -> A0]");
    }
    if (woke_ && e.slot < wake_slot_) {
      errors.push_back("entered A0 before the wake event");
    }
  } else {
    const Event& a = prev_;
    const Event& b = e;
    ++transitions_checked_;
    if (b.slot < a.slot) {
      errors.push_back("transition slots go backwards");
    }
    if (is_decided(a)) {
      errors.push_back("left terminal state " + describe(a) + " for " +
                       describe(b));
    } else if (is_verify(a) && a.color == 0) {
      // A0 -> C0 | R.
      const bool to_leader = is_decided(b) && b.color == 0;
      if (!to_leader && !is_request(b)) {
        errors.push_back("illegal A0 exit to " + describe(b) +
                         " (want decided(0) or request)");
      }
    } else if (is_request(a)) {
      // R -> A_{tc(k2+1)}, tc >= 1.
      if (!is_verify(b) || b.color <= 0) {
        errors.push_back("illegal R exit to " + describe(b) +
                         " (want verify(i), i > 0)");
      } else if (kappa2_ > 0 &&
                 b.color % (static_cast<std::int32_t>(kappa2_) + 1) != 0) {
        errors.push_back("R exit color " + std::to_string(b.color) +
                         " not a multiple of kappa2+1");
      }
    } else {
      // A_i (i > 0) -> C_i | A_{i+1}.
      if (is_decided(b)) {
        if (b.color != a.color) {
          errors.push_back("decided color " + std::to_string(b.color) +
                           " from verify(" + std::to_string(a.color) + ")");
        }
      } else if (!is_verify(b) || b.color != a.color + 1) {
        errors.push_back("illegal A_i exit to " + describe(b) + " from " +
                         describe(a));
      }
    }
  }

  if (is_decided(e) && !decided_) {
    decided_ = true;
    decided_color_ = e.color;
    decided_slot_ = e.slot;
    if (pending_decision_color_ >= 0 &&
        pending_decision_color_ != decided_color_) {
      errors.push_back(
          "decision event color disagrees with the final decided "
          "transition");
    }
  }
  prev_ = e;
  return errors;
}

std::string Fig2Walker::observe_decision(const Event& e) {
  if (e.color < 0) return {};  // engine-level decision events carry no claim
  if (decided_) {
    if (e.color != decided_color_) {
      return "decision event color disagrees with the final decided "
             "transition";
    }
    return {};
  }
  pending_decision_color_ = e.color;
  return {};
}

}  // namespace urn::obs
