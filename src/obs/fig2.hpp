/// \file fig2.hpp
/// \brief The Fig. 2 transition table as an incremental per-node walker —
///        the one source of truth for phase legality, shared by the
///        offline replay validator (`validate_fig2` / `urn_trace`) and the
///        online `InvariantMonitorSink`.
///
/// The legal walk (Fig. 2):
///
///     Z → A₀;   A₀ → C₀ | R;   R → A_{tc(κ₂+1)}, tc ≥ 1;
///     A_i → C_i | A_{i+1}  (i > 0);   C_i terminal.
///
/// `Fig2Walker` consumes one node's events in stream order (`wake`, then
/// `advance` per kPhase event, `observe_decision` per kDecision event) and
/// reports each illegality as a human-readable description the moment it
/// happens, so a monitor can flag the offending (slot, node) online
/// instead of after the run.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace urn::obs {

/// Incremental Fig. 2 legality checker for a single node.
class Fig2Walker {
 public:
  /// \param kappa2 the run's κ₂; enables the R → A_{tc(κ₂+1)} lattice
  ///        check (pass 0 when κ₂ is unknown to skip it).
  explicit Fig2Walker(std::uint32_t kappa2 = 0) : kappa2_(kappa2) {}

  /// Record the node's wake slot (first wake wins; duplicates ignored).
  void wake(Slot s) {
    if (!woke_) {
      woke_ = true;
      wake_slot_ = s;
    }
  }

  /// Feed the next kPhase event.  Returns every violated rule as its own
  /// description (empty vector = the transition is legal).  The walker
  /// always advances to the new state, mirroring the offline validator:
  /// one illegal hop does not suppress checks on later hops.
  [[nodiscard]] std::vector<std::string> advance(const Event& e);

  /// Feed a kDecision event; checks color agreement against the decided
  /// transition (returns "" when consistent or no claim can be checked).
  [[nodiscard]] std::string observe_decision(const Event& e);

  [[nodiscard]] bool woke() const { return woke_; }
  [[nodiscard]] Slot wake_slot() const { return wake_slot_; }
  /// True once any phase transition has been consumed.
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool decided() const { return decided_; }
  /// The i of the decided C_i (-1 while undecided).
  [[nodiscard]] std::int32_t decided_color() const { return decided_color_; }
  [[nodiscard]] Slot decided_slot() const { return decided_slot_; }
  /// Number of state-to-state hops checked (first entry excluded).
  [[nodiscard]] std::size_t transitions_checked() const {
    return transitions_checked_;
  }

 private:
  std::uint32_t kappa2_;
  bool woke_ = false;
  Slot wake_slot_ = -1;
  bool started_ = false;
  Event prev_;  ///< last phase event consumed (valid once started_)
  bool decided_ = false;
  std::int32_t decided_color_ = -1;
  Slot decided_slot_ = -1;
  /// Color claimed by a kDecision event that arrived before any decided
  /// transition (-1 = none pending).
  std::int32_t pending_decision_color_ = -1;
  std::size_t transitions_checked_ = 0;
};

}  // namespace urn::obs
