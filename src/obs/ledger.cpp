#include "obs/ledger.hpp"

namespace urn::obs {

namespace {

[[nodiscard]] LedgerSummary summarize_samples(const Samples& s) {
  LedgerSummary out;
  out.trials = s.count();
  if (out.trials == 0) return out;
  out.min = s.min();
  out.mean = s.mean();
  out.p50 = s.percentile(50.0);
  out.p95 = s.percentile(95.0);
  out.max = s.max();
  return out;
}

}  // namespace

void RunLedger::add(std::string_view metric, double value) {
  auto it = samples_.find(metric);
  if (it == samples_.end()) {
    it = samples_.emplace(std::string(metric), Samples{}).first;
  }
  it->second.add(value);
}

void RunLedger::add_all(std::string_view metric,
                        const std::vector<double>& values) {
  for (double v : values) add(metric, v);
}

void RunLedger::merge(const RunLedger& other) {
  for (const auto& [metric, samples] : other.samples_) {
    const auto it = samples_.find(metric);
    if (it == samples_.end()) {
      samples_.emplace(metric, samples);
    } else {
      it->second.merge(samples);
    }
  }
}

std::size_t RunLedger::trials(std::string_view metric) const {
  const auto it = samples_.find(metric);
  return it == samples_.end() ? 0 : it->second.count();
}

LedgerSummary RunLedger::summarize(std::string_view metric) const {
  const auto it = samples_.find(metric);
  return it == samples_.end() ? LedgerSummary{}
                              : summarize_samples(it->second);
}

std::vector<std::pair<std::string, LedgerSummary>> RunLedger::summaries()
    const {
  std::vector<std::pair<std::string, LedgerSummary>> out;
  out.reserve(samples_.size());
  for (const auto& [name, samples] : samples_) {
    out.emplace_back(name, summarize_samples(samples));
  }
  return out;
}

}  // namespace urn::obs
