/// \file ledger.hpp
/// \brief Cross-run telemetry ledger: aggregate many trials' headline
///        metrics into percentile summaries.
///
/// One `RunLedger` collects a named scalar per trial ("latency.max",
/// "collisions.peak", ...) and summarizes each metric as
/// min / mean / p50 / p95 / max over the trials.  The experiment
/// binaries export these summaries into `BENCH_<name>.json`
/// (`bench::ledger_emit`), so the committed bench trajectory carries
/// *distributions* instead of single numbers — which is what makes a
/// tolerance-based regression gate (`urn_bench_diff`) meaningful.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/stats.hpp"

namespace urn::obs {

/// Order statistics of one metric over the recorded trials.
struct LedgerSummary {
  std::size_t trials = 0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Named per-trial samples with percentile summaries.
class RunLedger {
 public:
  /// Record one trial's value of `metric`.
  void add(std::string_view metric, double value);
  /// Record one value per trial in bulk.
  void add_all(std::string_view metric, const std::vector<double>& values);

  /// Append another ledger's samples after this one's, metric by metric
  /// (metrics unknown here are adopted).  Merging per-chunk ledgers in
  /// trial order is bit-identical to recording every trial into one
  /// ledger serially — the merge-safety contract of
  /// `exec::parallel_for_trials` (see `Samples::merge`).
  void merge(const RunLedger& other);

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t num_metrics() const { return samples_.size(); }
  /// Trials recorded for `metric` (0 if unknown).
  [[nodiscard]] std::size_t trials(std::string_view metric) const;

  /// Summary of one metric (all-zero if unknown).
  [[nodiscard]] LedgerSummary summarize(std::string_view metric) const;
  /// (metric, summary) pairs sorted by metric name.
  [[nodiscard]] std::vector<std::pair<std::string, LedgerSummary>>
  summaries() const;

 private:
  std::map<std::string, Samples, std::less<>> samples_;
};

}  // namespace urn::obs
