#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "support/check.hpp"

namespace urn::obs {

MetricsSink::MetricsSink(Slot window) : window_(window) {
  URN_CHECK(window >= 1);
}

MetricsRow& MetricsSink::row_for(Slot slot) {
  URN_CHECK(slot >= 0);
  const auto idx = static_cast<std::size_t>(slot / window_);
  while (rows_.size() <= idx) {
    MetricsRow row;
    row.start = static_cast<Slot>(rows_.size()) * window_;
    rows_.push_back(row);
  }
  return rows_[idx];
}

void MetricsSink::record(const Event& e) {
  MetricsRow& row = row_for(e.slot);
  switch (e.kind) {
    case EventKind::kWake:
      ++row.wakes;
      break;
    case EventKind::kTransmit:
      ++row.transmissions;
      break;
    case EventKind::kDelivery:
      ++row.deliveries;
      break;
    case EventKind::kCollision:
      ++row.collisions;
      break;
    case EventKind::kDrop:
      ++row.drops;
      break;
    case EventKind::kPhase:
      ++row.phase_changes;
      break;
    case EventKind::kReset:
      ++row.resets;
      break;
    case EventKind::kDecision:
      ++row.decisions;
      break;
    case EventKind::kServe:
      ++row.serves;
      break;
  }
}

TimeSeries MetricsSink::finish(Slot slots_run) const {
  std::vector<MetricsRow> rows = rows_;
  // Pad trailing windows so the series spans the whole run.
  if (slots_run > 0) {
    const auto want = static_cast<std::size_t>((slots_run - 1) / window_) + 1;
    while (rows.size() < want) {
      MetricsRow row;
      row.start = static_cast<Slot>(rows.size()) * window_;
      rows.push_back(row);
    }
  }
  std::uint32_t awake = 0;
  std::uint32_t decided = 0;
  for (MetricsRow& row : rows) {
    awake += row.wakes;
    decided += row.decisions;
    row.awake_end = awake;
    row.decided_end = decided;
  }
  return TimeSeries(window_, std::move(rows));
}

const char* TimeSeries::csv_header() {
  return "window_start,wakes,decisions,transmissions,deliveries,collisions,"
         "drops,resets,serves,phase_changes,awake,decided,active";
}

void TimeSeries::write_csv(std::ostream& os) const {
  os << csv_header() << '\n';
  for (const MetricsRow& r : rows_) {
    os << r.start << ',' << r.wakes << ',' << r.decisions << ','
       << r.transmissions << ',' << r.deliveries << ',' << r.collisions
       << ',' << r.drops << ',' << r.resets << ',' << r.serves << ','
       << r.phase_changes << ',' << r.awake_end << ',' << r.decided_end
       << ',' << r.active_end() << '\n';
  }
}

bool TimeSeries::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_csv(os);
  return static_cast<bool>(os);
}

void TimeSeries::write_json(std::ostream& os) const {
  os << "{\"window\":" << window_ << ",\"rows\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const MetricsRow& r = rows_[i];
    if (i != 0) os << ',';
    os << "{\"start\":" << r.start << ",\"wakes\":" << r.wakes
       << ",\"decisions\":" << r.decisions
       << ",\"tx\":" << r.transmissions << ",\"rx\":" << r.deliveries
       << ",\"collisions\":" << r.collisions << ",\"drops\":" << r.drops
       << ",\"resets\":" << r.resets << ",\"serves\":" << r.serves
       << ",\"phase_changes\":" << r.phase_changes
       << ",\"awake\":" << r.awake_end << ",\"decided\":" << r.decided_end
       << "}";
  }
  os << "]}";
}

std::uint64_t TimeSeries::peak_collisions() const {
  std::uint64_t peak = 0;
  for (const MetricsRow& r : rows_) peak = std::max(peak, r.collisions);
  return peak;
}

}  // namespace urn::obs
