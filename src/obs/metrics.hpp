/// \file metrics.hpp
/// \brief Per-slot (or fixed-width-window) time series derived from the
///        event stream: how a run evolves, not just how it ended.
///
/// `MetricsSink` is an `EventSink` that buckets events into consecutive
/// windows of `window` slots and accumulates per-window counts plus the
/// cumulative awake/decided population.  `finish()` produces a
/// `TimeSeries` covering the whole run (empty windows included, so rows
/// are evenly spaced), exportable as CSV or JSON for plotting.
///
/// The trajectory quantities here are exactly what the paper's per-node
/// guarantees talk about: when the awake population ramps up, how long
/// the collision spike after a wake-up burst lasts, when the decided
/// curve saturates.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace urn::obs {

/// One row of the time series: counts for slots
/// [start, start + window) and end-of-window populations.
struct MetricsRow {
  Slot start = 0;                      ///< first slot of the window
  std::uint32_t wakes = 0;             ///< nodes waking in this window
  std::uint32_t decisions = 0;         ///< nodes deciding in this window
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;        ///< listener-slot collision pairs
  std::uint64_t drops = 0;             ///< injected fading losses
  std::uint64_t resets = 0;            ///< Alg. 1 l. 29 counter resets
  std::uint64_t serves = 0;            ///< completed leader windows
  std::uint64_t phase_changes = 0;     ///< Fig. 2 transitions
  std::uint32_t awake_end = 0;         ///< cumulative wakes at window end
  std::uint32_t decided_end = 0;       ///< cumulative decisions at window end

  /// Awake-but-undecided population at window end.
  [[nodiscard]] std::uint32_t active_end() const {
    return awake_end - decided_end;
  }
};

/// The assembled per-window series.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(Slot window, std::vector<MetricsRow> rows)
      : window_(window), rows_(std::move(rows)) {}

  [[nodiscard]] Slot window() const { return window_; }
  [[nodiscard]] const std::vector<MetricsRow>& rows() const { return rows_; }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Column header of the CSV form (shared by all exporters).
  [[nodiscard]] static const char* csv_header();

  /// Write `csv_header()` plus one line per row.
  void write_csv(std::ostream& os) const;
  /// Write to a file; returns false if the file could not be opened.
  bool write_csv_file(const std::string& path) const;

  /// JSON object {"window":W,"rows":[{...},...]}.
  void write_json(std::ostream& os) const;

  /// Peak per-window collision count (0 for an empty series) — the
  /// headline "when/how hard did the medium congest" number.
  [[nodiscard]] std::uint64_t peak_collisions() const;

 private:
  Slot window_ = 1;
  std::vector<MetricsRow> rows_;
};

/// EventSink that accumulates the series.  Events must arrive in
/// nondecreasing slot order (the engines emit in slot order).
class MetricsSink {
 public:
  static constexpr bool kEnabled = true;

  /// \param window width in slots of each bucket (≥ 1)
  explicit MetricsSink(Slot window = 1);

  void record(const Event& e);
  void flush() {}

  /// Assemble the series for a run that lasted `slots_run` slots,
  /// padding trailing empty windows and filling cumulative populations.
  [[nodiscard]] TimeSeries finish(Slot slots_run) const;

 private:
  MetricsRow& row_for(Slot slot);

  Slot window_;
  std::vector<MetricsRow> rows_;
};

static_assert(EventSink<MetricsSink>);

}  // namespace urn::obs
