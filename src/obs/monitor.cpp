#include "obs/monitor.hpp"

#include <utility>

namespace urn::obs {

const char* invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kPhaseLegality: return "phase";
    case Invariant::kColorConflict: return "color-conflict";
    case Invariant::kLeaderIndependence: return "leader-independence";
    case Invariant::kLocality: return "locality";
    case Invariant::kLatency: return "latency";
  }
  return "?";
}

void print_monitor_report(const MonitorReport& report, std::FILE* out) {
  std::fprintf(out,
               "monitor: %llu violation(s) over %llu events, %zu nodes\n",
               static_cast<unsigned long long>(report.total_violations()),
               static_cast<unsigned long long>(report.events_seen),
               report.nodes_seen);
  for (std::size_t i = 0; i < kNumInvariants; ++i) {
    const MonitorReport::PerInvariant& p = report.invariants[i];
    if (p.count == 0) continue;
    std::fprintf(out,
                 "  %-19s %llu violation(s); first at slot %lld node %u: "
                 "%s\n",
                 invariant_name(static_cast<Invariant>(i)),
                 static_cast<unsigned long long>(p.count),
                 static_cast<long long>(p.first_slot), p.first_node,
                 p.first_what.c_str());
  }
}

const MonitorReport::PerInvariant* first_violation(
    const MonitorReport& report, Invariant* which) {
  const MonitorReport::PerInvariant* best = nullptr;
  for (std::size_t i = 0; i < kNumInvariants; ++i) {
    const MonitorReport::PerInvariant& p = report.invariants[i];
    if (p.count == 0) continue;
    if (best == nullptr || p.first_slot < best->first_slot) {
      best = &p;
      if (which != nullptr) *which = static_cast<Invariant>(i);
    }
  }
  return best;
}

void print_first_violation(const MonitorReport& report, std::FILE* out) {
  Invariant which{};
  const MonitorReport::PerInvariant* first = first_violation(report, &which);
  if (first == nullptr) return;
  std::fprintf(out, "first violation: invariant=%s slot=%lld node=%u\n",
               invariant_name(which),
               static_cast<long long>(first->first_slot), first->first_node);
}

InvariantMonitorSink::NodeState& InvariantMonitorSink::state(NodeId v) {
  return nodes_.try_emplace(v, config_.kappa2).first->second;
}

void InvariantMonitorSink::violation(Invariant inv, Slot slot, NodeId node,
                                     std::string what) {
  MonitorReport::PerInvariant& p =
      report_.invariants[static_cast<std::size_t>(inv)];
  if (p.count == 0) {
    p.first_slot = slot;
    p.first_node = node;
    p.first_what = std::move(what);
  }
  ++p.count;
}

void InvariantMonitorSink::on_decided(NodeId v, Slot slot,
                                      std::int32_t color) {
  NodeState& s = state(v);
  if (s.decided) return;
  s.decided = true;
  s.color = color;

  if (config_.latency_budget > 0 && s.walker.woke()) {
    const Slot latency = slot - s.walker.wake_slot();
    if (latency > config_.latency_budget) {
      violation(Invariant::kLatency, slot, v,
                "T_v = " + std::to_string(latency) +
                    " exceeds the decision budget of " +
                    std::to_string(config_.latency_budget) + " slots");
    }
  }
  if (color < 0) return;

  if (config_.kappa2 > 0 && v < config_.theta.size()) {
    const auto k2 = static_cast<std::int64_t>(config_.kappa2);
    const std::int64_t bound =
        (k2 + 1) * static_cast<std::int64_t>(config_.theta[v]) + k2;
    if (color > bound) {
      violation(Invariant::kLocality, slot, v,
                "color " + std::to_string(color) +
                    " exceeds the Theorem 4 bound (k2+1)*theta+k2 = " +
                    std::to_string(bound) +
                    " (theta_v = " + std::to_string(config_.theta[v]) + ")");
    }
  }

  if (config_.adj_offsets.empty() ||
      static_cast<std::size_t>(v) + 1 >= config_.adj_offsets.size()) {
    return;
  }
  for (std::uint32_t i = config_.adj_offsets[v];
       i < config_.adj_offsets[v + 1]; ++i) {
    const NodeId u = config_.adj[i];
    const auto it = nodes_.find(u);
    if (it == nodes_.end() || !it->second.decided) continue;
    if (it->second.color != color) continue;
    violation(Invariant::kColorConflict, slot, v,
              "decided color " + std::to_string(color) +
                  " already held by adjacent node " + std::to_string(u));
    if (color == 0) {
      violation(Invariant::kLeaderIndependence, slot, v,
                "joined C0 while adjacent node " + std::to_string(u) +
                    " is already a leader");
    }
  }
}

void InvariantMonitorSink::record(const Event& e) {
  ++report_.events_seen;
  switch (e.kind) {
    case EventKind::kWake:
      state(e.node).walker.wake(e.slot);
      break;
    case EventKind::kPhase: {
      NodeState& s = state(e.node);
      for (std::string& err : s.walker.advance(e)) {
        violation(Invariant::kPhaseLegality, e.slot, e.node,
                  std::move(err));
      }
      if (e.phase == static_cast<std::uint8_t>(PhaseCode::kDecided)) {
        on_decided(e.node, e.slot, e.color);
      }
      break;
    }
    case EventKind::kDecision: {
      NodeState& s = state(e.node);
      if (std::string err = s.walker.observe_decision(e); !err.empty()) {
        violation(Invariant::kPhaseLegality, e.slot, e.node,
                  std::move(err));
      }
      on_decided(e.node, e.slot, e.color);
      break;
    }
    default:
      break;  // tx/rx/collision/drop/reset/serve carry no invariant here
  }
}

MonitorReport InvariantMonitorSink::report() const {
  MonitorReport out = report_;
  out.nodes_seen = nodes_.size();
  return out;
}

}  // namespace urn::obs
