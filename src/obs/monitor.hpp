/// \file monitor.hpp
/// \brief Online invariant monitor: an `EventSink` that checks the
///        paper's guarantees *while the run happens* instead of after it.
///
/// The paper's theorems are all per-node checkable predicates, and the
/// event stream carries enough context to evaluate them the moment each
/// node decides:
///
///  * **phase legality** — every node's walk obeys the Fig. 2 transition
///    table (shared with the offline validator via `Fig2Walker`);
///  * **color conflict** — Theorem 5 correctness: at decision time, no
///    already-decided neighbor holds the same color;
///  * **leader independence** — the C₀ set stays independent: no two
///    adjacent nodes both decide color 0;
///  * **locality** — Theorem 4: the decided color stays within the
///    derivable bound (κ₂+1)·θ_v + κ₂ of the local density θ_v;
///  * **latency** — Theorem 3: T_v = decision − wake stays within the
///    configured O(κ₂⁴ Δ log n) slot budget.
///
/// The sink is composable through `TeeSink`, so a run can stream metrics,
/// a JSONL log, and the monitor simultaneously; it never touches RNG
/// streams, so monitored runs stay bit-identical to unmonitored ones.
/// Graph-dependent checks (conflict / leader independence / locality)
/// activate only when the `MonitorConfig` carries adjacency / θ data;
/// with an empty config the monitor still checks phase legality, which is
/// what `urn_trace` uses to re-check recorded logs offline.

#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "obs/event.hpp"
#include "obs/fig2.hpp"
#include "obs/sink.hpp"

namespace urn::obs {

/// Everything the monitor needs to know about the run under observation.
/// Empty members disable the corresponding checks (see file comment).
struct MonitorConfig {
  /// κ₂ of the run; enables the R-exit lattice check and (with `theta`)
  /// the Theorem 4 locality bound.  0 = unknown.
  std::uint32_t kappa2 = 0;
  /// Per-node decision budget in slots (Theorem 3); 0 disables the
  /// latency check.
  Slot latency_budget = 0;
  /// θ_v per node (Theorem 4 local density); empty disables locality.
  std::vector<std::uint32_t> theta;
  /// CSR adjacency (offsets.size() == n + 1); empty disables the
  /// conflict and leader-independence checks.
  std::vector<std::uint32_t> adj_offsets;
  std::vector<NodeId> adj;
};

/// The invariants the monitor distinguishes.
enum class Invariant : std::uint8_t {
  kPhaseLegality = 0,      ///< Fig. 2 transition-table violation
  kColorConflict = 1,      ///< decided color equals a decided neighbor's
  kLeaderIndependence = 2, ///< two adjacent nodes both decided color 0
  kLocality = 3,           ///< color exceeds (κ₂+1)·θ_v + κ₂ (Thm 4)
  kLatency = 4,            ///< T_v exceeds the slot budget (Thm 3)
};

inline constexpr std::size_t kNumInvariants = 5;

/// Stable schema name ("phase", "color-conflict", "leader-independence",
/// "locality", "latency").
[[nodiscard]] const char* invariant_name(Invariant inv);

/// Per-invariant violation tally plus the first offending (slot, node).
struct MonitorReport {
  struct PerInvariant {
    std::uint64_t count = 0;
    Slot first_slot = -1;
    NodeId first_node = kNoNode;
    std::string first_what;
  };
  std::array<PerInvariant, kNumInvariants> invariants;
  std::uint64_t events_seen = 0;
  std::size_t nodes_seen = 0;

  [[nodiscard]] const PerInvariant& of(Invariant inv) const {
    return invariants[static_cast<std::size_t>(inv)];
  }
  [[nodiscard]] std::uint64_t total_violations() const {
    std::uint64_t sum = 0;
    for (const PerInvariant& p : invariants) sum += p.count;
    return sum;
  }
  [[nodiscard]] bool ok() const { return total_violations() == 0; }
};

/// Print the standard human-readable report block (used by urn_sim,
/// urn_trace and the experiment binaries so the output stays uniform).
void print_monitor_report(const MonitorReport& report, std::FILE* out);

/// Earliest recorded violation across all invariants (lowest first_slot;
/// invariant order breaks ties).  Returns nullptr when the report is
/// clean; `which` (optional) receives the winning invariant.
[[nodiscard]] const MonitorReport::PerInvariant* first_violation(
    const MonitorReport& report, Invariant* which = nullptr);

/// One-line, grep-friendly first-violation summary for exit-2 paths:
///   `first violation: invariant=<name> slot=<s> node=<v>`
/// No-op on a clean report.
void print_first_violation(const MonitorReport& report, std::FILE* out);

/// The online monitor.  Feed it a run's event stream (directly as an
/// engine sink or by replaying a recorded log) and read `report()`.
class InvariantMonitorSink {
 public:
  static constexpr bool kEnabled = true;

  explicit InvariantMonitorSink(MonitorConfig config)
      : config_(std::move(config)) {}

  void record(const Event& e);
  void flush() {}

  /// Snapshot of the tally so far (cheap; safe to call mid-run).
  [[nodiscard]] MonitorReport report() const;

 private:
  struct NodeState {
    explicit NodeState(std::uint32_t kappa2) : walker(kappa2) {}
    Fig2Walker walker;
    bool decided = false;
    std::int32_t color = -1;
  };

  NodeState& state(NodeId v);
  void violation(Invariant inv, Slot slot, NodeId node, std::string what);
  void on_decided(NodeId v, Slot slot, std::int32_t color);

  MonitorConfig config_;
  std::map<NodeId, NodeState> nodes_;
  MonitorReport report_;
};

static_assert(EventSink<InvariantMonitorSink>);

}  // namespace urn::obs
