#include "obs/postmortem.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <limits>
#include <utility>

namespace urn::obs::postmortem {

namespace {

// File-scope assembly of the on-disk layout documented in the header.
std::string render_checkpoint(EngineKind kind, std::int64_t position,
                              const std::string& scenario,
                              const std::string& engine_state) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kCkptMagic[0]));
  w.u8(static_cast<std::uint8_t>(kCkptMagic[1]));
  w.u8(static_cast<std::uint8_t>(kCkptMagic[2]));
  w.u8(static_cast<std::uint8_t>(kCkptMagic[3]));
  w.u16(kCkptVersion);
  w.u16(static_cast<std::uint16_t>(kind));
  w.i64(position);
  std::string out = w.data();
  Writer lens;
  lens.u32(static_cast<std::uint32_t>(scenario.size()));
  out += lens.data();
  out += scenario;
  Writer lene;
  lene.u32(static_cast<std::uint32_t>(engine_state.size()));
  out += lene.data();
  out += engine_state;
  return out;
}

bool write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

CheckpointFile read_checkpoint_file(const std::string& path) {
  CheckpointFile out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out.error = path + ": cannot open checkpoint file";
    return out;
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);

  Reader r(bytes);
  char magic[4];
  magic[0] = static_cast<char>(r.u8());
  magic[1] = static_cast<char>(r.u8());
  magic[2] = static_cast<char>(r.u8());
  magic[3] = static_cast<char>(r.u8());
  if (!r.ok() || std::memcmp(magic, kCkptMagic, 4) != 0) {
    out.error = path + ": not a URNC checkpoint (bad magic)";
    return out;
  }
  out.version = r.u16();
  if (out.version > kCkptVersion) {
    out.error = path + ": checkpoint version " + std::to_string(out.version) +
                " is newer than this reader (max supported " +
                std::to_string(kCkptVersion) + ")";
    return out;
  }
  if (out.version == 0) {
    out.error = path + ": invalid checkpoint version 0";
    return out;
  }
  const std::uint16_t kind = r.u16();
  if (kind > static_cast<std::uint16_t>(EngineKind::kMisaligned)) {
    out.error = path + ": unknown engine kind " + std::to_string(kind);
    return out;
  }
  out.kind = static_cast<EngineKind>(kind);
  out.position = r.i64();

  const std::uint32_t slen = r.u32();
  if (!r.ok() || r.remaining() < slen) {
    out.error = path + ": truncated scenario section";
    return out;
  }
  const std::size_t soff = bytes.size() - r.remaining();
  out.scenario = bytes.substr(soff, slen);
  Reader r2(bytes.data() + soff + slen, r.remaining() - slen);
  const std::uint32_t elen = r2.u32();
  if (!r2.ok() || r2.remaining() < elen) {
    out.error = path + ": truncated engine-state section";
    return out;
  }
  out.engine_state = bytes.substr(soff + slen + 4, elen);
  out.ok = true;
  return out;
}

Checkpointer::Checkpointer(std::string path, EngineKind kind,
                           std::int64_t every, std::string scenario)
    : path_(std::move(path)),
      kind_(kind),
      every_(every),
      scenario_(std::move(scenario)) {}

void Checkpointer::commit(const std::string& engine_state,
                          std::int64_t position) {
  const std::string bytes =
      render_checkpoint(kind_, position, scenario_, engine_state);
  if (!write_file_atomic(path_, bytes)) {
    failed_ = true;
  } else {
    ++written_;
    last_position_ = position;
  }
  // every <= 0: one snapshot at the first opportunity, then never again.
  next_ = every_ > 0 ? position + every_
                     : std::numeric_limits<std::int64_t>::max();
}

bool ensure_dir(const std::string& path) {
  if (path.empty()) return false;
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  // Create parents first ("a/b/c" -> ensure "a/b" -> mkdir "a/b/c").
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    if (!ensure_dir(path.substr(0, slash))) return false;
  }
  return ::mkdir(path.c_str(), 0755) == 0 ||
         (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      body.empty() || std::fwrite(body.data(), 1, body.size(), f) ==
                          body.size();
  return (std::fclose(f) == 0) && wrote;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string monitor_report_json(const MonitorReport& report) {
  std::string out = "{\n";
  out += "  \"total_violations\": " +
         std::to_string(report.total_violations()) + ",\n";
  out += "  \"events_seen\": " + std::to_string(report.events_seen) + ",\n";
  out += "  \"nodes_seen\": " + std::to_string(report.nodes_seen) + ",\n";
  out += "  \"invariants\": {\n";
  for (std::size_t i = 0; i < kNumInvariants; ++i) {
    const MonitorReport::PerInvariant& p = report.invariants[i];
    out += "    \"";
    out += invariant_name(static_cast<Invariant>(i));
    out += "\": {\"count\": " + std::to_string(p.count);
    if (p.count > 0) {
      out += ", \"first_slot\": " + std::to_string(p.first_slot);
      out += ", \"first_node\": " + std::to_string(p.first_node);
      out += ", \"first_what\": \"" + json_escape(p.first_what) + "\"";
    }
    out += "}";
    out += (i + 1 < kNumInvariants) ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Crash capture.  Handler state is plain statics written before arming;
// the handler itself uses only async-signal-safe syscalls except for the
// registered flush hook (documented best-effort).

namespace {

constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

char g_crash_path[1024] = {0};  // "<dir>/CRASH.txt"; empty = disarmed
void (*g_flush_fn)(void*) = nullptr;
void* g_flush_arg = nullptr;

void crash_handler(int sig) {
  // Restore default dispositions first so a second fault inside the
  // handler terminates instead of recursing.
  for (const int s : kCrashSignals) std::signal(s, SIG_DFL);
  if (g_flush_fn != nullptr) g_flush_fn(g_flush_arg);
  if (g_crash_path[0] != '\0') {
    const int fd =
        ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      char buf[96];
      // Hand-rolled formatting: snprintf is not async-signal-safe.
      const char* name = sig == SIGSEGV   ? "SIGSEGV"
                         : sig == SIGABRT ? "SIGABRT"
                         : sig == SIGBUS  ? "SIGBUS"
                         : sig == SIGFPE  ? "SIGFPE"
                         : sig == SIGILL  ? "SIGILL"
                                          : "signal";
      std::size_t len = 0;
      const char* prefix = "fatal signal: ";
      for (const char* p = prefix; *p != '\0'; ++p) buf[len++] = *p;
      for (const char* p = name; *p != '\0'; ++p) buf[len++] = *p;
      buf[len++] = '\n';
      ssize_t ignored = ::write(fd, buf, len);
      (void)ignored;
      ::close(fd);
    }
  }
  ::raise(sig);
}

}  // namespace

void arm_crash_handler(const std::string& bundle_dir) {
  std::string path = bundle_dir + "/CRASH.txt";
  if (path.size() >= sizeof(g_crash_path)) return;  // silently skip
  std::memcpy(g_crash_path, path.c_str(), path.size() + 1);
  for (const int s : kCrashSignals) std::signal(s, &crash_handler);
}

void disarm_crash_handler() {
  g_crash_path[0] = '\0';
  for (const int s : kCrashSignals) std::signal(s, SIG_DFL);
}

void set_crash_flush(void (*fn)(void*), void* arg) {
  g_flush_fn = fn;
  g_flush_arg = arg;
}

}  // namespace urn::obs::postmortem
