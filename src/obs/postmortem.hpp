/// \file postmortem.hpp
/// \brief Versioned binary engine checkpoints and postmortem bundles.
///
/// The flight recorder (PR 4's bounded ring) retains the last N events of
/// a run, but events alone are half a black box: they show what happened,
/// not the engine state it happened *to*.  This header adds the other
/// half — a complete, versioned serialization of engine state (every
/// node's protocol state, the live/undecided lists, the slot cursor, all
/// RNG streams) from which a run can be **resumed bit-identically**: same
/// RNG draw sequence, same `RunStats`, same per-node final state as the
/// uninterrupted run.
///
/// Checkpoint file layout (`checkpoint.urnc`, little-endian throughout):
///
///     offset  size  field
///     0       4     magic "URNC"
///     4       2     format version (kCkptVersion)
///     6       2     engine kind (0 = aligned Engine, 1 = MisalignedEngine)
///     8       8     position (slot for aligned; half-slot for misaligned)
///     16      4     scenario section length S
///     20      S     scenario section (graph/params/schedule/seed manifest,
///                   written by the core layer — see core/checkpoint.hpp)
///     20+S    4     engine-state section length E
///     24+S    E     engine-state section (Engine::save_state bytes)
///
/// The file is self-contained: the scenario section carries everything
/// needed to reconstruct the engine (graph edges, params, wake schedule,
/// seed, medium options), so resuming never re-runs a topology generator.
///
/// The obs layer deliberately knows nothing about graphs or protocols:
/// `Checkpointer` takes the scenario section as an opaque pre-rendered
/// byte string and the engine state through the engine's own
/// `save_state(Writer&)`.  Engines gain a checkpointer template parameter
/// with a `NullCheckpointer` default, the same zero-overhead `if
/// constexpr` seam as the event sinks and telemetry probes.

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "obs/monitor.hpp"
#include "support/rng.hpp"

namespace urn::obs::postmortem {

// ---------------------------------------------------------------------------
// Byte codecs.

/// Append-only little-endian byte buffer; the single writer used for every
/// checkpoint section so the on-disk byte order is fixed regardless of
/// host endianness.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { put(v, 2); }
  void u32(std::uint32_t v) { put(v, 4); }
  void u64(std::uint64_t v) { put(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] const std::string& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void put(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  std::string buf_;
};

/// Bounds-checked little-endian reader over a byte string.  A short or
/// corrupt buffer never reads out of bounds: the first failing read
/// latches `ok() == false` and every later read returns 0.
class Reader {
 public:
  explicit Reader(const std::string& bytes)
      : p_(bytes.data()), size_(bytes.size()) {}
  Reader(const char* data, std::size_t size) : p_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(p_[pos_++]);
  }
  [[nodiscard]] std::uint16_t u16() {
    return static_cast<std::uint16_t>(get(2));
  }
  [[nodiscard]] std::uint32_t u32() {
    return static_cast<std::uint32_t>(get(4));
  }
  [[nodiscard]] std::uint64_t u64() { return get(8); }
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(u32());
  }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  [[nodiscard]] bool need(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t get(std::size_t bytes) {
    if (!need(bytes)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(p_[pos_ + i]))
           << (8 * i);
    }
    pos_ += bytes;
    return v;
  }

  const char* p_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Rng stream codec, shared by both engines' save/load paths.  The full
/// `Rng::Snapshot` is written (state words plus the cached normal spare)
/// so restored streams replay draw-for-draw.
inline void write_rng(Writer& w, const Rng& rng) {
  const Rng::Snapshot s = rng.snapshot();
  for (const std::uint64_t word : s.state) w.u64(word);
  w.boolean(s.have_spare_normal);
  w.f64(s.spare_normal);
}

inline bool read_rng(Reader& r, Rng& rng) {
  Rng::Snapshot s;
  for (auto& word : s.state) word = r.u64();
  s.have_spare_normal = r.boolean();
  s.spare_normal = r.f64();
  if (!r.ok()) return false;
  rng.restore(s);
  return true;
}

// ---------------------------------------------------------------------------
// Checkpoint file format.

inline constexpr char kCkptMagic[4] = {'U', 'R', 'N', 'C'};
inline constexpr std::uint16_t kCkptVersion = 1;
inline constexpr std::size_t kCkptHeaderSize = 16;
inline constexpr const char* kCkptFileName = "checkpoint.urnc";
inline constexpr const char* kRingFileName = "ring.bin";
inline constexpr const char* kManifestFileName = "manifest.json";
inline constexpr const char* kMonitorFileName = "monitor.json";
inline constexpr const char* kTelemetryFileName = "telemetry.json";

enum class EngineKind : std::uint16_t {
  kAligned = 0,     ///< radio::Engine (globally slotted)
  kMisaligned = 1,  ///< radio::MisalignedEngine (per-node slot offsets)
};

/// Raw parsed checkpoint file: header fields plus the two opaque
/// sections.  The core layer decodes `scenario` (core::read_scenario) and
/// the matching engine decodes `engine_state` (Engine::load_state).
struct CheckpointFile {
  std::uint16_t version = 0;
  EngineKind kind = EngineKind::kAligned;
  std::int64_t position = 0;
  std::string scenario;      ///< scenario section bytes
  std::string engine_state;  ///< engine-state section bytes
  bool ok = false;
  std::string error;  ///< one-line diagnostic when !ok
};

/// Read and validate a checkpoint file.  A version newer than
/// `kCkptVersion` is rejected with a "newer than this reader" error
/// (same contract as the binary trace reader).
[[nodiscard]] CheckpointFile read_checkpoint_file(const std::string& path);

// ---------------------------------------------------------------------------
// Engine hooks.

/// Default checkpointer: disables the hook at compile time.  The engine's
/// run loop tests `C::kEnabled` under `if constexpr`, so instantiations
/// with this type carry zero overhead — the same seam as `NullSink` and
/// `NullEngineProbe`.
struct NullCheckpointer {
  static constexpr bool kEnabled = false;
};

/// Periodic checkpoint writer.  Attach to an engine via
/// `set_checkpointer`; the engine calls `maybe_checkpoint(*this, pos)` at
/// the top of each run-loop iteration, and the checkpointer serializes a
/// full snapshot every `every` position units (slots for the aligned
/// engine, half-slots for the misaligned one).  `every <= 0` means a
/// single snapshot at the first opportunity (the run start), so
/// `--dump-on-violation` alone still leaves a resumable checkpoint.
///
/// Each snapshot atomically replaces `path` (write to `path.tmp`, then
/// rename), so a crash mid-write never corrupts the last good checkpoint.
/// Serialization only reads engine state — a checkpointed run stays
/// bit-identical to an unhooked one.
class Checkpointer {
 public:
  static constexpr bool kEnabled = true;

  /// \param path destination file (conventionally `<dir>/checkpoint.urnc`)
  /// \param kind engine flavor recorded in the header
  /// \param every snapshot period in position units; <= 0 = once at start
  /// \param scenario pre-rendered scenario section (core::write_scenario)
  Checkpointer(std::string path, EngineKind kind, std::int64_t every,
               std::string scenario);

  template <typename Engine>
  void maybe_checkpoint(const Engine& engine, std::int64_t position) {
    if (position < next_) return;
    take(engine, position);
  }

  /// Force a snapshot now (used for post-deactivate checkpoints and
  /// tests); also advances the periodic cursor.
  template <typename Engine>
  void take(const Engine& engine, std::int64_t position) {
    Writer state;
    engine.save_state(state);
    commit(state.data(), position);
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t checkpoints_written() const { return written_; }
  [[nodiscard]] std::int64_t last_position() const { return last_position_; }
  /// True if any snapshot failed to persist (disk full, bad dir, ...).
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  void commit(const std::string& engine_state, std::int64_t position);

  std::string path_;
  EngineKind kind_;
  std::int64_t every_;
  std::string scenario_;
  std::int64_t next_ = 0;  ///< next position at/after which to snapshot
  std::int64_t last_position_ = -1;
  std::size_t written_ = 0;
  bool failed_ = false;
};

// ---------------------------------------------------------------------------
// Bundle helpers.

/// mkdir -p: create `path` and any missing parents.  Returns false on
/// failure (and on a pre-existing non-directory).
bool ensure_dir(const std::string& path);

/// Write `body` to `path` (truncating).  Returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& body);

/// JSON string escaping for the manifest / monitor report writers.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Render a MonitorReport as a small JSON document (the bundle's
/// `monitor.json`): total/per-invariant counts plus each first violation.
[[nodiscard]] std::string monitor_report_json(const MonitorReport& report);

// ---------------------------------------------------------------------------
// Crash capture.

/// Arm a fatal-signal handler (SIGSEGV / SIGABRT / SIGBUS / SIGFPE /
/// SIGILL) that writes `<dir>/CRASH.txt` naming the signal, invokes the
/// registered flush hook (best effort — it may not be fully
/// async-signal-safe, but on a crash path a torn ring file still beats no
/// ring file), and re-raises with the default disposition so the exit
/// status is preserved.  The last armed directory wins; `disarm` restores
/// the default handlers.
void arm_crash_handler(const std::string& bundle_dir);
void disarm_crash_handler();

/// Register a flush hook run by the crash handler before re-raising
/// (typically the flight-recorder ring's flush).  Pass (nullptr, nullptr)
/// to clear.  One slot; the last registration wins.
void set_crash_flush(void (*fn)(void*), void* arg);

}  // namespace urn::obs::postmortem
