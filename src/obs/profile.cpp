#include "obs/profile.hpp"

namespace urn::obs {

CounterRegistry& CounterRegistry::global() {
  static CounterRegistry instance;
  return instance;
}

std::uint64_t& CounterRegistry::cell(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), 0).first->second;
}

std::uint64_t& CounterRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  // The map is node-based, so the reference stays valid across later
  // insertions; concurrent *use* of the reference is the caller's
  // single-threaded contract.
  return cell(name);
}

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  cell(name) += delta;
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterRegistry::add_duration(std::string_view name, std::uint64_t ns) {
  std::string key(name);
  std::lock_guard<std::mutex> lock(mu_);
  cell(key + ".ns") += ns;
  cell(key + ".calls") += 1;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

void CounterRegistry::report(std::FILE* out) const {
  for (const auto& [name, value] : snapshot()) {
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ns") == 0) {
      std::fprintf(out, "%-40s %12llu  (%.3f ms)\n", name.c_str(),
                   static_cast<unsigned long long>(value),
                   static_cast<double>(value) / 1e6);
    } else {
      std::fprintf(out, "%-40s %12llu\n", name.c_str(),
                   static_cast<unsigned long long>(value));
    }
  }
}

void CounterRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

bool CounterRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty();
}

}  // namespace urn::obs
