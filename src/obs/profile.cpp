#include "obs/profile.hpp"

namespace urn::obs {

CounterRegistry& CounterRegistry::global() {
  static CounterRegistry instance;
  return instance;
}

telemetry::Counter& CounterRegistry::cell(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  // The map is node-based, so the cell's address stays valid across
  // later insertions — the stability CounterCell handles rely on.
  return counters_.emplace(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple())
      .first->second;
}

CounterCell CounterRegistry::handle(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return CounterCell(&cell(name));
}

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  cell(name).add(delta);
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void CounterRegistry::add_duration(std::string_view name, std::uint64_t ns) {
  std::string key(name);
  std::lock_guard<std::mutex> lock(mu_);
  cell(key + ".ns").add(ns);
  cell(key + ".calls").add(1);
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    out.emplace_back(name, value.value());
  }
  return out;
}

void CounterRegistry::report(std::FILE* out) const {
  for (const auto& [name, value] : snapshot()) {
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ns") == 0) {
      std::fprintf(out, "%-40s %12llu  (%.3f ms)\n", name.c_str(),
                   static_cast<unsigned long long>(value),
                   static_cast<double>(value) / 1e6);
    } else {
      std::fprintf(out, "%-40s %12llu\n", name.c_str(),
                   static_cast<unsigned long long>(value));
    }
  }
}

void CounterRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

bool CounterRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty();
}

}  // namespace urn::obs
