/// \file profile.hpp
/// \brief Lightweight wall-clock profiling scopes and a named-counter
///        registry for the runner and the bench harness.
///
/// `ProfileScope` measures the wall-clock time of a block (RAII) and
/// accumulates it, by name, into a `CounterRegistry`: each scope `name`
/// maintains `<name>.ns` (total nanoseconds) and `<name>.calls`.
/// Free-form counters (`registry.add("engine.runs", 1)`) share the same
/// namespace, so one report covers both.
///
/// Thread-safety: counters are the per-thread-sharded
/// `telemetry::Counter` cells living in a node-based map, so every
/// operation is safe from concurrent trial workers (exec::TrialPool) on
/// the shared `global()` instance — including hammering one counter from
/// every worker at once, which lands on distinct cache-line-private
/// shards.  The registry distinguishes two cost tiers:
///
///  * `add` / `add_duration` / `value` lock the map mutex only to find
///    (or insert) the cell, then update it shard-locally.  Counter *sums*
///    commute, so count-type counters stay deterministic under parallel
///    execution (the `.ns` wall-clock totals never were, and are
///    excluded from the bench regression diff).
///  * `handle(name)` resolves the cell *once* and returns a
///    `CounterCell` whose `add()` is a single relaxed `fetch_add` into
///    the calling thread's shard — no lock, no string lookup.  This is
///    the form for hot paths (sinks, per-slot loops).  Handles stay
///    valid until `clear()`, which is documented to invalidate them.
///
/// (Historical note: the registry once exposed `counter()`, a raw
/// reference to a bare atomic "for single-threaded reporting only".
/// That footgun is gone — sharded cells have no single atomic to hand
/// out, and every remaining entry point is safe under concurrency.)

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"

namespace urn::obs {

/// A resolved counter cell: lock-free increments without re-hashing the
/// counter name.  Obtain via `CounterRegistry::handle`; valid until the
/// owning registry is cleared or destroyed.  Default-constructed cells
/// discard adds (safe placeholder before wiring).
class CounterCell {
 public:
  CounterCell() = default;
  explicit CounterCell(telemetry::Counter* cell) : cell_(cell) {}

  void add(std::uint64_t delta) {
    if (cell_ != nullptr) cell_->add(delta);
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_ != nullptr ? cell_->value() : 0;
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  telemetry::Counter* cell_ = nullptr;
};

/// Ordered name → value counter map (see file comment for the
/// thread-safety contract).
class CounterRegistry {
 public:
  /// The process-wide registry.
  static CounterRegistry& global();

  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Resolve `name` once and return a lock-free increment handle (the
  /// hot-path form; see file comment).  Invalidated by `clear()`.
  [[nodiscard]] CounterCell handle(std::string_view name);

  /// Add `delta` to `name` (thread-safe, shard-local).
  void add(std::string_view name, std::uint64_t delta);

  /// Read-only lookup; 0 if absent.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// Accumulate a duration under `<name>.ns` / `<name>.calls`
  /// (thread-safe).
  void add_duration(std::string_view name, std::uint64_t ns);

  /// Snapshot of all counters, name-sorted.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot()
      const;

  /// Print `name value` lines (durations rendered in ms alongside ns).
  void report(std::FILE* out) const;

  /// Drop every counter.  Invalidates all `CounterCell` handles handed
  /// out so far.
  void clear();
  [[nodiscard]] bool empty() const;

 private:
  /// Lookup-or-insert without locking; callers hold `mu_`.
  telemetry::Counter& cell(std::string_view name);

  mutable std::mutex mu_;
  /// Node-based map: cell addresses are stable across insertions, which
  /// is what makes `CounterCell` handles safe to cache.
  std::map<std::string, telemetry::Counter, std::less<>> counters_;
};

/// RAII wall-clock timer; records into the registry on destruction.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view name,
                        CounterRegistry* registry = &CounterRegistry::global())
      : name_(name),
        registry_(registry),
        start_(std::chrono::steady_clock::now()) {}

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() { registry_->add_duration(name_, elapsed_ns()); }

  /// Nanoseconds since construction (scope still open).
  [[nodiscard]] std::uint64_t elapsed_ns() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  }

 private:
  std::string name_;
  CounterRegistry* registry_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace urn::obs
