/// \file profile.hpp
/// \brief Lightweight wall-clock profiling scopes and a named-counter
///        registry for the runner and the bench harness.
///
/// `ProfileScope` measures the wall-clock time of a block (RAII) and
/// accumulates it, by name, into a `CounterRegistry`: each scope `name`
/// maintains `<name>.ns` (total nanoseconds) and `<name>.calls`.
/// Free-form counters (`registry.counter("engine.runs")++`) share the
/// same namespace, so one report covers both.
///
/// Thread-safety: `add`, `add_duration`, `value`, `snapshot`, `report`
/// and `clear` lock an internal mutex, so concurrent trial workers
/// (exec::TrialPool) may bump counters on the shared
/// `CounterRegistry::global()` instance — counter *sums* commute, so
/// count-type counters stay deterministic under parallel execution (the
/// `.ns` wall-clock totals never were, and are excluded from the bench
/// regression diff).  `counter()` hands out a raw reference and is for
/// single-threaded phases only.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace urn::obs {

/// Ordered name → value counter map (see file comment for the
/// thread-safety contract).
class CounterRegistry {
 public:
  /// The process-wide registry.
  static CounterRegistry& global();

  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Value cell for `name`, created at 0 on first use.  The returned
  /// reference is only safe to use while no other thread touches the
  /// registry — parallel code must use `add` instead.
  std::uint64_t& counter(std::string_view name);

  /// Atomically add `delta` to `name` (thread-safe).
  void add(std::string_view name, std::uint64_t delta);

  /// Read-only lookup; 0 if absent.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// Accumulate a duration under `<name>.ns` / `<name>.calls`
  /// (thread-safe).
  void add_duration(std::string_view name, std::uint64_t ns);

  /// Snapshot of all counters, name-sorted.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot()
      const;

  /// Print `name value` lines (durations rendered in ms alongside ns).
  void report(std::FILE* out) const;

  void clear();
  [[nodiscard]] bool empty() const;

 private:
  /// Lookup-or-insert without locking; callers hold `mu_`.
  std::uint64_t& cell(std::string_view name);

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// RAII wall-clock timer; records into the registry on destruction.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view name,
                        CounterRegistry* registry = &CounterRegistry::global())
      : name_(name),
        registry_(registry),
        start_(std::chrono::steady_clock::now()) {}

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  ~ProfileScope() { registry_->add_duration(name_, elapsed_ns()); }

  /// Nanoseconds since construction (scope still open).
  [[nodiscard]] std::uint64_t elapsed_ns() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  }

 private:
  std::string name_;
  CounterRegistry* registry_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace urn::obs
