#include "obs/regress.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace urn::obs {

const BenchEntry* BenchDoc::find(std::string_view key) const {
  for (const BenchEntry& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

namespace {

void skip_ws(std::string_view text, std::size_t& i) {
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t' ||
                             text[i] == '\n' || text[i] == '\r')) {
    ++i;
  }
}

/// Read a quoted string starting at text[i] == '"'; returns the content
/// with escapes resolved and leaves i one past the closing quote.
[[nodiscard]] bool read_quoted(std::string_view text, std::size_t& i,
                               std::string& out) {
  if (i >= text.size() || text[i] != '"') return false;
  ++i;
  out.clear();
  while (i < text.size() && text[i] != '"') {
    if (text[i] == '\\' && i + 1 < text.size()) ++i;
    out.push_back(text[i]);
    ++i;
  }
  if (i >= text.size()) return false;
  ++i;  // closing quote
  return true;
}

}  // namespace

BenchDoc parse_bench_json(std::string_view text) {
  BenchDoc doc;
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') return doc;
  ++i;
  while (true) {
    skip_ws(text, i);
    if (i >= text.size()) return doc;  // unterminated object
    if (text[i] == '}') break;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    BenchEntry entry;
    if (!read_quoted(text, i, entry.key)) return doc;
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') return doc;
    ++i;
    skip_ws(text, i);
    if (i < text.size() && text[i] == '"') {
      // String value: keep the quotes in `raw` so strings can never
      // compare equal to an identically spelled number.
      std::string content;
      if (!read_quoted(text, i, content)) return doc;
      entry.raw = "\"" + content + "\"";
    } else {
      const std::size_t start = i;
      while (i < text.size() && text[i] != ',' && text[i] != '}' &&
             text[i] != '\n') {
        ++i;
      }
      std::size_t end = i;
      while (end > start && (text[end - 1] == ' ' || text[end - 1] == '\r' ||
                             text[end - 1] == '\t')) {
        --end;
      }
      entry.raw = std::string(text.substr(start, end - start));
      if (entry.raw.empty()) return doc;
      char* parse_end = nullptr;
      const double v = std::strtod(entry.raw.c_str(), &parse_end);
      if (parse_end != nullptr && *parse_end == '\0' &&
          parse_end != entry.raw.c_str()) {
        entry.numeric = true;
        entry.value = v;
      }
    }
    doc.entries.push_back(std::move(entry));
  }
  doc.ok = true;
  return doc;
}

BenchDoc read_bench_json_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return parse_bench_json(text);
}

namespace {

[[nodiscard]] bool matches_any(const std::string& key,
                               const std::vector<std::string>& subs) {
  for (const std::string& sub : subs) {
    if (!sub.empty() && key.find(sub) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

DiffReport diff_bench(const BenchDoc& baseline, const BenchDoc& fresh,
                      const DiffOptions& options) {
  DiffReport report;
  for (const BenchEntry& base : baseline.entries) {
    if (matches_any(base.key, options.skip_substrings)) {
      ++report.skipped;
      continue;
    }
    ++report.compared;
    const BenchEntry* got = fresh.find(base.key);
    if (got == nullptr) {
      report.regressions.push_back(
          {base.key, "missing from the fresh run (baseline " + base.raw +
                         ")"});
      continue;
    }
    if (matches_any(base.key, options.rate_substrings)) {
      // Rate class: machine-dependent throughput.  Exact comparison is
      // meaningless; require a numeric value, and (optionally) no drop
      // beyond the one-sided tolerance.  Faster is never a regression.
      if (!got->numeric) {
        report.regressions.push_back(
            {base.key, "rate metric is not numeric: fresh " + got->raw});
      } else if (options.rate_rel_tol > 0.0 && base.numeric &&
                 got->value < base.value * (1.0 - options.rate_rel_tol)) {
        report.regressions.push_back(
            {base.key,
             "rate dropped: baseline " + base.raw + ", fresh " + got->raw +
                 " (allowed floor " +
                 std::to_string(base.value * (1.0 - options.rate_rel_tol)) +
                 ")"});
      }
      continue;
    }
    if (matches_any(base.key, options.explain_substrings)) {
      // Attribution class: explain.* totals and shares.  Two-sided
      // drift check under its own tolerance; tol 0 degrades to exact.
      if (base.numeric && got->numeric) {
        const double allowed =
            options.explain_tol +
            options.explain_tol * std::fabs(base.value);
        if (std::fabs(got->value - base.value) > allowed) {
          report.regressions.push_back(
              {base.key, "explain metric drifted: baseline " + base.raw +
                             ", fresh " + got->raw + " (allowed " +
                             std::to_string(allowed) + ")"});
        }
      } else if (options.explain_tol == 0.0 && base.raw != got->raw) {
        report.regressions.push_back(
            {base.key, "baseline " + base.raw + ", fresh " + got->raw});
      }
      continue;
    }
    if (base.numeric && got->numeric) {
      const double allowed =
          options.abs_tol + options.rel_tol * std::fabs(base.value);
      if (std::fabs(got->value - base.value) > allowed) {
        report.regressions.push_back(
            {base.key, "baseline " + base.raw + ", fresh " + got->raw +
                           " (allowed drift " + std::to_string(allowed) +
                           ")"});
      }
    } else if (base.raw != got->raw) {
      report.regressions.push_back(
          {base.key, "baseline " + base.raw + ", fresh " + got->raw});
    }
  }
  return report;
}

}  // namespace urn::obs
