/// \file regress.hpp
/// \brief Bench regression comparison: parse the flat `BENCH_<name>.json`
///        summaries the experiment binaries emit and diff a fresh run
///        against a committed baseline with per-metric tolerances.
///
/// The summaries are deliberately flat ({"dotted.key": scalar, ...}), so
/// no general JSON machinery is needed: keys map to either a number, a
/// bool, or a quoted string.  `diff_bench` walks the *baseline's* keys —
/// a key missing from the fresh run is a regression (a metric silently
/// disappeared), while extra fresh keys are fine (new metrics land
/// without invalidating old baselines).  Numeric values compare within
/// `abs_tol + rel_tol·|baseline|`; everything else must match exactly.
/// Keys containing any `skip_substrings` entry are excluded.  The default
/// covers ".ns" (wall-clock profile counters — nondeterministic even in a
/// fixed-seed run), "jobs" (the worker-thread count, an environment fact
/// that never affects the measured statistics), and "telemetry." (live
/// telemetry exports: a mix of deterministic counts, wall-clock totals
/// and scheduling-dependent pool utilization — reported for humans, never
/// gated on, so telemetry-enabled bench runs can't flake the gate).  Keys
/// containing a `rate_substrings` entry (default ".noderate.", the
/// whole-run throughput family) form a third class between "exact" and
/// "skipped": present-and-numeric is required, and an optional one-sided
/// `rate_rel_tol` flags throughput drops beyond the tolerance.
///
/// This is the library half of the `urn_bench_diff` CLI and the
/// `bench_regression` CTest gate.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace urn::obs {

/// One parsed key/value pair of a bench summary.
struct BenchEntry {
  std::string key;
  std::string raw;       ///< value text as written (strings keep quotes)
  bool numeric = false;  ///< raw parsed fully as a double
  double value = 0.0;    ///< numeric value (0 when !numeric)
};

/// A parsed `BENCH_<name>.json` document (flat object, ordered).
struct BenchDoc {
  std::vector<BenchEntry> entries;
  bool ok = false;  ///< false: unreadable / not a flat JSON object

  [[nodiscard]] const BenchEntry* find(std::string_view key) const;
};

/// Parse a flat JSON object as produced by `bench::BenchSummary`.
[[nodiscard]] BenchDoc parse_bench_json(std::string_view text);
/// Read and parse a file; `ok` is false when it cannot be opened.
[[nodiscard]] BenchDoc read_bench_json_file(const std::string& path);

/// Tolerances and exclusions for the comparison.
struct DiffOptions {
  double rel_tol = 0.0;  ///< allowed |fresh-base| relative to |base|
  double abs_tol = 0.0;  ///< allowed absolute drift
  /// Keys containing any of these substrings are not compared.
  std::vector<std::string> skip_substrings = {".ns", "jobs", "telemetry."};
  /// Keys containing any of these substrings are *rates* (throughput
  /// measurements such as node-slots/s): legitimately machine- and
  /// load-dependent, so exact comparison is meaningless, but silently
  /// losing one — or regressing it — is not.  A rate key must exist in
  /// the fresh run and be numeric; with `rate_rel_tol > 0` the fresh
  /// value must additionally not fall below `baseline·(1 − rate_rel_tol)`
  /// (one-sided: a faster run is never a regression).
  std::vector<std::string> rate_substrings = {".noderate."};
  double rate_rel_tol = 0.0;  ///< 0: presence + numeric check only
  /// Keys containing any of these substrings are *attribution* metrics
  /// (the `explain.*` family): slot totals and share-of-total ratios
  /// from the cause-attribution pass.  Shares are ratios in [0, 1] —
  /// not rates — so the class gets its own two-sided tolerance:
  /// numeric values compare within `explain_tol + explain_tol·|base|`
  /// (the absolute term keeps near-zero shares comparable).  With
  /// `explain_tol == 0` the class is exact — the committed gate stays
  /// bit-identical.  Non-numeric explain values (e.g. the top-cause
  /// name) must match exactly at tol 0 and need only be present
  /// otherwise.
  std::vector<std::string> explain_substrings = {"explain."};
  double explain_tol = 0.0;
};

/// One detected regression.
struct DiffFinding {
  std::string key;
  std::string what;  ///< human-readable: expected vs got
};

/// Outcome of comparing one fresh document against one baseline.
struct DiffReport {
  std::size_t compared = 0;  ///< keys actually checked
  std::size_t skipped = 0;   ///< keys excluded by skip_substrings
  std::vector<DiffFinding> regressions;

  [[nodiscard]] bool ok() const { return regressions.empty(); }
};

/// Compare `fresh` against `baseline` (see file comment for semantics).
[[nodiscard]] DiffReport diff_bench(const BenchDoc& baseline,
                                    const BenchDoc& fresh,
                                    const DiffOptions& options = {});

}  // namespace urn::obs
