#include "obs/sink.hpp"

namespace urn::obs {

JsonlSink::JsonlSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  buffer_.reserve(kFlushThreshold + 256);
}

JsonlSink::~JsonlSink() {
  flush();
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::record(const Event& e) {
  if (file_ == nullptr) return;
  append_jsonl(buffer_, e);
  ++written_;
  if (buffer_.size() >= kFlushThreshold) flush();
}

void JsonlSink::flush() {
  if (file_ == nullptr || buffer_.empty()) return;
  bytes_ += std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
}

}  // namespace urn::obs
