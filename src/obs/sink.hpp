/// \file sink.hpp
/// \brief Event sinks: where the engines send their trace events.
///
/// The radio engines are templates over a sink type so that the default,
/// `NullSink`, compiles to *nothing* — every emission site is guarded by
/// `if constexpr (S::kEnabled)`, so the hot loop of `Engine<P, NullSink>`
/// is bit- and instruction-identical to an engine with no tracing at all
/// (benchmarked in m1_micro).  Buffering sinks:
///
///  * `MemorySink`  — unbounded in-memory vector (tests, the analyzer);
///  * `RingSink`    — fixed-capacity ring keeping the *last* N events
///                    ("flight recorder" for post-mortem of long runs);
///  * `JsonlSink`   — buffered JSONL file writer (the interchange format
///                    `urn_trace` consumes);
///  * `TeeSink`     — fan-out to two optional sinks (e.g. metrics + file).

#pragma once

#include <concepts>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace urn::obs {

/// What the engines require of a sink.  `kEnabled` is the compile-time
/// switch: when false, emission sites are discarded entirely.
template <typename S>
concept EventSink = requires(S s, const Event& e) {
  { S::kEnabled } -> std::convertible_to<bool>;
  { s.record(e) };
  { s.flush() };
};

/// The zero-overhead default: nothing is recorded, nothing is compiled.
struct NullSink {
  static constexpr bool kEnabled = false;
  void record(const Event&) {}
  void flush() {}
};

/// Unbounded in-memory event buffer.
class MemorySink {
 public:
  static constexpr bool kEnabled = true;

  void record(const Event& e) { events_.push_back(e); }
  void flush() {}

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Fixed-capacity ring buffer retaining the most recent `capacity` events.
class RingSink {
 public:
  static constexpr bool kEnabled = true;

  explicit RingSink(std::size_t capacity) : capacity_(capacity) {
    ring_.reserve(capacity);
  }

  void record(const Event& e) {
    ++recorded_;
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
      return;
    }
    ring_[next_] = e;
    next_ = (next_ + 1) % capacity_;
  }
  void flush() {}

  /// Total events ever offered (≥ size()).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// The retained events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< overwrite cursor once full (oldest entry)
  std::uint64_t recorded_ = 0;
  std::vector<Event> ring_;
};

/// Buffered JSONL file writer.  Serialization happens at record time into
/// an in-memory buffer flushed in large chunks, so per-event cost stays
/// far from the syscall path.
class JsonlSink {
 public:
  static constexpr bool kEnabled = true;

  /// Opens `path` for writing (truncating).  `ok()` reports failure;
  /// records on a failed sink are silently discarded.
  explicit JsonlSink(const std::string& path);
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;
  ~JsonlSink();

  void record(const Event& e);
  void flush();

  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t written() const { return written_; }
  /// File bytes emitted so far (flushed serializations).
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static constexpr std::size_t kFlushThreshold = 1 << 16;

  std::string path_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  std::uint64_t written_ = 0;  ///< events serialized so far
  std::uint64_t bytes_ = 0;    ///< file bytes emitted so far
};

/// Fan-out to two sinks; either pointer may be null.  Useful to collect
/// per-slot metrics and a JSONL log from the same run.
template <EventSink A, EventSink B>
class TeeSink {
 public:
  static constexpr bool kEnabled = A::kEnabled || B::kEnabled;

  TeeSink(A* a, B* b) : a_(a), b_(b) {}

  void record(const Event& e) {
    if (a_ != nullptr) a_->record(e);
    if (b_ != nullptr) b_->record(e);
  }
  void flush() {
    if (a_ != nullptr) a_->flush();
    if (b_ != nullptr) b_->flush();
  }

 private:
  A* a_;
  B* b_;
};

static_assert(EventSink<NullSink>);
static_assert(EventSink<MemorySink>);
static_assert(EventSink<RingSink>);
static_assert(EventSink<JsonlSink>);
static_assert(EventSink<TeeSink<MemorySink, JsonlSink>>);

}  // namespace urn::obs
