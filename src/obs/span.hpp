/// \file span.hpp
/// \brief Wall-clock span timelines: who was doing what, when.
///
/// `CounterRegistry` (profile.hpp) answers "how much time in total"; a
/// `SpanSink` answers "when exactly, and on which track" — the data a
/// timeline viewer needs.  Two producers feed it:
///
///  * the radio engine's traced instantiations record one span per
///    runner phase per slot (wake-up processing, protocol step, medium
///    resolution) on the runner track;
///  * `exec::parallel_for_trials` records one span per claimed chunk on
///    its worker's track, so a parallel sweep renders as a per-worker
///    timeline (idle gaps = load imbalance, visible at a glance).
///
/// Spans carry `const char*` names and are appended under a mutex —
/// cheap enough for opt-in capture, and safe from concurrent workers.
/// Timestamps are nanoseconds since the sink's construction (one shared
/// epoch, so tracks align).  `obs::ChromeTraceWriter` (chrome.hpp)
/// exports the collected spans as Chrome trace-event JSON for
/// Perfetto / `chrome://tracing`.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace urn::obs {

/// One completed span on a track.  `name` must have static storage
/// duration (string literals at the instrumentation sites).
struct SpanRecord {
  const char* name = "";
  std::uint32_t track = 0;      ///< worker index / runner track
  std::uint64_t start_ns = 0;   ///< since the sink's epoch
  std::uint64_t dur_ns = 0;
  std::int64_t arg = -1;        ///< optional payload (slot, chunk, …)
};

/// Thread-safe collector of completed spans.
class SpanSink {
 public:
  SpanSink() : epoch_(std::chrono::steady_clock::now()) {}
  SpanSink(const SpanSink&) = delete;
  SpanSink& operator=(const SpanSink&) = delete;

  /// Nanoseconds since this sink's construction.
  [[nodiscard]] std::uint64_t now_ns() const {
    const auto d = std::chrono::steady_clock::now() - epoch_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  }

  void record(const char* name, std::uint32_t track, std::uint64_t start_ns,
              std::uint64_t dur_ns, std::int64_t arg = -1) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back({name, track, start_ns, dur_ns, arg});
  }

  /// Attach a display name to a track ("worker 3", "runner").
  void name_track(std::uint32_t track, std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    track_names_[track] = std::move(name);
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }
  [[nodiscard]] std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }
  [[nodiscard]] std::map<std::uint32_t, std::string> track_names() const {
    std::lock_guard<std::mutex> lock(mu_);
    return track_names_;
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::uint32_t, std::string> track_names_;
};

/// RAII span: records [construction, destruction) into the sink.  A
/// null sink makes it a no-op (instrumentation sites stay branch-cheap).
class ProfileSpan {
 public:
  ProfileSpan(SpanSink* sink, const char* name, std::uint32_t track,
              std::int64_t arg = -1)
      : sink_(sink), name_(name), track_(track), arg_(arg),
        start_ns_(sink != nullptr ? sink->now_ns() : 0) {}

  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

  ~ProfileSpan() {
    if (sink_ != nullptr) {
      sink_->record(name_, track_, start_ns_, sink_->now_ns() - start_ns_,
                    arg_);
    }
  }

 private:
  SpanSink* sink_;
  const char* name_;
  std::uint32_t track_;
  std::int64_t arg_;
  std::uint64_t start_ns_;
};

}  // namespace urn::obs
