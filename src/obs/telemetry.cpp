#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace urn::obs::telemetry {

namespace {

/// Binary search in a name-sorted pair vector.
template <typename V>
const V* find_in(const std::vector<std::pair<std::string, V>>& entries,
                 std::string_view name) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const std::pair<std::string, V>& e, std::string_view key) {
        return e.first < key;
      });
  if (it == entries.end() || it->first != name) return nullptr;
  return &it->second;
}

/// %.17g survives a double round trip; %.6g is what BenchSummary uses for
/// derived statistics — telemetry lines are monitoring data, so the
/// shorter form keeps the stream readable and is precise enough.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_json_key(std::string& out, std::string_view key) {
  out += '"';
  out += key;  // metric names are dotted identifiers; nothing to escape
  out += "\":";
}

}  // namespace

// ---------------------------------------------------------------------------
// HistogramSnapshot

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q == 1 picks the last sample.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      const double lo = static_cast<double>(bucket_lower(b));
      const double hi = static_cast<double>(bucket_upper(b));
      // Interpolate within the bucket by the rank's position in it.
      const double frac = buckets[b] == 1
                              ? 0.0
                              : static_cast<double>(rank - seen - 1) /
                                    static_cast<double>(buckets[b] - 1);
      return lo + (hi - lo) * frac;
    }
    seen += buckets[b];
  }
  return static_cast<double>(max_bound());
}

std::uint64_t HistogramSnapshot::min_bound() const {
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] != 0) return bucket_lower(b);
  }
  return 0;
}

std::uint64_t HistogramSnapshot::max_bound() const {
  for (std::size_t b = kHistogramBuckets; b-- > 0;) {
    if (buckets[b] != 0) return bucket_upper(b);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Snapshot

const std::uint64_t* Snapshot::find_counter(std::string_view name) const {
  return find_in(counters, name);
}

const std::int64_t* Snapshot::find_gauge(std::string_view name) const {
  return find_in(gauges, name);
}

const HistogramSnapshot* Snapshot::find_histogram(
    std::string_view name) const {
  return find_in(histograms, name);
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_
      .emplace(std::piecewise_construct,
               std::forward_as_tuple(std::string(name)),
               std::forward_as_tuple())
      .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_
      .emplace(std::piecewise_construct,
               std::forward_as_tuple(std::string(name)),
               std::forward_as_tuple())
      .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::piecewise_construct,
               std::forward_as_tuple(std::string(name)),
               std::forward_as_tuple())
      .first->second;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  const std::lock_guard<std::mutex> lock(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c.value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g.value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h.snapshot());
  }
  return out;
}

bool Registry::empty() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

// ---------------------------------------------------------------------------
// Prometheus export

std::string prom_name(std::string_view name, std::string_view suffix) {
  std::string out = "urn_";
  out.reserve(out.size() + name.size() + suffix.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  out += suffix;
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prom_name(name, "_total");
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    append_i64(out, value);
    out += '\n';
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative buckets; empty log buckets are elided (they add no
    // information — cumulative counts carry across gaps) but the +Inf
    // bucket is mandatory and always equals _count.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] == 0) continue;
      cumulative += hist.buckets[b];
      out += prom + "_bucket{le=\"";
      append_double(out, static_cast<double>(bucket_upper(b)));
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    append_u64(out, hist.count);
    out += '\n';
    out += prom + "_sum ";
    append_u64(out, hist.sum);
    out += '\n';
    out += prom + "_count ";
    append_u64(out, hist.count);
    out += '\n';
  }
  return out;
}

bool write_prometheus_file(const std::string& path, const Snapshot& snap) {
  const std::string body = to_prometheus(snap);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// JSONL export

std::string to_jsonl_line(const Snapshot& snap) {
  std::string out = "{";
  append_json_key(out, "telemetry.seq");
  append_u64(out, snap.seq);
  out += ',';
  append_json_key(out, "telemetry.wall_ms");
  append_u64(out, snap.wall_ms);
  out += ',';
  append_json_key(out, "telemetry.uptime_s");
  append_double(out, snap.uptime_s);
  for (const auto& [name, value] : snap.counters) {
    out += ',';
    append_json_key(out, name);
    append_u64(out, value);
  }
  for (const auto& [name, value] : snap.gauges) {
    out += ',';
    append_json_key(out, name);
    append_i64(out, value);
  }
  for (const auto& [name, hist] : snap.histograms) {
    out += ',';
    append_json_key(out, name + ".count");
    append_u64(out, hist.count);
    out += ',';
    append_json_key(out, name + ".sum");
    append_u64(out, hist.sum);
    out += ',';
    append_json_key(out, name + ".mean");
    append_double(out, hist.mean());
    out += ',';
    append_json_key(out, name + ".p50");
    append_double(out, hist.quantile(0.50));
    out += ',';
    append_json_key(out, name + ".p95");
    append_double(out, hist.quantile(0.95));
    out += ',';
    append_json_key(out, name + ".max");
    append_u64(out, hist.max_bound());
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] == 0) continue;
      out += ',';
      append_json_key(out, name + ".bucket" + std::to_string(b));
      append_u64(out, hist.buckets[b]);
    }
  }
  out += "}\n";
  return out;
}

bool append_jsonl_file(const std::string& path, const Snapshot& snap) {
  const std::string line = to_jsonl_line(snap);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(line.data(), 1, line.size(), f) == line.size();
  // One snapshot per second at most — flush per line so tailers (urn_top)
  // see complete lines promptly.
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  return wrote && flushed && closed;
}

// ---------------------------------------------------------------------------
// Snapshotter

Snapshotter::Snapshotter(Registry& registry, SnapshotterOptions options)
    : registry_(registry),
      options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {
  if (options_.interval_ms == 0) options_.interval_ms = 1;
  if (options_.truncate && !options_.jsonl_path.empty()) {
    if (std::FILE* f = std::fopen(options_.jsonl_path.c_str(), "wb")) {
      std::fclose(f);
    }
  }
  thread_ = std::thread([this] { loop(); });
}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  take();  // final snapshot: the stream's last line is the final state
}

void Snapshotter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    const bool woke = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this] { return stopping_; });
    if (woke) break;
    lock.unlock();
    take();
    lock.lock();
  }
}

void Snapshotter::take() {
  Snapshot snap = registry_.snapshot();
  snap.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.wall_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  snap.uptime_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  if (!options_.jsonl_path.empty()) {
    append_jsonl_file(options_.jsonl_path, snap);
  }
  if (!options_.prom_path.empty()) {
    write_prometheus_file(options_.prom_path, snap);
  }
  if (options_.on_snapshot) options_.on_snapshot(snap);
}

// ---------------------------------------------------------------------------
// PoolProbe

PoolProbe::PoolProbe(Registry& reg, std::size_t workers)
    : chunks_(&reg.counter("pool.chunks")),
      busy_ns_(&reg.counter("pool.busy.ns")),
      wait_ns_(&reg.counter("pool.wait.ns")),
      workers_(&reg.gauge("pool.workers")),
      wait_hist_(&reg.histogram("pool.chunk_wait.ns")) {
  workers_->set(static_cast<std::int64_t>(workers));
  per_worker_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::string prefix = "pool.worker" + std::to_string(w);
    per_worker_.push_back(PerWorker{&reg.counter(prefix + ".busy.ns"),
                                    &reg.counter(prefix + ".chunks")});
  }
}

void PoolProbe::worker_drained(std::size_t worker, std::uint64_t busy_ns,
                               std::uint64_t wait_ns, std::uint64_t chunks) {
  chunks_->add(chunks);
  busy_ns_->add(busy_ns);
  wait_ns_->add(wait_ns);
  wait_hist_->record(wait_ns);
  if (worker < per_worker_.size()) {
    per_worker_[worker].busy_ns->add(busy_ns);
    per_worker_[worker].chunks->add(chunks);
  }
}

}  // namespace urn::obs::telemetry
