/// \file telemetry.hpp
/// \brief Live telemetry: sharded counters, gauges, log-bucketed mergeable
///        histograms, periodic snapshots, and Prometheus / JSONL export.
///
/// The trace pipeline (sink.hpp / bintrace.hpp) answers "what happened,
/// event by event" after a run ends; this layer answers "what is happening
/// *right now*" while a multi-minute sweep or a long-lived service is
/// executing.  It is deliberately shaped like a production metrics stack:
///
///  * `Counter` — monotonic, **per-thread sharded**: `add()` is one relaxed
///    `fetch_add` on a cache-line-private shard, so trial-pool workers
///    never contend; `value()` sums the shards.  Counter sums commute, so
///    sharding is invisible to readers.
///  * `Gauge` — a settable signed level (live undecided population, worker
///    count); single atomic, updated at event granularity, not per node.
///  * `Histogram` — log₂-bucketed value distribution (decision latencies,
///    wait times), sharded like counters.  Snapshots of disjoint recording
///    shards **merge by bucket-wise addition**: merging any partition of a
///    sample stream, in any order, is bit-identical to recording the whole
///    stream into one histogram — the same partition-invariant algebra the
///    trial executor relies on for `Samples`/`RunLedger` (test-pinned).
///  * `Registry` — the named-metric namespace.  Metric objects have stable
///    addresses for the process lifetime of the registry, so probes
///    resolve names once and keep raw pointers (the `CounterCell` idiom).
///  * `Snapshot` — a point-in-time reading of every metric, and the unit
///    of export: Prometheus text exposition (`write_prometheus_file`) and
///    an append-only flat-JSON line (`append_jsonl_file`, the stream
///    `tools/urn_top` tails).
///  * `Snapshotter` — a background thread sampling a registry every
///    `interval_ms` and exporting each snapshot; `stop()` (or the
///    destructor) emits one final snapshot, so the last JSONL line of a
///    completed run is the run's final state.
///
/// ## Zero overhead when disabled
///
/// Hot layers are instrumented through probe types templated into the
/// engines exactly like `obs::NullSink`: the default `NullEngineProbe` has
/// `kEnabled == false` and every instrumentation site sits behind
/// `if constexpr`, so the untraced hot loop is byte-for-byte the
/// uninstrumented loop (`BM_Telemetry*` in m1_micro pins this).  Enabled
/// probes aggregate **per slot**, not per node: one `on_slot` call issues
/// a handful of relaxed sharded adds, keeping the enabled path in the
/// low-nanoseconds-per-increment range.
///
/// Metric naming: dotted lowercase paths (`engine.slots`,
/// `run.decision_latency`), wall-clock totals suffixed `.ns`.  Exported
/// Prometheus names are `urn_` + the path with non-alphanumerics mapped to
/// `_` (counters additionally get `_total`), e.g. `engine.slots` →
/// `urn_engine_slots_total`.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <condition_variable>

namespace urn::obs::telemetry {

/// Shard fan-out for counters and histograms (power of two).  Threads are
/// assigned shards round-robin on first use; with the trial pool's worker
/// counts this keeps every worker on its own cache line.
constexpr std::size_t kShards = 16;

/// The calling thread's shard index (stable for the thread's lifetime).
[[nodiscard]] inline std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

/// Monotonic sharded counter; see the file comment.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Lock-free: one relaxed fetch_add on the calling thread's shard.
  void add(std::uint64_t delta) {
    shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Explicit-shard add (partition tests; never needed by instrumentation).
  void add_to_shard(std::size_t shard, std::uint64_t delta) {
    shards_[shard & (kShards - 1)].v.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  /// Sum over all shards (sums commute, so this is exact at quiescence
  /// and a consistent-enough sample while writers run).
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Signed level metric (single atomic; updated at event granularity).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Number of log₂ buckets: bucket `b` holds values whose bit width is `b`,
/// i.e. bucket 0 = {0} and bucket b = [2^(b−1), 2^b − 1] for b ≥ 1; the
/// top bucket (b = 64) absorbs everything from 2^63 up — the overflow
/// bucket, which can never be exceeded by a uint64 value.
constexpr std::size_t kHistogramBuckets = 65;

/// Lower edge of bucket `b` (inclusive).
[[nodiscard]] constexpr std::uint64_t bucket_lower(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}
/// Upper edge of bucket `b` (inclusive).
[[nodiscard]] constexpr std::uint64_t bucket_upper(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}
/// Bucket index of a value (its bit width).
[[nodiscard]] constexpr std::size_t bucket_of(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

/// A point-in-time reading of one histogram.  This is the *mergeable*
/// form: every field is a sum, so `merge` over any partition of the
/// recorded values, in any order, reproduces the whole-stream snapshot
/// exactly (bucket counts, count and sum are integers — no rounding).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Bucket-wise addition — the partition-invariant merge.
  void merge(const HistogramSnapshot& other) {
    count += other.count;
    sum += other.sum;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      buckets[b] += other.buckets[b];
    }
  }

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Quantile estimate (q in [0, 1]): linear interpolation inside the
  /// bucket containing the q-th recorded value; exact for bucket edges.
  [[nodiscard]] double quantile(double q) const;
  /// Lower edge of the lowest non-empty bucket (0 when empty).
  [[nodiscard]] std::uint64_t min_bound() const;
  /// Upper edge of the highest non-empty bucket (0 when empty).
  [[nodiscard]] std::uint64_t max_bound() const;
};

/// Sharded log-bucketed histogram; see the file comment.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Lock-free: three relaxed fetch_adds on the calling thread's shard.
  void record(std::uint64_t value) {
    Shard& s = shards_[shard_index()];
    s.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    for (const Shard& s : shards_) {
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_;
};

/// A point-in-time reading of a whole registry (name-sorted vectors).
struct Snapshot {
  std::uint64_t seq = 0;       ///< snapshot sequence number (1-based)
  std::uint64_t wall_ms = 0;   ///< system clock, ms since the Unix epoch
  double uptime_s = 0.0;       ///< seconds since the snapshotter started
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  [[nodiscard]] const std::uint64_t* find_counter(std::string_view name) const;
  [[nodiscard]] const std::int64_t* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name) const;
};

/// Named-metric registry.  Lookup-or-create takes the map mutex once;
/// returned references stay valid until `clear()` (node-based maps), so
/// probes resolve once and update lock-free afterwards.
class Registry {
 public:
  /// The process-wide registry (what `--telemetry-*` flags export).
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Point-in-time reading of every metric (seq/wall_ms/uptime left 0 —
  /// the snapshotter stamps those).
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] bool empty() const;
  /// Drop every metric.  Invalidates references handed out so far.
  void clear();

 private:
  mutable std::mutex mu_;
  // Node-based maps: metric addresses are stable across insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// ---------------------------------------------------------------------------
// Export

/// `urn_` + name with every non-[a-zA-Z0-9_] mapped to '_', plus `suffix`.
[[nodiscard]] std::string prom_name(std::string_view name,
                                    std::string_view suffix = "");

/// Prometheus text exposition format, v0.0.4: counters as `_total`,
/// gauges verbatim, histograms as cumulative `_bucket{le="..."}` series
/// with `_sum` and `_count`.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);
/// Write the exposition atomically (tmp file + rename), so a concurrent
/// scrape never sees a torn file.  Returns false on I/O failure.
bool write_prometheus_file(const std::string& path, const Snapshot& snap);

/// One snapshot as a single flat JSON object line (the format
/// `obs::parse_bench_json` reads, which is how `urn_top` parses the
/// stream): `telemetry.seq` / `telemetry.wall_ms` / `telemetry.uptime_s`,
/// every counter and gauge under its registry name, and per histogram
/// `<name>.count/.sum/.mean/.p50/.p95/.max` plus `<name>.bucket<b>` for
/// each non-empty bucket (so downstream consumers can re-merge).
[[nodiscard]] std::string to_jsonl_line(const Snapshot& snap);
/// Append one line to the stream.  Returns false on I/O failure.
bool append_jsonl_file(const std::string& path, const Snapshot& snap);

// ---------------------------------------------------------------------------
// Snapshotter

struct SnapshotterOptions {
  /// Append-only flat-JSON time series (`urn_top` tails this).  Empty =
  /// no JSONL export.
  std::string jsonl_path;
  /// Prometheus text exposition, atomically rewritten per snapshot (point
  /// a file-based scrape or node_exporter textfile collector at it).
  std::string prom_path;
  /// Sampling period.
  std::uint64_t interval_ms = 1000;
  /// Truncate an existing JSONL file instead of appending (default on:
  /// one run = one stream).
  bool truncate = true;
  /// Optional in-process observer, called on the snapshotter thread after
  /// each export (progress meters; keep it cheap).
  std::function<void(const Snapshot&)> on_snapshot;
};

/// Background sampling thread; see the file comment.
class Snapshotter {
 public:
  Snapshotter(Registry& registry, SnapshotterOptions options);
  ~Snapshotter();  ///< calls stop()

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Stop sampling and emit one final snapshot (idempotent).  After
  /// stop() returns the JSONL stream's last line is the final state.
  void stop();

  /// Snapshots exported so far.
  [[nodiscard]] std::uint64_t snapshots_taken() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void take();

  Registry& registry_;
  SnapshotterOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> seq_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Probes — the compile-time instrumentation seams

/// Disabled engine probe: `if constexpr (T::kEnabled)` compiles every
/// instrumentation site away, exactly like `obs::NullSink` does for
/// event emission.
struct NullEngineProbe {
  static constexpr bool kEnabled = false;
};

/// Per-slot aggregate sample (all fields are this-slot deltas except
/// `undecided`, the current live awake-but-undecided population).
struct SlotSample {
  std::uint64_t slots = 0;
  std::uint64_t active = 0;  ///< protocol callbacks run (node-slots)
  std::uint64_t wakes = 0;
  std::uint64_t decisions = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t drops = 0;
  std::uint64_t undecided = 0;  ///< current population (not a delta)
};

/// Enabled engine instrumentation: resolves its metrics once at
/// construction (one per run — construction cost is a few map lookups),
/// then every `on_slot` is a handful of relaxed sharded adds.
///
/// Registry metric map:
///   counters `engine.slots`, `engine.node_slots`, `engine.wakes`,
///            `engine.decisions`, `engine.transmissions`,
///            `engine.deliveries`, `engine.collisions`, `engine.drops`,
///            `engine.runs`, `engine.runs_completed`
///   gauge    `engine.undecided` (live across all concurrently running
///            engines; returns to 0 when runs drain)
///   histogram `run.decision_latency` (slots from wake to decision)
class EngineProbe {
 public:
  static constexpr bool kEnabled = true;

  explicit EngineProbe(Registry& reg)
      : slots_(&reg.counter("engine.slots")),
        node_slots_(&reg.counter("engine.node_slots")),
        wakes_(&reg.counter("engine.wakes")),
        decisions_(&reg.counter("engine.decisions")),
        tx_(&reg.counter("engine.transmissions")),
        deliveries_(&reg.counter("engine.deliveries")),
        collisions_(&reg.counter("engine.collisions")),
        drops_(&reg.counter("engine.drops")),
        runs_(&reg.counter("engine.runs")),
        runs_completed_(&reg.counter("engine.runs_completed")),
        undecided_(&reg.gauge("engine.undecided")),
        latency_(&reg.histogram("run.decision_latency")) {}

  ~EngineProbe() { end_run(); }

  void begin_run() { runs_->add(1); }

  void on_slot(const SlotSample& s) {
    slots_->add(s.slots);
    if (s.active != 0) node_slots_->add(s.active);
    if (s.wakes != 0) wakes_->add(s.wakes);
    if (s.decisions != 0) decisions_->add(s.decisions);
    if (s.transmissions != 0) tx_->add(s.transmissions);
    if (s.deliveries != 0) deliveries_->add(s.deliveries);
    if (s.collisions != 0) collisions_->add(s.collisions);
    if (s.drops != 0) drops_->add(s.drops);
    if (s.undecided != last_undecided_) {
      undecided_->add(static_cast<std::int64_t>(s.undecided) -
                      static_cast<std::int64_t>(last_undecided_));
      last_undecided_ = s.undecided;
    }
  }

  void record_decision_latency(std::uint64_t slots) { latency_->record(slots); }

  /// Retire this run's contribution to the live gauge and count the run
  /// as finished.  Idempotent; also invoked by the destructor so a probe
  /// abandoned mid-run (exception paths) never leaks gauge residue.
  void end_run() {
    if (last_undecided_ != 0) {
      undecided_->add(-static_cast<std::int64_t>(last_undecided_));
      last_undecided_ = 0;
    }
    if (!run_counted_done_) {
      runs_completed_->add(1);
      run_counted_done_ = true;
    }
  }

 private:
  Counter* slots_;
  Counter* node_slots_;
  Counter* wakes_;
  Counter* decisions_;
  Counter* tx_;
  Counter* deliveries_;
  Counter* collisions_;
  Counter* drops_;
  Counter* runs_;
  Counter* runs_completed_;
  Gauge* undecided_;
  Histogram* latency_;
  std::uint64_t last_undecided_ = 0;
  bool run_counted_done_ = false;
};

/// Trial-pool instrumentation: one `worker_drained` call per worker per
/// `TrialPool::run` (never per chunk, never per slot), so enabling it is
/// invisible at chunk granularity.
///
/// Registry metric map:
///   counters `pool.chunks`, `pool.busy.ns`, `pool.wait.ns`,
///            `pool.worker<w>.chunks`, `pool.worker<w>.busy.ns`
///   gauge    `pool.workers`
///   histogram `pool.chunk_wait.ns` (per-worker claim-path wait)
class PoolProbe {
 public:
  PoolProbe(Registry& reg, std::size_t workers);

  /// Called once per worker when it exhausts the chunk queue.
  void worker_drained(std::size_t worker, std::uint64_t busy_ns,
                      std::uint64_t wait_ns, std::uint64_t chunks);

 private:
  struct PerWorker {
    Counter* busy_ns;
    Counter* chunks;
  };
  Counter* chunks_;
  Counter* busy_ns_;
  Counter* wait_ns_;
  Gauge* workers_;
  Histogram* wait_hist_;
  std::vector<PerWorker> per_worker_;
};

}  // namespace urn::obs::telemetry
