#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>

#include "obs/fig2.hpp"

namespace urn::obs {

ParsedLog read_jsonl(std::istream& is) {
  ParsedLog out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++out.lines;
    Event e;
    if (parse_jsonl_line(line, e)) {
      out.events.push_back(e);
    } else {
      if (out.lines == 1) out.first_line_bad = true;
      ++out.bad_lines;
    }
  }
  return out;
}

ParsedLogFile read_jsonl_file(const std::string& path) {
  ParsedLogFile out;
  std::ifstream is(path);
  if (!is) return out;
  static_cast<ParsedLog&>(out) = read_jsonl(is);
  out.ok = true;
  return out;
}

std::vector<NodeTimeline> build_timelines(const std::vector<Event>& events) {
  std::map<NodeId, NodeTimeline> by_node;
  auto timeline = [&by_node](NodeId v) -> NodeTimeline& {
    NodeTimeline& t = by_node[v];
    t.node = v;
    return t;
  };
  for (const Event& e : events) {
    NodeTimeline& t = timeline(e.node);
    switch (e.kind) {
      case EventKind::kWake:
        if (t.wake_slot < 0) t.wake_slot = e.slot;
        break;
      case EventKind::kTransmit:
        ++t.transmissions;
        break;
      case EventKind::kDelivery:
        ++t.deliveries;
        break;
      case EventKind::kCollision:
        ++t.collisions;
        break;
      case EventKind::kDrop:
        break;  // counted at neither endpoint: a drop is a non-event to v
      case EventKind::kPhase:
        t.phases.push_back(e);
        if (e.phase == static_cast<std::uint8_t>(PhaseCode::kDecided)) {
          if (t.decision_slot < 0) t.decision_slot = e.slot;
          t.final_color = e.color;
        }
        break;
      case EventKind::kReset:
        ++t.resets;
        break;
      case EventKind::kDecision:
        if (t.decision_slot < 0) t.decision_slot = e.slot;
        if (e.color >= 0) t.final_color = e.color;
        break;
      case EventKind::kServe:
        break;
    }
  }
  std::vector<NodeTimeline> out;
  out.reserve(by_node.size());
  for (auto& [v, t] : by_node) out.push_back(std::move(t));
  return out;
}

Fig2Report validate_fig2(const std::vector<Event>& events,
                         std::uint32_t kappa2) {
  Fig2Report report;
  const std::vector<NodeTimeline> timelines = build_timelines(events);
  report.nodes_checked = timelines.size();

  // The transition table itself lives in Fig2Walker (shared with the
  // online InvariantMonitorSink); this replay only adds the two checks
  // that need the whole stream: "woke but never entered A0" and the
  // decision-event/final-transition agreement.
  for (const NodeTimeline& t : timelines) {
    auto violate = [&report, &t](Slot slot, std::string what) {
      report.violations.push_back({t.node, slot, std::move(what)});
    };

    if (t.phases.empty()) {
      if (t.wake_slot >= 0) {
        violate(t.wake_slot, "woke but recorded no A0 entry");
      }
      continue;
    }

    Fig2Walker walker(kappa2);
    if (t.wake_slot >= 0) walker.wake(t.wake_slot);
    for (const Event& p : t.phases) {
      for (std::string& err : walker.advance(p)) {
        violate(p.slot, std::move(err));
      }
    }
    report.transitions_checked += walker.transitions_checked();

    // A recorded decision event must agree with the final C_i entry.
    if (t.decision_slot >= 0 && walker.decided() &&
        t.final_color != walker.decided_color()) {
      violate(t.decision_slot, "decision event color disagrees with the "
                               "final decided transition");
    }
  }
  return report;
}

}  // namespace urn::obs
