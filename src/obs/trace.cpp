#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>

namespace urn::obs {

ParsedLog read_jsonl(std::istream& is) {
  ParsedLog out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++out.lines;
    Event e;
    if (parse_jsonl_line(line, e)) {
      out.events.push_back(e);
    } else {
      ++out.bad_lines;
    }
  }
  return out;
}

ParsedLogFile read_jsonl_file(const std::string& path) {
  ParsedLogFile out;
  std::ifstream is(path);
  if (!is) return out;
  static_cast<ParsedLog&>(out) = read_jsonl(is);
  out.ok = true;
  return out;
}

std::vector<NodeTimeline> build_timelines(const std::vector<Event>& events) {
  std::map<NodeId, NodeTimeline> by_node;
  auto timeline = [&by_node](NodeId v) -> NodeTimeline& {
    NodeTimeline& t = by_node[v];
    t.node = v;
    return t;
  };
  for (const Event& e : events) {
    NodeTimeline& t = timeline(e.node);
    switch (e.kind) {
      case EventKind::kWake:
        if (t.wake_slot < 0) t.wake_slot = e.slot;
        break;
      case EventKind::kTransmit:
        ++t.transmissions;
        break;
      case EventKind::kDelivery:
        ++t.deliveries;
        break;
      case EventKind::kCollision:
        ++t.collisions;
        break;
      case EventKind::kDrop:
        break;  // counted at neither endpoint: a drop is a non-event to v
      case EventKind::kPhase:
        t.phases.push_back(e);
        if (e.phase == static_cast<std::uint8_t>(PhaseCode::kDecided)) {
          if (t.decision_slot < 0) t.decision_slot = e.slot;
          t.final_color = e.color;
        }
        break;
      case EventKind::kReset:
        ++t.resets;
        break;
      case EventKind::kDecision:
        if (t.decision_slot < 0) t.decision_slot = e.slot;
        if (e.color >= 0) t.final_color = e.color;
        break;
      case EventKind::kServe:
        break;
    }
  }
  std::vector<NodeTimeline> out;
  out.reserve(by_node.size());
  for (auto& [v, t] : by_node) out.push_back(std::move(t));
  return out;
}

namespace {

[[nodiscard]] bool is_verify(const Event& e) {
  return e.phase == static_cast<std::uint8_t>(PhaseCode::kVerify);
}
[[nodiscard]] bool is_request(const Event& e) {
  return e.phase == static_cast<std::uint8_t>(PhaseCode::kRequest);
}
[[nodiscard]] bool is_decided(const Event& e) {
  return e.phase == static_cast<std::uint8_t>(PhaseCode::kDecided);
}

[[nodiscard]] std::string describe(const Event& e) {
  std::ostringstream os;
  os << phase_name(e.phase);
  if (!is_request(e)) os << "(" << e.color << ")";
  return std::move(os).str();
}

}  // namespace

Fig2Report validate_fig2(const std::vector<Event>& events,
                         std::uint32_t kappa2) {
  Fig2Report report;
  const std::vector<NodeTimeline> timelines = build_timelines(events);
  report.nodes_checked = timelines.size();

  for (const NodeTimeline& t : timelines) {
    auto violate = [&report, &t](Slot slot, std::string what) {
      report.violations.push_back({t.node, slot, std::move(what)});
    };

    if (t.phases.empty()) {
      if (t.wake_slot >= 0) {
        violate(t.wake_slot, "woke but recorded no A0 entry");
      }
      continue;
    }

    const Event& first = t.phases.front();
    if (!is_verify(first) || first.color != 0) {
      violate(first.slot, "first transition is " + describe(first) +
                              ", expected verify(0) [Z -> A0]");
    }
    if (t.wake_slot >= 0 && first.slot < t.wake_slot) {
      violate(first.slot, "entered A0 before the wake event");
    }

    for (std::size_t i = 0; i + 1 < t.phases.size(); ++i) {
      const Event& a = t.phases[i];
      const Event& b = t.phases[i + 1];
      ++report.transitions_checked;
      if (b.slot < a.slot) {
        violate(b.slot, "transition slots go backwards");
      }
      if (is_decided(a)) {
        violate(b.slot, "left terminal state " + describe(a) + " for " +
                            describe(b));
        continue;
      }
      if (is_verify(a) && a.color == 0) {
        // A0 -> C0 | R.
        const bool to_leader = is_decided(b) && b.color == 0;
        if (!to_leader && !is_request(b)) {
          violate(b.slot, "illegal A0 exit to " + describe(b) +
                              " (want decided(0) or request)");
        }
      } else if (is_request(a)) {
        // R -> A_{tc(k2+1)}, tc >= 1.
        if (!is_verify(b) || b.color <= 0) {
          violate(b.slot, "illegal R exit to " + describe(b) +
                              " (want verify(i), i > 0)");
        } else if (kappa2 > 0 &&
                   b.color % (static_cast<std::int32_t>(kappa2) + 1) != 0) {
          violate(b.slot, "R exit color " + std::to_string(b.color) +
                              " not a multiple of kappa2+1");
        }
      } else {
        // A_i (i > 0) -> C_i | A_{i+1}.
        if (is_decided(b)) {
          if (b.color != a.color) {
            violate(b.slot, "decided color " + std::to_string(b.color) +
                                " from verify(" + std::to_string(a.color) +
                                ")");
          }
        } else if (!is_verify(b) || b.color != a.color + 1) {
          violate(b.slot, "illegal A_i exit to " + describe(b) +
                              " from " + describe(a));
        }
      }
    }

    // A recorded decision event must agree with the final C_i entry.
    const Event& last = t.phases.back();
    if (t.decision_slot >= 0 && is_decided(last) &&
        t.final_color != last.color) {
      violate(t.decision_slot, "decision event color disagrees with the "
                               "final decided transition");
    }
  }
  return report;
}

}  // namespace urn::obs
