/// \file trace.hpp
/// \brief Trace analyzer: replay a recorded event log, reconstruct
///        per-node timelines, and validate Fig. 2 transition legality.
///
/// The paper's protocol guarantees are statements about each node's
/// *trajectory* through the state diagram (Fig. 2):
///
///     Z → A₀;   A₀ → C₀ | R;   R → A_{tc(κ₂+1)};
///     A_i → C_i | A_{i+1}  (i > 0);   C_i terminal.
///
/// `validate_fig2` checks exactly that walk on every node of a recorded
/// event stream, plus monotone slots and wake-before-anything ordering;
/// `build_timelines` condenses the stream into one record per node.
/// Both operate on `std::vector<Event>` — in-memory (MemorySink) or
/// parsed back from a JSONL file (`read_jsonl_file`), which is what the
/// `urn_trace` CLI drives.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace urn::obs {

/// Result of parsing a JSONL stream (tolerant: bad lines are counted,
/// not fatal).
struct ParsedLog {
  std::vector<Event> events;
  std::size_t lines = 0;
  std::size_t bad_lines = 0;
  /// The first non-empty line failed to parse — the hallmark of a file
  /// that is not a trace log at all (binary garbage, wrong file).
  /// Consumers that want fail-fast semantics (urn_trace) treat this as
  /// fatal; a bad line later in an otherwise-good log stays tolerant.
  bool first_line_bad = false;
};

/// Parse every line of `is` with `parse_jsonl_line`.
[[nodiscard]] ParsedLog read_jsonl(std::istream& is);

/// Parse a JSONL file.  `ok` is false if the file could not be opened.
struct ParsedLogFile : ParsedLog {
  bool ok = false;
};
[[nodiscard]] ParsedLogFile read_jsonl_file(const std::string& path);

/// One node's condensed history.
struct NodeTimeline {
  NodeId node = kNoNode;
  Slot wake_slot = -1;      ///< −1 if no wake event was recorded
  Slot decision_slot = -1;  ///< −1 if the node never decided
  std::int32_t final_color = -1;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;   ///< receptions at this node
  std::uint64_t collisions = 0;   ///< collision slots at this node
  std::uint64_t resets = 0;
  /// Fig. 2 transitions in order (phase events only).
  std::vector<Event> phases;

  [[nodiscard]] bool decided() const { return decision_slot >= 0; }
  /// T_v = decision − wake (−1 if either endpoint is missing).
  [[nodiscard]] Slot latency() const {
    return (wake_slot >= 0 && decision_slot >= 0)
               ? decision_slot - wake_slot
               : -1;
  }
};

/// One timeline per node id appearing in the log, sorted by node id.
[[nodiscard]] std::vector<NodeTimeline> build_timelines(
    const std::vector<Event>& events);

/// One detected illegality.
struct Fig2Violation {
  NodeId node = kNoNode;
  Slot slot = 0;
  std::string what;
};

/// Outcome of the Fig. 2 legality check.
struct Fig2Report {
  std::size_t nodes_checked = 0;
  std::size_t transitions_checked = 0;
  std::vector<Fig2Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Validate every node's phase-event walk against Fig. 2.
///
/// Checks, per node: the first transition is into A₀; slots are
/// nondecreasing and never precede the wake event; A₀ exits only to C₀
/// or R; R exits only to A_j with j > 0 (and j ≡ 0 (mod κ₂+1) when
/// `kappa2` > 0 — pass 0 if the run's κ₂ is unknown); A_i (i > 0) exits
/// only to C_i or A_{i+1}; no transition leaves any C_i; and a recorded
/// decision event agrees with the final C_i transition.
[[nodiscard]] Fig2Report validate_fig2(const std::vector<Event>& events,
                                       std::uint32_t kappa2 = 0);

}  // namespace urn::obs
