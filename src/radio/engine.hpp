/// \file engine.hpp
/// \brief The slotted radio-medium simulator (the unstructured radio
///        network model of Sect. 2).
///
/// Collision semantics, implemented exactly as specified:
///  * time is divided into discrete synchronized slots;
///  * in each slot a node either transmits or listens, never both;
///  * a node receives a message iff **exactly one** of its (open-)
///    neighborhood members transmits in that slot and the node itself is
///    listening — two or more transmitting neighbors collide silently,
///    and **no collision detection** exists: the receiver cannot tell a
///    collision from silence, and the sender learns nothing;
///  * sleeping nodes (before their wake slot) neither send nor receive.
///
/// The engine is a class template over the node-protocol type so that the
/// per-slot loop is fully inlined (the simulator sustains tens of millions
/// of node-slots per second on one core).  Protocols implement:
///
///     void on_wake(SlotContext&);
///     std::optional<Message> on_slot(SlotContext&);   // state step + tx decision
///     void on_receive(SlotContext&, const Message&);  // end-of-slot delivery
///     bool decided() const;                           // irrevocable color fixed
///
/// Within a slot the engine (1) wakes due nodes, (2) calls `on_slot` on all
/// awake nodes collecting transmissions, (3) resolves the medium, and
/// (4) delivers at most one message per listening node via `on_receive`.
/// State changes made in `on_receive` therefore take effect in the next
/// slot, matching the paper's slot granularity.
///
/// **Observability.**  The engine takes a second template parameter, an
/// `obs::EventSink`, defaulting to `obs::NullSink`.  With the default every
/// emission site is discarded at compile time (`if constexpr`), so the hot
/// loop is exactly the pre-tracing loop — m1_micro pins this.  With a real
/// sink the engine emits wake / transmit / delivery / collision / drop /
/// decision events, and hands protocols a hook in `SlotContext` through
/// which they emit their own (phase transitions, counter resets, serves).

#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "radio/message.hpp"
#include "radio/wakeup.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace urn::radio {

// The obs layer mirrors MsgType as small integer codes; keep them in sync.
static_assert(static_cast<std::uint8_t>(MsgType::kCompete) ==
              static_cast<std::uint8_t>(obs::MsgCode::kCompete));
static_assert(static_cast<std::uint8_t>(MsgType::kDecided) ==
              static_cast<std::uint8_t>(obs::MsgCode::kDecided));
static_assert(static_cast<std::uint8_t>(MsgType::kAssign) ==
              static_cast<std::uint8_t>(obs::MsgCode::kAssign));
static_assert(static_cast<std::uint8_t>(MsgType::kRequest) ==
              static_cast<std::uint8_t>(obs::MsgCode::kRequest));

/// Per-node, per-slot view handed to protocol callbacks.
struct SlotContext {
  NodeId id = graph::kInvalidNode;
  Slot now = 0;        ///< global slot index
  Slot awake_for = 0;  ///< slots since this node's wake-up (0 in the wake slot)
  Rng* rng = nullptr;  ///< per-node deterministic stream

  /// Optional event hook (set by a tracing engine; null when tracing is
  /// off).  Protocols emit their protocol-level events through this.
  void* events_sink = nullptr;
  void (*events_fn)(void*, const obs::Event&) = nullptr;

  [[nodiscard]] Rng& random() const { return *rng; }

  /// True when a sink is attached (protocols may skip event construction).
  [[nodiscard]] bool tracing() const { return events_fn != nullptr; }
  void emit(const obs::Event& e) const {
    if (events_fn != nullptr) events_fn(events_sink, e);
  }
};

/// Node-protocol concept; see file comment for callback semantics.
template <typename P>
concept NodeProtocol = requires(P p, const P cp, SlotContext& ctx,
                                const Message& msg) {
  { p.on_wake(ctx) };
  { p.on_slot(ctx) } -> std::same_as<std::optional<Message>>;
  { p.on_receive(ctx, msg) };
  { cp.decided() } -> std::convertible_to<bool>;
};

/// Aggregate medium statistics for one run.
struct RunStats {
  Slot slots_run = 0;
  std::uint64_t transmissions = 0;
  /// Listening-node slot pairs where exactly one neighbor transmitted.
  std::uint64_t deliveries = 0;
  /// Listening-node slot pairs where two or more neighbors transmitted.
  std::uint64_t collisions = 0;
  /// Otherwise-clean receptions lost to injected fading (MediumOptions).
  std::uint64_t dropped = 0;
  bool all_decided = false;
};

/// Failure-injection knobs for the medium (all off by default; with the
/// defaults the engine is bit-identical to the ideal collision-only
/// medium, which the differential tests rely on).
struct MediumOptions {
  /// Probability that an otherwise-successful reception is lost anyway —
  /// a crude model of fading/shadowing, which the BIG model explicitly
  /// wants to accommodate (Sect. 2).
  double drop_probability = 0.0;
};

/// The slotted-medium engine; owns the per-node protocol instances.
/// Holds the graph **by reference** (hot-loop performance): the graph must
/// outlive the engine.  `S` is the event sink; the default `obs::NullSink`
/// compiles all tracing away.
template <NodeProtocol P, obs::EventSink S = obs::NullSink>
class Engine {
 public:
  /// \pre nodes.size() == g.num_nodes() == schedule.size()
  /// \param sink event sink; may be null even for enabled sink types (no
  ///        events are emitted then).  The sink must outlive the engine.
  Engine(const graph::Graph& g, WakeSchedule schedule, std::vector<P> nodes,
         std::uint64_t seed, MediumOptions medium = {}, S* sink = nullptr)
      : graph_(g),
        schedule_(std::move(schedule)),
        nodes_(std::move(nodes)),
        medium_(medium),
        medium_rng_(mix_seed(seed, 0xFADEDull)),
        sink_(sink),
        awake_(g.num_nodes(), false),
        dead_(g.num_nodes(), false),
        decision_slot_(g.num_nodes(), kUndecided),
        tx_count_(g.num_nodes(), 0),
        tx_stamp_(g.num_nodes(), -1) {
    URN_CHECK(medium_.drop_probability >= 0.0 &&
              medium_.drop_probability < 1.0);
    URN_CHECK(nodes_.size() == graph_.num_nodes());
    URN_CHECK(schedule_.size() == graph_.num_nodes());
    rngs_.reserve(graph_.num_nodes());
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      rngs_.emplace_back(mix_seed(seed, v));
    }
    // Wake order: nodes sorted by wake slot for an O(1) amortized wake scan.
    wake_order_.resize(graph_.num_nodes());
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) wake_order_[v] = v;
    std::sort(wake_order_.begin(), wake_order_.end(),
              [this](NodeId a, NodeId b) {
                return schedule_.wake_slot(a) < schedule_.wake_slot(b);
              });
  }

  /// Attach a wall-clock span sink: each slot then records one span per
  /// runner phase (wake / protocol / medium) on `kSpanTrack`.  Only
  /// meaningful on sink-enabled instantiations — with `obs::NullSink`
  /// the span hooks compile away along with the event emission sites,
  /// so the untraced hot loop stays untouched.
  void set_span_sink(obs::SpanSink* spans) { spans_ = spans; }

  /// The track id engine phase spans are recorded under.
  static constexpr std::uint32_t kSpanTrack = 0;

  /// Advance the simulation one slot.
  void step() {
    const Slot now = slot_;
    const std::uint64_t ts_wake = span_now();

    // (1) Wake due nodes.
    while (next_wake_ < wake_order_.size() &&
           schedule_.wake_slot(wake_order_[next_wake_]) <= now) {
      const NodeId v = wake_order_[next_wake_++];
      awake_[v] = true;
      awake_list_.push_back(v);
      emit([&] { return obs::Event::wake(now, v); });
      SlotContext ctx = context(v, now);
      nodes_[v].on_wake(ctx);
    }

    // (2) Collect transmissions.
    const std::uint64_t ts_protocol = span_now();
    transmitters_.clear();
    for (NodeId v : awake_list_) {
      if (dead_[v]) continue;
      SlotContext ctx = context(v, now);
      if (std::optional<Message> msg = nodes_[v].on_slot(ctx)) {
        URN_DCHECK(msg->sender == v);
        transmitters_.push_back(*msg);
        emit([&] {
          return obs::Event::transmit(now, v,
                                      static_cast<std::uint8_t>(msg->type),
                                      msg->color_index, msg->counter);
        });
      }
    }
    stats_.transmissions += transmitters_.size();

    // (3) Resolve the medium: count transmitting neighbors per node.
    const std::uint64_t ts_medium = span_now();
    for (const Message& msg : transmitters_) {
      const NodeId sender = msg.sender;
      for (NodeId u : graph_.neighbors(sender)) {
        if (tx_stamp_[u] != now) {
          tx_stamp_[u] = now;
          tx_count_[u] = 0;
        }
        ++tx_count_[u];
      }
      // A transmitting node cannot receive in the same slot.
      if (tx_stamp_[sender] != now) {
        tx_stamp_[sender] = now;
        tx_count_[sender] = 0;
      }
      tx_count_[sender] = kSelfBusy;
    }

    // (4) Deliver to listening awake nodes with exactly one active neighbor.
    for (const Message& msg : transmitters_) {
      for (NodeId u : graph_.neighbors(msg.sender)) {
        if (!awake_[u] || dead_[u] || tx_stamp_[u] != now) continue;
        if (tx_count_[u] == 1) {
          if (medium_.drop_probability > 0.0 &&
              medium_rng_.chance(medium_.drop_probability)) {
            ++stats_.dropped;  // fading: clean reception lost anyway
            emit([&] {
              return obs::Event::drop(now, u, msg.sender,
                                      static_cast<std::uint8_t>(msg.type));
            });
          } else {
            ++stats_.deliveries;
            emit([&] {
              return obs::Event::delivery(
                  now, u, msg.sender, static_cast<std::uint8_t>(msg.type),
                  msg.color_index);
            });
            SlotContext ctx = context(u, now);
            nodes_[u].on_receive(ctx, msg);
          }
          tx_count_[u] = kDelivered;  // at most one delivery per slot
        } else if (tx_count_[u] >= 2 && tx_count_[u] < kDelivered) {
          ++stats_.collisions;
          emit([&] { return obs::Event::collision(now, u); });
          tx_count_[u] = kDelivered;  // count the collision once
        }
      }
    }

    // (5) Track decisions.
    for (NodeId v : awake_list_) {
      if (!dead_[v] && decision_slot_[v] == kUndecided &&
          nodes_[v].decided()) {
        decision_slot_[v] = now;
        emit([&] {
          return obs::Event::decision(now, v, /*color=*/-1,
                                      now - schedule_.wake_slot(v));
        });
      }
    }

    span_emit("wake", ts_wake, ts_protocol, now);
    span_emit("protocol", ts_protocol, ts_medium, now);
    span_emit("medium", ts_medium, span_now(), now);

    ++slot_;
    stats_.slots_run = slot_;
  }

  /// Run until every node is awake and has decided, or `max_slots` elapse.
  /// Returns the statistics so far; `all_decided` reports success.
  RunStats run(Slot max_slots) {
    URN_CHECK(max_slots > 0);
    while (slot_ < max_slots) {
      step();
      if (all_decided()) break;
    }
    stats_.all_decided = all_decided();
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) sink_->flush();
    }
    return stats_;
  }

  [[nodiscard]] bool all_decided() const {
    if (next_wake_ < wake_order_.size()) return false;
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      if (!dead_[v] && decision_slot_[v] == kUndecided) return false;
    }
    return true;
  }

  /// Crash-stop failure injection: from the next slot on, node v neither
  /// transmits nor receives.  It is excluded from `all_decided` (a dead
  /// node has no obligation to decide).
  void deactivate(NodeId v) {
    URN_CHECK(v < nodes_.size());
    dead_[v] = true;
  }

  [[nodiscard]] bool is_dead(NodeId v) const { return dead_.at(v); }

  [[nodiscard]] Slot current_slot() const { return slot_; }
  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] const P& node(NodeId v) const { return nodes_.at(v); }
  [[nodiscard]] P& node(NodeId v) { return nodes_.at(v); }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const WakeSchedule& schedule() const { return schedule_; }

  /// Slot in which v's `decided()` first became true (kUndecided if never).
  [[nodiscard]] Slot decision_slot(NodeId v) const {
    return decision_slot_.at(v);
  }

  /// T_v of Sect. 2: slots between wake-up and irrevocable decision.
  [[nodiscard]] Slot decision_latency(NodeId v) const {
    URN_CHECK(decision_slot_.at(v) != kUndecided);
    return decision_slot_[v] - schedule_.wake_slot(v);
  }

  static constexpr Slot kUndecided = -1;

 private:
  static constexpr std::uint32_t kSelfBusy = 0x40000000;
  static constexpr std::uint32_t kDelivered = 0x20000000;

  /// Emit an event built by `make` — compiled away entirely for NullSink
  /// (the lambda is never instantiated, so event construction costs
  /// nothing when tracing is off).
  template <typename MakeEvent>
  void emit(MakeEvent&& make) {
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) sink_->record(make());
    }
  }

  /// Span-sink timestamp; a compile-time 0 when tracing is off, so the
  /// phase-boundary reads in `step` fold away with `span_emit`.
  [[nodiscard]] std::uint64_t span_now() const {
    if constexpr (S::kEnabled) {
      if (spans_ != nullptr) return spans_->now_ns();
    }
    return 0;
  }

  void span_emit(const char* name, std::uint64_t begin, std::uint64_t end,
                 Slot slot) {
    if constexpr (S::kEnabled) {
      if (spans_ != nullptr) {
        spans_->record(name, kSpanTrack, begin, end - begin, slot);
      }
    }
  }

  [[nodiscard]] SlotContext context(NodeId v, Slot now) {
    SlotContext ctx;
    ctx.id = v;
    ctx.now = now;
    ctx.awake_for = now - schedule_.wake_slot(v);
    ctx.rng = &rngs_[v];
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) {
        ctx.events_sink = sink_;
        ctx.events_fn = [](void* sink, const obs::Event& e) {
          static_cast<S*>(sink)->record(e);
        };
      }
    }
    return ctx;
  }

  const graph::Graph& graph_;
  WakeSchedule schedule_;
  std::vector<P> nodes_;
  MediumOptions medium_;
  Rng medium_rng_;
  S* sink_;
  obs::SpanSink* spans_ = nullptr;  ///< wall-clock phase spans (optional)
  std::vector<Rng> rngs_;

  Slot slot_ = 0;
  std::vector<bool> awake_;
  std::vector<bool> dead_;
  std::vector<NodeId> awake_list_;
  std::vector<NodeId> wake_order_;
  std::size_t next_wake_ = 0;
  std::vector<Slot> decision_slot_;

  // Per-slot scratch (epoch-stamped; never cleared wholesale).
  std::vector<std::uint32_t> tx_count_;
  std::vector<Slot> tx_stamp_;
  std::vector<Message> transmitters_;

  RunStats stats_;
};

}  // namespace urn::radio
