/// \file engine.hpp
/// \brief The slotted radio-medium simulator (the unstructured radio
///        network model of Sect. 2).
///
/// Collision semantics, implemented exactly as specified:
///  * time is divided into discrete synchronized slots;
///  * in each slot a node either transmits or listens, never both;
///  * a node receives a message iff **exactly one** of its (open-)
///    neighborhood members transmits in that slot and the node itself is
///    listening — two or more transmitting neighbors collide silently,
///    and **no collision detection** exists: the receiver cannot tell a
///    collision from silence, and the sender learns nothing;
///  * sleeping nodes (before their wake slot) neither send nor receive.
///
/// The engine is a class template over the node-protocol type so that the
/// per-slot loop is fully inlined (the simulator sustains tens of millions
/// of node-slots per second on one core).  Protocols implement:
///
///     void on_wake(SlotContext&);
///     std::optional<Message> on_slot(SlotContext&);   // state step + tx decision
///     void on_receive(SlotContext&, const Message&);  // end-of-slot delivery
///     bool decided() const;                           // irrevocable color fixed
///
/// Within a slot the engine (1) wakes due nodes, (2) calls `on_slot` on all
/// awake nodes collecting transmissions, (3) resolves the medium, and
/// (4) delivers at most one message per listening node via `on_receive`.
/// State changes made in `on_receive` therefore take effect in the next
/// slot, matching the paper's slot granularity.
///
/// **Observability.**  The engine takes a second template parameter, an
/// `obs::EventSink`, defaulting to `obs::NullSink`.  With the default every
/// emission site is discarded at compile time (`if constexpr`), so the hot
/// loop is exactly the pre-tracing loop — m1_micro pins this.  With a real
/// sink the engine emits wake / transmit / delivery / collision / drop /
/// decision events, and hands protocols a hook in `SlotContext` through
/// which they emit their own (phase transitions, counter resets, serves).

#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"
#include "obs/event.hpp"
#include "obs/postmortem.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "radio/message.hpp"
#include "radio/wakeup.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace urn::radio {

// The obs layer mirrors MsgType as small integer codes; keep them in sync.
static_assert(static_cast<std::uint8_t>(MsgType::kCompete) ==
              static_cast<std::uint8_t>(obs::MsgCode::kCompete));
static_assert(static_cast<std::uint8_t>(MsgType::kDecided) ==
              static_cast<std::uint8_t>(obs::MsgCode::kDecided));
static_assert(static_cast<std::uint8_t>(MsgType::kAssign) ==
              static_cast<std::uint8_t>(obs::MsgCode::kAssign));
static_assert(static_cast<std::uint8_t>(MsgType::kRequest) ==
              static_cast<std::uint8_t>(obs::MsgCode::kRequest));

/// Per-node, per-slot view handed to protocol callbacks.
struct SlotContext {
  NodeId id = graph::kInvalidNode;
  Slot now = 0;        ///< global slot index
  Rng* rng = nullptr;  ///< per-node deterministic stream

  /// Optional event hook (set by a tracing engine; null when tracing is
  /// off).  Protocols emit their protocol-level events through this.
  void* events_sink = nullptr;
  void (*events_fn)(void*, const obs::Event&) = nullptr;

  [[nodiscard]] Rng& random() const { return *rng; }

  /// True when a sink is attached (protocols may skip event construction).
  [[nodiscard]] bool tracing() const { return events_fn != nullptr; }
  void emit(const obs::Event& e) const {
    if (events_fn != nullptr) events_fn(events_sink, e);
  }
};

/// Node-protocol concept; see file comment for callback semantics.
template <typename P>
concept NodeProtocol = requires(P p, const P cp, SlotContext& ctx,
                                const Message& msg) {
  { p.on_wake(ctx) };
  { p.on_slot(ctx) } -> std::same_as<std::optional<Message>>;
  { p.on_receive(ctx, msg) };
  { cp.decided() } -> std::convertible_to<bool>;
};

// ---- SoA hot-state discovery ----------------------------------------------
// Data-oriented protocols keep their per-slot state in an engine-owned
// structure-of-arrays block instead of scattered across the node objects
// (core::ColoringHot is the exemplar).  A protocol opts in by declaring
//
//     using Hot = <block type>;               // constructible from n
//     void attach_hot(Hot*);                  // point a node at the block
//     static void batch_slots(Hot&, const NodeId* awake, std::size_t count,
//                             Slot now, P* nodes, Rng* rngs,
//                             std::vector<Message>& out);
//     bool Hot::decided(NodeId) const;        // node-object-free test
//
// The engines then (a) own one block per run and attach every node to it
// in their constructors, and (b) on *untraced* instantiations replace the
// per-node `on_slot` loop with one `batch_slots` call — which must be
// bit-identical to the scalar loop (the protocol owns that proof; the
// traced-vs-untraced and reference-diff suites are the arbiters).
// Protocols without a `Hot` alias get `NoHotState` and the scalar loop.

/// Placeholder hot block for protocols without SoA state (zero size, the
/// attach/batch paths compile away behind `if constexpr`).
struct NoHotState {
  explicit NoHotState(std::size_t /*n*/) {}
};

template <typename P, typename = void>
struct HotStateOfT {
  using type = NoHotState;
};
template <typename P>
struct HotStateOfT<P, std::void_t<typename P::Hot>> {
  using type = typename P::Hot;
};

/// The protocol's SoA hot-block type (NoHotState when it has none).
template <typename P>
using HotStateOf = typename HotStateOfT<P>::type;

/// True when P declared an SoA hot block the engines must own and attach.
template <typename P>
inline constexpr bool kHasHotState =
    !std::is_same_v<HotStateOf<P>, NoHotState>;

/// Aggregate medium statistics for one run.
struct RunStats {
  Slot slots_run = 0;
  std::uint64_t transmissions = 0;
  /// Listening-node slot pairs where exactly one neighbor transmitted.
  std::uint64_t deliveries = 0;
  /// Listening-node slot pairs where two or more neighbors transmitted.
  std::uint64_t collisions = 0;
  /// Otherwise-clean receptions lost to injected fading (MediumOptions).
  std::uint64_t dropped = 0;
  bool all_decided = false;
};

/// Failure-injection knobs for the medium (all off by default; with the
/// defaults the engine is bit-identical to the ideal collision-only
/// medium, which the differential tests rely on).
struct MediumOptions {
  /// Probability that an otherwise-successful reception is lost anyway —
  /// a crude model of fading/shadowing, which the BIG model explicitly
  /// wants to accommodate (Sect. 2).
  double drop_probability = 0.0;
};

/// The slotted-medium engine; owns the per-node protocol instances.
/// Holds the graph **by reference** (hot-loop performance): the graph must
/// outlive the engine.  `S` is the event sink; the default `obs::NullSink`
/// compiles all tracing away.  `T` is the telemetry probe
/// (`obs::telemetry::EngineProbe`); the default `NullEngineProbe` compiles
/// the per-slot aggregate sampling away the same way.  `C` is the
/// checkpointer (`obs::postmortem::Checkpointer`); the default
/// `NullCheckpointer` compiles the run-loop checkpoint hook away.
template <NodeProtocol P, obs::EventSink S = obs::NullSink,
          typename T = obs::telemetry::NullEngineProbe,
          typename C = obs::postmortem::NullCheckpointer>
class Engine {
 public:
  /// \pre nodes.size() == g.num_nodes() == schedule.size()
  /// \param sink event sink; may be null even for enabled sink types (no
  ///        events are emitted then).  The sink must outlive the engine.
  Engine(const graph::Graph& g, WakeSchedule schedule, std::vector<P> nodes,
         std::uint64_t seed, MediumOptions medium = {}, S* sink = nullptr)
      : graph_(g),
        schedule_(std::move(schedule)),
        nodes_(std::move(nodes)),
        hot_(g.num_nodes()),
        medium_(medium),
        medium_rng_(mix_seed(seed, 0xFADEDull)),
        sink_(sink),
        status_(g.num_nodes(), 0),
        decision_slot_(g.num_nodes(), kUndecided),
        pending_live_(g.num_nodes()),
        rx_(g.num_nodes(), 0) {
    URN_CHECK(medium_.drop_probability >= 0.0 &&
              medium_.drop_probability < 1.0);
    URN_CHECK(nodes_.size() == graph_.num_nodes());
    URN_CHECK(schedule_.size() == graph_.num_nodes());
    if constexpr (kHasHotState<P>) {
      // Attach AFTER the node vector is moved into place: the pointers
      // nodes keep into the block stay valid for the engine's lifetime.
      for (P& node : nodes_) node.attach_hot(&hot_);
    }
    rngs_.reserve(graph_.num_nodes());
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      rngs_.emplace_back(mix_seed(seed, v));
    }
    // Wake order: nodes sorted by (wake slot, id) for an O(1) amortized
    // wake scan.  The id tie-break makes the order — and with it the
    // per-slot transmitter order, which fixes the medium-RNG draw
    // sequence under drop_probability > 0 — a specification the
    // reference engine can reproduce, not an artifact of the sort
    // implementation.
    wake_order_.resize(graph_.num_nodes());
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) wake_order_[v] = v;
    std::sort(wake_order_.begin(), wake_order_.end(),
              [this](NodeId a, NodeId b) {
                const Slot wa = schedule_.wake_slot(a);
                const Slot wb = schedule_.wake_slot(b);
                return wa != wb ? wa < wb : a < b;
              });
  }

  // Nodes point into the engine-owned hot block; a copied or moved
  // engine would leave them aimed at the source's block.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Attach a wall-clock span sink: each slot then records one span per
  /// runner phase (wake / protocol / medium) on `kSpanTrack`.  Only
  /// meaningful on sink-enabled instantiations — with `obs::NullSink`
  /// the span hooks compile away along with the event emission sites,
  /// so the untraced hot loop stays untouched.
  void set_span_sink(obs::SpanSink* spans) { spans_ = spans; }

  /// Attach a telemetry probe: each slot then feeds one aggregate
  /// `SlotSample` (counts only — no events, no RNG use) to the probe.
  /// Only meaningful on probe-enabled instantiations; with the default
  /// `NullEngineProbe` the sampling sites compile away.  The probe must
  /// outlive the engine.  `run()` brackets execution with
  /// `begin_run`/`end_run`; step()-driven users bracket it themselves.
  void set_telemetry(T* probe) { probe_ = probe; }

  /// Attach a postmortem checkpointer: `run()` then offers a snapshot at
  /// the top of every loop iteration (the checkpointer decides whether
  /// the period elapsed).  Only meaningful on checkpointer-enabled
  /// instantiations; with the default `NullCheckpointer` the hook
  /// compiles away.  Snapshots only read state, so a checkpointed run is
  /// bit-identical to an unhooked one.  The checkpointer must outlive
  /// the engine.
  void set_checkpointer(C* ckpt) { ckpt_ = ckpt; }

  /// The track id engine phase spans are recorded under.
  static constexpr std::uint32_t kSpanTrack = 0;

  /// Advance the simulation one slot.
  void step() {
    const Slot now = slot_;
    const std::uint64_t ts_wake = span_now();

    // Telemetry baselines for this slot's deltas (dead locals on
    // probe-disabled instantiations; the optimizer drops them).
    [[maybe_unused]] std::size_t probe_wakes_before = 0;
    [[maybe_unused]] std::size_t probe_pending_before = 0;
    [[maybe_unused]] std::uint64_t probe_deliveries_before = 0;
    [[maybe_unused]] std::uint64_t probe_collisions_before = 0;
    [[maybe_unused]] std::uint64_t probe_dropped_before = 0;
    if constexpr (T::kEnabled) {
      if (probe_ != nullptr) {
        probe_wakes_before = next_wake_;
        probe_pending_before = pending_live_;
        probe_deliveries_before = stats_.deliveries;
        probe_collisions_before = stats_.collisions;
        probe_dropped_before = stats_.dropped;
      }
    }

    // (1) Wake due nodes.  A node deactivated before its wake slot still
    // wakes (events + on_wake fire, matching the pre-compaction engine)
    // but never enters the live lists.
    while (next_wake_ < wake_order_.size() &&
           schedule_.wake_slot(wake_order_[next_wake_]) <= now) {
      const NodeId v = wake_order_[next_wake_++];
      status_[v] |= kAwakeBit;
      if (status_[v] == kAwakeBit) {
        awake_list_.push_back(v);
        undecided_list_.push_back(v);
        rx_[v] = kRxAwake;  // now a listening candidate for the medium
      }
      emit([&] { return obs::Event::wake(now, v); });
      SlotContext ctx = context(v, now);
      nodes_[v].on_wake(ctx);
    }
    if (!id_ordered_ && next_wake_ >= wake_order_.size()) {
      // From the slot the last node wakes (inclusive), iterate nodes in
      // ascending id: under random schedules wake order is an arbitrary
      // permutation, and re-sorting once turns every later per-slot
      // sweep into a linear memory walk over nodes_/rngs_.  This is part
      // of the engine's documented iteration order — (wake slot, id)
      // while nodes are still waking, id-ascending once all are awake —
      // which the reference engine mirrors (it pins the medium-RNG draw
      // sequence under drop_probability > 0; aggregate stats and
      // per-node RNG streams are order-independent).
      std::sort(awake_list_.begin(), awake_list_.end());
      std::sort(undecided_list_.begin(), undecided_list_.end());
      id_ordered_ = true;
    }

    // (2) Collect transmissions.  awake_list_ holds only live awake
    // nodes (deactivate compacts), so no per-node dead check remains.
    // SoA protocols on untraced engines run the whole list through one
    // `batch_slots` call (classify over the hot arrays, batched
    // Bernoulli draws, messages in scalar order — bit-identical by the
    // protocol's contract); traced engines keep the scalar loop, whose
    // per-node contexts carry the event hook.
    const std::uint64_t ts_protocol = span_now();
    transmitters_.clear();
    if constexpr (kHasHotState<P> && !S::kEnabled) {
      P::batch_slots(hot_, awake_list_.data(), awake_list_.size(), now,
                     nodes_.data(), rngs_.data(), transmitters_);
    } else {
      for (NodeId v : awake_list_) {
        SlotContext ctx = context(v, now);
        if (std::optional<Message> msg = nodes_[v].on_slot(ctx)) {
          URN_DCHECK(msg->sender == v);
          transmitters_.push_back(*msg);
          emit([&] {
            return obs::Event::transmit(
                now, v, static_cast<std::uint8_t>(msg->type),
                msg->color_index, msg->counter);
          });
        }
      }
    }
    stats_.transmissions += transmitters_.size();

    // (3) Resolve the medium in ONE pass: classify each touched live
    // listener as clean (exactly one transmitting neighbor, with the
    // source index) or collided, in first-touch order.  First-touch
    // order here equals the first-visit order of the old second
    // transmitter×neighbor pass (both walk the same nested sequence),
    // so delivery / collision / drop events and medium-RNG draws keep
    // the exact same order — bit-identical results, half the edge
    // traversals.  The whole per-listener medium state lives in ONE
    // 4-byte `rx_` word (awake flag | clean/collided/self | source), so
    // the ~Δ random accesses per transmitter touch one cache line each
    // instead of the three the old count/stamp/src arrays cost; the
    // touched entries are wiped at the end of the slot (touched_ and
    // the transmitter list enumerate exactly the dirtied words), which
    // replaces the epoch stamps entirely.  Sleeping and dead neighbors
    // are skipped outright: their state can never be read.
    const std::uint64_t ts_medium = span_now();
    touched_.clear();
    URN_DCHECK(transmitters_.size() <= kRxSrcMask);
    for (std::uint32_t t = 0; t < transmitters_.size(); ++t) {
      const NodeId sender = transmitters_[t].sender;
      for (NodeId u : graph_.neighbors(sender)) {
        const std::uint32_t w = rx_[u];
        if (w == kRxAwake) {  // listening, untouched so far
          rx_[u] = kRxAwake | kRxClean | t;  // sole candidate sender
          touched_.push_back(u);
        } else if ((w & kRxStateMask) == kRxClean) {
          rx_[u] = kRxAwake | kRxCollided;
        }
        // else: sleeping/dead (no awake bit), already collided, or a
        // transmitter (kRxSelf) — nothing can change.
      }
      // A transmitting node cannot receive in the same slot.
      rx_[sender] = kRxAwake | kRxSelf;
    }

    // (4) Deliver to listeners with exactly one active neighbor.  Each
    // touched listener appears once; states are final by now.
    for (const NodeId u : touched_) {
      const std::uint32_t w = rx_[u];
      if ((w & kRxStateMask) == kRxClean) {
        const Message& msg = transmitters_[w & kRxSrcMask];
        if (medium_.drop_probability > 0.0 &&
            medium_rng_.chance(medium_.drop_probability)) {
          ++stats_.dropped;  // fading: clean reception lost anyway
          emit([&] {
            return obs::Event::drop(now, u, msg.sender,
                                    static_cast<std::uint8_t>(msg.type));
          });
        } else {
          ++stats_.deliveries;
          emit([&] {
            return obs::Event::delivery(now, u, msg.sender,
                                        static_cast<std::uint8_t>(msg.type),
                                        msg.color_index);
          });
          SlotContext ctx = context(u, now);
          nodes_[u].on_receive(ctx, msg);
        }
      } else if ((w & kRxStateMask) == kRxCollided) {
        ++stats_.collisions;
        emit([&] { return obs::Event::collision(now, u); });
      }
      rx_[u] = kRxAwake;  // wipe for the next slot (still listening)
    }
    // Transmitters dirtied their own rx_ word too (kRxSelf); they are
    // live and awake by construction, so restore the bare awake flag.
    for (const Message& m : transmitters_) rx_[m.sender] = kRxAwake;

    // (5) Track decisions, compacting decided nodes out of the scan so
    // its cost follows the number of still-undecided nodes, not n.  SoA
    // protocols answer `decided` straight from the hot block, so the
    // scan never touches a node object.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < undecided_list_.size(); ++i) {
      const NodeId v = undecided_list_[i];
      const bool is_decided = [&] {
        if constexpr (kHasHotState<P>) return hot_.decided(v);
        else return nodes_[v].decided();
      }();
      if (is_decided) {
        decision_slot_[v] = now;
        --pending_live_;
        emit([&] {
          return obs::Event::decision(now, v, /*color=*/-1,
                                      now - schedule_.wake_slot(v));
        });
      } else {
        undecided_list_[keep++] = v;
      }
    }
    undecided_list_.resize(keep);

    span_emit("wake", ts_wake, ts_protocol, now);
    span_emit("protocol", ts_protocol, ts_medium, now);
    span_emit("medium", ts_medium, span_now(), now);

    ++slot_;
    stats_.slots_run = slot_;

    if constexpr (T::kEnabled) {
      if (probe_ != nullptr) {
        obs::telemetry::SlotSample s;
        s.slots = 1;
        s.active = awake_list_.size();
        s.wakes = next_wake_ - probe_wakes_before;
        s.decisions = probe_pending_before - pending_live_;
        s.transmissions = transmitters_.size();
        s.deliveries = stats_.deliveries - probe_deliveries_before;
        s.collisions = stats_.collisions - probe_collisions_before;
        s.drops = stats_.dropped - probe_dropped_before;
        s.undecided = undecided_list_.size();
        probe_->on_slot(s);
      }
    }
  }

  /// Run until every node is awake and has decided, or `max_slots` elapse.
  /// Returns the statistics so far; `all_decided` reports success.
  ///
  /// Empty wake gaps are fast-forwarded: while no node is awake and the
  /// next wake lies in the future, stepping consumes no RNG and changes
  /// no state, so `slot_` jumps straight to the next wake (or the cap).
  /// The jump requires a pending wake — it cannot fire when the list is
  /// empty because every woken node died, where the old loop would stop
  /// after one more step via `all_decided`.
  RunStats run(Slot max_slots) {
    URN_CHECK(max_slots > 0);
    if constexpr (T::kEnabled) {
      if (probe_ != nullptr) probe_->begin_run();
    }
    while (slot_ < max_slots) {
      if constexpr (C::kEnabled) {
        if (ckpt_ != nullptr) ckpt_->maybe_checkpoint(*this, slot_);
      }
      if (awake_list_.empty() && next_wake_ < wake_order_.size()) {
        const Slot next = schedule_.wake_slot(wake_order_[next_wake_]);
        if (next > slot_) {
          const Slot jumped = (next < max_slots ? next : max_slots) - slot_;
          slot_ += jumped;
          stats_.slots_run = slot_;
          if constexpr (T::kEnabled) {
            // Fast-forwarded slots still count toward engine.slots so
            // the exported total matches stats_.slots_run exactly.
            if (probe_ != nullptr && jumped > 0) {
              obs::telemetry::SlotSample s;
              s.slots = static_cast<std::uint64_t>(jumped);
              probe_->on_slot(s);
            }
          }
          if (slot_ >= max_slots) break;
        }
      }
      step();
      if (all_decided()) break;
    }
    stats_.all_decided = all_decided();
    flush();
    if constexpr (T::kEnabled) {
      if (probe_ != nullptr) probe_->end_run();
    }
    return stats_;
  }

  /// O(1): every node woke, and no live node is still undecided.
  [[nodiscard]] bool all_decided() const {
    return next_wake_ >= wake_order_.size() && pending_live_ == 0;
  }

  /// Flush the attached event sink, if any (`run()` does this on exit;
  /// step()-driven users call it once capture is complete).  Compiled
  /// away for NullSink.
  void flush() {
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) sink_->flush();
    }
  }

  /// Crash-stop failure injection: from the next slot on, node v neither
  /// transmits nor receives.  It is excluded from `all_decided` (a dead
  /// node has no obligation to decide) and compacted out of the live
  /// lists so later slots never branch on it.  Idempotent: deactivating
  /// an already-dead node changes no accounting.
  void deactivate(NodeId v) {
    URN_CHECK(v < nodes_.size());
    if ((status_[v] & kDeadBit) != 0) return;
    status_[v] |= kDeadBit;
    rx_[v] = 0;  // no longer a listening candidate
    if (decision_slot_[v] == kUndecided) --pending_live_;
    if ((status_[v] & kAwakeBit) != 0) {
      std::erase(awake_list_, v);
      std::erase(undecided_list_, v);
    }
  }

  [[nodiscard]] bool is_dead(NodeId v) const {
    URN_CHECK(v < status_.size());
    return (status_[v] & kDeadBit) != 0;
  }

  [[nodiscard]] bool is_awake(NodeId v) const {
    URN_CHECK(v < status_.size());
    return (status_[v] & kAwakeBit) != 0;
  }

  /// Serialize the complete engine state (a checkpoint's engine-state
  /// section).  Everything a freshly constructed engine cannot
  /// reconstruct from its constructor arguments is written: the slot
  /// cursor, per-node status/decision arrays, live lists, wake cursor,
  /// all RNG streams (medium + per-node), aggregate stats, and every
  /// node's protocol state.  The per-slot scratch (the rx_ touch bits,
  /// transmitters_, touched_) is never read across slot boundaries, so
  /// it is deliberately skipped — a resumed engine's fresh scratch
  /// behaves identically (the persistent rx_ awake flags are rebuilt
  /// from status_ on load).
  void save_state(obs::postmortem::Writer& w) const {
    w.u64(nodes_.size());
    w.i64(slot_);
    w.i64(stats_.slots_run);
    w.u64(stats_.transmissions);
    w.u64(stats_.deliveries);
    w.u64(stats_.collisions);
    w.u64(stats_.dropped);
    w.boolean(stats_.all_decided);
    obs::postmortem::write_rng(w, medium_rng_);
    for (const std::uint8_t s : status_) w.u8(s);
    for (const Slot s : decision_slot_) w.i64(s);
    w.u64(awake_list_.size());
    for (const NodeId v : awake_list_) w.u32(v);
    w.u64(undecided_list_.size());
    for (const NodeId v : undecided_list_) w.u32(v);
    w.u64(next_wake_);
    w.boolean(id_ordered_);
    w.u64(pending_live_);
    for (const Rng& r : rngs_) obs::postmortem::write_rng(w, r);
    for (const P& node : nodes_) node.save_state(w);
  }

  /// Restore state written by `save_state` into a freshly constructed
  /// engine (same graph, schedule, seed and medium — the scenario section
  /// of the checkpoint carries them).  Returns false on a truncated or
  /// inconsistent buffer; the engine must not be used after a failed
  /// load.  After a successful load, `run()` continues the original run
  /// bit-identically.
  [[nodiscard]] bool load_state(obs::postmortem::Reader& r) {
    if (r.u64() != nodes_.size()) return false;
    slot_ = r.i64();
    stats_.slots_run = r.i64();
    stats_.transmissions = r.u64();
    stats_.deliveries = r.u64();
    stats_.collisions = r.u64();
    stats_.dropped = r.u64();
    stats_.all_decided = r.boolean();
    if (!obs::postmortem::read_rng(r, medium_rng_)) return false;
    for (std::uint8_t& s : status_) s = r.u8();
    // The persistent part of the medium word is a pure function of
    // status_; the per-slot touch bits are always clear between slots,
    // which is when checkpoints are taken.
    for (NodeId v = 0; v < status_.size(); ++v) {
      rx_[v] = status_[v] == kAwakeBit ? kRxAwake : 0;
    }
    for (Slot& s : decision_slot_) s = r.i64();
    const std::uint64_t n_awake = r.u64();
    if (!r.ok() || n_awake > nodes_.size()) return false;
    awake_list_.clear();
    for (std::uint64_t i = 0; i < n_awake; ++i) {
      awake_list_.push_back(static_cast<NodeId>(r.u32()));
    }
    const std::uint64_t n_undecided = r.u64();
    if (!r.ok() || n_undecided > nodes_.size()) return false;
    undecided_list_.clear();
    for (std::uint64_t i = 0; i < n_undecided; ++i) {
      undecided_list_.push_back(static_cast<NodeId>(r.u32()));
    }
    next_wake_ = static_cast<std::size_t>(r.u64());
    if (next_wake_ > wake_order_.size()) return false;
    id_ordered_ = r.boolean();
    pending_live_ = static_cast<std::size_t>(r.u64());
    if (pending_live_ > nodes_.size()) return false;
    for (Rng& rng : rngs_) {
      if (!obs::postmortem::read_rng(r, rng)) return false;
    }
    for (P& node : nodes_) {
      if (!node.load_state(r)) return false;
    }
    return r.ok();
  }

  [[nodiscard]] Slot current_slot() const { return slot_; }
  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] const P& node(NodeId v) const { return nodes_.at(v); }
  [[nodiscard]] P& node(NodeId v) { return nodes_.at(v); }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const WakeSchedule& schedule() const { return schedule_; }

  /// Slot in which v's `decided()` first became true (kUndecided if never).
  [[nodiscard]] Slot decision_slot(NodeId v) const {
    return decision_slot_.at(v);
  }

  /// T_v of Sect. 2: slots between wake-up and irrevocable decision.
  [[nodiscard]] Slot decision_latency(NodeId v) const {
    URN_CHECK(decision_slot_.at(v) != kUndecided);
    return decision_slot_[v] - schedule_.wake_slot(v);
  }

  static constexpr Slot kUndecided = -1;

 private:
  // Per-node status bits (one byte per node; vector<bool> bit ops were a
  // measurable hot-path cost, and one byte encodes both flags so the
  // common "live awake listener?" test is a single compare with 0x1).
  static constexpr std::uint8_t kAwakeBit = 0x1;
  static constexpr std::uint8_t kDeadBit = 0x2;

  // Layout of the per-node medium word rx_ (see step section 3): the
  // top bit is the persistent "live awake listener" flag (maintained on
  // wake / deactivate / load_state), the next two bits are the per-slot
  // touch state, and the low 29 bits hold the transmitter index while
  // the state is kRxClean.  Between slots every word is either 0 or
  // exactly kRxAwake.
  static constexpr std::uint32_t kRxAwake = 1u << 31;
  static constexpr std::uint32_t kRxClean = 1u << 29;
  static constexpr std::uint32_t kRxCollided = 2u << 29;
  static constexpr std::uint32_t kRxSelf = 3u << 29;
  static constexpr std::uint32_t kRxStateMask = 3u << 29;
  static constexpr std::uint32_t kRxSrcMask = (1u << 29) - 1;

  /// Emit an event built by `make` — compiled away entirely for NullSink
  /// (the lambda is never instantiated, so event construction costs
  /// nothing when tracing is off).
  template <typename MakeEvent>
  void emit(MakeEvent&& make) {
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) sink_->record(make());
    }
  }

  /// Span-sink timestamp; a compile-time 0 when tracing is off, so the
  /// phase-boundary reads in `step` fold away with `span_emit`.
  [[nodiscard]] std::uint64_t span_now() const {
    if constexpr (S::kEnabled) {
      if (spans_ != nullptr) return spans_->now_ns();
    }
    return 0;
  }

  void span_emit(const char* name, std::uint64_t begin, std::uint64_t end,
                 Slot slot) {
    if constexpr (S::kEnabled) {
      if (spans_ != nullptr) {
        spans_->record(name, kSpanTrack, begin, end - begin, slot);
      }
    }
  }

  [[nodiscard]] SlotContext context(NodeId v, Slot now) {
    SlotContext ctx;
    ctx.id = v;
    ctx.now = now;
    ctx.rng = &rngs_[v];
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) {
        ctx.events_sink = sink_;
        ctx.events_fn = [](void* sink, const obs::Event& e) {
          static_cast<S*>(sink)->record(e);
        };
      }
    }
    return ctx;
  }

  const graph::Graph& graph_;
  WakeSchedule schedule_;
  std::vector<P> nodes_;
  /// SoA hot block for opted-in protocols (empty NoHotState otherwise).
  /// Nodes hold raw pointers into it, so the engine is neither copyable
  /// nor movable (see the deleted special members above).
  HotStateOf<P> hot_;
  MediumOptions medium_;
  Rng medium_rng_;
  S* sink_;
  obs::SpanSink* spans_ = nullptr;  ///< wall-clock phase spans (optional)
  T* probe_ = nullptr;              ///< telemetry probe (optional)
  C* ckpt_ = nullptr;               ///< postmortem checkpointer (optional)
  std::vector<Rng> rngs_;

  Slot slot_ = 0;
  std::vector<std::uint8_t> status_;     ///< kAwakeBit | kDeadBit per node
  std::vector<NodeId> awake_list_;       ///< live awake nodes, wake order
  std::vector<NodeId> undecided_list_;   ///< live awake undecided subset
  std::vector<NodeId> wake_order_;
  std::size_t next_wake_ = 0;
  bool id_ordered_ = false;  ///< live lists re-sorted to id order yet?
  std::vector<Slot> decision_slot_;
  /// Live (non-dead) nodes without a recorded decision — the O(1)
  /// termination counter behind `all_decided()`.
  std::size_t pending_live_ = 0;

  /// Per-node medium word: persistent awake flag + per-slot touch state
  /// (see the kRx* constants).  The dirtied entries are wiped at the end
  /// of every slot, so no wholesale clear is ever needed.
  std::vector<std::uint32_t> rx_;
  std::vector<Message> transmitters_;
  std::vector<NodeId> touched_;  ///< live listeners touched this slot

  RunStats stats_;
};

}  // namespace urn::radio
