/// \file message.hpp
/// \brief The four message types of the coloring protocol (Sect. 4).
///
/// | paper              | here                | fields                      |
/// |--------------------|---------------------|-----------------------------|
/// | M_A^i(v, c_v)      | MsgType::kCompete   | sender, color_index=i, counter=c_v |
/// | M_C^i(v)           | MsgType::kDecided   | sender, color_index=i       |
/// | M_C^0(v, w, tc)    | MsgType::kAssign    | sender, target=w, tc        |
/// | M_R(v, L(v))       | MsgType::kRequest   | sender, target=L(v)         |
///
/// Every field is O(log n) bits, matching the model's message-size bound.
/// A `kAssign` message *also* identifies its sender as a leader, exactly as
/// an `M_C^0` beacon does; receivers treat both as evidence of a node in C₀.

#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace urn::radio {

using graph::NodeId;

/// Discrete time-slot index.
using Slot = std::int64_t;

enum class MsgType : std::uint8_t {
  kCompete,  ///< M_A^i(v, c_v): competitor counter report
  kDecided,  ///< M_C^i(v): "I hold color i" announcement / leader beacon
  kAssign,   ///< M_C^0(v, w, tc): leader v assigns intra-cluster color tc to w
  kRequest,  ///< M_R(v, L(v)): v requests an intra-cluster color from L(v)
};

/// One on-air message.  POD; copied by value.
struct Message {
  MsgType type = MsgType::kCompete;
  NodeId sender = graph::kInvalidNode;
  /// Color index i for kCompete / kDecided (0 for leader traffic).
  std::int32_t color_index = 0;
  /// Counter c_v for kCompete; unused otherwise.
  std::int64_t counter = 0;
  /// Assignment target w (kAssign) or addressed leader L(v) (kRequest).
  NodeId target = graph::kInvalidNode;
  /// Intra-cluster color for kAssign.
  std::int32_t tc = 0;
};

/// Convenience factories keeping call sites close to the paper's notation.

[[nodiscard]] inline Message make_compete(NodeId v, std::int32_t i,
                                          std::int64_t c_v) {
  Message m;
  m.type = MsgType::kCompete;
  m.sender = v;
  m.color_index = i;
  m.counter = c_v;
  return m;
}

[[nodiscard]] inline Message make_decided(NodeId v, std::int32_t i) {
  Message m;
  m.type = MsgType::kDecided;
  m.sender = v;
  m.color_index = i;
  return m;
}

[[nodiscard]] inline Message make_assign(NodeId leader, NodeId w,
                                         std::int32_t tc) {
  Message m;
  m.type = MsgType::kAssign;
  m.sender = leader;
  m.color_index = 0;
  m.target = w;
  m.tc = tc;
  return m;
}

[[nodiscard]] inline Message make_request(NodeId v, NodeId leader) {
  Message m;
  m.type = MsgType::kRequest;
  m.sender = v;
  m.target = leader;
  return m;
}

}  // namespace urn::radio
