/// \file misaligned_engine.hpp
/// \brief The non-aligned-slots variant of the radio medium (Sect. 2).
///
/// The paper's analysis assumes slot boundaries are synchronized, but
/// notes: "all analytical results carry over to the practical non-aligned
/// case with an additional small constant factor, since each time slot can
/// overlap with at most two time-slots of a neighbor [29]."  This engine
/// implements that case so the claim can be *measured* (experiment E12):
///
///  * global time advances in **half-slots**; each node has a fixed phase
///    offset φ_v ∈ {0, 1} half-slots, so its local slot t occupies global
///    half-slots 2t+φ_v and 2t+φ_v+1 — overlapping at most two local
///    slots of any neighbor, exactly the situation in [29];
///  * a transmission occupies the sender's full local slot (two halves);
///  * a node u receives a transmission from neighbor s iff u was
///    listening (not transmitting) during *both* halves of s's
///    transmission and no other neighbor of u transmitted during either
///    half — the receiver needs the medium clear for the whole frame, but
///    does **not** need slot alignment with the sender;
///  * still no collision detection of any kind.
///
/// Protocols are reused unchanged: callbacks fire once per *local* slot,
/// and all times a protocol sees (ctx.now, decision slots, latencies) are
/// in local slots, directly comparable to radio::Engine's slot counts.
///
/// Hot-path structure mirrors radio::Engine's: per-parity wake-sorted
/// participation lists replace the O(n) per-half node scan, neighbor
/// counts are epoch-stamped with the half index instead of cleared
/// wholesale, termination is an O(1) counter pair, and `run()`
/// fast-forwards across halves in which no node participates.

#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "radio/wakeup.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace urn::radio {

template <NodeProtocol P, obs::EventSink S = obs::NullSink,
          typename T = obs::telemetry::NullEngineProbe,
          typename C = obs::postmortem::NullCheckpointer>
class MisalignedEngine {
 public:
  /// \param offsets per-node phase offset in half-slots (each 0 or 1)
  /// \param sink    optional event sink (slots in events are *local* slots)
  MisalignedEngine(const graph::Graph& g, WakeSchedule schedule,
                   std::vector<P> nodes, std::vector<std::uint8_t> offsets,
                   std::uint64_t seed, S* sink = nullptr)
      : graph_(g),
        schedule_(std::move(schedule)),
        nodes_(std::move(nodes)),
        hot_(g.num_nodes()),
        offsets_(std::move(offsets)),
        sink_(sink),
        awake_(g.num_nodes(), 0),
        decision_slot_(g.num_nodes(), kUndecided),
        undecided_(g.num_nodes()),
        tx_until_half_(g.num_nodes(), -1),
        nbr_count_{std::vector<std::uint32_t>(g.num_nodes(), 0),
                   std::vector<std::uint32_t>(g.num_nodes(), 0)},
        nbr_stamp_{std::vector<std::int64_t>(g.num_nodes(), -1),
                   std::vector<std::int64_t>(g.num_nodes(), -1)} {
    URN_CHECK(nodes_.size() == graph_.num_nodes());
    URN_CHECK(schedule_.size() == graph_.num_nodes());
    URN_CHECK(offsets_.size() == graph_.num_nodes());
    for (std::uint8_t o : offsets_) URN_CHECK(o <= 1);
    if constexpr (kHasHotState<P>) {
      // SoA protocols keep hot state in the engine-owned block (see
      // engine.hpp); the half-slot medium keeps the scalar `on_slot`
      // loop — interleaved parities give no contiguous batch to sweep.
      for (P& node : nodes_) node.attach_hot(&hot_);
    }
    rngs_.reserve(graph_.num_nodes());
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      rngs_.emplace_back(mix_seed(seed, v));
    }
    // Per-parity wake order, sorted by (wake slot, id): each half scans
    // only the nodes that participate in it, admitting new wakers in
    // O(1) amortized — the old engine re-scanned all n nodes per half.
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      wake_order_[offsets_[v]].push_back(v);
    }
    for (auto& order : wake_order_) {
      std::sort(order.begin(), order.end(),
                [this](graph::NodeId a, graph::NodeId b) {
                  const Slot wa = schedule_.wake_slot(a);
                  const Slot wb = schedule_.wake_slot(b);
                  return wa != wb ? wa < wb : a < b;
                });
    }
  }

  // Nodes point into the engine-owned hot block (see Engine).
  MisalignedEngine(const MisalignedEngine&) = delete;
  MisalignedEngine& operator=(const MisalignedEngine&) = delete;

  /// Uniformly random offsets, the natural "unsynchronized clocks" model.
  [[nodiscard]] static std::vector<std::uint8_t> random_offsets(
      std::size_t n, Rng& rng) {
    std::vector<std::uint8_t> offsets(n);
    for (auto& o : offsets) o = static_cast<std::uint8_t>(rng.below(2));
    return offsets;
  }

  /// Attach a telemetry probe (see Engine::set_telemetry; one aggregate
  /// sample per half-slot, local-slot counts in `slots`).  Compiled away
  /// for the default `NullEngineProbe`.
  void set_telemetry(T* probe) { probe_ = probe; }

  /// Attach a postmortem checkpointer (see Engine::set_checkpointer).
  /// Positions handed to the checkpointer are **global half-slots**, the
  /// engine's native cursor — a `--checkpoint-every` in local slots maps
  /// to `2 * every` halves.  Compiled away for `NullCheckpointer`.
  void set_checkpointer(C* ckpt) { ckpt_ = ckpt; }

  /// Advance one global half-slot.
  void step_half() {
    const std::int64_t h = half_;
    const std::size_t parity = static_cast<std::size_t>(h & 1);

    [[maybe_unused]] std::size_t probe_woken_before = 0;
    [[maybe_unused]] std::size_t probe_undecided_before = 0;
    [[maybe_unused]] std::uint64_t probe_tx_before = 0;
    [[maybe_unused]] std::uint64_t probe_deliveries_before = 0;
    [[maybe_unused]] std::uint64_t probe_collisions_before = 0;
    [[maybe_unused]] Slot probe_slots_before = 0;
    if constexpr (T::kEnabled) {
      if (probe_ != nullptr) {
        probe_woken_before = woken_;
        probe_undecided_before = undecided_;
        probe_tx_before = stats_.transmissions;
        probe_deliveries_before = stats_.deliveries;
        probe_collisions_before = stats_.collisions;
        probe_slots_before = stats_.slots_run;
      }
    }

    // (1) Nodes whose local slot starts at this half run their protocol.
    // All parity-p nodes share the same local slot at half h: (h - p)/2.
    if (h >= static_cast<std::int64_t>(parity)) {
      const Slot local = (h - static_cast<std::int64_t>(parity)) / 2;
      auto& order = wake_order_[parity];
      std::size_t& admit = next_wake_[parity];
      while (admit < order.size() &&
             schedule_.wake_slot(order[admit]) <= local) {
        const graph::NodeId v = order[admit++];
        awake_[v] = 1;
        ++woken_;
        emit([&] { return obs::Event::wake(local, v); });
        SlotContext wake_ctx = context(v, local);
        nodes_[v].on_wake(wake_ctx);
        awake_list_[parity].push_back(v);
      }
      for (graph::NodeId v : awake_list_[parity]) {
        SlotContext ctx = context(v, local);
        if (std::optional<Message> msg = nodes_[v].on_slot(ctx)) {
          URN_DCHECK(msg->sender == v);
          ++stats_.transmissions;
          emit([&] {
            return obs::Event::transmit(local, v,
                                        static_cast<std::uint8_t>(msg->type),
                                        msg->color_index, msg->counter);
          });
          tx_until_half_[v] = h + 1;  // occupies halves h and h+1
          active_.push_back({*msg, h});
        }
        if (decision_slot_[v] == kUndecided && nodes_[v].decided()) {
          decision_slot_[v] = local;
          --undecided_;
          emit([&] {
            return obs::Event::decision(local, v, /*color=*/-1,
                                        local - schedule_.wake_slot(v));
          });
        }
      }
    }

    // (2) Account every ongoing transmission in this half's counts
    // (epoch-stamped with the half index; never cleared wholesale).
    for (const auto& tx : active_) {
      for (graph::NodeId u : graph_.neighbors(tx.msg.sender)) {
        if (nbr_stamp_[parity][u] != h) {
          nbr_stamp_[parity][u] = h;
          nbr_count_[parity][u] = 1;
        } else {
          ++nbr_count_[parity][u];
        }
      }
    }

    // (3) Transmissions that started at h−1 complete now: deliver.
    const std::size_t prev = static_cast<std::size_t>((h - 1) & 1);
    for (std::size_t i = 0; i < active_.size();) {
      const ActiveTx& tx = active_[i];
      if (tx.start_half != h - 1) {
        ++i;
        continue;
      }
      for (graph::NodeId u : graph_.neighbors(tx.msg.sender)) {
        if (awake_[u] == 0) continue;
        // u listening during both halves?
        if (tx_until_half_[u] >= h - 1) continue;
        const std::uint32_t c_prev = count_at(prev, u, h - 1);
        const std::uint32_t c_now = count_at(parity, u, h);
        if (c_prev == 1 && c_now == 1) {
          ++stats_.deliveries;
          const Slot local = (h - offsets_[u]) / 2;
          emit([&] {
            return obs::Event::delivery(
                local, u, tx.msg.sender,
                static_cast<std::uint8_t>(tx.msg.type), tx.msg.color_index);
          });
          SlotContext ctx = context(u, local);
          nodes_[u].on_receive(ctx, tx.msg);
          if (decision_slot_[u] == kUndecided && nodes_[u].decided()) {
            decision_slot_[u] = local;
            --undecided_;
            emit([&] {
              return obs::Event::decision(local, u, /*color=*/-1,
                                          local - schedule_.wake_slot(u));
            });
          }
        } else if (c_prev >= 2 || c_now >= 2) {
          ++stats_.collisions;
          emit([&] {
            return obs::Event::collision((h - offsets_[u]) / 2, u);
          });
        }
      }
      active_[i] = active_.back();
      active_.pop_back();
    }

    ++half_;
    stats_.slots_run = half_ / 2;

    if constexpr (T::kEnabled) {
      if (probe_ != nullptr) {
        obs::telemetry::SlotSample s;
        s.slots = static_cast<std::uint64_t>(stats_.slots_run -
                                             probe_slots_before);
        if (h >= static_cast<std::int64_t>(parity)) {
          s.active = awake_list_[parity].size();
        }
        s.wakes = woken_ - probe_woken_before;
        s.decisions = probe_undecided_before - undecided_;
        s.transmissions = stats_.transmissions - probe_tx_before;
        s.deliveries = stats_.deliveries - probe_deliveries_before;
        s.collisions = stats_.collisions - probe_collisions_before;
        // Awake-but-undecided population: undecided_ counts every node
        // without a decision, including the still-sleeping ones.
        s.undecided = woken_ - (nodes_.size() - undecided_);
        probe_->on_slot(s);
      }
    }
  }

  /// Run until every node is awake and decided, or the local-slot cap.
  ///
  /// Halves in which no node participates (before the first wake of a
  /// sparse schedule) are fast-forwarded: no protocol runs, no counts
  /// change, so `half_` jumps straight to the earliest upcoming start
  /// half.  Requires a pending wake, exactly like Engine::run.
  RunStats run(Slot max_local_slots) {
    URN_CHECK(max_local_slots > 0);
    if constexpr (T::kEnabled) {
      if (probe_ != nullptr) probe_->begin_run();
    }
    const std::int64_t half_cap = 2 * max_local_slots + 2;
    while (half_ < half_cap) {
      if constexpr (C::kEnabled) {
        if (ckpt_ != nullptr) ckpt_->maybe_checkpoint(*this, half_);
      }
      if (awake_list_[0].empty() && awake_list_[1].empty() &&
          (next_wake_[0] < wake_order_[0].size() ||
           next_wake_[1] < wake_order_[1].size())) {
        std::int64_t next = half_cap;
        for (std::size_t p = 0; p < 2; ++p) {
          if (next_wake_[p] < wake_order_[p].size()) {
            const Slot wake =
                schedule_.wake_slot(wake_order_[p][next_wake_[p]]);
            next = std::min(next, 2 * wake + static_cast<std::int64_t>(p));
          }
        }
        if (next > half_) {
          [[maybe_unused]] const Slot slots_before = stats_.slots_run;
          half_ = std::min(next, half_cap);
          stats_.slots_run = half_ / 2;
          if constexpr (T::kEnabled) {
            // Fast-forwarded local slots still count toward engine.slots.
            if (probe_ != nullptr && stats_.slots_run > slots_before) {
              obs::telemetry::SlotSample s;
              s.slots =
                  static_cast<std::uint64_t>(stats_.slots_run - slots_before);
              s.undecided = woken_ - (nodes_.size() - undecided_);
              probe_->on_slot(s);
            }
          }
          if (half_ >= half_cap) break;
        }
      }
      step_half();
      if (all_decided()) break;
    }
    stats_.all_decided = all_decided();
    flush();
    if constexpr (T::kEnabled) {
      if (probe_ != nullptr) probe_->end_run();
    }
    return stats_;
  }

  /// O(1): every node woke, and none is still undecided.
  [[nodiscard]] bool all_decided() const {
    return woken_ == nodes_.size() && undecided_ == 0;
  }

  /// Flush the attached event sink, if any (`run()` does this on exit;
  /// step_half()-driven users call it once capture is complete).
  void flush() {
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) sink_->flush();
    }
  }

  [[nodiscard]] const P& node(graph::NodeId v) const { return nodes_.at(v); }
  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] bool is_awake(graph::NodeId v) const {
    return awake_.at(v) != 0;
  }

  /// Serialize the complete engine state (see Engine::save_state).  The
  /// misaligned engine carries cross-half state — in-flight transmissions
  /// (`active_`), per-parity neighbor counts and their half stamps, and
  /// the per-node transmit-until markers — all of which a mid-flight
  /// delivery at half h reads from half h−1, so a checkpoint at any half
  /// boundary must include them.
  void save_state(obs::postmortem::Writer& w) const {
    w.u64(nodes_.size());
    w.i64(half_);
    w.i64(stats_.slots_run);
    w.u64(stats_.transmissions);
    w.u64(stats_.deliveries);
    w.u64(stats_.collisions);
    w.u64(stats_.dropped);
    w.boolean(stats_.all_decided);
    for (const std::uint8_t a : awake_) w.u8(a);
    for (const Slot s : decision_slot_) w.i64(s);
    w.u64(woken_);
    w.u64(undecided_);
    for (const std::int64_t t : tx_until_half_) w.i64(t);
    for (std::size_t p = 0; p < 2; ++p) {
      for (const std::uint32_t c : nbr_count_[p]) w.u32(c);
      for (const std::int64_t s : nbr_stamp_[p]) w.i64(s);
      w.u64(awake_list_[p].size());
      for (const graph::NodeId v : awake_list_[p]) w.u32(v);
      w.u64(next_wake_[p]);
    }
    w.u64(active_.size());
    for (const ActiveTx& tx : active_) {
      w.u8(static_cast<std::uint8_t>(tx.msg.type));
      w.u32(tx.msg.sender);
      w.i32(tx.msg.color_index);
      w.i64(tx.msg.counter);
      w.u32(tx.msg.target);
      w.i32(tx.msg.tc);
      w.i64(tx.start_half);
    }
    for (const Rng& r : rngs_) obs::postmortem::write_rng(w, r);
    for (const P& node : nodes_) node.save_state(w);
  }

  /// Restore state written by `save_state` into a freshly constructed
  /// engine (same graph/schedule/offsets/seed).  Returns false on a
  /// truncated or inconsistent buffer.
  [[nodiscard]] bool load_state(obs::postmortem::Reader& r) {
    if (r.u64() != nodes_.size()) return false;
    half_ = r.i64();
    stats_.slots_run = r.i64();
    stats_.transmissions = r.u64();
    stats_.deliveries = r.u64();
    stats_.collisions = r.u64();
    stats_.dropped = r.u64();
    stats_.all_decided = r.boolean();
    for (std::uint8_t& a : awake_) a = r.u8();
    for (Slot& s : decision_slot_) s = r.i64();
    woken_ = static_cast<std::size_t>(r.u64());
    undecided_ = static_cast<std::size_t>(r.u64());
    if (woken_ > nodes_.size() || undecided_ > nodes_.size()) return false;
    for (std::int64_t& t : tx_until_half_) t = r.i64();
    for (std::size_t p = 0; p < 2; ++p) {
      for (std::uint32_t& c : nbr_count_[p]) c = r.u32();
      for (std::int64_t& s : nbr_stamp_[p]) s = r.i64();
      const std::uint64_t n_list = r.u64();
      if (!r.ok() || n_list > nodes_.size()) return false;
      awake_list_[p].clear();
      for (std::uint64_t i = 0; i < n_list; ++i) {
        awake_list_[p].push_back(static_cast<graph::NodeId>(r.u32()));
      }
      next_wake_[p] = static_cast<std::size_t>(r.u64());
      if (next_wake_[p] > wake_order_[p].size()) return false;
    }
    const std::uint64_t n_active = r.u64();
    if (!r.ok() || n_active > nodes_.size()) return false;
    active_.clear();
    for (std::uint64_t i = 0; i < n_active; ++i) {
      ActiveTx tx;
      tx.msg.type = static_cast<MsgType>(r.u8());
      tx.msg.sender = static_cast<graph::NodeId>(r.u32());
      tx.msg.color_index = r.i32();
      tx.msg.counter = r.i64();
      tx.msg.target = static_cast<graph::NodeId>(r.u32());
      tx.msg.tc = r.i32();
      tx.start_half = r.i64();
      active_.push_back(tx);
    }
    for (Rng& rng : rngs_) {
      if (!obs::postmortem::read_rng(r, rng)) return false;
    }
    for (P& node : nodes_) {
      if (!node.load_state(r)) return false;
    }
    return r.ok();
  }

  /// Decision time in the node's own local slots (comparable to Engine).
  [[nodiscard]] Slot decision_slot(graph::NodeId v) const {
    return decision_slot_.at(v);
  }
  [[nodiscard]] Slot decision_latency(graph::NodeId v) const {
    URN_CHECK(decision_slot_.at(v) != kUndecided);
    return decision_slot_[v] - schedule_.wake_slot(v);
  }

  static constexpr Slot kUndecided = -1;

 private:
  struct ActiveTx {
    Message msg;
    std::int64_t start_half;
  };

  /// Neighbor count for parity `par` at the half it was stamped for
  /// (0 when the entry is stale — nothing transmitted near u then).
  [[nodiscard]] std::uint32_t count_at(std::size_t par, graph::NodeId u,
                                       std::int64_t expected_half) const {
    return nbr_stamp_[par][u] == expected_half ? nbr_count_[par][u] : 0;
  }

  /// Compiled away entirely for NullSink (see Engine::emit).
  template <typename MakeEvent>
  void emit(MakeEvent&& make) {
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) sink_->record(make());
    }
  }

  [[nodiscard]] SlotContext context(graph::NodeId v, Slot local) {
    SlotContext ctx;
    ctx.id = v;
    ctx.now = local;
    ctx.rng = &rngs_[v];
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) {
        ctx.events_sink = sink_;
        ctx.events_fn = [](void* sink, const obs::Event& e) {
          static_cast<S*>(sink)->record(e);
        };
      }
    }
    return ctx;
  }

  const graph::Graph& graph_;
  WakeSchedule schedule_;
  std::vector<P> nodes_;
  HotStateOf<P> hot_;  ///< SoA hot block (NoHotState when P has none)
  std::vector<std::uint8_t> offsets_;
  S* sink_ = nullptr;
  T* probe_ = nullptr;  ///< telemetry probe (optional)
  C* ckpt_ = nullptr;   ///< postmortem checkpointer (optional)
  std::vector<Rng> rngs_;

  std::int64_t half_ = 0;
  std::vector<std::uint8_t> awake_;
  std::vector<Slot> decision_slot_;
  std::size_t woken_ = 0;      ///< nodes admitted so far
  std::size_t undecided_ = 0;  ///< nodes without a recorded decision
  std::vector<std::int64_t> tx_until_half_;
  std::vector<std::uint32_t> nbr_count_[2];
  std::vector<std::int64_t> nbr_stamp_[2];  ///< half the count is valid for
  std::vector<graph::NodeId> wake_order_[2];  ///< per parity, (wake, id)
  std::vector<graph::NodeId> awake_list_[2];  ///< per parity, wake order
  std::size_t next_wake_[2] = {0, 0};
  std::vector<ActiveTx> active_;

  RunStats stats_;
};

}  // namespace urn::radio
