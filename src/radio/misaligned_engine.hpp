/// \file misaligned_engine.hpp
/// \brief The non-aligned-slots variant of the radio medium (Sect. 2).
///
/// The paper's analysis assumes slot boundaries are synchronized, but
/// notes: "all analytical results carry over to the practical non-aligned
/// case with an additional small constant factor, since each time slot can
/// overlap with at most two time-slots of a neighbor [29]."  This engine
/// implements that case so the claim can be *measured* (experiment E12):
///
///  * global time advances in **half-slots**; each node has a fixed phase
///    offset φ_v ∈ {0, 1} half-slots, so its local slot t occupies global
///    half-slots 2t+φ_v and 2t+φ_v+1 — overlapping at most two local
///    slots of any neighbor, exactly the situation in [29];
///  * a transmission occupies the sender's full local slot (two halves);
///  * a node u receives a transmission from neighbor s iff u was
///    listening (not transmitting) during *both* halves of s's
///    transmission and no other neighbor of u transmitted during either
///    half — the receiver needs the medium clear for the whole frame, but
///    does **not** need slot alignment with the sender;
///  * still no collision detection of any kind.
///
/// Protocols are reused unchanged: callbacks fire once per *local* slot,
/// and all times a protocol sees (ctx.now, decision slots, latencies) are
/// in local slots, directly comparable to radio::Engine's slot counts.

#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "radio/wakeup.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace urn::radio {

template <NodeProtocol P, obs::EventSink S = obs::NullSink>
class MisalignedEngine {
 public:
  /// \param offsets per-node phase offset in half-slots (each 0 or 1)
  /// \param sink    optional event sink (slots in events are *local* slots)
  MisalignedEngine(const graph::Graph& g, WakeSchedule schedule,
                   std::vector<P> nodes, std::vector<std::uint8_t> offsets,
                   std::uint64_t seed, S* sink = nullptr)
      : graph_(g),
        schedule_(std::move(schedule)),
        nodes_(std::move(nodes)),
        offsets_(std::move(offsets)),
        sink_(sink),
        awake_(g.num_nodes(), false),
        decision_slot_(g.num_nodes(), kUndecided),
        tx_until_half_(g.num_nodes(), -1),
        nbr_count_{std::vector<std::uint32_t>(g.num_nodes(), 0),
                   std::vector<std::uint32_t>(g.num_nodes(), 0)} {
    URN_CHECK(nodes_.size() == graph_.num_nodes());
    URN_CHECK(schedule_.size() == graph_.num_nodes());
    URN_CHECK(offsets_.size() == graph_.num_nodes());
    for (std::uint8_t o : offsets_) URN_CHECK(o <= 1);
    rngs_.reserve(graph_.num_nodes());
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      rngs_.emplace_back(mix_seed(seed, v));
    }
  }

  /// Uniformly random offsets, the natural "unsynchronized clocks" model.
  [[nodiscard]] static std::vector<std::uint8_t> random_offsets(
      std::size_t n, Rng& rng) {
    std::vector<std::uint8_t> offsets(n);
    for (auto& o : offsets) o = static_cast<std::uint8_t>(rng.below(2));
    return offsets;
  }

  /// Advance one global half-slot.
  void step_half() {
    const std::int64_t h = half_;
    const std::size_t parity = static_cast<std::size_t>(h & 1);
    std::fill(nbr_count_[parity].begin(), nbr_count_[parity].end(), 0u);

    // (1) Nodes whose local slot starts at this half run their protocol.
    started_now_.clear();
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if ((h - offsets_[v]) < 0 || ((h - offsets_[v]) & 1) != 0) continue;
      const Slot local = (h - offsets_[v]) / 2;
      if (local < schedule_.wake_slot(v)) continue;
      if (!awake_[v]) {
        awake_[v] = true;
        emit([&] { return obs::Event::wake(local, v); });
        SlotContext ctx = context(v, local);
        nodes_[v].on_wake(ctx);
      }
      SlotContext ctx = context(v, local);
      if (std::optional<Message> msg = nodes_[v].on_slot(ctx)) {
        URN_DCHECK(msg->sender == v);
        ++stats_.transmissions;
        emit([&] {
          return obs::Event::transmit(local, v,
                                      static_cast<std::uint8_t>(msg->type),
                                      msg->color_index, msg->counter);
        });
        tx_until_half_[v] = h + 1;  // occupies halves h and h+1
        active_.push_back({*msg, h});
        started_now_.push_back(v);
      }
      if (decision_slot_[v] == kUndecided && nodes_[v].decided()) {
        decision_slot_[v] = local;
        emit([&] {
          return obs::Event::decision(local, v, /*color=*/-1,
                                      local - schedule_.wake_slot(v));
        });
      }
    }

    // (2) Account every ongoing transmission in this half's counts.
    for (const auto& tx : active_) {
      for (graph::NodeId u : graph_.neighbors(tx.msg.sender)) {
        ++nbr_count_[parity][u];
      }
    }

    // (3) Transmissions that started at h−1 complete now: deliver.
    const std::size_t prev = static_cast<std::size_t>((h - 1) & 1);
    for (std::size_t i = 0; i < active_.size();) {
      const ActiveTx& tx = active_[i];
      if (tx.start_half != h - 1) {
        ++i;
        continue;
      }
      for (graph::NodeId u : graph_.neighbors(tx.msg.sender)) {
        if (!awake_[u]) continue;
        // u listening during both halves?
        if (tx_until_half_[u] >= h - 1) continue;
        const bool clear =
            nbr_count_[prev][u] == 1 && nbr_count_[parity][u] == 1;
        if (clear) {
          ++stats_.deliveries;
          const Slot local = (h - offsets_[u]) / 2;
          emit([&] {
            return obs::Event::delivery(
                local, u, tx.msg.sender,
                static_cast<std::uint8_t>(tx.msg.type), tx.msg.color_index);
          });
          SlotContext ctx = context(u, local);
          nodes_[u].on_receive(ctx, tx.msg);
          if (decision_slot_[u] == kUndecided && nodes_[u].decided()) {
            decision_slot_[u] = local;
            emit([&] {
              return obs::Event::decision(local, u, /*color=*/-1,
                                          local - schedule_.wake_slot(u));
            });
          }
        } else if (nbr_count_[prev][u] >= 2 || nbr_count_[parity][u] >= 2) {
          ++stats_.collisions;
          emit([&] {
            return obs::Event::collision((h - offsets_[u]) / 2, u);
          });
        }
      }
      active_[i] = active_.back();
      active_.pop_back();
    }

    ++half_;
    stats_.slots_run = half_ / 2;
  }

  /// Run until every node is awake and decided, or the local-slot cap.
  RunStats run(Slot max_local_slots) {
    URN_CHECK(max_local_slots > 0);
    while (half_ < 2 * max_local_slots + 2) {
      step_half();
      if (all_decided()) break;
    }
    stats_.all_decided = all_decided();
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) sink_->flush();
    }
    return stats_;
  }

  [[nodiscard]] bool all_decided() const {
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (!awake_[v] || decision_slot_[v] == kUndecided) return false;
    }
    return true;
  }

  [[nodiscard]] const P& node(graph::NodeId v) const { return nodes_.at(v); }
  [[nodiscard]] const RunStats& stats() const { return stats_; }

  /// Decision time in the node's own local slots (comparable to Engine).
  [[nodiscard]] Slot decision_slot(graph::NodeId v) const {
    return decision_slot_.at(v);
  }
  [[nodiscard]] Slot decision_latency(graph::NodeId v) const {
    URN_CHECK(decision_slot_.at(v) != kUndecided);
    return decision_slot_[v] - schedule_.wake_slot(v);
  }

  static constexpr Slot kUndecided = -1;

 private:
  struct ActiveTx {
    Message msg;
    std::int64_t start_half;
  };

  /// Compiled away entirely for NullSink (see Engine::emit).
  template <typename MakeEvent>
  void emit(MakeEvent&& make) {
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) sink_->record(make());
    }
  }

  [[nodiscard]] SlotContext context(graph::NodeId v, Slot local) {
    SlotContext ctx;
    ctx.id = v;
    ctx.now = local;
    ctx.awake_for = local - schedule_.wake_slot(v);
    ctx.rng = &rngs_[v];
    if constexpr (S::kEnabled) {
      if (sink_ != nullptr) {
        ctx.events_sink = sink_;
        ctx.events_fn = [](void* sink, const obs::Event& e) {
          static_cast<S*>(sink)->record(e);
        };
      }
    }
    return ctx;
  }

  const graph::Graph& graph_;
  WakeSchedule schedule_;
  std::vector<P> nodes_;
  std::vector<std::uint8_t> offsets_;
  S* sink_ = nullptr;
  std::vector<Rng> rngs_;

  std::int64_t half_ = 0;
  std::vector<bool> awake_;
  std::vector<Slot> decision_slot_;
  std::vector<std::int64_t> tx_until_half_;
  std::vector<std::uint32_t> nbr_count_[2];
  std::vector<ActiveTx> active_;
  std::vector<graph::NodeId> started_now_;

  RunStats stats_;
};

}  // namespace urn::radio
