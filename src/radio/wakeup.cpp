#include "radio/wakeup.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace urn::radio {

WakeSchedule::WakeSchedule(std::vector<Slot> wake_slots)
    : wake_(std::move(wake_slots)) {
  for (Slot s : wake_) URN_CHECK(s >= 0);
}

Slot WakeSchedule::latest() const {
  if (wake_.empty()) return 0;
  return *std::max_element(wake_.begin(), wake_.end());
}

WakeSchedule WakeSchedule::synchronous(std::size_t n) {
  return WakeSchedule(std::vector<Slot>(n, 0));
}

WakeSchedule WakeSchedule::uniform(std::size_t n, Slot window, Rng& rng) {
  URN_CHECK(window >= 0);
  std::vector<Slot> wake(n);
  for (auto& w : wake) {
    w = static_cast<Slot>(rng.below(static_cast<std::uint64_t>(window) + 1));
  }
  return WakeSchedule(std::move(wake));
}

namespace {

std::vector<Slot> permuted(std::vector<Slot> sorted_times, Rng& rng) {
  std::vector<std::size_t> order(sorted_times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<Slot> wake(sorted_times.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    wake[order[i]] = sorted_times[i];
  }
  return wake;
}

}  // namespace

WakeSchedule WakeSchedule::sequential(std::size_t n, Slot gap, Rng& rng) {
  URN_CHECK(gap >= 0);
  std::vector<Slot> times(n);
  for (std::size_t i = 0; i < n; ++i) {
    times[i] = static_cast<Slot>(i) * gap;
  }
  return WakeSchedule(permuted(std::move(times), rng));
}

WakeSchedule WakeSchedule::poisson(std::size_t n, double mean_gap, Rng& rng) {
  URN_CHECK(mean_gap > 0.0);
  std::vector<Slot> times(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(1.0 / mean_gap);
    times[i] = static_cast<Slot>(std::llround(t));
  }
  return WakeSchedule(permuted(std::move(times), rng));
}

WakeSchedule WakeSchedule::wavefront(const std::vector<geom::Vec2>& positions,
                                     double slots_per_unit, Slot jitter,
                                     Rng& rng) {
  URN_CHECK(slots_per_unit >= 0.0 && jitter >= 0);
  double min_x = 0.0;
  if (!positions.empty()) {
    min_x = std::min_element(positions.begin(), positions.end(),
                             [](auto a, auto b) { return a.x < b.x; })
                ->x;
  }
  std::vector<Slot> wake(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double base = (positions[i].x - min_x) * slots_per_unit;
    const auto extra =
        static_cast<Slot>(rng.below(static_cast<std::uint64_t>(jitter) + 1));
    wake[i] = static_cast<Slot>(std::llround(base)) + extra;
  }
  return WakeSchedule(std::move(wake));
}

WakeSchedule WakeSchedule::staged(std::size_t n, std::size_t bursts, Slot gap,
                                  Rng& rng) {
  URN_CHECK(bursts >= 1 && gap >= 0);
  std::vector<Slot> wake(n);
  for (auto& w : wake) {
    w = static_cast<Slot>(rng.below(bursts)) * gap;
  }
  return WakeSchedule(std::move(wake));
}

}  // namespace urn::radio
