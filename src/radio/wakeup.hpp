/// \file wakeup.hpp
/// \brief Asynchronous wake-up schedules (Sect. 2).
///
/// The unstructured radio network model makes *no* assumption about wake-up
/// times; an algorithm must cope with every pattern.  A `WakeSchedule` is
/// simply the wake slot of each node.  The named constructors cover the two
/// extremes the paper calls out (all-synchronous; long sequential gaps) and
/// several adversarial/realistic patterns in between.

#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "radio/message.hpp"
#include "support/rng.hpp"

namespace urn::radio {

/// Per-node wake slots.  Slot 0 is the first slot of the simulation.
class WakeSchedule {
 public:
  WakeSchedule() = default;
  explicit WakeSchedule(std::vector<Slot> wake_slots);

  [[nodiscard]] std::size_t size() const { return wake_.size(); }
  [[nodiscard]] Slot wake_slot(NodeId v) const { return wake_.at(v); }
  [[nodiscard]] Slot latest() const;
  [[nodiscard]] const std::vector<Slot>& slots() const { return wake_; }

  /// All nodes wake at slot 0 (the synchronous extreme).
  [[nodiscard]] static WakeSchedule synchronous(std::size_t n);

  /// Each node wakes uniformly at random in [0, window].
  [[nodiscard]] static WakeSchedule uniform(std::size_t n, Slot window,
                                            Rng& rng);

  /// Node i wakes at i·gap (the sequential extreme; random node order).
  [[nodiscard]] static WakeSchedule sequential(std::size_t n, Slot gap,
                                               Rng& rng);

  /// Poisson arrival process with the given expected inter-arrival gap
  /// (random node order).
  [[nodiscard]] static WakeSchedule poisson(std::size_t n, double mean_gap,
                                            Rng& rng);

  /// Deployment wavefront: wake time proportional to the x-coordinate
  /// (`slots_per_unit` per distance unit) plus uniform jitter — models a
  /// vehicle dropping sensors along a path; adversarial for protocols that
  /// implicitly assume neighbors wake together.
  [[nodiscard]] static WakeSchedule wavefront(
      const std::vector<geom::Vec2>& positions, double slots_per_unit,
      Slot jitter, Rng& rng);

  /// `bursts` groups of equal size waking `gap` slots apart; group
  /// membership is random.  Models staged deployments.
  [[nodiscard]] static WakeSchedule staged(std::size_t n, std::size_t bursts,
                                           Slot gap, Rng& rng);

 private:
  std::vector<Slot> wake_;
};

}  // namespace urn::radio
