/// \file check.hpp
/// \brief Lightweight runtime-check macros used across the library.
///
/// `URN_CHECK` is always on and throws `urn::CheckError` (derived from
/// `std::logic_error`) carrying the failed condition and location.  It is
/// used to validate public API preconditions.  `URN_DCHECK` compiles to a
/// no-op in release builds and guards internal invariants on hot paths.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace urn {

/// Error thrown when a `URN_CHECK` precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "URN_CHECK failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace urn

/// Validate a precondition; throws urn::CheckError on failure.
#define URN_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond))                                                     \
      ::urn::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

/// Validate a precondition with an explanatory message (streamable).
#define URN_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream urn_check_os;                               \
      urn_check_os << msg;                                           \
      ::urn::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                  urn_check_os.str());               \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define URN_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define URN_DCHECK(cond) URN_CHECK(cond)
#endif
