#include "support/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "support/check.hpp"

namespace urn {

namespace {

bool parse_int(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  out = v;
  return true;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  out = v;
  return true;
}

bool parse_bool(const std::string& text, bool& out) {
  if (text == "true" || text == "1" || text == "yes" || text.empty()) {
    out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

void CliFlags::add_string(const std::string& name, std::string default_value,
                          std::string help) {
  URN_CHECK(!flags_.count(name));
  flags_[name] = {Type::kString, default_value, std::move(default_value),
                  std::move(help)};
  order_.push_back(name);
}

void CliFlags::add_int(const std::string& name, std::int64_t default_value,
                       std::string help) {
  URN_CHECK(!flags_.count(name));
  const std::string text = std::to_string(default_value);
  flags_[name] = {Type::kInt, text, text, std::move(help)};
  order_.push_back(name);
}

void CliFlags::add_double(const std::string& name, double default_value,
                          std::string help) {
  URN_CHECK(!flags_.count(name));
  std::ostringstream os;
  os << default_value;
  flags_[name] = {Type::kDouble, os.str(), os.str(), std::move(help)};
  order_.push_back(name);
}

void CliFlags::add_bool(const std::string& name, bool default_value,
                        std::string help) {
  URN_CHECK(!flags_.count(name));
  const std::string text = default_value ? "true" : "false";
  flags_[name] = {Type::kBool, text, text, std::move(help)};
  order_.push_back(name);
}

bool CliFlags::assign(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    error_ = "unknown flag --" + name;
    return false;
  }
  switch (it->second.type) {
    case Type::kInt: {
      std::int64_t v = 0;
      if (!parse_int(value, v)) {
        error_ = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kDouble: {
      double v = 0;
      if (!parse_double(value, v)) {
        error_ = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kBool: {
      bool v = false;
      if (!parse_bool(value, v)) {
        error_ = "flag --" + name + " expects a boolean, got '" + value + "'";
        return false;
      }
      it->second.value = v ? "true" : "false";
      return true;
    }
    case Type::kString:
      break;
  }
  it->second.value = value;
  return true;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument '" + arg + "'";
      return false;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string name, value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare boolean flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        error_ = "flag --" + name + " is missing a value";
        return false;
      }
    }
    if (!assign(name, value)) return false;
  }
  return true;
}

const CliFlags::Flag& CliFlags::require(const std::string& name,
                                        Type type) const {
  const auto it = flags_.find(name);
  URN_CHECK_MSG(it != flags_.end(), "undeclared flag --" << name);
  URN_CHECK_MSG(it->second.type == type, "wrong type for flag --" << name);
  return it->second;
}

std::string CliFlags::get_string(const std::string& name) const {
  return require(name, Type::kString).value;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  std::int64_t v = 0;
  URN_CHECK(parse_int(require(name, Type::kInt).value, v));
  return v;
}

double CliFlags::get_double(const std::string& name) const {
  double v = 0;
  URN_CHECK(parse_double(require(name, Type::kDouble).value, v));
  return v;
}

bool CliFlags::get_bool(const std::string& name) const {
  bool v = false;
  URN_CHECK(parse_bool(require(name, Type::kBool).value, v));
  return v;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n"
       << "      " << f.help << '\n';
  }
  return os.str();
}

}  // namespace urn
