/// \file cli.hpp
/// \brief Minimal command-line flag parsing for the tools and examples.
///
/// Supports `--name=value` and `--name value` forms, `--flag` for
/// booleans, typed accessors with defaults, `--help` text generation, and
/// strict rejection of unknown flags.  No dependencies; deliberately tiny.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace urn {

/// Declarative flag set + parser.
class CliFlags {
 public:
  /// Declare flags before parsing. `help` is shown by usage().
  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  void add_int(const std::string& name, std::int64_t default_value,
               std::string help);
  void add_double(const std::string& name, double default_value,
                  std::string help);
  void add_bool(const std::string& name, bool default_value,
                std::string help);

  /// Parse argv. Returns false (and sets error()) on unknown flags,
  /// missing values, or unparsable numbers.  `--help` sets help_requested.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Human-readable flag summary.
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // current (default or parsed), textual
    std::string default_value;
    std::string help;
  };

  [[nodiscard]] const Flag& require(const std::string& name,
                                    Type type) const;
  bool assign(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace urn
