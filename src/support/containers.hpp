/// \file containers.hpp
/// \brief Flat hot-path containers for per-node protocol state.
///
/// The engine keeps one protocol object per node and touches all of them
/// every slot, so per-node heap blocks (a `std::vector` competitor list, a
/// `std::deque` FIFO) dominate cache behavior at scale.  Two replacements:
///
///  * `SmallVec<T, N>` — a vector with N elements of inline storage.  The
///    common case (|P_v| small, bounded by the critical-range window) never
///    allocates; growth beyond N spills to the heap transparently.
///    Restricted to trivially copyable T so moves/copies are `memcpy`.
///  * `RingQueue<T>` — a power-of-two ring-buffer FIFO replacing
///    `std::deque` (which allocates a map-of-blocks per instance and
///    scatters elements across pages).  Supports exactly the operations
///    the leader service loop needs: push_back / front / pop_front /
///    clear / contains.
///
/// Both are deliberately minimal: no erase-in-middle, no iterator
/// invalidation guarantees beyond "don't mutate while iterating".

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "support/check.hpp"

namespace urn {

/// Vector with inline storage for the first N elements (T trivially
/// copyable).  `clear()` keeps any heap capacity for reuse.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec requires trivially copyable T");
  static_assert(N > 0, "SmallVec requires at least one inline slot");

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { copy_from(other); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }
  SmallVec(SmallVec&& other) noexcept { steal(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  ~SmallVec() { release(); }

  void push_back(const T& value) {
    if (size_ == cap_) grow();
    data_[size_++] = value;
  }
  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  /// True while elements still live in the inline buffer (test hook).
  [[nodiscard]] bool inline_storage() const { return data_ == inline_; }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] T& operator[](std::size_t i) {
    URN_DCHECK(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    URN_DCHECK(i < size_);
    return data_[i];
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* heap = new T[new_cap];
    std::memcpy(static_cast<void*>(heap), static_cast<const void*>(data_),
                size_ * sizeof(T));
    if (data_ != inline_) delete[] data_;
    data_ = heap;
    cap_ = new_cap;
  }

  void release() {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = N;
    size_ = 0;
  }

  void copy_from(const SmallVec& other) {
    if (other.size_ > N) {
      data_ = new T[other.cap_];
      cap_ = other.cap_;
    }
    size_ = other.size_;
    std::memcpy(static_cast<void*>(data_),
                static_cast<const void*>(other.data_), size_ * sizeof(T));
  }

  void steal(SmallVec& other) noexcept {
    if (other.data_ != other.inline_) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      size_ = other.size_;
      std::memcpy(static_cast<void*>(inline_),
                  static_cast<const void*>(other.inline_),
                  size_ * sizeof(T));
      other.size_ = 0;
    }
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t cap_ = N;
  std::size_t size_ = 0;
};

/// Power-of-two ring-buffer FIFO.  Capacity doubles on demand; `clear()`
/// keeps the buffer.  T must be trivially copyable (elements relocate on
/// growth with plain assignment).
template <typename T>
class RingQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingQueue requires trivially copyable T");

 public:
  RingQueue() = default;

  void push_back(const T& value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = value;
    ++count_;
  }

  [[nodiscard]] const T& front() const {
    URN_DCHECK(count_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    URN_DCHECK(count_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// FIFO-order element access (0 = front).
  [[nodiscard]] const T& at(std::size_t i) const {
    URN_DCHECK(i < count_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  [[nodiscard]] bool contains(const T& value) const {
    for (std::size_t i = 0; i < count_; ++i) {
      if (at(i) == value) return true;
    }
    return false;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> fresh(new_cap);
    for (std::size_t i = 0; i < count_; ++i) fresh[i] = at(i);
    buf_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> buf_;  ///< size is always 0 or a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace urn
