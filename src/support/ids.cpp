#include "support/ids.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace urn {

std::vector<std::uint64_t> random_ids(std::size_t n, Rng& rng) {
  URN_CHECK(n >= 1);
  const auto cube = static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n) *
                    static_cast<std::uint64_t>(n);
  std::vector<std::uint64_t> ids(n);
  for (auto& id : ids) id = 1 + rng.below(cube);
  return ids;
}

std::size_t count_id_collisions(const std::vector<std::uint64_t>& ids) {
  std::vector<std::uint64_t> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  std::size_t collisions = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) ++collisions;
  }
  return collisions;
}

double id_collision_bound(std::size_t n) {
  if (n < 2) return 0.0;
  const double nd = static_cast<double>(n);
  return (nd * (nd - 1.0) / 2.0) / (nd * nd * nd);
}

}  // namespace urn
