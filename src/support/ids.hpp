/// \file ids.hpp
/// \brief Random node identifiers (Sect. 2).
///
/// The model only needs IDs so a receiver can tell two senders apart; if
/// hardware provides none, "each node can randomly choose an ID uniformly
/// from the range [1 … n³] upon waking up", with collision probability
/// P ≤ C(n,2)/n³ ∈ O(1/n).  This module implements that scheme and the
/// bound, so experiments can quantify how often ambient ID collisions
/// would actually occur.

#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace urn {

/// Draw `n` IDs uniformly from [1, n³] (independent; collisions possible,
/// exactly as the paper's scheme allows).
[[nodiscard]] std::vector<std::uint64_t> random_ids(std::size_t n, Rng& rng);

/// Number of pairwise collisions in an ID assignment.
[[nodiscard]] std::size_t count_id_collisions(
    const std::vector<std::uint64_t>& ids);

/// The paper's collision-probability bound: C(n,2)/n³ ≤ 1/(2n).
[[nodiscard]] double id_collision_bound(std::size_t n);

}  // namespace urn
