#include "support/mathutil.hpp"

#include <cmath>

#include "support/check.hpp"

namespace urn {

std::uint32_t ceil_log2(std::uint64_t n) {
  if (n <= 1) return 0;
  std::uint32_t bits = 0;
  std::uint64_t value = n - 1;
  while (value > 0) {
    value >>= 1;
    ++bits;
  }
  return bits;
}

double safe_log(std::uint64_t n) {
  if (n <= 2) return 1.0;
  return std::log(static_cast<double>(n));
}

std::int64_t ceil_mul_log(double factor, std::uint64_t n) {
  URN_CHECK(factor >= 0.0);
  const double value = factor * safe_log(n);
  return static_cast<std::int64_t>(std::ceil(value));
}

double fact1_lower(double t, double n) {
  URN_CHECK(n >= 1.0 && std::abs(t) <= n);
  return std::exp(t) * (1.0 - t * t / n);
}

double fact1_upper(double t) { return std::exp(t); }

double fact1_middle(double t, double n) {
  URN_CHECK(n >= 1.0);
  return std::pow(1.0 + t / n, n);
}

}  // namespace urn
