/// \file mathutil.hpp
/// \brief Small integer/real helpers shared across modules.
///
/// The paper's quantities are of the form ⌈c · Δ · log n⌉; `ceil_log2` and
/// `ceil_mul_log` centralize the rounding conventions (Sect. 5: "we consider
/// all non-integer values to be implicitly rounded to the next higher
/// integer").  `fact1_lower`/`fact1_upper` implement Fact 1 of the paper,
/// used by tests to validate the analytical constants.

#pragma once

#include <cstdint>

namespace urn {

/// ⌈log2(n)⌉ for n ≥ 1; returns 0 for n ≤ 1.
[[nodiscard]] std::uint32_t ceil_log2(std::uint64_t n);

/// Natural logarithm of n, with log(n ≤ 1) pinned to 1.0 so that the
/// paper's ⌈c·Δ·log n⌉ quantities never collapse to zero on toy inputs.
[[nodiscard]] double safe_log(std::uint64_t n);

/// ⌈factor · log n⌉ as a positive integer (the paper's rounding rule).
[[nodiscard]] std::int64_t ceil_mul_log(double factor, std::uint64_t n);

/// ⌈a / b⌉ for positive integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Fact 1 (lower): e^t (1 - t²/n) ≤ (1 + t/n)^n, valid for n ≥ 1, |t| ≤ n.
[[nodiscard]] double fact1_lower(double t, double n);

/// Fact 1 (upper): (1 + t/n)^n ≤ e^t.
[[nodiscard]] double fact1_upper(double t);

/// (1 + t/n)^n evaluated directly; the quantity Fact 1 brackets.
[[nodiscard]] double fact1_middle(double t, double n);

}  // namespace urn
