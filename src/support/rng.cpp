#include "support/rng.hpp"

#include <cmath>

namespace urn {

double Rng::exponential(double rate) {
  URN_DCHECK(rate > 0.0);
  // -log(1 - U) with U in [0,1) avoids log(0).
  return -std::log1p(-uniform()) / rate;
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

}  // namespace urn
