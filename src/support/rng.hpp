/// \file rng.hpp
/// \brief Deterministic, fast pseudo-random number generation.
///
/// The whole library is seed-deterministic: every randomized component takes
/// an explicit `Rng` (or a seed) so that experiments replay bit-identically.
/// The generator is xoshiro256** seeded via splitmix64 — fast, high quality,
/// and independent of the standard library's unspecified distributions
/// (libstdc++/libc++ produce different streams from `std::uniform_*`; we do
/// not use them).

#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/check.hpp"

namespace urn {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix two 64-bit values into one; used to derive per-entity sub-seeds
/// (e.g. per-node, per-trial) from a master seed without correlation.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a,
                                               std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** 1.0 — public-domain algorithm by Blackman & Vigna.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can also
/// drive `std::shuffle` etc. where stream stability does not matter.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// \pre bound > 0
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    URN_DCHECK(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  /// \pre lo <= hi
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    URN_DCHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Standard exponential variate with the given rate.
  /// \pre rate > 0
  [[nodiscard]] double exponential(double rate);

  /// Standard normal variate (Marsaglia polar method).
  [[nodiscard]] double normal();

  /// Fisher–Yates shuffle with this generator's stable stream.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A new generator whose stream is decorrelated from this one.
  [[nodiscard]] Rng split() { return Rng(mix_seed((*this)(), (*this)())); }

  /// Complete generator state.  `normal()` caches a spare variate between
  /// calls, so the snapshot carries it too — restoring and replaying
  /// reproduces the stream draw-for-draw, not just word-for-word.
  struct Snapshot {
    std::array<std::uint64_t, 4> state{};
    bool have_spare_normal = false;
    double spare_normal = 0.0;
  };

  [[nodiscard]] Snapshot snapshot() const {
    return Snapshot{state_, have_spare_normal_, spare_normal_};
  }

  void restore(const Snapshot& s) {
    state_ = s.state;
    have_spare_normal_ = s.have_spare_normal;
    spare_normal_ = s.spare_normal;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace urn
