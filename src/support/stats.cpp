#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace urn {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add_all(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

void Samples::merge(const Samples& other) {
  values_.insert(values_.end(), other.values_.begin(),
                 other.values_.end());
  sorted_valid_ = false;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  ensure_sorted();
  URN_CHECK(!sorted_.empty());
  return sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  URN_CHECK(!sorted_.empty());
  return sorted_.back();
}

double Samples::percentile(double p) const {
  ensure_sorted();
  URN_CHECK(!sorted_.empty());
  URN_CHECK(p >= 0.0 && p <= 100.0);
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  URN_CHECK(xs.size() == ys.size());
  URN_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy == 0.0) {
    fit.r_squared = 1.0;
  } else {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  }
  return fit;
}

}  // namespace urn
