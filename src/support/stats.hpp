/// \file stats.hpp
/// \brief Streaming and batch statistics used by the experiment harness.
///
/// `Accumulator` is a Welford-style streaming mean/variance/min/max;
/// `Samples` retains values for order statistics (percentiles, median).
/// Both are deliberately simple value types so experiment code can aggregate
/// thousands of trials without allocation churn.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace urn {

/// Streaming mean / variance / extrema (Welford's online algorithm).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel-combine rule).
  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Value-retaining sample set with percentile queries.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_valid_ = false;
  }
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, p in [0, 100]. \pre non-empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Append `other`'s samples after this one's, preserving their order.
  /// Merging any in-order partition of a sample stream is exactly
  /// equivalent to having added the whole stream to one `Samples` —
  /// every statistic (count, min, max, mean, percentiles) is
  /// bit-identical — which is what makes parallel trial aggregation
  /// (exec::parallel_for_trials) safe.
  void merge(const Samples& other);

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Least-squares fit y ≈ a + b·x; used to check scaling *shapes*
/// (e.g. decision time linear in Δ, logarithmic in n).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1].
  double r_squared = 0.0;
};

/// Fit a line through (x, y) pairs. \pre xs.size() == ys.size() >= 2.
[[nodiscard]] LinearFit fit_line(const std::vector<double>& xs,
                                 const std::vector<double>& ys);

}  // namespace urn
