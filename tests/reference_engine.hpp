/// \file reference_engine.hpp
/// \brief A deliberately naive re-implementation of the radio medium used
///        ONLY for differential testing.
///
/// Same semantics and same randomness derivation as radio::Engine, but
/// written in the most obvious way possible (full arrays rebuilt every
/// slot, no epoch stamps, no touched-listener lists, no counters, no
/// fast-forward).  The differential tests run identical protocols on both
/// engines and demand bit-identical outcomes; any divergence pinpoints a
/// bug in the optimized engine's bookkeeping.
///
/// Two details are a *specification* shared with the optimized engine,
/// because they fix the medium-RNG draw sequence when drop_probability
/// is positive (per-node streams and aggregate stats are order-blind):
///
///  1. Node iteration order: (wake slot, id) ascending while nodes are
///     still waking; ascending id from the slot the last node wakes.
///  2. Per-slot listener processing order: walk transmitters in that node
///     order, each transmitter's neighbors in adjacency order, and
///     process every live awake listener at its FIRST visit only.  A
///     clean (count == 1) listener that is not itself transmitting draws
///     the drop chance from the medium RNG at that moment.

#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "radio/wakeup.hpp"
#include "support/rng.hpp"

namespace urn::testing {

template <radio::NodeProtocol P>
class ReferenceEngine {
 public:
  ReferenceEngine(const graph::Graph& g, radio::WakeSchedule schedule,
                  std::vector<P> nodes, std::uint64_t seed,
                  radio::MediumOptions medium = {})
      : graph_(g),
        schedule_(std::move(schedule)),
        nodes_(std::move(nodes)),
        hot_(g.num_nodes()),
        medium_(medium),
        medium_rng_(mix_seed(seed, 0xFADEDull)) {
    if constexpr (radio::kHasHotState<P>) {
      // SoA protocols (core::ColoringNode) keep hot state in an
      // engine-owned block; the reference engine attaches like the real
      // engines do but always runs the naive scalar loop.
      for (P& node : nodes_) node.attach_hot(&hot_);
    }
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      rngs_.emplace_back(mix_seed(seed, v));
    }
    awake_.assign(graph_.num_nodes(), false);
    dead_.assign(graph_.num_nodes(), false);
    decision_slot_.assign(graph_.num_nodes(), -1);
  }

  void step() {
    const radio::Slot now = slot_;
    const std::size_t n = graph_.num_nodes();

    // Wake (any order; per-node RNG streams are independent).  Dead
    // nodes still wake — on_wake fires — but never participate.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!awake_[v] && schedule_.wake_slot(v) <= now) {
        awake_[v] = true;
        auto ctx = context(v, now);
        nodes_[v].on_wake(ctx);
      }
    }

    // The shared iteration-order spec (see file comment), rebuilt from
    // scratch every slot.
    std::vector<graph::NodeId> order;
    bool all_woken = true;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (awake_[v] && !dead_[v]) order.push_back(v);
      if (!awake_[v]) all_woken = false;
    }
    if (!all_woken) {
      std::sort(order.begin(), order.end(),
                [this](graph::NodeId a, graph::NodeId b) {
                  const radio::Slot wa = schedule_.wake_slot(a);
                  const radio::Slot wb = schedule_.wake_slot(b);
                  return wa != wb ? wa < wb : a < b;
                });
    }

    // Collect transmissions in that order.
    std::vector<std::optional<radio::Message>> tx(n);
    std::vector<graph::NodeId> transmitters;
    for (graph::NodeId v : order) {
      auto ctx = context(v, now);
      tx[v] = nodes_[v].on_slot(ctx);
      if (tx[v]) {
        ++stats_.transmissions;
        transmitters.push_back(v);
      }
    }

    // Deliver: every live awake listener is processed at its first visit
    // in transmitter-major order; talkers are recounted from scratch.
    std::vector<bool> processed(n, false);
    for (graph::NodeId sender : transmitters) {
      for (graph::NodeId u : graph_.neighbors(sender)) {
        if (!awake_[u] || dead_[u] || processed[u]) continue;
        processed[u] = true;
        if (tx[u].has_value()) continue;  // transmitting: cannot receive
        std::size_t talkers = 0;
        graph::NodeId talker = graph::kInvalidNode;
        for (graph::NodeId w : graph_.neighbors(u)) {
          if (tx[w].has_value()) {
            ++talkers;
            talker = w;
          }
        }
        if (talkers == 1) {
          if (medium_.drop_probability > 0.0 &&
              medium_rng_.chance(medium_.drop_probability)) {
            ++stats_.dropped;
          } else {
            ++stats_.deliveries;
            auto ctx = context(u, now);
            nodes_[u].on_receive(ctx, *tx[talker]);
          }
        } else if (talkers >= 2) {
          ++stats_.collisions;
        }
      }
    }

    for (graph::NodeId v = 0; v < n; ++v) {
      if (awake_[v] && !dead_[v] && decision_slot_[v] == -1 &&
          nodes_[v].decided()) {
        decision_slot_[v] = now;
      }
    }
    ++slot_;
    stats_.slots_run = slot_;
  }

  /// Mirrors Engine::run's loop (step, then stop once all decided) —
  /// minus the fast-forward, which must be unobservable in the results.
  radio::RunStats run(radio::Slot max_slots) {
    while (slot_ < max_slots) {
      step();
      if (all_decided()) break;
    }
    stats_.all_decided = all_decided();
    return stats_;
  }

  void run_until_all_decided(radio::Slot max_slots) { run(max_slots); }

  /// Same semantics as Engine::deactivate, including idempotence.
  void deactivate(graph::NodeId v) { dead_.at(v) = true; }

  [[nodiscard]] bool all_decided() const {
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (!awake_[v]) return false;  // everyone must wake, even dead
      if (!dead_[v] && decision_slot_[v] == -1) return false;
    }
    return true;
  }

  [[nodiscard]] const P& node(graph::NodeId v) const { return nodes_.at(v); }
  [[nodiscard]] radio::Slot decision_slot(graph::NodeId v) const {
    return decision_slot_.at(v);
  }
  [[nodiscard]] const radio::RunStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t transmissions() const {
    return stats_.transmissions;
  }
  [[nodiscard]] std::uint64_t deliveries() const { return stats_.deliveries; }
  [[nodiscard]] std::uint64_t collisions() const { return stats_.collisions; }

 private:
  [[nodiscard]] radio::SlotContext context(graph::NodeId v, radio::Slot now) {
    radio::SlotContext ctx;
    ctx.id = v;
    ctx.now = now;
    ctx.rng = &rngs_[v];
    return ctx;
  }

  const graph::Graph& graph_;
  radio::WakeSchedule schedule_;
  std::vector<P> nodes_;
  radio::HotStateOf<P> hot_;
  radio::MediumOptions medium_;
  Rng medium_rng_;
  std::vector<Rng> rngs_;
  std::vector<bool> awake_;
  std::vector<bool> dead_;
  std::vector<radio::Slot> decision_slot_;
  radio::Slot slot_ = 0;
  radio::RunStats stats_;
};

}  // namespace urn::testing
