/// \file reference_engine.hpp
/// \brief A deliberately naive re-implementation of the radio medium used
///        ONLY for differential testing.
///
/// Same semantics and same per-node randomness derivation as
/// radio::Engine, but written in the most obvious way possible (full
/// arrays cleared every slot, no epoch stamps, no early-outs).  The
/// differential tests run identical protocols on both engines and demand
/// bit-identical outcomes; any divergence pinpoints a bug in the optimized
/// engine's bookkeeping.

#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "radio/engine.hpp"
#include "radio/message.hpp"
#include "radio/wakeup.hpp"
#include "support/rng.hpp"

namespace urn::testing {

template <radio::NodeProtocol P>
class ReferenceEngine {
 public:
  ReferenceEngine(const graph::Graph& g, radio::WakeSchedule schedule,
                  std::vector<P> nodes, std::uint64_t seed)
      : graph_(g), schedule_(std::move(schedule)), nodes_(std::move(nodes)) {
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      rngs_.emplace_back(mix_seed(seed, v));
    }
    awake_.assign(graph_.num_nodes(), false);
    decision_slot_.assign(graph_.num_nodes(), -1);
  }

  void step() {
    const radio::Slot now = slot_;
    const std::size_t n = graph_.num_nodes();

    // Wake (any order; engine wakes in schedule order — same calls).
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!awake_[v] && schedule_.wake_slot(v) <= now) {
        awake_[v] = true;
        auto ctx = context(v, now);
        nodes_[v].on_wake(ctx);
      }
    }

    // Collect transmissions in node order.
    std::vector<std::optional<radio::Message>> tx(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!awake_[v]) continue;
      auto ctx = context(v, now);
      tx[v] = nodes_[v].on_slot(ctx);
      if (tx[v]) ++transmissions_;
    }

    // Deliver: for every listening awake node, count transmitting
    // neighbors from scratch.
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!awake_[v] || tx[v].has_value()) continue;
      std::size_t talkers = 0;
      graph::NodeId talker = graph::kInvalidNode;
      for (graph::NodeId u : graph_.neighbors(v)) {
        if (tx[u].has_value()) {
          ++talkers;
          talker = u;
        }
      }
      if (talkers == 1) {
        auto ctx = context(v, now);
        nodes_[v].on_receive(ctx, *tx[talker]);
        ++deliveries_;
      } else if (talkers >= 2) {
        ++collisions_;
      }
    }

    for (graph::NodeId v = 0; v < n; ++v) {
      if (awake_[v] && decision_slot_[v] == -1 && nodes_[v].decided()) {
        decision_slot_[v] = now;
      }
    }
    ++slot_;
  }

  void run_until_all_decided(radio::Slot max_slots) {
    while (slot_ < max_slots && !all_decided()) step();
  }

  [[nodiscard]] bool all_decided() const {
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (!awake_[v] || decision_slot_[v] == -1) return false;
    }
    return true;
  }

  [[nodiscard]] const P& node(graph::NodeId v) const { return nodes_.at(v); }
  [[nodiscard]] radio::Slot decision_slot(graph::NodeId v) const {
    return decision_slot_.at(v);
  }
  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

 private:
  [[nodiscard]] radio::SlotContext context(graph::NodeId v, radio::Slot now) {
    radio::SlotContext ctx;
    ctx.id = v;
    ctx.now = now;
    ctx.awake_for = now - schedule_.wake_slot(v);
    ctx.rng = &rngs_[v];
    return ctx;
  }

  const graph::Graph& graph_;
  radio::WakeSchedule schedule_;
  std::vector<P> nodes_;
  std::vector<Rng> rngs_;
  std::vector<bool> awake_;
  std::vector<radio::Slot> decision_slot_;
  radio::Slot slot_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace urn::testing
