// Tests for the analysis module: tables, CSV export, trial aggregation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace urn::analysis {
namespace {

// ------------------------------------------------------------------ table -

TEST(Table, PrintsAlignedColumns) {
  Table t("demo", "Demo table");
  t.set_header({"x", "value"});
  t.add_row({"1", "10.00"});
  t.add_row({"100", "3.14"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo table"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t("demo", "Demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, HeaderFrozenAfterRows) {
  Table t("demo", "Demo");
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.set_header({"a", "b"}), CheckError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-42)), "-42");
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(7)), "7");
}

TEST(Table, CsvRoundTrip) {
  Table t("csv_roundtrip_test", "CSV");
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string path = t.write_csv("/tmp");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(Table, CsvToMissingDirectoryFails) {
  Table t("nope", "x");
  t.set_header({"a"});
  EXPECT_THROW((void)t.write_csv("/nonexistent_dir_urn"), CheckError);
}

// -------------------------------------------------------------- schedules -

TEST(ScheduleFactories, SynchronousProducesZeros) {
  const auto factory = synchronous_schedule(5);
  const auto ws = factory(123);
  EXPECT_EQ(ws.latest(), 0);
  EXPECT_EQ(ws.size(), 5u);
}

TEST(ScheduleFactories, UniformIsDeterministicPerSeed) {
  const auto factory = uniform_schedule(50, 1000);
  const auto a = factory(7);
  const auto b = factory(7);
  const auto c = factory(8);
  EXPECT_EQ(a.slots(), b.slots());
  EXPECT_NE(a.slots(), c.slots());
}

// ------------------------------------------------------------- aggregate --

TEST(Aggregate, CountsValidAndCompleted) {
  CoreAggregate agg;
  core::RunResult ok;
  ok.colors = {0, 1};
  ok.check.correct = true;
  ok.check.complete = true;
  ok.all_decided = true;
  ok.latency = {10, 20};
  ok.max_color = 1;
  ok.num_leaders = 1;
  record_run(agg, ok);

  core::RunResult bad;
  bad.colors = {0, graph::kUncolored};
  bad.check.correct = true;
  bad.check.complete = false;
  bad.all_decided = false;
  bad.latency = {10};
  bad.max_color = 0;
  record_run(agg, bad);

  EXPECT_EQ(agg.trials, 2u);
  EXPECT_EQ(agg.valid, 1u);
  EXPECT_EQ(agg.completed, 1u);
  EXPECT_DOUBLE_EQ(agg.valid_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(agg.completed_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(agg.max_latency.max(), 20.0);
}

TEST(Aggregate, EmptyFractionsAreZero) {
  const CoreAggregate agg;
  EXPECT_DOUBLE_EQ(agg.valid_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(agg.completed_fraction(), 0.0);
}

// --------------------------------------------------------- trial running --

TEST(Trials, RunsRequestedCountAndIsDeterministic) {
  Rng rng(60);
  const auto net = graph::random_udg(50, 5.0, 1.4, rng);
  const auto delta = net.graph.max_closed_degree();
  const auto p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 10);
  const auto factory = synchronous_schedule(net.graph.num_nodes());
  const auto a = run_core_trials(net.graph, p, factory, 3, 42);
  const auto b = run_core_trials(net.graph, p, factory, 3, 42);
  EXPECT_EQ(a.trials, 3u);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_DOUBLE_EQ(a.max_latency.mean(), b.max_latency.mean());
  EXPECT_EQ(a.slots_run.count(), 3u);
}

TEST(Trials, DifferentMasterSeedsDiffer) {
  Rng rng(61);
  const auto net = graph::random_udg(50, 5.0, 1.4, rng);
  const auto delta = net.graph.max_closed_degree();
  const auto p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 10);
  const auto factory = synchronous_schedule(net.graph.num_nodes());
  const auto a = run_core_trials(net.graph, p, factory, 2, 1);
  const auto b = run_core_trials(net.graph, p, factory, 2, 2);
  EXPECT_NE(a.slots_run.mean(), b.slots_run.mean());
}

}  // namespace
}  // namespace urn::analysis
