// Tests for the baseline algorithms: rand-verify (Busch-style) in the
// radio model, and the idealized message-passing references.

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/message_passing.hpp"
#include "baselines/rand_verify.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "support/rng.hpp"

namespace urn::baselines {
namespace {

// ---------------------------------------------------------- rand-verify ---

RandVerifyParams rv_params(std::uint64_t n, std::uint32_t delta) {
  RandVerifyParams p;
  p.n = n;
  p.delta = delta;
  return p;
}

TEST(RandVerify, IsolatedNodeDecides) {
  const graph::Graph g = graph::empty_graph(1);
  const auto r = run_rand_verify(g, rv_params(16, 2),
                                 radio::WakeSchedule::synchronous(1), 1,
                                 200000);
  ASSERT_TRUE(r.all_decided);
  EXPECT_TRUE(r.check.valid());
}

TEST(RandVerify, PathGraphColorsProperly) {
  const graph::Graph g = graph::path_graph(8);
  const auto r = run_rand_verify(g, rv_params(16, 3),
                                 radio::WakeSchedule::synchronous(8), 2,
                                 500000);
  ASSERT_TRUE(r.all_decided);
  EXPECT_TRUE(r.check.valid());
}

class RandVerifySweep : public ::testing::TestWithParam<int> {};

TEST_P(RandVerifySweep, ValidColoringWithinPaletteOnUdg) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 5);
  const auto net = graph::random_udg(60, 6.5, 1.3, rng);
  const auto delta = net.graph.max_closed_degree();
  const RandVerifyParams p = rv_params(net.graph.num_nodes(), delta);
  const auto r = run_rand_verify(
      net.graph, p, radio::WakeSchedule::synchronous(net.graph.num_nodes()),
      static_cast<std::uint64_t>(GetParam()), 4000000);
  ASSERT_TRUE(r.all_decided);
  EXPECT_TRUE(r.check.valid());
  EXPECT_LT(r.max_color, p.palette());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandVerifySweep, ::testing::Range(0, 5));

TEST(RandVerify, AsynchronousWakeupStillValid) {
  Rng rng(7);
  const auto net = graph::random_udg(50, 6.0, 1.3, rng);
  const auto delta = net.graph.max_closed_degree();
  Rng wrng(8);
  const auto ws =
      radio::WakeSchedule::uniform(net.graph.num_nodes(), 5000, wrng);
  const auto r = run_rand_verify(net.graph, rv_params(50, delta), ws, 3,
                                 4000000);
  ASSERT_TRUE(r.all_decided);
  EXPECT_TRUE(r.check.valid());
}

TEST(RandVerifyParamsTest, DerivedQuantities) {
  RandVerifyParams p;
  p.n = 100;
  p.delta = 10;
  EXPECT_GT(p.verify_slots(), p.listen_slots());  // Δ² vs Δ
  EXPECT_GE(p.palette(), static_cast<std::int32_t>(p.delta) + 1);
  EXPECT_DOUBLE_EQ(p.p_send(), 0.1);
}

// ------------------------------------------------------------- Luby MIS ---

class LubySweep : public ::testing::TestWithParam<int> {};

TEST_P(LubySweep, ProducesMaximalIndependentSet) {
  Rng grng(static_cast<std::uint64_t>(GetParam()) * 31 + 3);
  const auto net = graph::random_udg(120, 7.0, 1.4, grng);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const MisResult mis = luby_mis(net.graph, rng);
  EXPECT_TRUE(graph::is_maximal_independent_set(net.graph, mis.mis));
  EXPECT_GT(mis.rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubySweep, ::testing::Range(0, 6));

TEST(Luby, EmptyGraphSelectsEveryone) {
  Rng rng(1);
  const MisResult mis = luby_mis(graph::empty_graph(10), rng);
  EXPECT_EQ(mis.mis.size(), 10u);
  EXPECT_EQ(mis.rounds, 1u);
}

TEST(Luby, CompleteGraphSelectsOne) {
  Rng rng(2);
  const MisResult mis = luby_mis(graph::complete_graph(20), rng);
  EXPECT_EQ(mis.mis.size(), 1u);
}

TEST(Luby, RoundsLogarithmicInPractice) {
  Rng grng(3);
  const auto g = graph::gnp(300, 0.05, grng);
  Rng rng(4);
  const MisResult mis = luby_mis(g, rng);
  EXPECT_LE(mis.rounds, 40u);  // ≈ c·log n with generous slack
}

// --------------------------------------------- message-passing coloring ---

class MpColoringSweep : public ::testing::TestWithParam<int> {};

TEST_P(MpColoringSweep, ValidWithinDeltaPlusOne) {
  Rng grng(static_cast<std::uint64_t>(GetParam()) * 41 + 11);
  const auto net = graph::random_udg(150, 7.0, 1.4, grng);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const MpColoringResult r = mp_random_coloring(net.graph, rng);
  EXPECT_TRUE(graph::validate(net.graph, r.colors).valid());
  EXPECT_LE(graph::max_color(r.colors),
            static_cast<graph::Color>(net.graph.max_degree()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpColoringSweep, ::testing::Range(0, 6));

TEST(MpColoring, PathUsesFewColors) {
  Rng rng(5);
  const MpColoringResult r = mp_random_coloring(graph::path_graph(50), rng);
  EXPECT_TRUE(graph::validate(graph::path_graph(50), r.colors).valid());
  EXPECT_LE(graph::max_color(r.colors), 2);
}

TEST(MpColoring, CompleteGraphNeedsAllColors) {
  Rng rng(6);
  const graph::Graph g = graph::complete_graph(8);
  const MpColoringResult r = mp_random_coloring(g, rng);
  EXPECT_TRUE(graph::validate(g, r.colors).valid());
  EXPECT_EQ(graph::distinct_colors(r.colors), 8u);
}

TEST(MpColoring, RoundsSmallOnSparseGraphs) {
  Rng grng(7);
  const auto g = graph::gnp(400, 0.02, grng);
  Rng rng(8);
  const MpColoringResult r = mp_random_coloring(g, rng);
  EXPECT_LE(r.rounds, 40u);
}

TEST(MpColoring, EdgelessGraphOneRound) {
  Rng rng(9);
  const MpColoringResult r = mp_random_coloring(graph::empty_graph(5), rng);
  EXPECT_EQ(r.rounds, 1u);
  for (graph::Color c : r.colors) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace urn::baselines
