// Tests for the compact binary trace pipeline: the BinSink record format
// and its reader, ring ("flight recorder") mode, format auto-detection,
// monitor replay from binary captures, wall-clock span timelines, and the
// Chrome trace-event export.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "exec/parallel.hpp"
#include "graph/generators.hpp"
#include "obs/bintrace.hpp"
#include "obs/chrome.hpp"
#include "obs/event.hpp"
#include "obs/monitor.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "radio/engine.hpp"
#include "support/rng.hpp"

namespace urn::obs {
namespace {

// ------------------------- shared run machinery ---------------------------

/// Run a real protocol execution with `sink` attached; the graph,
/// schedule and all RNG streams are pure functions of `seed`, so two
/// calls with the same seed see the identical event stream.
template <typename S>
radio::RunStats run_with_sink(std::uint64_t seed, std::size_t n, S* sink,
                              core::Params* params_out = nullptr,
                              SpanSink* spans = nullptr) {
  Rng rng(seed);
  auto net = graph::random_udg(n, 5.5, 1.4, rng);
  const graph::Graph g = std::move(net.graph);
  const auto delta = std::max(2u, g.max_closed_degree());
  const auto params = core::Params::practical(g.num_nodes(), delta, 5, 12);
  if (params_out != nullptr) *params_out = params;

  std::vector<core::ColoringNode> nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes.emplace_back(&params, v);
  }
  Rng wrng(mix_seed(seed, 5));
  radio::Engine<core::ColoringNode, S> engine(
      g, radio::WakeSchedule::uniform(g.num_nodes(), 400, wrng),
      std::move(nodes), seed, {}, sink);
  engine.set_span_sink(spans);
  return engine.run(core::default_slot_budget(params, engine.schedule()));
}

/// Every kind with extreme field values (the binary record must carry
/// the full domain of each field, not just what real runs produce).
std::vector<Event> extreme_events() {
  constexpr Slot kSlotMax = std::numeric_limits<Slot>::max();
  constexpr Slot kSlotMin = std::numeric_limits<Slot>::min();
  constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
  constexpr std::int32_t kI32Max = std::numeric_limits<std::int32_t>::max();
  constexpr std::int32_t kI32Min = std::numeric_limits<std::int32_t>::min();
  constexpr NodeId kNodeMax = kNoNode;  // UINT32_MAX
  return {
      Event::wake(kSlotMax, kNodeMax),
      Event::wake(kSlotMin, 0),
      Event::transmit(kSlotMax, kNodeMax,
                      static_cast<std::uint8_t>(MsgCode::kCompete), kI32Max,
                      kI64Max),
      Event::transmit(kSlotMin, 0,
                      static_cast<std::uint8_t>(MsgCode::kRequest), kI32Min,
                      kI64Min),
      Event::delivery(0, kNodeMax, kNodeMax - 1,
                      static_cast<std::uint8_t>(MsgCode::kAssign), kI32Min),
      Event::collision(kSlotMax, kNodeMax),
      Event::drop(-1, kNodeMax, 0,
                  static_cast<std::uint8_t>(MsgCode::kDecided)),
      Event::phase_change(kSlotMax, kNodeMax,
                          static_cast<std::uint8_t>(PhaseCode::kDecided),
                          kI32Max),
      Event::reset(kSlotMin, kNodeMax, kI32Min, kI64Min),
      Event::decision(kSlotMax, kNodeMax, kI32Max, kI64Max),
      Event::serve(kSlotMin, kNodeMax, kNodeMax, kI64Min),
  };
}

// ----------------------------- record codec -------------------------------

TEST(BinRecord, RoundTripsEveryKindWithExtremeValues) {
  for (const Event& e : extreme_events()) {
    std::string buf;
    append_bin(buf, e);
    ASSERT_EQ(buf.size(), kBinRecordSize);
    Event back;
    ASSERT_TRUE(parse_bin_record(
        reinterpret_cast<const unsigned char*>(buf.data()), back));
    EXPECT_EQ(back, e) << kind_name(e.kind);
  }
}

TEST(BinRecord, RejectsOutOfRangeKind) {
  std::string buf;
  append_bin(buf, Event::wake(1, 2));
  buf[28] = static_cast<char>(kNumEventKinds);  // first invalid kind byte
  Event back;
  EXPECT_FALSE(parse_bin_record(
      reinterpret_cast<const unsigned char*>(buf.data()), back));
}

// ----------------------------- BinSink file -------------------------------

TEST(BinSink, RoundTripMatchesMemorySinkCaptureOfSameRun) {
  const std::string path = ::testing::TempDir() + "bintrace_roundtrip.bin";
  MemorySink memory;
  const auto mem_stats = run_with_sink(/*seed=*/71, 48, &memory);
  ASSERT_TRUE(mem_stats.all_decided);
  ASSERT_GT(memory.size(), 0u);

  {
    BinSink bin(path);
    ASSERT_TRUE(bin.ok());
    const auto bin_stats = run_with_sink(/*seed=*/71, 48, &bin);
    EXPECT_EQ(bin_stats.slots_run, mem_stats.slots_run);
    EXPECT_EQ(bin.written(), memory.size());
    EXPECT_EQ(bin.retained(), memory.size());
  }

  const ParsedBinFile parsed = read_bin_file(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_FALSE(parsed.ring);
  EXPECT_EQ(parsed.dropped, 0u);
  EXPECT_EQ(parsed.bad_records, 0u);
  ASSERT_EQ(parsed.events.size(), memory.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    ASSERT_EQ(parsed.events[i], memory.events()[i]) << "event " << i;
  }
  std::remove(path.c_str());
}

TEST(BinSink, StepDrivenEngineFlushMakesEventsReadable) {
  // step()-driven users never pass through run()'s automatic flush;
  // Engine::flush() must make everything captured so far readable while
  // the engine (and sink) stay live for further stepping.
  const std::string path = ::testing::TempDir() + "bintrace_stepflush.bin";
  Rng rng(91);
  auto net = graph::random_udg(48, 5.5, 1.4, rng);
  const graph::Graph g = std::move(net.graph);
  const auto delta = std::max(2u, g.max_closed_degree());
  const auto params = core::Params::practical(g.num_nodes(), delta, 5, 12);
  std::vector<core::ColoringNode> nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes.emplace_back(&params, v);
  }
  BinSink sink(path);
  ASSERT_TRUE(sink.ok());
  radio::Engine<core::ColoringNode, BinSink> engine(
      g, radio::WakeSchedule::synchronous(g.num_nodes()), std::move(nodes),
      91, {}, &sink);
  for (int s = 0; s < 200; ++s) engine.step();
  engine.flush();

  const ParsedBinFile parsed = read_bin_file(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.events.size(), sink.written());
  ASSERT_GT(parsed.events.size(), 0u);
  std::remove(path.c_str());
}

TEST(BinSink, SyntheticExtremesSurviveTheFile) {
  const std::string path = ::testing::TempDir() + "bintrace_extremes.bin";
  const std::vector<Event> events = extreme_events();
  {
    BinSink sink(path);
    ASSERT_TRUE(sink.ok());
    for (const Event& e : events) sink.record(e);
  }
  const ParsedBinFile parsed = read_bin_file(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed.events[i], events[i]) << "event " << i;
  }
  std::remove(path.c_str());
}

TEST(BinSink, RingModeRetainsExactlyTheLastNEvents) {
  const std::string path = ::testing::TempDir() + "bintrace_ring.bin";
  constexpr std::size_t kCap = 64;
  constexpr Slot kTotal = 1000;
  {
    BinSink sink(path, kCap);
    ASSERT_TRUE(sink.ok());
    EXPECT_TRUE(sink.ring_mode());
    for (Slot s = 0; s < kTotal; ++s) {
      sink.record(Event::collision(s, static_cast<NodeId>(s & 7)));
    }
    EXPECT_EQ(sink.written(), static_cast<std::uint64_t>(kTotal));
    EXPECT_EQ(sink.retained(), kCap);
  }
  const ParsedBinFile parsed = read_bin_file(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.ring);
  EXPECT_EQ(parsed.dropped, static_cast<std::uint64_t>(kTotal) - kCap);
  ASSERT_EQ(parsed.events.size(), kCap);
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(parsed.events[i].slot,
              kTotal - static_cast<Slot>(kCap) + static_cast<Slot>(i))
        << i;  // oldest retained first
  }
  std::remove(path.c_str());
}

TEST(BinSink, RingModeBelowCapacityKeepsEverything) {
  const std::string path = ::testing::TempDir() + "bintrace_ring_small.bin";
  {
    BinSink sink(path, 16);
    for (Slot s = 0; s < 5; ++s) sink.record(Event::wake(s, 1));
  }
  const ParsedBinFile parsed = read_bin_file(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.ring);
  EXPECT_EQ(parsed.dropped, 0u);
  ASSERT_EQ(parsed.events.size(), 5u);
  EXPECT_EQ(parsed.events.front().slot, 0);
  EXPECT_EQ(parsed.events.back().slot, 4);
  std::remove(path.c_str());
}

TEST(BinSink, RingFileNeverGrowsBeyondCapacity) {
  const std::string path = ::testing::TempDir() + "bintrace_ring_size.bin";
  constexpr std::size_t kCap = 32;
  {
    BinSink sink(path, kCap);
    for (Slot s = 0; s < 10000; ++s) {
      sink.record(Event::collision(s, 0));
      if (s % 1000 == 0) sink.flush();  // repeated in-place rewrites
    }
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good());
  EXPECT_EQ(static_cast<std::size_t>(in.tellg()),
            kBinHeaderSize + kCap * kBinRecordSize);
  std::remove(path.c_str());
}

TEST(BinSink, ReportsUnopenablePath) {
  BinSink sink("/nonexistent-dir-xyz/trace.bin");
  EXPECT_FALSE(sink.ok());
  sink.record(Event::wake(0, 0));  // silently discarded, no crash
  sink.flush();
  EXPECT_EQ(sink.written(), 0u);
}

TEST(BinSink, TruncatedTailCountsAsBadRecord) {
  const std::string path = ::testing::TempDir() + "bintrace_trunc.bin";
  {
    BinSink sink(path);
    sink.record(Event::wake(0, 0));
    sink.record(Event::wake(1, 1));
  }
  {  // chop half a record off the end
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto full = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::string data(full - kBinRecordSize / 2, '\0');
    in.read(data.data(), static_cast<std::streamsize>(data.size()));
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  const ParsedBinFile parsed = read_bin_file(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.bad_records, 1u);
  std::remove(path.c_str());
}

// --------------------------- format detection -----------------------------

TEST(ReadTraceFile, AutoDetectsBinaryAndJsonl) {
  const std::string bin_path = ::testing::TempDir() + "bintrace_auto.bin";
  const std::string jsonl_path = ::testing::TempDir() + "bintrace_auto.jsonl";
  const Event e = Event::decision(42, 7, 3, 40);
  {
    BinSink bin(bin_path);
    bin.record(e);
    JsonlSink jsonl(jsonl_path);
    jsonl.record(e);
  }
  const ParsedTraceFile from_bin = read_trace_file(bin_path);
  ASSERT_TRUE(from_bin.ok) << from_bin.error;
  EXPECT_TRUE(from_bin.binary);
  ASSERT_EQ(from_bin.events.size(), 1u);
  EXPECT_EQ(from_bin.events[0], e);

  const ParsedTraceFile from_jsonl = read_trace_file(jsonl_path);
  ASSERT_TRUE(from_jsonl.ok) << from_jsonl.error;
  EXPECT_FALSE(from_jsonl.binary);
  ASSERT_EQ(from_jsonl.events.size(), 1u);
  EXPECT_EQ(from_jsonl.events[0], e);
  std::remove(bin_path.c_str());
  std::remove(jsonl_path.c_str());
}

TEST(ReadTraceFile, FailsCleanlyOnMissingAndGarbageInputs) {
  const ParsedTraceFile missing =
      read_trace_file("/nonexistent-dir-xyz/log.bin");
  EXPECT_FALSE(missing.ok);
  EXPECT_FALSE(missing.error.empty());

  const std::string garbage = ::testing::TempDir() + "bintrace_garbage.txt";
  {
    std::ofstream out(garbage);
    out << "this is not a trace log\nsecond line\n";
  }
  const ParsedTraceFile bad = read_trace_file(garbage);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  std::remove(garbage.c_str());
}

TEST(ReadTraceFile, EmptyFileIsAnError) {
  // A zero-byte file is neither a binary log nor a JSONL log; before the
  // explicit check it silently parsed as an empty JSONL capture.
  const std::string path = ::testing::TempDir() + "bintrace_empty.log";
  { std::ofstream out(path); }
  const ParsedTraceFile empty = read_trace_file(path);
  EXPECT_FALSE(empty.ok);
  EXPECT_NE(empty.error.find("empty"), std::string::npos) << empty.error;
  std::remove(path.c_str());
}

TEST(ReadTraceFile, TrailingPartialJsonlLineIsToleratedAsBad) {
  // A crash mid-write leaves an unterminated final line; the reader must
  // keep every complete record and count the tail as malformed.
  const std::string path = ::testing::TempDir() + "bintrace_partial.jsonl";
  const Event e = Event::decision(42, 7, 3, 40);
  {
    JsonlSink jsonl(path);
    jsonl.record(e);
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"slot\":43,\"kind\":\"dec";  // cut off mid-record, no newline
  }
  const ParsedTraceFile log = read_trace_file(path);
  ASSERT_TRUE(log.ok) << log.error;
  EXPECT_FALSE(log.binary);
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0], e);
  EXPECT_EQ(log.bad, 1u);
  std::remove(path.c_str());
}

TEST(ReadTraceFile, FailsCleanlyOnCorruptBinaryHeader) {
  const std::string path = ::testing::TempDir() + "bintrace_badheader.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "URNB";  // right magic, truncated header
  }
  const ParsedTraceFile bad = read_trace_file(path);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  std::remove(path.c_str());
}

// -------------------------- monitor replay --------------------------------

TEST(BinTrace, MonitoredRunReplayedFromBinMatchesLiveReport) {
  Rng rng(909);
  const auto net = graph::random_udg(40, 5.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params params =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());

  const std::string path = ::testing::TempDir() + "bintrace_monitor.bin";
  core::TraceOptions trace;
  trace.events_bin = path;
  trace.monitor = true;
  const auto run =
      core::run_coloring_traced(net.graph, params, ws, /*seed=*/17, trace);
  ASSERT_TRUE(run.all_decided);
  ASSERT_TRUE(run.monitor.has_value());
  const MonitorReport& live = *run.monitor;

  const ParsedBinFile parsed = read_bin_file(path);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.events.size(), run.events_recorded);

  InvariantMonitorSink replay(
      core::make_monitor_config(net.graph, params, ws));
  for (const Event& e : parsed.events) replay.record(e);
  const MonitorReport replayed = replay.report();

  EXPECT_EQ(replayed.events_seen, live.events_seen);
  EXPECT_EQ(replayed.nodes_seen, live.nodes_seen);
  for (std::size_t i = 0; i < kNumInvariants; ++i) {
    EXPECT_EQ(replayed.invariants[i].count, live.invariants[i].count) << i;
    EXPECT_EQ(replayed.invariants[i].first_slot, live.invariants[i].first_slot)
        << i;
    EXPECT_EQ(replayed.invariants[i].first_node, live.invariants[i].first_node)
        << i;
    EXPECT_EQ(replayed.invariants[i].first_what, live.invariants[i].first_what)
        << i;
  }
  std::remove(path.c_str());
}

// ----------------------- a minimal JSON validator -------------------------

/// Just enough JSON to validate the exporter's output: parses the full
/// grammar into a tree of values; numbers are kept as doubles.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return object.find(key) != object.end();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  bool string_value(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;  // validated but not decoded; fine for this test
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    return consume('"');
  }
  bool value(Json& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object_value(out);
    if (c == '[') return array_value(out);
    if (c == '"') {
      out.type = Json::Type::kString;
      return string_value(out.string);
    }
    if (c == 't') {
      out.type = Json::Type::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = Json::Type::kBool;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    // number
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.type = Json::Type::kNumber;
    out.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }
  bool object_value(Json& out) {
    if (!consume('{')) return false;
    out.type = Json::Type::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string_value(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      Json v;
      if (!value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool array_value(Json& out) {
    if (!consume('[')) return false;
    out.type = Json::Type::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      Json v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --------------------------- chrome export --------------------------------

TEST(ChromeExport, EveryRecordCarriesPhTsPidTid) {
  MemorySink memory;
  const auto stats = run_with_sink(/*seed=*/51, 32, &memory);
  ASSERT_TRUE(stats.all_decided);

  const std::string path = ::testing::TempDir() + "bintrace_chrome.json";
  ASSERT_TRUE(write_chrome_trace_file(path, memory.events()));

  const std::string text = slurp(path);
  Json root;
  ASSERT_TRUE(JsonParser(text).parse(root)) << "export is not valid JSON";
  ASSERT_EQ(root.type, Json::Type::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& records = root.object.at("traceEvents");
  ASSERT_EQ(records.type, Json::Type::kArray);
  ASSERT_GT(records.array.size(), memory.size() / 4);

  std::size_t slices = 0, instants = 0, meta = 0;
  for (const Json& r : records.array) {
    ASSERT_EQ(r.type, Json::Type::kObject);
    ASSERT_TRUE(r.has("ph"));
    ASSERT_TRUE(r.has("ts"));
    ASSERT_TRUE(r.has("pid"));
    ASSERT_TRUE(r.has("tid"));
    EXPECT_EQ(r.object.at("ph").type, Json::Type::kString);
    EXPECT_EQ(r.object.at("ts").type, Json::Type::kNumber);
    EXPECT_EQ(r.object.at("pid").type, Json::Type::kNumber);
    EXPECT_EQ(r.object.at("tid").type, Json::Type::kNumber);
    const std::string& ph = r.object.at("ph").string;
    if (ph == "X") ++slices;
    if (ph == "i") ++instants;
    if (ph == "M") ++meta;
    if (ph != "M") {
      EXPECT_EQ(static_cast<int>(r.object.at("pid").number),
                ChromeTraceWriter::kSlotPid);
    }
  }
  EXPECT_GT(slices, 0u);    // phase residencies
  EXPECT_GT(instants, 0u);  // medium / protocol point events
  EXPECT_GT(meta, 0u);      // process / thread names
  std::remove(path.c_str());
}

TEST(ChromeExport, SpanCaptureExportsWorkerTracks) {
  SpanSink spans;
  spans.name_track(0, "worker 0");
  spans.name_track(1, "worker 1");
  spans.record("chunk", 0, 100, 50, /*arg=*/0);
  spans.record("chunk", 1, 120, 80, /*arg=*/1);

  const std::string path = ::testing::TempDir() + "bintrace_spans.json";
  ASSERT_TRUE(write_chrome_spans_file(path, spans));
  const std::string text = slurp(path);
  Json root;
  ASSERT_TRUE(JsonParser(text).parse(root)) << "export is not valid JSON";
  const Json& records = root.object.at("traceEvents");
  std::size_t span_slices = 0;
  for (const Json& r : records.array) {
    ASSERT_TRUE(r.has("ph"));
    ASSERT_TRUE(r.has("ts"));
    ASSERT_TRUE(r.has("pid"));
    ASSERT_TRUE(r.has("tid"));
    if (r.object.at("ph").string == "X") {
      ++span_slices;
      EXPECT_EQ(static_cast<int>(r.object.at("pid").number),
                ChromeTraceWriter::kSpanPid);
    }
  }
  EXPECT_EQ(span_slices, 2u);
  std::remove(path.c_str());
}

// ------------------------------ span hooks --------------------------------

TEST(Spans, TracedEngineRecordsThreePhaseSpansPerSlot) {
  MemorySink memory;
  SpanSink spans;
  const auto stats = run_with_sink(/*seed=*/33, 24, &memory, nullptr, &spans);
  ASSERT_GT(stats.slots_run, 0);
  // Spans are recorded only for slots the engine actually steps: the
  // run() fast-forward jumps over the empty prefix before the first
  // wake, so those slots count in slots_run but execute no phases.
  // Recompute the schedule run_with_sink built to find that prefix.
  Rng wrng(mix_seed(/*seed=*/33, 5));
  const auto schedule = radio::WakeSchedule::uniform(24, 400, wrng);
  radio::Slot first_wake = std::numeric_limits<radio::Slot>::max();
  for (graph::NodeId v = 0; v < 24; ++v) {
    first_wake = std::min(first_wake, schedule.wake_slot(v));
  }
  const auto stepped =
      static_cast<std::size_t>(stats.slots_run - first_wake);
  EXPECT_EQ(spans.size(), 3u * stepped);
  std::size_t wake = 0, protocol = 0, medium = 0;
  for (const SpanRecord& s : spans.snapshot()) {
    EXPECT_EQ(s.track, 0u);
    const std::string name = s.name;
    wake += name == "wake" ? 1u : 0u;
    protocol += name == "protocol" ? 1u : 0u;
    medium += name == "medium" ? 1u : 0u;
  }
  EXPECT_EQ(wake, stepped);
  EXPECT_EQ(protocol, stepped);
  EXPECT_EQ(medium, stepped);
}

TEST(Spans, NullSinkEngineCompilesSpanHooksAway) {
  SpanSink spans;
  const auto stats =
      run_with_sink<NullSink>(/*seed=*/33, 24, nullptr, nullptr, &spans);
  ASSERT_GT(stats.slots_run, 0);
  EXPECT_EQ(spans.size(), 0u);  // guarded by if constexpr (S::kEnabled)
}

TEST(Spans, ParallelTrialsRecordChunkSpansOnWorkerTracks) {
  SpanSink spans;
  exec::ExecOptions options;
  options.jobs = 2;
  options.chunk = 1;
  options.spans = &spans;
  const std::size_t trials = 8;
  const auto sum = exec::parallel_for_trials<std::uint64_t>(
      trials, options,
      [](std::uint64_t& acc, std::size_t t) { acc += t + 1; },
      [](std::uint64_t& into, std::uint64_t&& part) { into += part; });
  EXPECT_EQ(sum, trials * (trials + 1) / 2);

  const auto records = spans.snapshot();
  ASSERT_EQ(records.size(), trials);  // one span per chunk of size 1
  std::vector<bool> chunk_seen(trials, false);
  for (const SpanRecord& s : records) {
    EXPECT_STREQ(s.name, "chunk");
    EXPECT_LT(s.track, 2u);
    ASSERT_GE(s.arg, 0);
    ASSERT_LT(s.arg, static_cast<std::int64_t>(trials));
    chunk_seen[static_cast<std::size_t>(s.arg)] = true;
  }
  for (std::size_t i = 0; i < trials; ++i) {
    EXPECT_TRUE(chunk_seen[i]) << "chunk " << i << " unrecorded";
  }
  const auto names = spans.track_names();
  EXPECT_EQ(names.at(0), "worker 0");
  EXPECT_EQ(names.at(1), "worker 1");
}

}  // namespace
}  // namespace urn::obs
