// Tests for χ(P_v) (Algorithm 1, line 15): the maximum non-positive value
// outside the critical range of every stored competitor counter.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/chi.hpp"
#include "support/rng.hpp"

namespace urn::core {
namespace {

TEST(Chi, EmptyCompetitorListGivesZero) {
  EXPECT_EQ(chi({}, 10), 0);
}

TEST(Chi, FarAwayCounterDoesNotConstrain) {
  const std::vector<std::int64_t> counters = {100};
  EXPECT_EQ(chi(counters, 10), 0);
}

TEST(Chi, CounterAtZeroPushesBelowItsRange) {
  const std::vector<std::int64_t> counters = {0};
  EXPECT_EQ(chi(counters, 10), -11);
}

TEST(Chi, PositiveCounterWhoseRangeReachesZero) {
  const std::vector<std::int64_t> counters = {5};
  // Forbidden: [-5, 15] → largest feasible ≤ 0 is −6.
  EXPECT_EQ(chi(counters, 10), -6);
}

TEST(Chi, ZeroRangeOnlyExcludesThePointItself) {
  const std::vector<std::int64_t> counters = {0, -2};
  EXPECT_EQ(chi(counters, 0), -1);
}

TEST(Chi, CascadingIntervals) {
  // [-11, 9] and [-25, -5] overlap; union [-25, 9] → −26.
  const std::vector<std::int64_t> counters = {-1, -15};
  EXPECT_EQ(chi(counters, 10), -26);
}

TEST(Chi, GapBetweenIntervalsIsUsed) {
  // Ranges (R = 2): [3−2, 3+2] = [1,5] (irrelevant, > 0 after clip? no:
  // lo = 1 > 0 → dropped) and [−10±2] = [−12, −8]. Result: 0.
  const std::vector<std::int64_t> counters = {3, -10};
  EXPECT_EQ(chi(counters, 2), 0);
}

TEST(Chi, LandsInGapJustBelowInterval) {
  // R = 2: [-2, 2] forbids 0; next candidate −3; [−9±2] = [−11, −7]
  // does not contain −3 → χ = −3.
  const std::vector<std::int64_t> counters = {0, -9};
  EXPECT_EQ(chi(counters, 2), -3);
}

TEST(Chi, AdjacentIntervalsMerge) {
  // R = 1: [−1, 1] and [−4, −2] are adjacent (−2 follows −1): χ = −5.
  const std::vector<std::int64_t> counters = {0, -3};
  EXPECT_EQ(chi(counters, 1), -5);
}

TEST(Chi, DuplicateCountersHandled) {
  const std::vector<std::int64_t> counters = {0, 0, 0};
  EXPECT_EQ(chi(counters, 5), -6);
}

TEST(Chi, NegativeRangeRejected) {
  EXPECT_THROW((void)chi({}, -1), CheckError);
}

// Property sweep: for random competitor sets, χ is ≤ 0, outside every
// critical range, and maximal (χ = 0, or some interval forbids a value in
// (χ, 0] — by construction every value in (χ, 0] is forbidden).
class ChiProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChiProperty, PostconditionsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 200; ++trial) {
    const auto k = 1 + rng.below(12);
    const std::int64_t range = static_cast<std::int64_t>(rng.below(50));
    std::vector<std::int64_t> counters;
    for (std::uint64_t i = 0; i < k; ++i) {
      counters.push_back(rng.range(-300, 300));
    }
    const std::int64_t x = chi(counters, range);

    EXPECT_LE(x, 0);
    auto forbidden = [&](std::int64_t v) {
      for (std::int64_t d : counters) {
        if (std::llabs(v - d) <= range) return true;
      }
      return false;
    };
    EXPECT_FALSE(forbidden(x)) << "chi landed inside a critical range";
    // Maximality: every value strictly between χ and 0 (inclusive) is
    // forbidden.
    for (std::int64_t v = x + 1; v <= 0; ++v) {
      EXPECT_TRUE(forbidden(v)) << "chi not maximal: " << v << " is free";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChiProperty, ::testing::Range(0, 8));

// Lemma 6 shape: with k counters and range R, χ ≥ −k·(2R+1) − 1 ≥
// −2kR − k − 1 (the paper states −2γζΔ log n − 1 style bounds).
TEST(Chi, LowerBoundMatchesLemma6Shape) {
  Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    const auto k = 1 + rng.below(8);
    const std::int64_t range = static_cast<std::int64_t>(rng.below(40));
    std::vector<std::int64_t> counters;
    for (std::uint64_t i = 0; i < k; ++i) {
      counters.push_back(rng.range(-200, 200));
    }
    const std::int64_t x = chi(counters, range);
    const std::int64_t bound =
        -static_cast<std::int64_t>(k) * (2 * range + 1) - 1;
    EXPECT_GE(x, bound);
  }
}

}  // namespace
}  // namespace urn::core
