// Tests for the command-line flag parser.

#include <gtest/gtest.h>

#include <vector>

#include "support/check.hpp"
#include "support/cli.hpp"

namespace urn {
namespace {

CliFlags demo_flags() {
  CliFlags flags;
  flags.add_int("n", 100, "node count");
  flags.add_double("radius", 1.5, "radius");
  flags.add_string("wake", "sync", "wake pattern");
  flags.add_bool("tdma", false, "derive schedule");
  return flags;
}

bool parse(CliFlags& flags, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flags.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_EQ(flags.get_int("n"), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("radius"), 1.5);
  EXPECT_EQ(flags.get_string("wake"), "sync");
  EXPECT_FALSE(flags.get_bool("tdma"));
}

TEST(Cli, EqualsSyntax) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {"--n=42", "--radius=2.25", "--wake=poisson"}));
  EXPECT_EQ(flags.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("radius"), 2.25);
  EXPECT_EQ(flags.get_string("wake"), "poisson");
}

TEST(Cli, SpaceSyntax) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {"--n", "7", "--wake", "uniform"}));
  EXPECT_EQ(flags.get_int("n"), 7);
  EXPECT_EQ(flags.get_string("wake"), "uniform");
}

TEST(Cli, BareBooleanFlag) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {"--tdma"}));
  EXPECT_TRUE(flags.get_bool("tdma"));
}

TEST(Cli, ExplicitBooleanValues) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {"--tdma=false"}));
  EXPECT_FALSE(flags.get_bool("tdma"));
  CliFlags flags2 = demo_flags();
  ASSERT_TRUE(parse(flags2, {"--tdma=yes"}));
  EXPECT_TRUE(flags2.get_bool("tdma"));
}

TEST(Cli, UnknownFlagRejected) {
  CliFlags flags = demo_flags();
  EXPECT_FALSE(parse(flags, {"--bogus=1"}));
  EXPECT_NE(flags.error().find("bogus"), std::string::npos);
}

TEST(Cli, BadIntegerRejected) {
  CliFlags flags = demo_flags();
  EXPECT_FALSE(parse(flags, {"--n=abc"}));
  EXPECT_NE(flags.error().find("integer"), std::string::npos);
}

TEST(Cli, BadDoubleRejected) {
  CliFlags flags = demo_flags();
  EXPECT_FALSE(parse(flags, {"--radius=fast"}));
}

TEST(Cli, MissingValueRejected) {
  CliFlags flags = demo_flags();
  EXPECT_FALSE(parse(flags, {"--n"}));
  EXPECT_NE(flags.error().find("missing"), std::string::npos);
}

TEST(Cli, PositionalArgumentRejected) {
  CliFlags flags = demo_flags();
  EXPECT_FALSE(parse(flags, {"subcommand"}));
}

TEST(Cli, HelpRequested) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {"--help"}));
  EXPECT_TRUE(flags.help_requested());
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("node count"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
}

TEST(Cli, NegativeNumbersParse) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {"--n=-5", "--radius=-1.5"}));
  EXPECT_EQ(flags.get_int("n"), -5);
  EXPECT_DOUBLE_EQ(flags.get_double("radius"), -1.5);
}

TEST(Cli, WrongTypeAccessorThrows) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_THROW((void)flags.get_int("wake"), CheckError);
  EXPECT_THROW((void)flags.get_string("n"), CheckError);
  EXPECT_THROW((void)flags.get_bool("radius"), CheckError);
}

TEST(Cli, UndeclaredAccessorThrows) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {}));
  EXPECT_THROW((void)flags.get_int("nope"), CheckError);
}

TEST(Cli, DuplicateDeclarationRejected) {
  CliFlags flags;
  flags.add_int("n", 1, "x");
  EXPECT_THROW(flags.add_int("n", 2, "y"), CheckError);
}

TEST(Cli, LastAssignmentWins) {
  CliFlags flags = demo_flags();
  ASSERT_TRUE(parse(flags, {"--n=1", "--n=2"}));
  EXPECT_EQ(flags.get_int("n"), 2);
}

}  // namespace
}  // namespace urn
