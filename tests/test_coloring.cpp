// Tests for coloring representation, validation, quality metrics, and the
// centralized greedy baseline.

#include <gtest/gtest.h>

#include <vector>

#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace urn::graph {
namespace {

// ------------------------------------------------------------- validate ---

TEST(Validate, AcceptsProperColoring) {
  const Graph g = path_graph(4);
  const std::vector<Color> colors = {0, 1, 0, 1};
  const ColoringCheck check = validate(g, colors);
  EXPECT_TRUE(check.complete);
  EXPECT_TRUE(check.correct);
  EXPECT_TRUE(check.valid());
}

TEST(Validate, DetectsMonochromaticEdge) {
  const Graph g = path_graph(3);
  const ColoringCheck check = validate(g, {0, 0, 1});
  EXPECT_TRUE(check.complete);
  EXPECT_FALSE(check.correct);
  EXPECT_EQ(check.conflict_u, 0u);
  EXPECT_EQ(check.conflict_v, 1u);
}

TEST(Validate, DetectsUncoloredNode) {
  const Graph g = path_graph(3);
  const ColoringCheck check = validate(g, {0, kUncolored, 0});
  EXPECT_FALSE(check.complete);
  EXPECT_EQ(check.first_uncolored, 1u);
  EXPECT_TRUE(check.correct);  // colored portion is conflict-free
}

TEST(Validate, UncoloredNeighborsNeverConflict) {
  const Graph g = path_graph(2);
  const ColoringCheck check = validate(g, {kUncolored, kUncolored});
  EXPECT_TRUE(check.correct);
  EXPECT_FALSE(check.complete);
}

TEST(Validate, SizeMismatchRejected) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)validate(g, {0, 1}), CheckError);
}

// -------------------------------------------------------------- metrics ---

TEST(Metrics, MaxColorAndDistinct) {
  EXPECT_EQ(max_color({2, 5, kUncolored, 5}), 5);
  EXPECT_EQ(max_color({kUncolored}), kUncolored);
  EXPECT_EQ(distinct_colors({2, 5, kUncolored, 5}), 2u);
  EXPECT_EQ(distinct_colors({}), 0u);
}

TEST(Metrics, LocalDensityThetaOnStar) {
  const Graph g = star_graph(6);
  // The hub has closed degree 6; every node sees it within two hops.
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(local_density_theta(g, v), 6u);
  }
}

TEST(Metrics, LocalDensityThetaOnPath) {
  const Graph g = path_graph(10);
  // Interior nodes have closed degree 3.
  EXPECT_EQ(local_density_theta(g, 5), 3u);
  // End node sees an interior node within 2 hops.
  EXPECT_EQ(local_density_theta(g, 0), 3u);
}

TEST(Metrics, HighestNeighborhoodColor) {
  const Graph g = path_graph(4);
  const std::vector<Color> colors = {0, 3, 1, 2};
  EXPECT_EQ(highest_neighborhood_color(g, colors, 0), 3);  // sees 1
  EXPECT_EQ(highest_neighborhood_color(g, colors, 2), 3);  // sees 1 and 3
  EXPECT_EQ(highest_neighborhood_color(g, colors, 3), 2);  // sees 2 only
}

TEST(Metrics, HighestNeighborhoodColorWithUncolored) {
  const Graph g = path_graph(2);
  EXPECT_EQ(highest_neighborhood_color(g, {kUncolored, kUncolored}, 0),
            kUncolored);
}

// --------------------------------------------------------------- greedy ---

TEST(Greedy, PathUsesTwoColors) {
  const auto colors = greedy_coloring(path_graph(10));
  EXPECT_TRUE(validate(path_graph(10), colors).valid());
  EXPECT_EQ(max_color(colors), 1);
}

TEST(Greedy, CompleteGraphUsesAllColors) {
  const Graph g = complete_graph(5);
  const auto colors = greedy_coloring(g);
  EXPECT_TRUE(validate(g, colors).valid());
  EXPECT_EQ(distinct_colors(colors), 5u);
}

TEST(Greedy, OddCycleUsesThreeColors) {
  const Graph g = cycle_graph(7);
  const auto colors = greedy_coloring(g);
  EXPECT_TRUE(validate(g, colors).valid());
  EXPECT_EQ(max_color(colors), 2);
}

// Property sweep: greedy is always valid and uses at most Δ+1 colors.
class GreedyProperty : public ::testing::TestWithParam<int> {};

TEST_P(GreedyProperty, ValidAndWithinDeltaPlusOne) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  const auto net = random_udg(150, 7.0, 1.4, rng);
  const auto colors = greedy_coloring_random(net.graph, rng);
  EXPECT_TRUE(validate(net.graph, colors).valid());
  EXPECT_LE(max_color(colors),
            static_cast<Color>(net.graph.max_degree()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyProperty, ::testing::Range(0, 10));

TEST(Greedy, ExplicitOrderIsDeterministic) {
  const Graph g = cycle_graph(6);
  const std::vector<NodeId> order = {0, 2, 4, 1, 3, 5};
  EXPECT_EQ(greedy_coloring(g, order), greedy_coloring(g, order));
}

// ------------------------------------------------- square / distance-2 ---

TEST(Square, PathSquareAddsDistanceTwoEdges) {
  const Graph sq = square(path_graph(5));
  EXPECT_TRUE(sq.has_edge(0, 1));
  EXPECT_TRUE(sq.has_edge(0, 2));
  EXPECT_FALSE(sq.has_edge(0, 3));
  EXPECT_EQ(sq.num_edges(), 7u);  // 4 path edges + 3 distance-2 edges
}

TEST(Square, StarSquareIsComplete) {
  const Graph sq = square(star_graph(5));
  EXPECT_EQ(sq.num_edges(), 10u);  // K5
}

TEST(Square, EdgelessGraphUnchanged) {
  const Graph sq = square(empty_graph(4));
  EXPECT_EQ(sq.num_edges(), 0u);
}

TEST(Distance2, GreedyIsValidOnSquare) {
  Rng rng(42);
  const auto net = random_udg(100, 7.0, 1.3, rng);
  const auto colors = greedy_distance2_coloring(net.graph);
  EXPECT_TRUE(validate_distance2(net.graph, colors).valid());
  // Also trivially a valid 1-hop coloring.
  EXPECT_TRUE(validate(net.graph, colors).valid());
}

TEST(Distance2, DetectsTwoHopConflict) {
  // Path 0-1-2: {0, 1, 0} is a fine 1-hop coloring but not distance-2.
  const Graph g = path_graph(3);
  const std::vector<Color> colors = {0, 1, 0};
  EXPECT_TRUE(validate(g, colors).valid());
  EXPECT_FALSE(validate_distance2(g, colors).correct);
}

TEST(Distance2, NeedsMoreColorsThanOneHop) {
  Rng rng(43);
  const auto net = random_udg(100, 6.0, 1.3, rng);
  const auto one_hop = greedy_coloring(net.graph);
  const auto two_hop = greedy_distance2_coloring(net.graph);
  EXPECT_GT(max_color(two_hop), max_color(one_hop));
}

}  // namespace
}  // namespace urn::graph
