// Tests for the degree-estimation pre-phase (the paper's Sect. 6
// future-work direction).

#include <gtest/gtest.h>

#include "core/estimation.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace urn::core {
namespace {

TEST(Estimation, ParamsDeriveSanely) {
  EstimationParams p;
  p.n = 256;
  EXPECT_EQ(p.num_phases(), 9u);  // ceil(log2 256) + 1
  EXPECT_GT(p.slots_per_phase(), 0);
}

TEST(Estimation, IsolatedNodesEstimateOne) {
  EstimationParams p;
  p.n = 16;
  const auto r = estimate_degrees(graph::empty_graph(4), p, 1);
  for (auto e : r.degree_estimate) EXPECT_EQ(e, 1u);
  for (auto e : r.local_max_estimate) EXPECT_EQ(e, 1u);
}

TEST(Estimation, DeterministicInSeed) {
  Rng rng(3);
  const auto net = graph::random_udg(60, 5.0, 1.4, rng);
  EstimationParams p;
  p.n = 60;
  const auto a = estimate_degrees(net.graph, p, 7);
  const auto b = estimate_degrees(net.graph, p, 7);
  EXPECT_EQ(a.degree_estimate, b.degree_estimate);
  const auto c = estimate_degrees(net.graph, p, 8);
  EXPECT_NE(a.degree_estimate, c.degree_estimate);
}

TEST(Estimation, SlotsAccountedFor) {
  Rng rng(4);
  const auto net = graph::random_udg(40, 5.0, 1.4, rng);
  EstimationParams p;
  p.n = 40;
  const auto r = estimate_degrees(net.graph, p, 1);
  EXPECT_EQ(r.slots, static_cast<std::int64_t>(p.num_phases()) *
                         p.slots_per_phase());
}

TEST(Estimation, LocalMaxDominatesOwnEstimate) {
  Rng rng(5);
  const auto net = graph::random_udg(80, 6.0, 1.4, rng);
  EstimationParams p;
  p.n = 80;
  const auto r = estimate_degrees(net.graph, p, 2);
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    EXPECT_GE(r.local_max_estimate[v], r.degree_estimate[v]);
    for (graph::NodeId u : net.graph.neighbors(v)) {
      EXPECT_GE(r.local_max_estimate[v], r.degree_estimate[u]);
    }
  }
}

// Accuracy: a geometric-probing estimator resolves the degree up to a
// constant factor; we allow a generous factor of 4 on dense UDGs.
class EstimationAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(EstimationAccuracy, WithinConstantFactor) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 11);
  const auto net = graph::random_udg(150, 7.0, 1.5, rng);
  EstimationParams p;
  p.n = 150;
  const auto r =
      estimate_degrees(net.graph, p, static_cast<std::uint64_t>(GetParam()));
  std::size_t good = 0, considered = 0;
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    const double truth = net.graph.closed_degree(v);
    if (truth < 4) continue;  // tiny degrees are noise-dominated
    ++considered;
    const double est = r.degree_estimate[v];
    if (est >= truth / 4.0 && est <= truth * 4.0) ++good;
  }
  ASSERT_GT(considered, 0u);
  EXPECT_GE(static_cast<double>(good) / static_cast<double>(considered),
            0.85)
      << good << "/" << considered << " within 4x";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimationAccuracy, ::testing::Range(0, 4));

TEST(Estimation, LocalMaxApproximatesDeltaInDenseRegions) {
  Rng rng(9);
  const auto net = graph::clustered_udg(3, 30, 10.0, 0.6, 1.4, rng);
  EstimationParams p;
  p.n = 90;
  const auto r = estimate_degrees(net.graph, p, 3);
  const double delta = net.graph.max_closed_degree();
  // Somewhere in the dense clusters the local-max estimate must reach a
  // constant fraction of the true Delta.
  std::uint32_t best = 0;
  for (auto e : r.local_max_estimate) best = std::max(best, e);
  EXPECT_GE(static_cast<double>(best), delta / 4.0);
  // +1 because the estimator reports closed degree (2^k + 1).
  EXPECT_LE(static_cast<double>(best), delta * 4.0 + 1.0);
}

}  // namespace
}  // namespace urn::core
