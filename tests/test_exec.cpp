// Tests for the deterministic parallel trial executor (src/exec) and the
// merge-safe aggregation it depends on.
//
// The load-bearing property is *bit-identity*: for every jobs count and
// every chunk size, parallel_for_trials must produce exactly the result
// of the serial loop — same counts, same sample streams in the same
// order, same percentiles, same first-violation attribution.  The tests
// here check that property at every layer: the chunk plan (fuzzed), the
// pool, the generic executor, the merge algebra of Samples / RunLedger /
// CoreAggregate, and finally the public run_core_trials /
// run_leader_trials entry points against real protocol runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/experiment.hpp"
#include "exec/chunk.hpp"
#include "exec/parallel.hpp"
#include "exec/pool.hpp"
#include "graph/generators.hpp"
#include "obs/ledger.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace urn::exec {
namespace {

// ------------------------------------------------------------ chunk plan --

TEST(ChunkPlan, SplitsExactly) {
  const auto plan = chunk_plan(10, 4);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], (TrialRange{0, 4}));
  EXPECT_EQ(plan[1], (TrialRange{4, 8}));
  EXPECT_EQ(plan[2], (TrialRange{8, 10}));
}

TEST(ChunkPlan, EmptyAndSingleton) {
  EXPECT_TRUE(chunk_plan(0, 1).empty());
  EXPECT_TRUE(chunk_plan(0, 0).empty());  // chunk irrelevant when no work
  const auto one = chunk_plan(1, 100);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (TrialRange{0, 1}));
}

TEST(ChunkPlan, ZeroChunkWithWorkIsAnError) {
  EXPECT_THROW((void)chunk_plan(5, 0), CheckError);
}

TEST(ChunkPlan, FuzzCoversEveryIndexExactlyOnce) {
  Rng rng(0xC4A1);
  for (int iter = 0; iter < 500; ++iter) {
    const auto trials = static_cast<std::size_t>(rng.below(200));
    const auto chunk = static_cast<std::size_t>(1 + rng.below(40));
    const auto plan = chunk_plan(trials, chunk);
    std::vector<int> seen(trials, 0);
    std::size_t prev_end = 0;
    for (const TrialRange& r : plan) {
      // Consecutive, in order, non-empty, in range.
      EXPECT_EQ(r.begin, prev_end);
      EXPECT_LT(r.begin, r.end);
      EXPECT_LE(r.end, trials);
      EXPECT_LE(r.size(), chunk);
      for (std::size_t t = r.begin; t < r.end; ++t) ++seen[t];
      prev_end = r.end;
    }
    EXPECT_EQ(prev_end, trials);
    for (std::size_t t = 0; t < trials; ++t) EXPECT_EQ(seen[t], 1);
  }
}

TEST(ChunkPlan, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
  EXPECT_GE(resolve_jobs(0), 1u);  // hardware count, at least 1
}

TEST(ChunkPlan, DefaultChunkNeverZero) {
  Rng rng(0xC4A2);
  for (int iter = 0; iter < 200; ++iter) {
    const auto trials = static_cast<std::size_t>(rng.below(1000));
    const auto jobs = static_cast<std::size_t>(1 + rng.below(64));
    EXPECT_GE(default_chunk(trials, jobs), 1u);
  }
}

// ------------------------------------------------------------------ pool --

TEST(TrialPool, RunsEveryChunkExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    TrialPool pool(jobs);
    EXPECT_EQ(pool.jobs(), jobs);
    std::vector<std::atomic<int>> hits(23);
    pool.run(hits.size(),
             [&](std::size_t ci) { hits[ci].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(TrialPool, ReusableAcrossRuns) {
  TrialPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> total{0};
    pool.run(11, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 11);
  }
}

TEST(TrialPool, ZeroChunksIsANoop) {
  TrialPool pool(2);
  pool.run(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(TrialPool, PropagatesExceptionsAndSurvives) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    TrialPool pool(jobs);
    EXPECT_THROW(pool.run(8,
                          [](std::size_t ci) {
                            if (ci == 3) throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool must stay usable after a failed run.
    std::atomic<int> total{0};
    pool.run(4, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 4);
  }
}

// --------------------------------------------------- parallel_for_trials --

// The executor must deliver trial indices to the merged result in exactly
// serial order for every (jobs, chunk) combination.
TEST(ParallelForTrials, TrialOrderIsSerialForEveryJobsAndChunk) {
  using Order = std::vector<std::size_t>;
  const std::size_t trials = 37;
  Order expected(trials);
  std::iota(expected.begin(), expected.end(), 0u);
  const std::size_t hw = std::thread::hardware_concurrency();
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                           hw == 0 ? std::size_t{4} : hw}) {
    for (std::size_t chunk :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{100}}) {
      const Order got = parallel_for_trials<Order>(
          trials, {jobs, chunk},
          [](Order& acc, std::size_t t) { acc.push_back(t); },
          [](Order& into, Order&& part) {
            into.insert(into.end(), part.begin(), part.end());
          });
      EXPECT_EQ(got, expected) << "jobs=" << jobs << " chunk=" << chunk;
    }
  }
}

TEST(ParallelForTrials, ZeroTrialsYieldsDefaultPartial) {
  const int got = parallel_for_trials<int>(
      0, {4, 0}, [](int& acc, std::size_t) { acc = 99; },
      [](int& into, int&& part) { into += part; });
  EXPECT_EQ(got, 0);
}

TEST(ParallelForTrials, BodyExceptionPropagates) {
  EXPECT_THROW((void)parallel_for_trials<int>(
                   16, {4, 1},
                   [](int&, std::size_t t) {
                     if (t == 9) throw std::runtime_error("trial failed");
                   },
                   [](int& into, int&& part) { into += part; }),
               std::runtime_error);
}

// ----------------------------------------------------------- Samples merge -

// Property: merging ANY in-order partition of a sample stream equals
// having added the whole stream to one Samples — every statistic and the
// raw value vector are bit-identical.
TEST(SamplesMerge, AnyOrderedPartitionEqualsWholeStream) {
  Rng rng(0x5A3B);
  for (int iter = 0; iter < 100; ++iter) {
    const auto n = static_cast<std::size_t>(1 + rng.below(200));
    std::vector<double> stream(n);
    for (double& x : stream) x = rng.uniform(-1e6, 1e6);

    Samples whole;
    for (double x : stream) whole.add(x);

    // Random partition into consecutive blocks, merged in order.
    Samples merged;
    std::size_t i = 0;
    while (i < n) {
      const auto len = static_cast<std::size_t>(1 + rng.below(n - i));
      Samples block;
      for (std::size_t k = 0; k < len; ++k) block.add(stream[i + k]);
      merged.merge(block);
      i += len;
    }

    ASSERT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.values(), whole.values());  // exact, order included
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
    EXPECT_EQ(merged.mean(), whole.mean());
    EXPECT_EQ(merged.percentile(50.0), whole.percentile(50.0));
    EXPECT_EQ(merged.percentile(95.0), whole.percentile(95.0));
  }
}

TEST(SamplesMerge, EmptyIsIdentity) {
  Samples a;
  a.add(3.0);
  a.add(1.0);
  Samples empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Samples b;
  b.merge(a);
  EXPECT_EQ(b.values(), a.values());
}

// --------------------------------------------------------- RunLedger merge -

TEST(RunLedgerMerge, PartitionedLedgersEqualSerialLedger) {
  Rng rng(0x1ED6);
  const char* metrics[] = {"latency.max", "slots.run", "collisions"};
  for (int iter = 0; iter < 50; ++iter) {
    const auto trials = static_cast<std::size_t>(1 + rng.below(60));
    std::vector<std::vector<double>> stream(3);
    for (std::size_t m = 0; m < 3; ++m) {
      for (std::size_t t = 0; t < trials; ++t) {
        stream[m].push_back(rng.uniform(0.0, 1e4));
      }
    }

    obs::RunLedger whole;
    for (std::size_t t = 0; t < trials; ++t) {
      for (std::size_t m = 0; m < 3; ++m) {
        whole.add(metrics[m], stream[m][t]);
      }
    }

    obs::RunLedger merged;
    std::size_t i = 0;
    while (i < trials) {
      const auto len = static_cast<std::size_t>(1 + rng.below(trials - i));
      obs::RunLedger block;
      for (std::size_t t = i; t < i + len; ++t) {
        for (std::size_t m = 0; m < 3; ++m) {
          block.add(metrics[m], stream[m][t]);
        }
      }
      merged.merge(block);
      i += len;
    }

    ASSERT_EQ(merged.num_metrics(), whole.num_metrics());
    for (const char* m : metrics) {
      const obs::LedgerSummary a = merged.summarize(m);
      const obs::LedgerSummary b = whole.summarize(m);
      EXPECT_EQ(a.trials, b.trials);
      EXPECT_EQ(a.min, b.min);
      EXPECT_EQ(a.mean, b.mean);
      EXPECT_EQ(a.p50, b.p50);
      EXPECT_EQ(a.p95, b.p95);
      EXPECT_EQ(a.max, b.max);
    }
  }
}

TEST(RunLedgerMerge, AdoptsUnknownMetrics) {
  obs::RunLedger a;
  a.add("x", 1.0);
  obs::RunLedger b;
  b.add("y", 2.0);
  a.merge(b);
  EXPECT_EQ(a.num_metrics(), 2u);
  EXPECT_EQ(a.trials("y"), 1u);
}

}  // namespace
}  // namespace urn::exec

// ------------------------------------------------- aggregate merge + runs --

namespace urn::analysis {
namespace {

CoreAggregate::FirstViolation violation_at(std::size_t trial,
                                           obs::Slot slot) {
  CoreAggregate::FirstViolation v;
  v.trial = trial;
  v.slot = slot;
  v.what = "synthetic";
  return v;
}

TEST(CoreAggregateMerge, FirstViolationLowestTrialWinsBothOrders) {
  CoreAggregate early;
  early.trials = 4;
  early.monitor_violations = 1;
  early.first_violation = violation_at(2, 700);
  CoreAggregate late;
  late.trials = 4;
  late.monitor_violations = 2;
  late.first_violation = violation_at(5, 10);  // earlier slot, later trial

  CoreAggregate a = early;
  a.merge(late);
  ASSERT_TRUE(a.first_violation.has_value());
  EXPECT_EQ(a.first_violation->trial, 2u);
  EXPECT_EQ(a.monitor_violations, 3u);
  EXPECT_FALSE(a.monitor_ok());

  CoreAggregate b = late;
  b.merge(early);
  ASSERT_TRUE(b.first_violation.has_value());
  EXPECT_EQ(b.first_violation->trial, 2u);  // same winner, either order
}

TEST(CoreAggregateMerge, ViolationFromEitherSideSurvives) {
  CoreAggregate none;
  none.trials = 3;
  CoreAggregate one;
  one.trials = 3;
  one.first_violation = violation_at(1, 5);

  CoreAggregate a = none;
  a.merge(one);
  ASSERT_TRUE(a.first_violation.has_value());
  EXPECT_EQ(a.first_violation->trial, 1u);

  CoreAggregate b = one;
  b.merge(none);
  ASSERT_TRUE(b.first_violation.has_value());
  EXPECT_EQ(b.first_violation->trial, 1u);
}

// ------------------------------------------------ serial-vs-parallel runs --

struct Fixture {
  graph::GeometricGraph net;
  core::Params params;
};

Fixture make_fixture(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  auto net = graph::random_udg(n, 5.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  auto params = core::Params::practical(net.graph.num_nodes(), delta, 5, 10);
  return {std::move(net), params};
}

void expect_samples_identical(const Samples& a, const Samples& b,
                              const char* what) {
  EXPECT_EQ(a.values(), b.values()) << what;  // exact, order included
}

void expect_core_identical(const CoreAggregate& a, const CoreAggregate& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.completed, b.completed);
  expect_samples_identical(a.max_latency, b.max_latency, "max_latency");
  expect_samples_identical(a.mean_latency, b.mean_latency, "mean_latency");
  expect_samples_identical(a.p95_latency, b.p95_latency, "p95_latency");
  expect_samples_identical(a.max_color, b.max_color, "max_color");
  expect_samples_identical(a.distinct_colors, b.distinct_colors,
                           "distinct_colors");
  expect_samples_identical(a.leaders, b.leaders, "leaders");
  expect_samples_identical(a.resets_per_node, b.resets_per_node,
                           "resets_per_node");
  expect_samples_identical(a.slots_run, b.slots_run, "slots_run");
  EXPECT_EQ(a.monitor_events, b.monitor_events);
  EXPECT_EQ(a.monitor_violations, b.monitor_violations);
  EXPECT_EQ(a.first_violation.has_value(), b.first_violation.has_value());
}

std::vector<std::size_t> jobs_grid() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return {1, 2, 7, hw == 0 ? 4 : hw};
}

TEST(RunCoreTrials, ParallelIsBitIdenticalToSerial) {
  const Fixture f = make_fixture(0xF1, 48);
  const auto factory =
      uniform_schedule(f.net.graph.num_nodes(), 2 * f.params.threshold());
  for (std::size_t trials : {std::size_t{5}, std::size_t{9}}) {
    TrialExecOptions serial;  // jobs = 1
    const CoreAggregate base = run_core_trials(f.net.graph, f.params, factory,
                                               trials, 0xF1F0, serial);
    EXPECT_EQ(base.trials, trials);
    for (std::size_t jobs : jobs_grid()) {
      TrialExecOptions exec;
      exec.jobs = jobs;
      const CoreAggregate par = run_core_trials(f.net.graph, f.params,
                                                factory, trials, 0xF1F0,
                                                exec);
      expect_core_identical(par, base);
    }
  }
}

TEST(RunCoreTrials, ChunkSizeNeverChangesResults) {
  const Fixture f = make_fixture(0xF2, 40);
  const auto factory = synchronous_schedule(f.net.graph.num_nodes());
  TrialExecOptions serial;
  const CoreAggregate base = run_core_trials(f.net.graph, f.params, factory,
                                             7, 0xF2F0, serial);
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{100}}) {
    TrialExecOptions exec;
    exec.jobs = 4;
    exec.chunk = chunk;
    const CoreAggregate par = run_core_trials(f.net.graph, f.params, factory,
                                              7, 0xF2F0, exec);
    expect_core_identical(par, base);
  }
}

TEST(RunCoreTrials, SerialOverloadMatchesExecutorPath) {
  const Fixture f = make_fixture(0xF3, 36);
  const auto factory = synchronous_schedule(f.net.graph.num_nodes());
  const CoreAggregate legacy =
      run_core_trials(f.net.graph, f.params, factory, 4, 0xF3F0);
  TrialExecOptions exec;
  exec.jobs = 3;
  const CoreAggregate par =
      run_core_trials(f.net.graph, f.params, factory, 4, 0xF3F0, exec);
  expect_core_identical(par, legacy);
}

TEST(RunCoreTrials, MonitoredRunsAreBitIdenticalAndClean) {
  const Fixture f = make_fixture(0xF4, 40);
  const auto factory =
      uniform_schedule(f.net.graph.num_nodes(), 2 * f.params.threshold());
  TrialExecOptions plain;
  const CoreAggregate base = run_core_trials(f.net.graph, f.params, factory,
                                             5, 0xF4F0, plain);
  TrialExecOptions mon_serial = plain;
  mon_serial.monitor = true;
  const CoreAggregate mserial = run_core_trials(f.net.graph, f.params,
                                                factory, 5, 0xF4F0,
                                                mon_serial);
  // Monitoring never perturbs the runs and the protocol is clean.
  EXPECT_GT(mserial.monitor_events, 0u);
  EXPECT_TRUE(mserial.monitor_ok());
  EXPECT_FALSE(mserial.first_violation.has_value());
  expect_samples_identical(mserial.slots_run, base.slots_run, "slots_run");
  expect_samples_identical(mserial.max_latency, base.max_latency,
                           "max_latency");
  for (std::size_t jobs : jobs_grid()) {
    TrialExecOptions exec = mon_serial;
    exec.jobs = jobs;
    const CoreAggregate mpar = run_core_trials(f.net.graph, f.params,
                                               factory, 5, 0xF4F0, exec);
    expect_core_identical(mpar, mserial);
  }
}

TEST(RunLeaderTrials, ParallelIsBitIdenticalToSerial) {
  const Fixture f = make_fixture(0xF5, 44);
  const auto factory =
      uniform_schedule(f.net.graph.num_nodes(), 2 * f.params.threshold());
  TrialExecOptions serial;
  const LeaderAggregate base = run_leader_trials(f.net.graph, f.params,
                                                 factory, 6, 0xF5F0, serial);
  EXPECT_EQ(base.trials, 6u);
  EXPECT_EQ(base.leaders.count(), 6u);
  for (std::size_t jobs : jobs_grid()) {
    TrialExecOptions exec;
    exec.jobs = jobs;
    const LeaderAggregate par = run_leader_trials(f.net.graph, f.params,
                                                  factory, 6, 0xF5F0, exec);
    EXPECT_EQ(par.trials, base.trials);
    EXPECT_EQ(par.covered, base.covered);
    expect_samples_identical(par.leaders, base.leaders, "leaders");
    expect_samples_identical(par.mean_cover_latency, base.mean_cover_latency,
                             "mean_cover_latency");
    expect_samples_identical(par.max_cover_latency, base.max_cover_latency,
                             "max_cover_latency");
    expect_samples_identical(par.slots_run, base.slots_run, "slots_run");
    expect_samples_identical(par.collisions, base.collisions, "collisions");
  }
}

}  // namespace
}  // namespace urn::analysis
