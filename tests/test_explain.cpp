// Causal latency attribution (obs/explain.hpp): the exact-accounting
// invariant under a lossy-medium fuzz grid, cross-checked against both
// engine implementations; bit-identical parallel aggregation through
// analysis::run_explained_trials; deterministic bootstrap diffing.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "obs/explain.hpp"
#include "obs/sink.hpp"
#include "reference_engine.hpp"
#include "support/rng.hpp"

namespace urn {
namespace {

core::Params params_for(const graph::Graph& g) {
  const auto delta = std::max(2u, g.max_closed_degree());
  return core::Params::practical(g.num_nodes(), delta, 5, 12);
}

// ---- fuzz grid: drop probability x wake pattern ---------------------------
//
// For every cell: run the optimized engine traced into memory, attribute
// the capture, and demand (a) zero Fig. 2 violations, (b) the exactness
// invariant — every decided node's causes sum to its recorded decision
// latency, with wake/decision slots matching the RunResult — and
// (c) the naive reference engine reproduces the same decision slots, so
// the cross-check covers both medium implementations.

using FuzzCase = std::tuple<double, std::string, std::uint64_t>;

class ExplainFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ExplainFuzz, CausesSumToRecordedLatencyOnBothEngines) {
  const auto& [drop, pattern, seed] = GetParam();
  Rng rng(seed);
  const graph::Graph g = graph::random_udg(60, 5.5, 1.5, rng).graph;
  const core::Params params = params_for(g);
  Rng wrng(mix_seed(seed, 0xA11CE));
  const radio::WakeSchedule schedule =
      pattern == "sync"
          ? radio::WakeSchedule::synchronous(g.num_nodes())
          : radio::WakeSchedule::uniform(g.num_nodes(),
                                         2 * params.threshold(), wrng);
  radio::MediumOptions medium;
  medium.drop_probability = drop;

  obs::MemorySink events;
  core::TraceOptions topts;
  topts.memory = &events;
  const std::uint64_t run_seed = mix_seed(seed, 0xD0);
  const core::RunResult run = core::run_coloring_traced(
      g, params, schedule, run_seed, topts, /*max_slots=*/0, medium);

  obs::ExplainConfig config;
  config.kappa2 = params.kappa2;
  config.passive_slots = params.passive_slots();
  const obs::ExplainReport report =
      obs::explain_trace(events.events(), config);

  EXPECT_EQ(report.fig2_violations, 0u);
  EXPECT_TRUE(report.exact_ok());
  ASSERT_EQ(report.nodes.size(), static_cast<std::size_t>(g.num_nodes()));
  for (const obs::NodeAttribution& node : report.nodes) {
    ASSERT_LT(static_cast<std::size_t>(node.node),
              run.decision_slot.size());
    EXPECT_EQ(node.wake_slot, run.wake_slot[node.node]);
    EXPECT_EQ(node.decision_slot, run.decision_slot[node.node]);
    if (node.decided) {
      EXPECT_EQ(node.stall(),
                run.decision_slot[node.node] - run.wake_slot[node.node])
          << "node " << node.node;
    }
  }

  std::vector<core::ColoringNode> ref_nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ref_nodes.emplace_back(&params, v);
  }
  testing::ReferenceEngine<core::ColoringNode> ref(
      g, schedule, std::move(ref_nodes), run_seed, medium);
  for (radio::Slot t = 0; t < run.medium.slots_run; ++t) ref.step();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(ref.decision_slot(v), run.decision_slot[v]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DropAndWakeGrid, ExplainFuzz,
    ::testing::Values(FuzzCase{0.10, "sync", 21},
                      FuzzCase{0.10, "uniform", 22},
                      FuzzCase{0.20, "sync", 23},
                      FuzzCase{0.20, "uniform", 24},
                      FuzzCase{0.35, "sync", 25},
                      FuzzCase{0.35, "uniform", 26}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "drop" +
             std::to_string(
                 static_cast<int>(100.0 * std::get<0>(info.param))) +
             "_" + std::get<1>(info.param) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---- span collection ------------------------------------------------------

TEST(ExplainSpans, TileEachNodesWindowAndMatchTheCauseTotals) {
  Rng rng(7);
  const graph::Graph g = graph::random_udg(40, 4.5, 1.5, rng).graph;
  const core::Params params = params_for(g);
  Rng wrng(77);
  const auto schedule = radio::WakeSchedule::uniform(
      g.num_nodes(), 2 * params.threshold(), wrng);

  obs::MemorySink events;
  core::TraceOptions topts;
  topts.memory = &events;
  (void)core::run_coloring_traced(g, params, schedule, 0xBAD5EED, topts);

  obs::ExplainConfig config;
  config.kappa2 = params.kappa2;
  config.passive_slots = params.passive_slots();
  config.collect_spans = true;
  const obs::ExplainReport report =
      obs::explain_trace(events.events(), config);
  ASSERT_EQ(report.spans.size(), report.nodes.size());

  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const obs::NodeAttribution& node = report.nodes[i];
    std::int64_t per_cause[obs::kNumCauses] = {};
    obs::Slot cursor = 0;
    for (const obs::CauseSpan& span : report.spans[i]) {
      EXPECT_EQ(span.begin, cursor);  // contiguous tiling, no gaps
      ASSERT_LT(span.begin, span.end);
      per_cause[static_cast<std::size_t>(span.cause)] += span.end - span.begin;
      cursor = span.end;
    }
    for (std::size_t c = 0; c < obs::kNumCauses; ++c) {
      EXPECT_EQ(per_cause[c], node.causes[c])
          << "node " << node.node << " cause " << c;
    }
  }
}

// ---- degenerate inputs ----------------------------------------------------

TEST(ExplainTrace, EmptyTraceYieldsEmptyExactReport) {
  const obs::ExplainReport report = obs::explain_trace({}, {});
  EXPECT_TRUE(report.nodes.empty());
  EXPECT_TRUE(report.exact_ok());
  EXPECT_EQ(report.total_stall(), 0);
  EXPECT_EQ(report.decided_nodes, 0u);
}

// ---- parallel aggregation -------------------------------------------------

TEST(ExplainTrials, SerialAndParallelAggregatesAreBitIdentical) {
  Rng rng(0xE2E);
  const graph::Graph g = graph::random_udg(48, 5.0, 1.5, rng).graph;
  const core::Params params = params_for(g);
  radio::MediumOptions medium;
  medium.drop_probability = 0.15;
  const auto schedules =
      analysis::uniform_schedule(g.num_nodes(), 2 * params.threshold());

  analysis::TrialExecOptions serial;
  serial.jobs = 1;
  analysis::TrialExecOptions fanned;
  fanned.jobs = 4;
  const analysis::ExplainAggregate a = analysis::run_explained_trials(
      g, params, schedules, 6, 0xBEEF, serial, medium);
  const analysis::ExplainAggregate b = analysis::run_explained_trials(
      g, params, schedules, 6, 0xBEEF, fanned, medium);

  EXPECT_EQ(a.trials, 6u);
  EXPECT_TRUE(a.exact_ok());
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.decided_nodes, b.decided_nodes);
  EXPECT_EQ(a.exact_nodes, b.exact_nodes);
  EXPECT_EQ(a.fig2_violations, b.fig2_violations);
  for (std::size_t c = 0; c < obs::kNumCauses; ++c) {
    EXPECT_EQ(a.totals[c], b.totals[c]) << "cause " << c;
    for (std::size_t p = 0; p < obs::kNumPhaseBuckets; ++p) {
      EXPECT_EQ(a.phase_totals[p][c], b.phase_totals[p][c]);
    }
  }
  // Samples merge in trial order, so even the per-trial vectors match.
  EXPECT_EQ(a.mean_latency.values(), b.mean_latency.values());
  EXPECT_EQ(a.top_share.values(), b.top_share.values());
}

// ---- differential mode ----------------------------------------------------

obs::ExplainReport explained_run(double drop, std::uint64_t seed) {
  Rng rng(seed);
  const graph::Graph g = graph::random_udg(50, 5.0, 1.5, rng).graph;
  const core::Params params = params_for(g);
  Rng wrng(mix_seed(seed, 3));
  const auto schedule = radio::WakeSchedule::uniform(
      g.num_nodes(), 2 * params.threshold(), wrng);
  radio::MediumOptions medium;
  medium.drop_probability = drop;
  obs::MemorySink events;
  core::TraceOptions topts;
  topts.memory = &events;
  (void)core::run_coloring_traced(g, params, schedule, mix_seed(seed, 9),
                                  topts, /*max_slots=*/0, medium);
  obs::ExplainConfig config;
  config.kappa2 = params.kappa2;
  config.passive_slots = params.passive_slots();
  return obs::explain_trace(events.events(), config);
}

TEST(ExplainDiff, BootstrapIsDeterministicAndSelfDiffIsNull) {
  const obs::ExplainReport clean = explained_run(0.0, 31);
  const obs::ExplainReport lossy = explained_run(0.25, 31);

  obs::ExplainDiffOptions options;
  options.resamples = 200;
  const obs::ExplainDiff once = obs::diff_explain(clean, lossy, options);
  const obs::ExplainDiff twice = obs::diff_explain(clean, lossy, options);
  for (std::size_t c = 0; c < obs::kNumCauses; ++c) {
    EXPECT_EQ(once.causes[c].delta_mean, twice.causes[c].delta_mean);
    EXPECT_EQ(once.causes[c].ci_lo, twice.causes[c].ci_lo);
    EXPECT_EQ(once.causes[c].ci_hi, twice.causes[c].ci_hi);
    EXPECT_EQ(once.causes[c].significant, twice.causes[c].significant);
  }

  // A run diffed against itself: zero deltas, nothing significant.
  const obs::ExplainDiff self = obs::diff_explain(clean, clean, options);
  EXPECT_EQ(self.nodes_a, self.nodes_b);
  EXPECT_DOUBLE_EQ(self.speedup, 1.0);
  for (const obs::CauseDelta& d : self.causes) {
    EXPECT_EQ(d.delta_mean, 0.0) << obs::cause_name(d.cause);
    EXPECT_FALSE(d.significant) << obs::cause_name(d.cause);
  }
}

}  // namespace
}  // namespace urn
