// Tests for the failure-injection knobs: fading drops and crash-stop
// deactivation — and their interaction with the protocol.

#include <gtest/gtest.h>

#include <optional>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/engine.hpp"
#include "support/rng.hpp"

namespace urn::radio {
namespace {

/// Transmits every slot; counts receptions.
struct Chatter {
  NodeId id = graph::kInvalidNode;
  bool talk = false;
  std::size_t heard = 0;

  void on_wake(SlotContext&) {}
  std::optional<Message> on_slot(SlotContext&) {
    if (talk) return make_decided(id, 0);
    return std::nullopt;
  }
  void on_receive(SlotContext&, const Message&) { ++heard; }
  [[nodiscard]] bool decided() const { return false; }
};

Engine<Chatter> chatter_engine(const graph::Graph& g, NodeId talker,
                               MediumOptions medium) {
  std::vector<Chatter> nodes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) nodes[v].id = v;
  nodes[talker].talk = true;
  return Engine<Chatter>(g, WakeSchedule::synchronous(g.num_nodes()),
                         std::move(nodes), 7, medium);
}

TEST(Fading, ZeroDropIsLossless) {
  const graph::Graph g = graph::path_graph(2);
  auto eng = chatter_engine(g, 0, {});
  for (int i = 0; i < 100; ++i) eng.step();
  EXPECT_EQ(eng.node(1).heard, 100u);
  EXPECT_EQ(eng.stats().dropped, 0u);
}

TEST(Fading, DropRateMatchesProbability) {
  MediumOptions medium;
  medium.drop_probability = 0.3;
  const graph::Graph g = graph::path_graph(2);
  auto eng = chatter_engine(g, 0, medium);
  const int slots = 20000;
  for (int i = 0; i < slots; ++i) eng.step();
  const auto heard = static_cast<double>(eng.node(1).heard);
  EXPECT_NEAR(heard / slots, 0.7, 0.02);
  EXPECT_EQ(eng.node(1).heard + eng.stats().dropped,
            static_cast<std::size_t>(slots));
}

TEST(Fading, InvalidProbabilityRejected) {
  MediumOptions medium;
  medium.drop_probability = 1.0;
  std::vector<Chatter> nodes(1);
  nodes[0].id = 0;
  const graph::Graph g = graph::empty_graph(1);
  EXPECT_THROW(Engine<Chatter>(g, WakeSchedule::synchronous(1),
                               std::move(nodes), 1, medium),
               CheckError);
}

TEST(CrashStop, DeadNodeStopsTransmittingAndReceiving) {
  const graph::Graph g = graph::path_graph(3);
  auto eng = chatter_engine(g, 1, {});
  for (int i = 0; i < 10; ++i) eng.step();
  EXPECT_EQ(eng.node(0).heard, 10u);
  eng.deactivate(1);
  for (int i = 0; i < 10; ++i) eng.step();
  EXPECT_EQ(eng.node(0).heard, 10u);  // talker died
  EXPECT_TRUE(eng.is_dead(1));
  EXPECT_EQ(eng.stats().transmissions, 10u);
}

TEST(CrashStop, DeadNodesExcludedFromAllDecided) {
  std::vector<Chatter> nodes(2);
  nodes[0].id = 0;
  nodes[1].id = 1;
  const graph::Graph g = graph::empty_graph(2);
  Engine<Chatter> eng(g, WakeSchedule::synchronous(2),
                      std::move(nodes), 1);
  eng.step();
  EXPECT_FALSE(eng.all_decided());  // Chatter never decides
  eng.deactivate(0);
  eng.deactivate(1);
  eng.step();
  EXPECT_TRUE(eng.all_decided());  // no live node has obligations
}

}  // namespace

// ------------------------- protocol under failures ------------------------

namespace {

class ProtocolUnderFading : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolUnderFading, ModerateFadingOnlySlowsItDown) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 19 + 7);
  const auto net = graph::random_udg(70, 6.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  MediumOptions medium;
  medium.drop_probability = 0.2;
  const auto ws = WakeSchedule::synchronous(net.graph.num_nodes());
  const auto clean = core::run_coloring(net.graph, p, ws, 11, 0, {});
  const auto faded = core::run_coloring(net.graph, p, ws, 11, 0, medium);
  ASSERT_TRUE(clean.all_decided);
  ASSERT_TRUE(faded.all_decided);
  EXPECT_TRUE(faded.check.valid());
  EXPECT_GT(faded.medium.dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolUnderFading, ::testing::Range(0, 4));

TEST(ProtocolUnderFading, ExplicitZeroDropIsBitIdenticalToIdealMedium) {
  // MediumOptions{drop_probability = 0} must not even consult the medium
  // RNG: the run is bit-for-bit the ideal collision-only medium, which
  // the differential/reference tests rely on.
  Rng rng(123);
  const auto net = graph::random_udg(60, 5.5, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  Rng wrng(321);
  const auto ws =
      WakeSchedule::uniform(net.graph.num_nodes(), 2 * p.threshold(), wrng);

  MediumOptions zero_drop;
  zero_drop.drop_probability = 0.0;
  const auto ideal = core::run_coloring(net.graph, p, ws, 17, 0, {});
  const auto zeroed = core::run_coloring(net.graph, p, ws, 17, 0, zero_drop);

  EXPECT_EQ(zeroed.colors, ideal.colors);
  EXPECT_EQ(zeroed.wake_slot, ideal.wake_slot);
  EXPECT_EQ(zeroed.decision_slot, ideal.decision_slot);
  EXPECT_EQ(zeroed.leader_of, ideal.leader_of);
  EXPECT_EQ(zeroed.medium.slots_run, ideal.medium.slots_run);
  EXPECT_EQ(zeroed.medium.transmissions, ideal.medium.transmissions);
  EXPECT_EQ(zeroed.medium.deliveries, ideal.medium.deliveries);
  EXPECT_EQ(zeroed.medium.collisions, ideal.medium.collisions);
  EXPECT_EQ(zeroed.medium.dropped, 0u);
  EXPECT_EQ(ideal.medium.dropped, 0u);
}

TEST(ProtocolUnderFading, DropsAreCountedAndTracedConsistently) {
  // Every injected drop shows up once in RunStats::dropped, and a traced
  // run reports exactly that many kDrop events.
  Rng rng(55);
  const auto net = graph::random_udg(50, 5.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  MediumOptions medium;
  medium.drop_probability = 0.3;
  const auto ws = WakeSchedule::synchronous(net.graph.num_nodes());

  core::TraceOptions trace;
  trace.metrics = true;
  trace.metrics_window = 64;
  const auto run =
      core::run_coloring_traced(net.graph, p, ws, 21, trace, 0, medium);
  ASSERT_TRUE(run.all_decided);
  EXPECT_GT(run.medium.dropped, 0u);
  ASSERT_TRUE(run.series.has_value());
  std::uint64_t drop_events = 0;
  std::uint64_t deliveries = 0;
  for (const auto& row : run.series->rows()) {
    drop_events += row.drops;
    deliveries += row.deliveries;
  }
  EXPECT_EQ(drop_events, run.medium.dropped);
  EXPECT_EQ(deliveries, run.medium.deliveries);
}

TEST(ProtocolUnderCrash, LeaderCrashOrphansItsCluster) {
  // Documented limitation: the paper's protocol has no leader-failure
  // recovery — a cluster member waiting in R for its crashed leader
  // starves.  This test pins that behavior down.
  const graph::Graph g = graph::star_graph(4);  // hub will be the leader
  const core::Params p = core::Params::practical(16, 4, 3, 3);
  std::vector<core::ColoringNode> nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes.emplace_back(&p, v);
  }
  Engine<core::ColoringNode> eng(g, WakeSchedule::synchronous(4),
                                 std::move(nodes), 3);
  // Run until a leader exists.
  graph::NodeId leader = graph::kInvalidNode;
  for (int i = 0; i < 100000 && leader == graph::kInvalidNode; ++i) {
    eng.step();
    for (graph::NodeId v = 0; v < 4; ++v) {
      if (eng.node(v).is_leader()) leader = v;
    }
  }
  ASSERT_NE(leader, graph::kInvalidNode);
  // Let at least one member reach R, then crash the leader.
  for (int i = 0; i < 200; ++i) eng.step();
  bool member_requesting = false;
  for (graph::NodeId v = 0; v < 4; ++v) {
    member_requesting |= eng.node(v).phase() == core::Phase::kRequest;
  }
  eng.deactivate(leader);
  const auto stats = eng.run(60 * p.threshold());
  if (member_requesting) {
    // The orphaned requester(s) can never be served: no completion.
    EXPECT_FALSE(stats.all_decided);
  }
}

}  // namespace
}  // namespace urn::radio
