// Tests for the topology generators: geometric correctness of UDGs,
// obstacle cutting, unit ball graphs, combinatorial families.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/vec2.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "support/rng.hpp"

namespace urn::graph {
namespace {

// ----------------------------------------------------------- random UDG ---

TEST(RandomUdg, EdgeIffWithinRadius) {
  Rng rng(1);
  const auto net = random_udg(80, 5.0, 1.2, rng);
  for (NodeId i = 0; i < net.graph.num_nodes(); ++i) {
    for (NodeId j = i + 1; j < net.graph.num_nodes(); ++j) {
      const bool close =
          geom::dist2(net.positions[i], net.positions[j]) <= 1.2 * 1.2;
      EXPECT_EQ(net.graph.has_edge(i, j), close)
          << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(RandomUdg, PositionsInsideField) {
  Rng rng(2);
  const auto net = random_udg(100, 3.0, 1.0, rng);
  for (const auto& p : net.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 3.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 3.0);
  }
}

TEST(RandomUdg, DeterministicInSeed) {
  Rng a(3), b(3);
  const auto n1 = random_udg(50, 4.0, 1.0, a);
  const auto n2 = random_udg(50, 4.0, 1.0, b);
  EXPECT_EQ(n1.graph.num_edges(), n2.graph.num_edges());
  for (std::size_t i = 0; i < n1.positions.size(); ++i) {
    EXPECT_EQ(n1.positions[i], n2.positions[i]);
  }
}

TEST(RandomUdg, DenserFieldMoreEdges) {
  Rng rng(4);
  const auto sparse = random_udg(100, 20.0, 1.0, rng);
  const auto dense = random_udg(100, 5.0, 1.0, rng);
  EXPECT_GT(dense.graph.num_edges(), sparse.graph.num_edges());
}

// -------------------------------------------------------------- grid UDG --

TEST(GridUdg, UnjitteredGridIsLattice) {
  Rng rng(5);
  const auto net = grid_udg(4, 3, 1.0, 1.0, 0.0, rng);
  EXPECT_EQ(net.graph.num_nodes(), 12u);
  // 4-neighbor lattice: 2·4·3 − 4 − 3 = 17 edges.
  EXPECT_EQ(net.graph.num_edges(), 17u);
  EXPECT_TRUE(is_connected(net.graph));
}

TEST(GridUdg, JitterKeepsNodeCount) {
  Rng rng(6);
  const auto net = grid_udg(5, 5, 1.0, 1.2, 0.2, rng);
  EXPECT_EQ(net.graph.num_nodes(), 25u);
}

// --------------------------------------------------------- clustered UDG --

TEST(ClusteredUdg, NodeCountAndBounds) {
  Rng rng(7);
  const auto net = clustered_udg(4, 25, 10.0, 0.5, 1.0, rng);
  EXPECT_EQ(net.graph.num_nodes(), 100u);
  for (const auto& p : net.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
  }
}

TEST(ClusteredUdg, TightClustersAreDense) {
  Rng rng(8);
  const auto tight = clustered_udg(3, 30, 20.0, 0.3, 1.0, rng);
  const auto loose = clustered_udg(3, 30, 20.0, 5.0, 1.0, rng);
  EXPECT_GT(tight.graph.max_degree(), loose.graph.max_degree());
}

// ----------------------------------------------------------- obstacles ----

TEST(ObstacleBig, WallCutsLink) {
  // Two nodes within radius, a wall crossing the line of sight.
  const std::vector<geom::Vec2> pts = {{0.0, 0.0}, {1.0, 0.0}};
  const std::vector<geom::Segment> wall = {{{0.5, -1.0}, {0.5, 1.0}}};
  const auto blocked = obstacle_big(pts, wall, 1.5);
  EXPECT_EQ(blocked.graph.num_edges(), 0u);
  const auto open = obstacle_big(pts, {}, 1.5);
  EXPECT_EQ(open.graph.num_edges(), 1u);
}

TEST(ObstacleBig, WallMissesLink) {
  const std::vector<geom::Vec2> pts = {{0.0, 0.0}, {1.0, 0.0}};
  const std::vector<geom::Segment> wall = {{{0.5, 0.5}, {0.5, 1.5}}};
  const auto net = obstacle_big(pts, wall, 1.5);
  EXPECT_EQ(net.graph.num_edges(), 1u);
}

TEST(ObstacleBig, EdgesAreSubsetOfUdg) {
  Rng rng(9);
  auto walls = random_walls(10, 6.0, 1.0, 3.0, rng);
  const auto big = random_obstacle_big(100, 6.0, 1.2, walls, rng);
  Rng rng2(9);
  (void)random_walls(10, 6.0, 1.0, 3.0, rng2);  // advance identically
  for (NodeId i = 0; i < big.graph.num_nodes(); ++i) {
    for (NodeId u : big.graph.neighbors(i)) {
      EXPECT_LE(geom::dist(big.positions[i], big.positions[u]), 1.2 + 1e-9);
    }
  }
}

TEST(ObstacleBig, ManyWallsRemoveEdges) {
  Rng rng(10);
  const auto walls = random_walls(40, 6.0, 1.0, 4.0, rng);
  Rng rng_a(11), rng_b(11);
  const auto open = random_obstacle_big(120, 6.0, 1.2, {}, rng_a);
  const auto blocked = random_obstacle_big(120, 6.0, 1.2, walls, rng_b);
  EXPECT_LT(blocked.graph.num_edges(), open.graph.num_edges());
}

TEST(RandomWalls, LengthsWithinRange) {
  Rng rng(12);
  for (const auto& w : random_walls(50, 10.0, 0.5, 2.0, rng)) {
    const double len = geom::dist(w.a, w.b);
    EXPECT_GE(len, 0.5 - 1e-9);
    EXPECT_LE(len, 2.0 + 1e-9);
  }
}

// ------------------------------------------------------- unit ball graph --

TEST(UnitBall, EdgeIffWithinUnitDistance) {
  Rng rng(13);
  const auto ball = random_unit_ball(60, 3, 3.0, rng);
  for (NodeId i = 0; i < ball.graph.num_nodes(); ++i) {
    for (NodeId j = i + 1; j < ball.graph.num_nodes(); ++j) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < ball.dim; ++d) {
        const double diff = ball.points[i][d] - ball.points[j][d];
        d2 += diff * diff;
      }
      EXPECT_EQ(ball.graph.has_edge(i, j), d2 <= 1.0);
    }
  }
}

TEST(UnitBall, OneDimensionalMatchesIntervalGraph) {
  Rng rng(14);
  const auto ball = random_unit_ball(50, 1, 10.0, rng);
  for (NodeId i = 0; i < 50; ++i) {
    for (NodeId j = i + 1; j < 50; ++j) {
      const bool close =
          std::abs(ball.points[i][0] - ball.points[j][0]) <= 1.0;
      EXPECT_EQ(ball.graph.has_edge(i, j), close);
    }
  }
}

TEST(UnitBall, UnusedCoordinatesAreZero) {
  Rng rng(15);
  const auto ball = random_unit_ball(10, 2, 2.0, rng);
  for (const auto& p : ball.points) {
    EXPECT_DOUBLE_EQ(p[2], 0.0);
    EXPECT_DOUBLE_EQ(p[3], 0.0);
  }
}

// -------------------------------------------------- combinatorial families

TEST(Families, PathProperties) {
  const Graph g = path_graph(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Families, SingletonPath) {
  const Graph g = path_graph(1);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Families, CycleProperties) {
  const Graph g = cycle_graph(5);
  EXPECT_EQ(g.num_edges(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Families, CycleRequiresThreeNodes) {
  EXPECT_THROW((void)cycle_graph(2), CheckError);
}

TEST(Families, StarProperties) {
  const Graph g = star_graph(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Families, CompleteProperties) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Families, GnpExtremes) {
  Rng rng(16);
  EXPECT_EQ(gnp(20, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gnp(20, 1.0, rng).num_edges(), 190u);
}

TEST(Families, GnpDensityTracksP) {
  Rng rng(17);
  const Graph g = gnp(200, 0.1, rng);
  const double expected = 0.1 * 199.0;  // expected degree
  EXPECT_NEAR(g.average_degree(), expected, expected * 0.15);
}

}  // namespace
}  // namespace urn::graph
