// Unit tests for the geometry module: vectors, segments, spatial grid.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geom/segment.hpp"
#include "support/check.hpp"
#include "geom/spatial_grid.hpp"
#include "geom/vec2.hpp"
#include "support/rng.hpp"

namespace urn::geom {
namespace {

// ----------------------------------------------------------------- vec2 ---

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -0.5));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(dist({0.0, 0.0}, a), 5.0);
  EXPECT_DOUBLE_EQ(dist2({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Aabb, ContainsIsInclusive) {
  const Aabb box{{0.0, 0.0}, {2.0, 3.0}};
  EXPECT_TRUE(box.contains({1.0, 1.0}));
  EXPECT_TRUE(box.contains({0.0, 0.0}));
  EXPECT_TRUE(box.contains({2.0, 3.0}));
  EXPECT_FALSE(box.contains({2.1, 1.0}));
  EXPECT_FALSE(box.contains({1.0, -0.1}));
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.height(), 3.0);
}

// -------------------------------------------------------------- segment ---

TEST(Segment, OrientationSigns) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {1, 1}), 1);   // ccw
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {1, -1}), -1); // cw
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {2, 0}), 0);   // collinear
}

TEST(Segment, OnSegment) {
  const Segment s{{0, 0}, {2, 2}};
  EXPECT_TRUE(on_segment(s, {1, 1}));
  EXPECT_TRUE(on_segment(s, {0, 0}));
  EXPECT_TRUE(on_segment(s, {2, 2}));
  EXPECT_FALSE(on_segment(s, {3, 3}));  // collinear but beyond
  EXPECT_FALSE(on_segment(s, {1, 0}));  // off the line
}

TEST(Segment, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
}

TEST(Segment, ParallelDisjoint) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {2, 0}}, {{0, 1}, {2, 1}}));
}

TEST(Segment, CollinearDisjoint) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(Segment, CollinearOverlapping) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}));
}

TEST(Segment, SharedEndpointTouches) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
}

TEST(Segment, TShapeTouches) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0}, {1, 2}}));
}

TEST(Segment, NearMissDoesNotTouch) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0.001}, {1, 2}}));
}

TEST(Segment, CrossingFarApartFalse) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{5, 5}, {6, 6}}));
}

// --------------------------------------------------------- spatial grid ---

TEST(SpatialGrid, MatchesBruteForceOnRandomPoints) {
  Rng rng(99);
  std::vector<Vec2> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  const double radius = 1.2;
  const SpatialGrid grid(pts, radius);
  for (std::uint32_t i = 0; i < pts.size(); i += 7) {
    auto fast = grid.neighbors_within(i, radius);
    std::vector<std::uint32_t> slow;
    for (std::uint32_t j = 0; j < pts.size(); ++j) {
      if (j != i && dist2(pts[i], pts[j]) <= radius * radius) {
        slow.push_back(j);
      }
    }
    EXPECT_EQ(fast, slow) << "mismatch at point " << i;
  }
}

TEST(SpatialGrid, SinglePointHasNoNeighbors) {
  const SpatialGrid grid({{1.0, 1.0}}, 1.0);
  EXPECT_TRUE(grid.neighbors_within(0, 1.0).empty());
}

TEST(SpatialGrid, CoincidentPointsAreNeighbors) {
  const SpatialGrid grid({{1.0, 1.0}, {1.0, 1.0}}, 1.0);
  EXPECT_EQ(grid.neighbors_within(0, 1.0),
            std::vector<std::uint32_t>{1});
}

TEST(SpatialGrid, RadiusBoundaryInclusive) {
  const SpatialGrid grid({{0.0, 0.0}, {1.0, 0.0}}, 1.0);
  EXPECT_EQ(grid.neighbors_within(0, 1.0).size(), 1u);
}

TEST(SpatialGrid, QueryRadiusLargerThanCellRejected) {
  const SpatialGrid grid({{0.0, 0.0}, {1.0, 0.0}}, 1.0);
  EXPECT_THROW((void)grid.neighbors_within(0, 2.0), CheckError);
}

TEST(SpatialGrid, ForEachWithinVisitsEachOnce) {
  std::vector<Vec2> pts = {{0, 0}, {0.5, 0}, {0, 0.5}, {3, 3}};
  const SpatialGrid grid(pts, 1.0);
  std::vector<std::uint32_t> seen;
  grid.for_each_within(0, 1.0, [&](std::uint32_t j) { seen.push_back(j); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1, 2}));
}

}  // namespace
}  // namespace urn::geom
