// Unit tests for the graph core: builder, CSR accessors, traversal.

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/traversal.hpp"

namespace urn::graph {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, tail 2-3-4.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  return b.build();
}

// -------------------------------------------------------------- builder ---

TEST(GraphBuilder, EmptyGraph) {
  const Graph g = GraphBuilder(4).build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(GraphBuilder, ZeroNodes) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, DuplicateEdgesCollapse) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilder, SelfLoopsDropped) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(GraphBuilder, OutOfRangeEndpointRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), CheckError);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  b.add_edge(1, 2);
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

// ------------------------------------------------------------ accessors ---

TEST(Graph, NeighborsAreSortedAndSymmetric) {
  const Graph g = triangle_plus_tail();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nb = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    for (NodeId u : nb) EXPECT_TRUE(g.has_edge(u, v));
  }
}

TEST(Graph, DegreesMatch) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(g.closed_degree(2), 4u);  // paper convention: includes self
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.max_closed_degree(), 4u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);  // 2m/n = 10/5
}

TEST(Graph, HasEdge) {
  const Graph g = triangle_plus_tail();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 4));
}

TEST(Graph, TwoHopClosedOnPath) {
  const Graph g = path_graph(6);  // 0-1-2-3-4-5
  EXPECT_EQ(g.two_hop_closed(0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(g.two_hop_closed(2), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(g.two_hop_closed(5), (std::vector<NodeId>{3, 4, 5}));
}

TEST(Graph, TwoHopClosedOnStar) {
  const Graph g = star_graph(5);
  // Everything is within two hops of everything through the hub.
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.two_hop_closed(v).size(), 5u);
  }
}

TEST(Graph, TwoHopClosedIsolatedNode) {
  const Graph g = empty_graph(3);
  EXPECT_EQ(g.two_hop_closed(1), (std::vector<NodeId>{1}));
}

TEST(Graph, MaxClosedDegreeOfEdgeless) {
  const Graph g = empty_graph(3);
  EXPECT_EQ(g.max_closed_degree(), 1u);
}

// ------------------------------------------------------------ traversal ---

TEST(Traversal, BfsDistancesOnPath) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Traversal, BfsDistancesOnCycle) {
  const Graph g = cycle_graph(6);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 2, 3, 2, 1}));
}

TEST(Traversal, BfsUnreachableMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Traversal, ComponentsOfDisjointCliques) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const Components comps = connected_components(g);
  EXPECT_EQ(comps.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comps.id[0], comps.id[1]);
  EXPECT_EQ(comps.id[1], comps.id[2]);
  EXPECT_EQ(comps.id[3], comps.id[4]);
  EXPECT_NE(comps.id[0], comps.id[3]);
  EXPECT_NE(comps.id[3], comps.id[5]);
}

TEST(Traversal, IsConnected) {
  EXPECT_TRUE(is_connected(path_graph(10)));
  EXPECT_TRUE(is_connected(GraphBuilder(0).build()));
  EXPECT_FALSE(is_connected(empty_graph(2)));
}

TEST(Traversal, DiameterKnownFamilies) {
  EXPECT_EQ(diameter(path_graph(7)), 6u);
  EXPECT_EQ(diameter(cycle_graph(8)), 4u);
  EXPECT_EQ(diameter(complete_graph(5)), 1u);
  EXPECT_EQ(diameter(star_graph(6)), 2u);
  EXPECT_EQ(diameter(empty_graph(2)), kUnreachable);
}

}  // namespace
}  // namespace urn::graph
