// Tests for graph serialization (edge list + DOT).

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/rng.hpp"

namespace urn::graph {
namespace {

TEST(EdgeList, RoundTripSmall) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 3);
  const Graph g = b.build();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_nodes(), 4u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(1, 2));
  EXPECT_TRUE(h.has_edge(0, 3));
  EXPECT_FALSE(h.has_edge(2, 3));
}

TEST(EdgeList, RoundTripRandomUdg) {
  Rng rng(1);
  const auto net = random_udg(120, 7.0, 1.3, rng);
  std::stringstream ss;
  write_edge_list(ss, net.graph);
  const Graph h = read_edge_list(ss);
  ASSERT_EQ(h.num_nodes(), net.graph.num_nodes());
  ASSERT_EQ(h.num_edges(), net.graph.num_edges());
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    const auto a = net.graph.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(EdgeList, EdgelessGraph) {
  std::stringstream ss;
  write_edge_list(ss, empty_graph(5));
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_nodes(), 5u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(EdgeList, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header\n\nnodes 3\n0 1  # inline comment\n\n1 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeList, MissingHeaderRejected) {
  std::stringstream ss("0 1\n");
  EXPECT_THROW((void)read_edge_list(ss), CheckError);
}

TEST(EdgeList, OutOfRangeEndpointRejected) {
  std::stringstream ss("nodes 2\n0 5\n");
  EXPECT_THROW((void)read_edge_list(ss), CheckError);
}

TEST(EdgeList, MalformedEdgeRejected) {
  std::stringstream ss("nodes 2\n0\n");
  EXPECT_THROW((void)read_edge_list(ss), CheckError);
}

TEST(EdgeList, DuplicateNodesLineRejected) {
  std::stringstream ss("nodes 2\nnodes 3\n");
  EXPECT_THROW((void)read_edge_list(ss), CheckError);
}

TEST(EdgeList, FileRoundTrip) {
  Rng rng(2);
  const auto net = random_udg(40, 5.0, 1.3, rng);
  const std::string path = "/tmp/urn_test_graph.edges";
  save_edge_list(path, net.graph);
  const Graph h = load_edge_list(path);
  EXPECT_EQ(h.num_edges(), net.graph.num_edges());
  std::remove(path.c_str());
}

TEST(EdgeList, MissingFileRejected) {
  EXPECT_THROW((void)load_edge_list("/nonexistent/urn.edges"), CheckError);
}

TEST(Dot, PlainExportContainsNodesAndEdges) {
  const Graph g = path_graph(3);
  std::stringstream ss;
  write_dot(ss, g);
  const std::string out = ss.str();
  EXPECT_NE(out.find("graph urn {"), std::string::npos);
  EXPECT_NE(out.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(out.find("n1 -- n2"), std::string::npos);
  EXPECT_EQ(out.find("n0 -- n2"), std::string::npos);
}

TEST(Dot, ColoringLabelsAndFill) {
  const Graph g = path_graph(2);
  const std::vector<Color> colors = {0, 7};
  DotOptions opts;
  opts.colors = &colors;
  std::stringstream ss;
  write_dot(ss, g, opts);
  const std::string out = ss.str();
  EXPECT_NE(out.find("label=\"0:0\""), std::string::npos);
  EXPECT_NE(out.find("label=\"1:7\""), std::string::npos);
  EXPECT_NE(out.find("fillcolor"), std::string::npos);
}

TEST(Dot, PositionsPinned) {
  const Graph g = path_graph(2);
  const std::vector<geom::Vec2> pos = {{0.0, 0.0}, {1.5, 2.0}};
  DotOptions opts;
  opts.positions = &pos;
  std::stringstream ss;
  write_dot(ss, g, opts);
  EXPECT_NE(ss.str().find("pos=\"1.5,2!\""), std::string::npos);
}

TEST(Dot, SizeMismatchRejected) {
  const Graph g = path_graph(3);
  const std::vector<Color> colors = {0, 1};  // wrong size
  DotOptions opts;
  opts.colors = &colors;
  std::stringstream ss;
  EXPECT_THROW(write_dot(ss, g, opts), CheckError);
}

}  // namespace
}  // namespace urn::graph
