// Tests for the ASCII histogram.

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/histogram.hpp"
#include "support/check.hpp"

namespace urn::analysis {
namespace {

TEST(Histogram, BinsCoverRangeAndCountAll) {
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0, 4.0,
                                      5.0, 6.0, 7.0, 8.0, 10.0};
  const Histogram h(values, 5);
  EXPECT_EQ(h.num_bins(), 5u);
  std::size_t total = 0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) total += h.count(b);
  EXPECT_EQ(total, values.size());
  EXPECT_EQ(h.total(), values.size());
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, MaximumLandsInLastBin) {
  const Histogram h({0.0, 10.0}, 4);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, UniformValuesDegenerate) {
  const Histogram h({5.0, 5.0, 5.0}, 3);
  EXPECT_EQ(h.count(0), 3u);  // all in the first (widened) bin
}

TEST(Histogram, SingleBin) {
  const Histogram h({1.0, 2.0, 3.0}, 1);
  EXPECT_EQ(h.count(0), 3u);
}

TEST(Histogram, EmptyValuesRejected) {
  EXPECT_THROW(Histogram({}, 3), CheckError);
}

TEST(Histogram, ZeroBinsRejected) {
  EXPECT_THROW(Histogram({1.0}, 0), CheckError);
}

TEST(Histogram, PrintProducesBars) {
  const Histogram h({0.0, 0.1, 0.2, 9.9}, 2);
  std::ostringstream os;
  h.print(os, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bin
  EXPECT_NE(out.find(" 3"), std::string::npos);
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(Histogram, RenderFromSamples) {
  Samples s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i));
  const std::string out = Histogram::render(s, 4, 20);
  EXPECT_FALSE(out.empty());
  // Four roughly equal bins of 25 each.
  EXPECT_NE(out.find(" 25"), std::string::npos);
}

}  // namespace
}  // namespace urn::analysis
