// Tests for the random-ID scheme (Sect. 2): IDs drawn from [1, n³] with
// pairwise collision probability O(1/n).

#include <gtest/gtest.h>

#include "support/ids.hpp"
#include "support/rng.hpp"

namespace urn {
namespace {

TEST(Ids, RangeRespected) {
  Rng rng(1);
  const std::size_t n = 50;
  const auto ids = random_ids(n, rng);
  EXPECT_EQ(ids.size(), n);
  for (auto id : ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, static_cast<std::uint64_t>(n) * n * n);
  }
}

TEST(Ids, SingleNode) {
  Rng rng(2);
  const auto ids = random_ids(1, rng);
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 1u);  // range [1, 1]
}

TEST(Ids, CollisionCounting) {
  EXPECT_EQ(count_id_collisions({1, 2, 3}), 0u);
  EXPECT_EQ(count_id_collisions({1, 2, 2}), 1u);
  EXPECT_EQ(count_id_collisions({5, 5, 5}), 2u);
  EXPECT_EQ(count_id_collisions({}), 0u);
}

TEST(Ids, BoundFormula) {
  EXPECT_DOUBLE_EQ(id_collision_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(id_collision_bound(1), 0.0);
  // C(2,2)... C(n,2)/n³ with n=2: 1/8.
  EXPECT_DOUBLE_EQ(id_collision_bound(2), 1.0 / 8.0);
  EXPECT_LE(id_collision_bound(100), 1.0 / (2 * 100.0) + 1e-12);
}

TEST(Ids, EmpiricalCollisionRateWithinBound) {
  // The paper: P(ambiguous IDs) <= C(n,2)/n^3 in O(1/n).  Over many
  // assignments the observed collision frequency must respect ~3x the
  // bound (it is an exact expectation here, so slack is generous).
  Rng rng(3);
  const std::size_t n = 64;
  const int trials = 4000;
  int with_collision = 0;
  for (int t = 0; t < trials; ++t) {
    if (count_id_collisions(random_ids(n, rng)) > 0) ++with_collision;
  }
  const double rate = static_cast<double>(with_collision) / trials;
  EXPECT_LE(rate, 3.0 * id_collision_bound(n));
}

TEST(Ids, DeterministicInRngState) {
  Rng a(9), b(9);
  EXPECT_EQ(random_ids(20, a), random_ids(20, b));
}

}  // namespace
}  // namespace urn
