// Tests for independent sets and the κ₁/κ₂ computation, including the
// model-level property sweeps: UDGs satisfy κ₁ ≤ 5, κ₂ ≤ 18 (Sect. 2) and
// unit ball graphs satisfy κ₂ ≤ 4^ρ (Lemma 9).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "support/rng.hpp"

namespace urn::graph {
namespace {

Graph petersen() {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i — i+5.
  GraphBuilder b(10);
  for (NodeId i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);
    b.add_edge(i + 5, ((i + 2) % 5) + 5);
    b.add_edge(i, i + 5);
  }
  return b.build();
}

// ---------------------------------------------------------- basic preds ---

TEST(IndependentSet, EmptySetIsIndependent) {
  const Graph g = complete_graph(4);
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{}));
}

TEST(IndependentSet, AdjacentPairRejected) {
  const Graph g = path_graph(3);
  EXPECT_FALSE(is_independent_set(g, std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(is_independent_set(g, std::vector<NodeId>{0, 2}));
}

TEST(IndependentSet, DuplicateNodeRejected) {
  const Graph g = empty_graph(3);
  EXPECT_FALSE(is_independent_set(g, std::vector<NodeId>{1, 1}));
}

TEST(IndependentSet, MaximalityDetected) {
  const Graph g = path_graph(5);
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<NodeId>{0, 2, 4}));
  // {0, 3} is independent but not maximal: 1 is undominated? No — 1 is
  // adjacent to 0. Node 4 is adjacent to 3. All dominated => maximal.
  EXPECT_TRUE(is_maximal_independent_set(g, std::vector<NodeId>{0, 3}));
  // {0} leaves nodes 2,3,4 undominated.
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<NodeId>{0}));
  // Dependent sets are never maximal independent sets.
  EXPECT_FALSE(is_maximal_independent_set(g, std::vector<NodeId>{0, 1}));
}

// ------------------------------------------------------------ greedy MIS --

TEST(GreedyMis, OrderIsRespected) {
  const Graph g = path_graph(4);
  std::vector<NodeId> order = {1, 3, 0, 2};
  EXPECT_EQ(greedy_mis(g, order), (std::vector<NodeId>{1, 3}));
}

class GreedyMisFamilies : public ::testing::TestWithParam<int> {};

TEST_P(GreedyMisFamilies, RandomOrderProducesMaximalSet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto net = random_udg(120, 7.0, 1.3, rng);
  const auto mis = greedy_mis_random(net.graph, rng);
  EXPECT_TRUE(is_maximal_independent_set(net.graph, mis));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyMisFamilies, ::testing::Range(1, 9));

// ------------------------------------------------------------- exact MIS --

TEST(ExactMis, KnownSmallGraphs) {
  std::vector<NodeId> all;
  auto nodes_of = [&all](const Graph& g) {
    all.resize(g.num_nodes());
    std::iota(all.begin(), all.end(), 0u);
    return std::span<const NodeId>(all);
  };
  {
    const Graph g = path_graph(5);
    EXPECT_EQ(max_independent_set_size(g, nodes_of(g)), 3u);
  }
  {
    const Graph g = cycle_graph(5);
    EXPECT_EQ(max_independent_set_size(g, nodes_of(g)), 2u);
  }
  {
    const Graph g = cycle_graph(6);
    EXPECT_EQ(max_independent_set_size(g, nodes_of(g)), 3u);
  }
  {
    const Graph g = complete_graph(5);
    EXPECT_EQ(max_independent_set_size(g, nodes_of(g)), 1u);
  }
  {
    const Graph g = star_graph(7);
    EXPECT_EQ(max_independent_set_size(g, nodes_of(g)), 6u);
  }
  {
    const Graph g = empty_graph(4);
    EXPECT_EQ(max_independent_set_size(g, nodes_of(g)), 4u);
  }
  {
    const Graph g = petersen();
    EXPECT_EQ(max_independent_set_size(g, nodes_of(g)), 4u);
  }
}

TEST(ExactMis, SubsetRestrictsProblem) {
  const Graph g = path_graph(6);
  // Only the induced subgraph on {0,1,2} counts: MIS {0,2}.
  const std::vector<NodeId> subset = {0, 1, 2};
  EXPECT_EQ(max_independent_set_size(g, subset), 2u);
}

TEST(ExactMis, EmptySubset) {
  const Graph g = path_graph(3);
  EXPECT_EQ(max_independent_set_size(g, std::vector<NodeId>{}), 0u);
}

TEST(ExactMis, AtLeastGreedyOnRandomGraphs) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gnp(40, 0.15, rng);
    std::vector<NodeId> all(g.num_nodes());
    std::iota(all.begin(), all.end(), 0u);
    const auto exact = max_independent_set_size(g, all);
    const auto greedy = greedy_mis_random(g, rng);
    EXPECT_GE(exact, greedy.size());
  }
}

// ----------------------------------------------------------------- kappa --

TEST(Kappa, StarGraph) {
  const Graph g = star_graph(8);
  // 1-hop neighborhood of the hub contains all 7 independent leaves.
  EXPECT_EQ(kappa1(g).value, 7u);
  EXPECT_EQ(kappa2(g).value, 7u);
  EXPECT_TRUE(kappa1(g).exact);
}

TEST(Kappa, CompleteGraph) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(kappa1(g).value, 1u);
  EXPECT_EQ(kappa2(g).value, 1u);
}

TEST(Kappa, PathGraph) {
  const Graph g = path_graph(9);
  // Closed 1-hop hood of an interior node: {v-1, v, v+1} → MIS 2.
  EXPECT_EQ(kappa1(g).value, 2u);
  // Closed 2-hop hood: 5 consecutive path nodes → MIS 3.
  EXPECT_EQ(kappa2(g).value, 3u);
}

TEST(Kappa, Kappa2AtLeastKappa1) {
  Rng rng(5);
  const auto net = random_udg(100, 7.0, 1.4, rng);
  EXPECT_GE(kappa2(net.graph).value, kappa1(net.graph).value);
}

// Model property (Sect. 2): every UDG is a BIG with κ₁ ≤ 5 and κ₂ ≤ 18.
class UdgKappaBounds : public ::testing::TestWithParam<int> {};

TEST_P(UdgKappaBounds, WithinUnitDiskBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto net = random_udg(150, 6.0, 1.0, rng);
  const auto k1 = kappa1(net.graph);
  const auto k2 = kappa2(net.graph);
  EXPECT_TRUE(k1.exact);
  EXPECT_LE(k1.value, 5u);
  EXPECT_LE(k2.value, 18u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdgKappaBounds, ::testing::Range(0, 10));

// Lemma 9: unit ball graph over a metric with doubling dimension ρ has
// κ₂ ≤ 4^ρ. Euclidean d-space has ρ = Θ(d); for d = 1, 2, 3 we check the
// concrete bounds 4^1, 4^2, 4^3 generously hold.
class UbgKappaBounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UbgKappaBounds, DoublingDimensionBound) {
  const std::size_t dim = GetParam();
  Rng rng(1000 + dim);
  const auto ball = random_unit_ball(120, dim, 4.0, rng);
  const auto k2 = kappa2(ball.graph);
  const double bound = std::pow(4.0, static_cast<double>(2 * dim));
  EXPECT_LE(static_cast<double>(k2.value), bound);
}

INSTANTIATE_TEST_SUITE_P(Dims, UbgKappaBounds, ::testing::Values(1u, 2u, 3u));

TEST(Kappa, SampledNeverExceedsFull) {
  Rng rng(6);
  const auto net = random_udg(150, 7.0, 1.3, rng);
  const auto full = kappa2(net.graph);
  KappaOptions opts;
  opts.sample = 20;
  const auto sampled = kappa2(net.graph, opts);
  EXPECT_LE(sampled.value, full.value);
  EXPECT_FALSE(sampled.exact);  // sampling can never certify exactness
}

TEST(Kappa, GreedyFallbackStillLowerBounds) {
  Rng rng(8);
  const auto net = random_udg(120, 5.0, 1.5, rng);
  const auto exact = kappa2(net.graph);
  KappaOptions tiny;
  tiny.exact_limit = 1;  // force the greedy fallback everywhere
  const auto greedy = kappa2(net.graph, tiny);
  EXPECT_FALSE(greedy.exact);
  EXPECT_LE(greedy.value, exact.value);
  EXPECT_GE(greedy.value, 1u);
}

}  // namespace
}  // namespace urn::graph
