// Tests for the leader-election / clustering primitive (the protocol's C₀
// layer used standalone): the leader set must be a maximal independent
// set and every node must associate with an adjacent leader.

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/independence.hpp"
#include "radio/wakeup.hpp"
#include "support/rng.hpp"

namespace urn::core {
namespace {

class LeaderElection : public ::testing::TestWithParam<int> {};

TEST_P(LeaderElection, LeadersFormMaximalIndependentSet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 29);
  const auto net = graph::random_udg(100, 7.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  Rng wrng(static_cast<std::uint64_t>(GetParam()));
  const auto ws = radio::WakeSchedule::uniform(net.graph.num_nodes(),
                                               2 * p.threshold(), wrng);
  const auto result = run_leader_election(
      net.graph, p, ws, static_cast<std::uint64_t>(GetParam()));
  ASSERT_TRUE(result.all_covered);
  EXPECT_TRUE(
      graph::is_maximal_independent_set(net.graph, result.leaders));
}

TEST_P(LeaderElection, EveryNonLeaderHasAdjacentLeader) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 5);
  const auto net = graph::random_udg(80, 6.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto result = run_leader_election(
      net.graph, p,
      radio::WakeSchedule::synchronous(net.graph.num_nodes()),
      static_cast<std::uint64_t>(GetParam()) + 100);
  ASSERT_TRUE(result.all_covered);
  std::vector<bool> is_leader(net.graph.num_nodes(), false);
  for (graph::NodeId v : result.leaders) is_leader[v] = true;
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    if (is_leader[v]) continue;
    const graph::NodeId ell = result.leader_of[v];
    ASSERT_NE(ell, graph::kInvalidNode) << "node " << v;
    EXPECT_TRUE(net.graph.has_edge(v, ell)) << "node " << v;
    EXPECT_TRUE(is_leader[ell]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaderElection, ::testing::Range(0, 5));

TEST(LeaderElection, CoverLatencyIsBoundedAndNonNegative) {
  Rng rng(404);
  const auto net = graph::random_udg(60, 5.5, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto result = run_leader_election(
      net.graph, p,
      radio::WakeSchedule::synchronous(net.graph.num_nodes()), 3);
  ASSERT_TRUE(result.all_covered);
  for (radio::Slot t : result.cover_latency) {
    EXPECT_GE(t, 0);
    // Leader election is the A₀ stage only: it must finish well within
    // a handful of threshold periods.
    EXPECT_LE(t, 10 * p.threshold());
  }
}

TEST(LeaderElection, StopsEarlyComparedToFullColoring) {
  Rng rng(405);
  const auto net = graph::random_udg(80, 6.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const Params p = Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());
  const auto election = run_leader_election(net.graph, p, ws, 7);
  const auto full = run_coloring(net.graph, p, ws, 7);
  ASSERT_TRUE(election.all_covered);
  ASSERT_TRUE(full.all_decided);
  EXPECT_LT(election.medium.slots_run, full.medium.slots_run);
}

TEST(LeaderElection, IsolatedNodesAllBecomeLeaders) {
  const Params p = Params::practical(16, 2, 2, 3);
  const auto result = run_leader_election(
      graph::empty_graph(4), p, radio::WakeSchedule::synchronous(4), 1);
  ASSERT_TRUE(result.all_covered);
  EXPECT_EQ(result.leaders.size(), 4u);
}

}  // namespace
}  // namespace urn::core
