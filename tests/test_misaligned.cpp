// Tests for the non-aligned-slots engine (Sect. 2's "practical
// non-aligned case").

#include <gtest/gtest.h>

#include <optional>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "radio/misaligned_engine.hpp"
#include "support/rng.hpp"

namespace urn::radio {
namespace {

/// Transmits in the listed *local* slots; records receptions.
struct HalfScript {
  NodeId id = graph::kInvalidNode;
  std::vector<Slot> tx_slots;
  std::vector<std::pair<Slot, Message>> received;

  void on_wake(SlotContext&) {}
  std::optional<Message> on_slot(SlotContext& ctx) {
    for (Slot s : tx_slots) {
      if (s == ctx.now) return make_decided(id, static_cast<int>(ctx.now));
    }
    return std::nullopt;
  }
  void on_receive(SlotContext& ctx, const Message& msg) {
    received.emplace_back(ctx.now, msg);
  }
  [[nodiscard]] bool decided() const { return false; }
};

MisalignedEngine<HalfScript> make(const graph::Graph& g,
                                  std::vector<std::vector<Slot>> scripts,
                                  std::vector<std::uint8_t> offsets) {
  std::vector<HalfScript> nodes(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes[v].id = v;
    nodes[v].tx_slots = scripts[v];
  }
  return MisalignedEngine<HalfScript>(g, WakeSchedule::synchronous(
                                             g.num_nodes()),
                                      std::move(nodes), std::move(offsets),
                                      1);
}

TEST(Misaligned, AlignedPairDelivers) {
  const graph::Graph g = graph::path_graph(2);
  auto eng = make(g, {{0}, {}}, {0, 0});
  for (int i = 0; i < 6; ++i) eng.step_half();
  ASSERT_EQ(eng.node(1).received.size(), 1u);
  EXPECT_EQ(eng.node(1).received[0].second.sender, 0u);
}

TEST(Misaligned, CrossPhasePairStillDelivers) {
  // Sender at offset 0, receiver at offset 1: the frame spans two of the
  // receiver's local slots but the medium is clear, so it decodes.
  const graph::Graph g = graph::path_graph(2);
  auto eng = make(g, {{1}, {}}, {0, 1});
  for (int i = 0; i < 10; ++i) eng.step_half();
  ASSERT_EQ(eng.node(1).received.size(), 1u);
}

TEST(Misaligned, PartialOverlapCorrupts) {
  // Path 0-1-2, receiver 1 at offset 0.  Node 0 (offset 0) transmits its
  // slot 1 (halves 2,3); node 2 (offset 1) transmits its slot 1 (halves
  // 3,4).  They overlap in half 3 → both frames are corrupted at node 1.
  const graph::Graph g = graph::path_graph(3);
  auto eng = make(g, {{1}, {}, {1}}, {0, 0, 1});
  for (int i = 0; i < 10; ++i) eng.step_half();
  EXPECT_TRUE(eng.node(1).received.empty());
  EXPECT_GE(eng.stats().collisions, 1u);
}

TEST(Misaligned, NonOverlappingCrossPhaseFramesBothDeliver) {
  // Node 0 (offset 0) transmits slot 0 (halves 0,1); node 2 (offset 1)
  // transmits slot 1 (halves 3,4). No overlap at receiver 1: two clean
  // receptions.
  const graph::Graph g = graph::path_graph(3);
  auto eng = make(g, {{0}, {}, {1}}, {0, 0, 1});
  for (int i = 0; i < 10; ++i) eng.step_half();
  EXPECT_EQ(eng.node(1).received.size(), 2u);
}

TEST(Misaligned, ReceiverBusyDuringEitherHalfMissesFrame) {
  // Receiver 1 (offset 1) transmits its slot 1 (halves 3,4); node 0
  // (offset 0) transmits its slot 1 (halves 2,3). Overlap at half 3 →
  // node 1 cannot decode node 0's frame.
  const graph::Graph g = graph::path_graph(2);
  auto eng = make(g, {{1}, {1}}, {0, 1});
  for (int i = 0; i < 10; ++i) eng.step_half();
  EXPECT_TRUE(eng.node(1).received.empty());
}

TEST(Misaligned, MatchesAlignedEngineWhenAllOffsetsZero) {
  // With identical offsets the medium is slot-aligned; the protocol must
  // produce a valid coloring just like on radio::Engine.
  Rng rng(5);
  const auto net = graph::random_udg(60, 5.5, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  std::vector<core::ColoringNode> nodes;
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    nodes.emplace_back(&p, v);
  }
  MisalignedEngine<core::ColoringNode> eng(
      net.graph, WakeSchedule::synchronous(net.graph.num_nodes()),
      std::move(nodes),
      std::vector<std::uint8_t>(net.graph.num_nodes(), 0), 7);
  const RunStats stats = eng.run(40 * p.threshold());
  ASSERT_TRUE(stats.all_decided);
  std::vector<graph::Color> colors(net.graph.num_nodes());
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    colors[v] = eng.node(v).color();
  }
  EXPECT_TRUE(graph::validate(net.graph, colors).valid());
}

class MisalignedProtocol : public ::testing::TestWithParam<int> {};

TEST_P(MisalignedProtocol, RandomOffsetsStillColorCorrectly) {
  // The paper's claim: the analysis carries over to the non-aligned case.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  const auto net = graph::random_udg(70, 6.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  std::vector<core::ColoringNode> nodes;
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    nodes.emplace_back(&p, v);
  }
  Rng orng(static_cast<std::uint64_t>(GetParam()));
  auto offsets = MisalignedEngine<core::ColoringNode>::random_offsets(
      net.graph.num_nodes(), orng);
  MisalignedEngine<core::ColoringNode> eng(
      net.graph, WakeSchedule::synchronous(net.graph.num_nodes()),
      std::move(nodes), std::move(offsets),
      static_cast<std::uint64_t>(GetParam()));
  const RunStats stats = eng.run(60 * p.threshold());
  ASSERT_TRUE(stats.all_decided);
  std::vector<graph::Color> colors(net.graph.num_nodes());
  for (graph::NodeId v = 0; v < net.graph.num_nodes(); ++v) {
    colors[v] = eng.node(v).color();
  }
  EXPECT_TRUE(graph::validate(net.graph, colors).valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisalignedProtocol, ::testing::Range(0, 5));

}  // namespace
}  // namespace urn::radio
