// Tests for the online invariant monitor, the cross-run telemetry
// ledger and the bench regression differ.
//
// The monitor half works on hand-built adversarial event streams: one
// stream per invariant, each violating exactly the property under test,
// plus clean streams that must pass.  The integration half proves the
// sink contract end-to-end: a monitored run is bit-identical to an
// unmonitored one and a seeded run on a UDG reports zero violations.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "obs/ledger.hpp"
#include "obs/monitor.hpp"
#include "obs/regress.hpp"
#include "radio/wakeup.hpp"
#include "support/rng.hpp"

namespace urn::obs {
namespace {

constexpr auto kVerify = static_cast<std::uint8_t>(PhaseCode::kVerify);
constexpr auto kRequest = static_cast<std::uint8_t>(PhaseCode::kRequest);
constexpr auto kDecided = static_cast<std::uint8_t>(PhaseCode::kDecided);

/// Two nodes joined by one edge, as CSR.
MonitorConfig two_node_config() {
  MonitorConfig config;
  config.adj_offsets = {0, 1, 2};
  config.adj = {1, 0};
  return config;
}

TEST(InvariantMonitor, CleanWalkReportsNothing) {
  MonitorConfig config = two_node_config();
  config.kappa2 = 2;
  config.latency_budget = 1000;
  config.theta = {5, 5};
  InvariantMonitorSink monitor(std::move(config));
  // Node 0: Z -> A0 -> C0 (a leader).
  monitor.record(Event::wake(0, 0));
  monitor.record(Event::phase_change(1, 0, kVerify, 0));
  monitor.record(Event::phase_change(5, 0, kDecided, 0));
  monitor.record(Event::decision(5, 0, 0, 5));
  // Node 1: Z -> A0 -> R -> A3 -> A4 -> C4 (k2+1 = 3 divides the R exit).
  monitor.record(Event::wake(0, 1));
  monitor.record(Event::phase_change(2, 1, kVerify, 0));
  monitor.record(Event::phase_change(6, 1, kRequest, -1));
  monitor.record(Event::phase_change(9, 1, kVerify, 3));
  monitor.record(Event::phase_change(12, 1, kVerify, 4));
  monitor.record(Event::phase_change(20, 1, kDecided, 4));
  const MonitorReport report = monitor.report();
  EXPECT_TRUE(report.ok()) << report.of(Invariant::kPhaseLegality).first_what;
  EXPECT_EQ(report.nodes_seen, 2u);
  EXPECT_EQ(report.events_seen, 10u);
}

TEST(InvariantMonitor, FlagsIllegalPhaseTransition) {
  InvariantMonitorSink monitor(MonitorConfig{});
  monitor.record(Event::wake(0, 7));
  // First transition must be verify(0); verify(3) is a Fig. 2 violation.
  monitor.record(Event::phase_change(4, 7, kVerify, 3));
  const MonitorReport report = monitor.report();
  EXPECT_FALSE(report.ok());
  const auto& p = report.of(Invariant::kPhaseLegality);
  EXPECT_EQ(p.count, 1u);
  EXPECT_EQ(p.first_slot, 4);
  EXPECT_EQ(p.first_node, 7u);
  EXPECT_NE(p.first_what.find("expected verify(0)"), std::string::npos);
}

TEST(InvariantMonitor, FlagsSkippedVerifyState) {
  InvariantMonitorSink monitor(MonitorConfig{});
  monitor.record(Event::wake(0, 3));
  monitor.record(Event::phase_change(1, 3, kVerify, 0));
  monitor.record(Event::phase_change(2, 3, kRequest, -1));
  monitor.record(Event::phase_change(3, 3, kVerify, 4));
  // A4 -> A6 skips A5: illegal.
  monitor.record(Event::phase_change(9, 3, kVerify, 6));
  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.of(Invariant::kPhaseLegality).count, 1u);
  EXPECT_EQ(report.of(Invariant::kPhaseLegality).first_slot, 9);
}

TEST(InvariantMonitor, FlagsColorConflictBetweenNeighbors) {
  InvariantMonitorSink monitor(two_node_config());
  monitor.record(Event::wake(0, 0));
  monitor.record(Event::decision(10, 0, 5, 10));
  monitor.record(Event::wake(0, 1));
  monitor.record(Event::decision(20, 1, 5, 20));
  const MonitorReport report = monitor.report();
  EXPECT_FALSE(report.ok());
  const auto& p = report.of(Invariant::kColorConflict);
  EXPECT_EQ(p.count, 1u);
  EXPECT_EQ(p.first_slot, 20);
  EXPECT_EQ(p.first_node, 1u);
  EXPECT_NE(p.first_what.find("adjacent node 0"), std::string::npos);
  // Color 5 is not a leader color: independence untouched.
  EXPECT_EQ(report.of(Invariant::kLeaderIndependence).count, 0u);
}

TEST(InvariantMonitor, FlagsAdjacentLeaders) {
  InvariantMonitorSink monitor(two_node_config());
  monitor.record(Event::decision(10, 0, 0, 10));
  monitor.record(Event::decision(11, 1, 0, 11));
  const MonitorReport report = monitor.report();
  // Both the generic conflict and the leader-independence invariant trip.
  EXPECT_EQ(report.of(Invariant::kColorConflict).count, 1u);
  const auto& p = report.of(Invariant::kLeaderIndependence);
  EXPECT_EQ(p.count, 1u);
  EXPECT_EQ(p.first_slot, 11);
  EXPECT_EQ(p.first_node, 1u);
}

TEST(InvariantMonitor, DistantEqualColorsAreFine) {
  // Three nodes on a path 0-1-2: the endpoints may share a color.
  MonitorConfig config;
  config.adj_offsets = {0, 1, 3, 4};
  config.adj = {1, 0, 2, 1};
  InvariantMonitorSink monitor(std::move(config));
  monitor.record(Event::decision(10, 0, 4, 10));
  monitor.record(Event::decision(12, 2, 4, 12));
  monitor.record(Event::decision(14, 1, 9, 14));
  EXPECT_TRUE(monitor.report().ok());
}

TEST(InvariantMonitor, FlagsLocalityViolation) {
  MonitorConfig config;
  config.kappa2 = 2;
  config.theta = {1};
  InvariantMonitorSink monitor(std::move(config));
  // Bound is (k2+1)*theta + k2 = 5; color 6 exceeds it.
  monitor.record(Event::decision(30, 0, 6, 30));
  const MonitorReport report = monitor.report();
  const auto& p = report.of(Invariant::kLocality);
  EXPECT_EQ(p.count, 1u);
  EXPECT_EQ(p.first_slot, 30);
  EXPECT_EQ(p.first_node, 0u);
  EXPECT_NE(p.first_what.find("Theorem 4"), std::string::npos);
}

TEST(InvariantMonitor, LocalityBoundIsInclusive) {
  MonitorConfig config;
  config.kappa2 = 2;
  config.theta = {1};
  InvariantMonitorSink monitor(std::move(config));
  monitor.record(Event::decision(30, 0, 5, 30));  // exactly the bound
  EXPECT_TRUE(monitor.report().ok());
}

TEST(InvariantMonitor, FlagsLatencyBudgetOverrun) {
  MonitorConfig config;
  config.latency_budget = 50;
  InvariantMonitorSink monitor(std::move(config));
  monitor.record(Event::wake(10, 2));
  monitor.record(Event::decision(100, 2, 3, 90));  // T_v = 90 > 50
  const MonitorReport report = monitor.report();
  const auto& p = report.of(Invariant::kLatency);
  EXPECT_EQ(p.count, 1u);
  EXPECT_EQ(p.first_slot, 100);
  EXPECT_EQ(p.first_node, 2u);
}

TEST(InvariantMonitor, LatencyWithinBudgetIsFine) {
  MonitorConfig config;
  config.latency_budget = 50;
  InvariantMonitorSink monitor(std::move(config));
  monitor.record(Event::wake(10, 2));
  monitor.record(Event::decision(60, 2, 3, 50));  // T_v = 50, inclusive
  EXPECT_TRUE(monitor.report().ok());
}

TEST(InvariantMonitor, DecisionDisagreeingWithDecidedTransition) {
  InvariantMonitorSink monitor(MonitorConfig{});
  monitor.record(Event::wake(0, 1));
  monitor.record(Event::phase_change(1, 1, kVerify, 0));
  monitor.record(Event::phase_change(5, 1, kDecided, 0));
  monitor.record(Event::decision(5, 1, 3, 5));  // claims color 3, walked to 0
  const MonitorReport report = monitor.report();
  EXPECT_EQ(report.of(Invariant::kPhaseLegality).count, 1u);
}

// ---- integration: the monitor as an engine sink --------------------------

TEST(MonitorIntegration, SeededUdgRunReportsZeroViolations) {
  Rng rng(99);
  const auto net = graph::random_udg(80, 6.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  Rng wrng(7);
  const auto ws = radio::WakeSchedule::uniform(net.graph.num_nodes(),
                                               2 * p.threshold(), wrng);
  core::TraceOptions trace;
  trace.monitor = true;
  const auto run =
      core::run_coloring_traced(net.graph, p, ws, 1234, trace);
  ASSERT_TRUE(run.monitor.has_value());
  EXPECT_TRUE(run.monitor->ok())
      << "violations: " << run.monitor->total_violations();
  EXPECT_GT(run.monitor->events_seen, 0u);
  EXPECT_EQ(run.monitor->nodes_seen, net.graph.num_nodes());
}

TEST(MonitorIntegration, MonitoredRunIsBitIdenticalToPlainRun) {
  Rng rng(5);
  const auto net = graph::random_udg(60, 5.5, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  Rng wrng(11);
  const auto ws = radio::WakeSchedule::uniform(net.graph.num_nodes(),
                                               2 * p.threshold(), wrng);
  const auto plain = core::run_coloring(net.graph, p, ws, 777);
  core::TraceOptions trace;
  trace.monitor = true;
  const auto monitored =
      core::run_coloring_traced(net.graph, p, ws, 777, trace);
  EXPECT_EQ(plain.colors, monitored.colors);
  EXPECT_EQ(plain.decision_slot, monitored.decision_slot);
  EXPECT_EQ(plain.medium.slots_run, monitored.medium.slots_run);
  EXPECT_EQ(plain.medium.transmissions, monitored.medium.transmissions);
  EXPECT_EQ(plain.medium.collisions, monitored.medium.collisions);
  EXPECT_EQ(plain.total_resets, monitored.total_resets);
}

TEST(MonitorIntegration, MakeMonitorConfigMatchesGraphShape) {
  Rng rng(17);
  const auto net = graph::random_udg(40, 5.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 4, 9);
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());
  const MonitorConfig config = core::make_monitor_config(net.graph, p, ws);
  EXPECT_EQ(config.kappa2, p.kappa2);
  EXPECT_EQ(config.theta.size(), net.graph.num_nodes());
  EXPECT_EQ(config.adj_offsets.size(), net.graph.num_nodes() + 1);
  EXPECT_EQ(config.adj.size(), 2 * net.graph.num_edges());
  EXPECT_EQ(config.latency_budget,
            core::default_slot_budget(p, ws) - ws.latest());
  EXPECT_GT(config.latency_budget, 0);
}

// ---- leader election on the shared sink path -----------------------------

TEST(LeaderElectionTraced, BitIdenticalToPlainAndMonitored) {
  Rng rng(23);
  const auto net = graph::random_udg(70, 6.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  Rng wrng(29);
  const auto ws = radio::WakeSchedule::uniform(net.graph.num_nodes(),
                                               2 * p.threshold(), wrng);
  const auto plain = core::run_leader_election(net.graph, p, ws, 31);
  core::TraceOptions trace;
  trace.monitor = true;
  trace.metrics = true;
  trace.metrics_window = 64;
  const auto traced =
      core::run_leader_election_traced(net.graph, p, ws, 31, trace);
  EXPECT_EQ(plain.leaders, traced.leaders);
  EXPECT_EQ(plain.leader_of, traced.leader_of);
  EXPECT_EQ(plain.cover_latency, traced.cover_latency);
  EXPECT_EQ(plain.medium.slots_run, traced.medium.slots_run);
  EXPECT_EQ(plain.medium.transmissions, traced.medium.transmissions);
  ASSERT_TRUE(traced.series.has_value());
  EXPECT_GT(traced.series->size(), 0u);
  ASSERT_TRUE(traced.monitor.has_value());
  EXPECT_GT(traced.monitor->events_seen, 0u);
}

TEST(LeaderElectionTraced, HonorsMediumOptions) {
  Rng rng(37);
  const auto net = graph::random_udg(60, 5.5, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params p =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());
  radio::MediumOptions medium;
  medium.drop_probability = 0.3;
  const auto faulty =
      core::run_leader_election(net.graph, p, ws, 41, 0, medium);
  EXPECT_GT(faulty.medium.dropped, 0u);
  const auto ideal = core::run_leader_election(net.graph, p, ws, 41);
  EXPECT_EQ(ideal.medium.dropped, 0u);
}

// ---- RunLedger -----------------------------------------------------------

TEST(RunLedger, PercentilesOverTrials) {
  RunLedger ledger;
  for (int i = 1; i <= 100; ++i) {
    ledger.add("latency.max", static_cast<double>(i));
  }
  const LedgerSummary s = ledger.summarize("latency.max");
  EXPECT_EQ(s.trials, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.5, 0.5);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
}

TEST(RunLedger, UnknownMetricIsZero) {
  RunLedger ledger;
  const LedgerSummary s = ledger.summarize("nope");
  EXPECT_EQ(s.trials, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(RunLedger, SummariesAreSortedByName) {
  RunLedger ledger;
  ledger.add("b", 2.0);
  ledger.add("a", 1.0);
  ledger.add_all("c", {3.0, 4.0});
  const auto all = ledger.summaries();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[1].first, "b");
  EXPECT_EQ(all[2].first, "c");
  EXPECT_EQ(all[2].second.trials, 2u);
}

// ---- bench regression differ ---------------------------------------------

TEST(BenchRegress, ParsesFlatJson) {
  const BenchDoc doc = parse_bench_json(
      "{\n  \"a.b\": 1.5,\n  \"s\": \"text\",\n  \"flag\": true\n}\n");
  ASSERT_TRUE(doc.ok);
  ASSERT_EQ(doc.entries.size(), 3u);
  const BenchEntry* a = doc.find("a.b");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->numeric);
  EXPECT_DOUBLE_EQ(a->value, 1.5);
  const BenchEntry* s = doc.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->numeric);
  EXPECT_EQ(s->raw, "\"text\"");
  EXPECT_FALSE(doc.find("flag")->numeric);
}

TEST(BenchRegress, IdenticalDocsPass) {
  const BenchDoc a = parse_bench_json("{\"x\": 3, \"y\": \"z\"}");
  const DiffReport r = diff_bench(a, a);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.compared, 2u);
}

TEST(BenchRegress, NumericDriftBeyondToleranceFails) {
  const BenchDoc base = parse_bench_json("{\"x\": 100}");
  const BenchDoc fresh = parse_bench_json("{\"x\": 104}");
  EXPECT_FALSE(diff_bench(base, fresh).ok());
  DiffOptions tol;
  tol.rel_tol = 0.05;
  EXPECT_TRUE(diff_bench(base, fresh, tol).ok());
  tol.rel_tol = 0.0;
  tol.abs_tol = 5.0;
  EXPECT_TRUE(diff_bench(base, fresh, tol).ok());
}

TEST(BenchRegress, MissingKeyIsARegression) {
  const BenchDoc base = parse_bench_json("{\"x\": 1, \"gone\": 2}");
  const BenchDoc fresh = parse_bench_json("{\"x\": 1}");
  const DiffReport r = diff_bench(base, fresh);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].key, "gone");
  EXPECT_NE(r.regressions[0].what.find("missing"), std::string::npos);
}

TEST(BenchRegress, ExtraFreshKeysAreFine) {
  const BenchDoc base = parse_bench_json("{\"x\": 1}");
  const BenchDoc fresh = parse_bench_json("{\"x\": 1, \"new\": 9}");
  EXPECT_TRUE(diff_bench(base, fresh).ok());
}

TEST(BenchRegress, WallClockKeysSkippedByDefault) {
  const BenchDoc base =
      parse_bench_json("{\"profile.core.ns\": 123, \"x\": 1}");
  const BenchDoc fresh =
      parse_bench_json("{\"profile.core.ns\": 999, \"x\": 1}");
  const DiffReport r = diff_bench(base, fresh);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.skipped, 1u);
  EXPECT_EQ(r.compared, 1u);
}

TEST(BenchRegress, StringVsNumberNeverEqual) {
  const BenchDoc base = parse_bench_json("{\"x\": \"5\"}");
  const BenchDoc fresh = parse_bench_json("{\"x\": 5}");
  EXPECT_FALSE(diff_bench(base, fresh).ok());
}

// ---- rate-class keys (throughput metrics) --------------------------------

TEST(BenchRegress, RateKeysNeverComparedExactly) {
  // Machine-dependent throughput halves; with the default rate class the
  // key is checked for presence + numeric only, never for equality.
  const BenchDoc base =
      parse_bench_json("{\"engine.noderate.udg\": 200.0, \"x\": 1}");
  const BenchDoc fresh =
      parse_bench_json("{\"engine.noderate.udg\": 100.0, \"x\": 1}");
  const DiffReport r = diff_bench(base, fresh);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.compared, 2u);  // rate keys count as compared, not skipped
  EXPECT_EQ(r.skipped, 0u);
}

TEST(BenchRegress, MissingRateKeyIsARegression) {
  const BenchDoc base = parse_bench_json("{\"engine.noderate.udg\": 200.0}");
  const BenchDoc fresh = parse_bench_json("{\"x\": 1}");
  const DiffReport r = diff_bench(base, fresh);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_NE(r.regressions[0].what.find("missing"), std::string::npos);
}

TEST(BenchRegress, NonNumericRateKeyIsARegression) {
  const BenchDoc base = parse_bench_json("{\"engine.noderate.udg\": 200.0}");
  const BenchDoc fresh =
      parse_bench_json("{\"engine.noderate.udg\": \"fast\"}");
  const DiffReport r = diff_bench(base, fresh);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_NE(r.regressions[0].what.find("not numeric"), std::string::npos);
}

TEST(BenchRegress, RateTolFlagsOneSidedDrops) {
  const BenchDoc base = parse_bench_json("{\"engine.noderate.udg\": 200.0}");
  const BenchDoc slower = parse_bench_json("{\"engine.noderate.udg\": 120.0}");
  const BenchDoc faster = parse_bench_json("{\"engine.noderate.udg\": 900.0}");
  DiffOptions opt;
  opt.rate_rel_tol = 0.3;  // floor = 140.0
  EXPECT_FALSE(diff_bench(base, slower, opt).ok());
  EXPECT_TRUE(diff_bench(base, faster, opt).ok());  // faster is never wrong
  const BenchDoc at_floor =
      parse_bench_json("{\"engine.noderate.udg\": 140.0}");
  EXPECT_TRUE(diff_bench(base, at_floor, opt).ok());  // floor is inclusive
}

TEST(BenchRegress, EmptyRateClassFallsBackToExact) {
  const BenchDoc base = parse_bench_json("{\"engine.noderate.udg\": 200.0}");
  const BenchDoc fresh = parse_bench_json("{\"engine.noderate.udg\": 100.0}");
  DiffOptions opt;
  opt.rate_substrings.clear();
  EXPECT_FALSE(diff_bench(base, fresh, opt).ok());
}

// ---- explain-class keys (attribution metrics) ----------------------------

TEST(BenchRegress, ExplainKeysExactByDefault) {
  // With the default explain_tol = 0 the class degrades to an exact
  // comparison, so the committed gate stays bit-identical.
  const BenchDoc base =
      parse_bench_json("{\"explain.cause.collision.share\": 0.25}");
  const BenchDoc same =
      parse_bench_json("{\"explain.cause.collision.share\": 0.25}");
  const BenchDoc drifted =
      parse_bench_json("{\"explain.cause.collision.share\": 0.26}");
  EXPECT_TRUE(diff_bench(base, same).ok());
  EXPECT_FALSE(diff_bench(base, drifted).ok());
}

TEST(BenchRegress, ExplainTolAllowsTwoSidedDrift) {
  const BenchDoc base =
      parse_bench_json("{\"explain.cause.collision.share\": 0.25}");
  const BenchDoc up =
      parse_bench_json("{\"explain.cause.collision.share\": 0.30}");
  const BenchDoc down =
      parse_bench_json("{\"explain.cause.collision.share\": 0.20}");
  const BenchDoc far_off =
      parse_bench_json("{\"explain.cause.collision.share\": 0.60}");
  DiffOptions opt;
  opt.explain_tol = 0.1;  // allowed = 0.1 + 0.1*0.25 = 0.125, both sides
  EXPECT_TRUE(diff_bench(base, up, opt).ok());
  EXPECT_TRUE(diff_bench(base, down, opt).ok());
  EXPECT_FALSE(diff_bench(base, far_off, opt).ok());
}

TEST(BenchRegress, ExplainTolDoesNotLoosenOtherMetrics) {
  // The explain tolerance must not leak into the exact class.
  const BenchDoc base = parse_bench_json(
      "{\"explain.total_stall\": 100, \"coloring.latency.max\": 100}");
  const BenchDoc fresh = parse_bench_json(
      "{\"explain.total_stall\": 105, \"coloring.latency.max\": 105}");
  DiffOptions opt;
  opt.explain_tol = 0.1;  // allowed = 0.1 + 10 = 10.1 for explain keys
  const DiffReport r = diff_bench(base, fresh, opt);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].key, "coloring.latency.max");
}

TEST(BenchRegress, ExplainStringKeyExactAtZeroTol) {
  const BenchDoc base =
      parse_bench_json("{\"explain.top_cause\": \"collision\"}");
  const BenchDoc changed =
      parse_bench_json("{\"explain.top_cause\": \"phase_wait\"}");
  EXPECT_FALSE(diff_bench(base, changed).ok());
  DiffOptions opt;
  opt.explain_tol = 0.1;  // nonzero tol: presence is enough for strings
  EXPECT_TRUE(diff_bench(base, changed, opt).ok());
}

TEST(BenchRegress, MissingExplainKeyIsARegression) {
  const BenchDoc base = parse_bench_json("{\"explain.total_stall\": 100}");
  const BenchDoc fresh = parse_bench_json("{\"x\": 1}");
  DiffOptions opt;
  opt.explain_tol = 1.0;  // tolerance never excuses a vanished metric
  const DiffReport r = diff_bench(base, fresh, opt);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].key, "explain.total_stall");
}

TEST(BenchRegress, EmptyExplainClassFallsBackToExact) {
  const BenchDoc base = parse_bench_json("{\"explain.total_stall\": 100}");
  const BenchDoc fresh = parse_bench_json("{\"explain.total_stall\": 105}");
  DiffOptions opt;
  opt.explain_substrings.clear();
  opt.explain_tol = 1.0;  // without the class the tolerance is inert
  EXPECT_FALSE(diff_bench(base, fresh, opt).ok());
}

}  // namespace
}  // namespace urn::obs
