// Tests for the observability subsystem: event serialization, sinks,
// per-window metrics, the trace analyzer (Fig. 2 legality), the traced
// runner, and the profiling registry.

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "radio/engine.hpp"
#include "support/rng.hpp"

namespace urn::obs {
namespace {

// -------------------------------- events ---------------------------------

TEST(Event, JsonlRoundTripsEveryKind) {
  const Event samples[] = {
      Event::wake(7, 3),
      Event::transmit(15, 4, static_cast<std::uint8_t>(MsgCode::kCompete),
                      /*color=*/2, /*counter=*/314),
      Event::transmit(16, 4, static_cast<std::uint8_t>(MsgCode::kDecided),
                      /*color=*/2, /*counter=*/0),
      Event::delivery(20, 1, 4, static_cast<std::uint8_t>(MsgCode::kAssign),
                      /*color=*/0),
      Event::collision(21, 9),
      Event::drop(22, 5, 4, static_cast<std::uint8_t>(MsgCode::kRequest)),
      Event::phase_change(30, 2,
                          static_cast<std::uint8_t>(PhaseCode::kVerify), 6),
      Event::phase_change(31, 2,
                          static_cast<std::uint8_t>(PhaseCode::kRequest), 0),
      Event::reset(40, 8, 3, 12345),
      Event::decision(55, 2, 6, 48),
      Event::serve(60, 0, 7, 4),
  };
  for (const Event& e : samples) {
    std::string line;
    append_jsonl(line, e);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    Event back;
    ASSERT_TRUE(parse_jsonl_line(line, back)) << line;
    EXPECT_EQ(back, e) << line;
  }
}

TEST(Event, JsonlRoundTripsExtremeFieldValues) {
  // Every kind at the edges of its field domains: INT64 extremes for
  // slots / values, UINT32_MAX (kNoNode) node / peer ids, INT32 extremes
  // for colors.  Serialization and parsing must be exact — no precision
  // loss through the text form.
  constexpr Slot kSlotMax = std::numeric_limits<Slot>::max();
  constexpr Slot kSlotMin = std::numeric_limits<Slot>::min();
  constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
  constexpr std::int32_t kI32Max = std::numeric_limits<std::int32_t>::max();
  constexpr std::int32_t kI32Min = std::numeric_limits<std::int32_t>::min();
  const Event samples[] = {
      Event::wake(kSlotMax, kNoNode),
      Event::wake(kSlotMin, 0),
      Event::transmit(kSlotMax, kNoNode,
                      static_cast<std::uint8_t>(MsgCode::kCompete), kI32Max,
                      kI64Max),
      Event::transmit(kSlotMin, kNoNode,
                      static_cast<std::uint8_t>(MsgCode::kCompete), kI32Min,
                      kI64Min),
      Event::delivery(kSlotMax, kNoNode, kNoNode - 1,
                      static_cast<std::uint8_t>(MsgCode::kAssign), kI32Min),
      Event::collision(kSlotMin, kNoNode),
      Event::drop(-1, kNoNode, 0,
                  static_cast<std::uint8_t>(MsgCode::kDecided)),
      Event::phase_change(kSlotMax, kNoNode,
                          static_cast<std::uint8_t>(PhaseCode::kDecided),
                          kI32Max),
      Event::reset(kSlotMin, kNoNode, kI32Min, kI64Min),
      Event::decision(kSlotMax, kNoNode, kI32Max, kI64Max),
      Event::serve(kSlotMin, kNoNode, kNoNode, kI64Min),
  };
  for (const Event& e : samples) {
    std::string line;
    append_jsonl(line, e);
    Event back;
    ASSERT_TRUE(parse_jsonl_line(line, back)) << line;
    EXPECT_EQ(back, e) << line;
  }
}

TEST(Event, ParserToleratesEscapedAndUnknownStringPayloads) {
  // Events carry no free-form strings, but the parser must tolerate
  // foreign keys carrying escaped payloads without corrupting the
  // event fields around them.
  Event out;
  ASSERT_TRUE(parse_jsonl_line(
      R"({"slot":3,"kind":"wake","node":1,"note":"a \"quoted\" \\ payload"})",
      out));
  EXPECT_EQ(out, Event::wake(3, 1));
  ASSERT_TRUE(parse_jsonl_line(
      R"({"slot":4,"kind":"wake","node":2,"note":""})", out));
  EXPECT_EQ(out, Event::wake(4, 2));
}

TEST(Event, ParserRejectsGarbage) {
  Event out;
  EXPECT_FALSE(parse_jsonl_line("", out));
  EXPECT_FALSE(parse_jsonl_line("not json", out));
  EXPECT_FALSE(parse_jsonl_line(R"({"slot":1})", out));  // no kind
  EXPECT_FALSE(parse_jsonl_line(R"({"slot":1,"kind":"warp"})", out));
}

TEST(Event, KindNamesRoundTrip) {
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EventKind back = EventKind::kWake;
    ASSERT_TRUE(kind_from_name(kind_name(kind), back));
    EXPECT_EQ(back, kind);
  }
  EventKind dummy = EventKind::kWake;
  EXPECT_FALSE(kind_from_name("nope", dummy));
}

// -------------------------------- sinks ----------------------------------

TEST(Sinks, MemorySinkStoresInOrder) {
  MemorySink sink;
  sink.record(Event::wake(1, 0));
  sink.record(Event::wake(2, 1));
  sink.flush();
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.events()[0].slot, 1);
  EXPECT_EQ(sink.events()[1].slot, 2);
}

TEST(Sinks, RingSinkKeepsLastEventsAfterWraparound) {
  RingSink ring(4);
  for (Slot s = 0; s < 10; ++s) ring.record(Event::collision(s, 0));
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].slot, static_cast<Slot>(6 + i)) << i;  // oldest first
  }
}

TEST(Sinks, RingSinkBelowCapacityKeepsEverything) {
  RingSink ring(8);
  for (Slot s = 0; s < 3; ++s) ring.record(Event::collision(s, 0));
  EXPECT_EQ(ring.recorded(), 3u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().slot, 0);
  EXPECT_EQ(snap.back().slot, 2);
}

TEST(Sinks, TeeSinkFansOutAndToleratesNullBranches) {
  MemorySink a;
  MemorySink b;
  TeeSink<MemorySink, MemorySink> both(&a, &b);
  both.record(Event::wake(5, 1));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);

  TeeSink<MemorySink, MemorySink> left_only(&a, nullptr);
  left_only.record(Event::wake(6, 2));
  left_only.flush();
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(Sinks, JsonlSinkWritesParseableFile) {
  const std::string path = ::testing::TempDir() + "obs_jsonl_sink.jsonl";
  {
    JsonlSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.record(Event::wake(0, 0));
    sink.record(Event::decision(9, 0, 3, 9));
    sink.flush();
    EXPECT_EQ(sink.written(), 2u);
  }
  const ParsedLogFile log = read_jsonl_file(path);
  ASSERT_TRUE(log.ok);
  EXPECT_EQ(log.bad_lines, 0u);
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.events[0], Event::wake(0, 0));
  EXPECT_EQ(log.events[1], Event::decision(9, 0, 3, 9));
  std::remove(path.c_str());
}

TEST(Sinks, JsonlSinkReportsUnopenablePath) {
  JsonlSink sink("/nonexistent-dir-xyz/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.record(Event::wake(0, 0));  // silently discarded, no crash
  sink.flush();
  EXPECT_EQ(sink.written(), 0u);
}

// ------------------------------- metrics ---------------------------------

TEST(Metrics, WindowingGapFillAndCumulativePopulations) {
  MetricsSink sink(/*window=*/10);
  sink.record(Event::wake(0, 0));
  sink.record(Event::wake(5, 1));
  sink.record(Event::transmit(
      12, 0, static_cast<std::uint8_t>(MsgCode::kCompete), 0, 1));
  sink.record(Event::collision(35, 1));
  sink.record(Event::decision(36, 0, 2, 36));
  const TimeSeries series = sink.finish(/*slots_run=*/40);

  ASSERT_EQ(series.size(), 4u);  // windows 0,10,20,30 — gap at 20 filled
  const auto& rows = series.rows();
  EXPECT_EQ(rows[0].start, 0);
  EXPECT_EQ(rows[0].wakes, 2u);
  EXPECT_EQ(rows[0].awake_end, 2u);
  EXPECT_EQ(rows[0].decided_end, 0u);
  EXPECT_EQ(rows[0].active_end(), 2u);
  EXPECT_EQ(rows[1].transmissions, 1u);
  EXPECT_EQ(rows[2].start, 20);  // gap-filled empty window
  EXPECT_EQ(rows[2].transmissions, 0u);
  EXPECT_EQ(rows[2].awake_end, 2u);  // populations persist through gaps
  EXPECT_EQ(rows[3].collisions, 1u);
  EXPECT_EQ(rows[3].decisions, 1u);
  EXPECT_EQ(rows[3].decided_end, 1u);
  EXPECT_EQ(rows[3].active_end(), 1u);
  EXPECT_EQ(series.peak_collisions(), 1u);
}

TEST(Metrics, FinishPadsTrailingEmptyWindows) {
  MetricsSink sink(/*window=*/4);
  sink.record(Event::wake(0, 0));
  const TimeSeries series = sink.finish(/*slots_run=*/17);
  ASSERT_EQ(series.size(), 5u);  // ceil(17/4)
  EXPECT_EQ(series.rows().back().start, 16);
  EXPECT_EQ(series.rows().back().awake_end, 1u);
}

TEST(Metrics, CsvHasHeaderAndOneLinePerRow) {
  MetricsSink sink(/*window=*/2);
  sink.record(Event::wake(0, 0));
  sink.record(Event::collision(3, 0));
  const TimeSeries series = sink.finish(4);
  std::ostringstream os;
  series.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find(TimeSeries::csv_header()), std::string::npos);
  std::size_t lines = 0;
  for (char c : csv) lines += (c == '\n') ? 1u : 0u;
  EXPECT_EQ(lines, 1u + series.size());
}

TEST(Metrics, JsonExportIsWellFormedEnough) {
  MetricsSink sink(/*window=*/8);
  sink.record(Event::wake(1, 0));
  const TimeSeries series = sink.finish(8);
  std::ostringstream os;
  series.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
}

// ---------------------------- trace analyzer ------------------------------

/// Record a real protocol run through a MemorySink.
MemorySink record_run(std::uint64_t seed, std::size_t n, core::Params& params,
                      bool* all_decided) {
  Rng rng(seed);
  auto net = graph::random_udg(n, 5.5, 1.4, rng);
  const graph::Graph g = std::move(net.graph);  // outlives the engine below
  const auto delta = std::max(2u, g.max_closed_degree());
  params = core::Params::practical(g.num_nodes(), delta, 5, 12);

  std::vector<core::ColoringNode> nodes;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes.emplace_back(&params, v);
  }
  MemorySink sink;
  Rng wrng(mix_seed(seed, 5));
  radio::Engine<core::ColoringNode, MemorySink> engine(
      g, radio::WakeSchedule::uniform(g.num_nodes(), 600, wrng),
      std::move(nodes), seed, {}, &sink);
  const auto stats =
      engine.run(core::default_slot_budget(params, engine.schedule()));
  *all_decided = stats.all_decided;
  return sink;
}

class Fig2OnRealRuns : public ::testing::TestWithParam<int> {};

TEST_P(Fig2OnRealRuns, RecordedRunsAreLegalWalks) {
  core::Params params;
  bool all_decided = false;
  const MemorySink sink =
      record_run(static_cast<std::uint64_t>(GetParam()) + 31, 60, params,
                 &all_decided);
  ASSERT_TRUE(all_decided);

  const Fig2Report report = validate_fig2(sink.events(), params.kappa2);
  EXPECT_EQ(report.nodes_checked, 60u);
  EXPECT_GT(report.transitions_checked, 60u);
  for (const Fig2Violation& v : report.violations) {
    ADD_FAILURE() << "node " << v.node << " slot " << v.slot << ": "
                  << v.what;
  }
}

TEST_P(Fig2OnRealRuns, TimelinesMatchTheEventStream) {
  core::Params params;
  bool all_decided = false;
  const MemorySink sink =
      record_run(static_cast<std::uint64_t>(GetParam()) + 131, 40, params,
                 &all_decided);
  ASSERT_TRUE(all_decided);

  const auto timelines = build_timelines(sink.events());
  ASSERT_EQ(timelines.size(), 40u);
  for (const NodeTimeline& t : timelines) {
    EXPECT_TRUE(t.decided()) << "node " << t.node;
    EXPECT_GE(t.wake_slot, 0) << "node " << t.node;
    EXPECT_GE(t.latency(), 0) << "node " << t.node;
    EXPECT_GE(t.final_color, 0) << "node " << t.node;
    ASSERT_FALSE(t.phases.empty()) << "node " << t.node;
    // Last phase entered is the decided state carrying the final color.
    EXPECT_EQ(t.phases.back().phase,
              static_cast<std::uint8_t>(PhaseCode::kDecided));
    EXPECT_EQ(t.phases.back().color, t.final_color);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig2OnRealRuns, ::testing::Range(0, 3));

std::vector<Event> legal_prefix() {
  // wake → A₀ → R → A_26 (κ₂ = 12 ⇒ first verify color 2·13 = 26).
  return {
      Event::wake(0, 0),
      Event::phase_change(0, 0, static_cast<std::uint8_t>(PhaseCode::kVerify),
                          0),
      Event::phase_change(10, 0,
                          static_cast<std::uint8_t>(PhaseCode::kRequest), 0),
      Event::phase_change(20, 0,
                          static_cast<std::uint8_t>(PhaseCode::kVerify), 26),
  };
}

TEST(Fig2Validator, AcceptsTheLegalHandBuiltWalk) {
  auto events = legal_prefix();
  events.push_back(Event::phase_change(
      30, 0, static_cast<std::uint8_t>(PhaseCode::kVerify), 27));
  events.push_back(Event::phase_change(
      40, 0, static_cast<std::uint8_t>(PhaseCode::kDecided), 27));
  events.push_back(Event::decision(40, 0, 27, 40));
  EXPECT_TRUE(validate_fig2(events, 12).ok());
}

TEST(Fig2Validator, RejectsA0SkippingToA1) {
  std::vector<Event> events = {
      Event::wake(0, 0),
      Event::phase_change(0, 0, static_cast<std::uint8_t>(PhaseCode::kVerify),
                          0),
      // Illegal: A₀ exits only to C₀ or R, never to A₁.
      Event::phase_change(5, 0, static_cast<std::uint8_t>(PhaseCode::kVerify),
                          1),
  };
  const Fig2Report report = validate_fig2(events, 0);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].node, 0u);
}

TEST(Fig2Validator, RejectsRequestExitOffTheTcLattice) {
  auto events = legal_prefix();
  // 27 is not a multiple of κ₂ + 1 = 13: legal without κ₂ knowledge,
  // illegal with it.
  events[3] = Event::phase_change(
      20, 0, static_cast<std::uint8_t>(PhaseCode::kVerify), 27);
  EXPECT_TRUE(validate_fig2(events, 0).ok());
  EXPECT_FALSE(validate_fig2(events, 12).ok());
}

TEST(Fig2Validator, RejectsLeavingADecidedState) {
  std::vector<Event> events = {
      Event::wake(0, 0),
      Event::phase_change(0, 0, static_cast<std::uint8_t>(PhaseCode::kVerify),
                          0),
      Event::phase_change(9, 0,
                          static_cast<std::uint8_t>(PhaseCode::kDecided), 0),
      // Illegal: C_i is terminal.
      Event::phase_change(12, 0,
                          static_cast<std::uint8_t>(PhaseCode::kVerify), 1),
  };
  EXPECT_FALSE(validate_fig2(events, 0).ok());
}

TEST(Fig2Validator, RejectsPhaseBeforeWake) {
  std::vector<Event> events = {
      Event::phase_change(3, 0, static_cast<std::uint8_t>(PhaseCode::kVerify),
                          0),
      Event::wake(5, 0),
  };
  EXPECT_FALSE(validate_fig2(events, 0).ok());
}

TEST(Fig2Validator, RejectsDecisionColorMismatch) {
  std::vector<Event> events = {
      Event::wake(0, 0),
      Event::phase_change(0, 0, static_cast<std::uint8_t>(PhaseCode::kVerify),
                          0),
      Event::phase_change(9, 0,
                          static_cast<std::uint8_t>(PhaseCode::kDecided), 0),
      Event::decision(9, 0, /*color=*/3, 9),  // C₀ but claims color 3
  };
  EXPECT_FALSE(validate_fig2(events, 0).ok());
}

// ----------------------------- traced runner ------------------------------

TEST(TracedRunner, ProducesSeriesAndLogAndMatchesUntracedRun) {
  Rng rng(77);
  const auto net = graph::random_udg(50, 5.0, 1.4, rng);
  const auto delta = std::max(2u, net.graph.max_closed_degree());
  const core::Params params =
      core::Params::practical(net.graph.num_nodes(), delta, 5, 12);
  const auto ws = radio::WakeSchedule::synchronous(net.graph.num_nodes());

  const std::string path = ::testing::TempDir() + "obs_traced_run.jsonl";
  core::TraceOptions trace;
  trace.metrics = true;
  trace.metrics_window = 32;
  trace.events_jsonl = path;

  const auto plain = core::run_coloring(net.graph, params, ws, 9);
  const auto traced =
      core::run_coloring_traced(net.graph, params, ws, 9, trace);

  // Tracing must not perturb the run: bit-identical outcome.
  ASSERT_TRUE(plain.all_decided);
  ASSERT_TRUE(traced.all_decided);
  EXPECT_EQ(traced.colors, plain.colors);
  EXPECT_EQ(traced.decision_slot, plain.decision_slot);
  EXPECT_EQ(traced.medium.transmissions, plain.medium.transmissions);
  EXPECT_EQ(traced.medium.collisions, plain.medium.collisions);

  // The series covers the whole run and sums to the population.
  ASSERT_TRUE(traced.series.has_value());
  const TimeSeries& series = *traced.series;
  EXPECT_EQ(series.window(), 32);
  ASSERT_GT(series.size(), 0u);
  std::uint64_t wakes = 0, decisions = 0, collisions = 0;
  for (const MetricsRow& row : series.rows()) {
    wakes += row.wakes;
    decisions += row.decisions;
    collisions += row.collisions;
  }
  EXPECT_EQ(wakes, 50u);
  EXPECT_EQ(decisions, 50u);
  EXPECT_EQ(collisions, traced.medium.collisions);
  EXPECT_EQ(series.rows().back().decided_end, 50u);
  EXPECT_EQ(series.rows().back().active_end(), 0u);

  // The JSONL log parses back and is a legal Fig. 2 execution.
  EXPECT_GT(traced.events_recorded, 0u);
  const ParsedLogFile log = read_jsonl_file(path);
  ASSERT_TRUE(log.ok);
  EXPECT_EQ(log.bad_lines, 0u);
  EXPECT_EQ(log.events.size(), traced.events_recorded);
  EXPECT_TRUE(validate_fig2(log.events, params.kappa2).ok());
  std::remove(path.c_str());
}

TEST(TracedRunner, MetricsOnlyNeedsNoFile) {
  const graph::Graph g = graph::empty_graph(2);
  const core::Params params = core::Params::practical(16, 2, 2, 3);
  core::TraceOptions trace;
  trace.metrics = true;
  trace.metrics_window = 8;
  const auto run = core::run_coloring_traced(
      g, params, radio::WakeSchedule::synchronous(2), 1, trace);
  ASSERT_TRUE(run.all_decided);
  ASSERT_TRUE(run.series.has_value());
  EXPECT_EQ(run.events_recorded, 0u);  // no JSONL sink attached
  EXPECT_EQ(run.series->rows().back().decided_end, 2u);
}

// ------------------------------- profiling --------------------------------

TEST(Profiling, CountersAccumulateAndSnapshotSorted) {
  CounterRegistry reg;
  reg.add("b.two", 2);
  reg.add("a.one", 1);
  reg.add("b.two", 3);
  EXPECT_EQ(reg.value("b.two"), 5u);
  EXPECT_EQ(reg.value("a.one"), 1u);
  EXPECT_EQ(reg.value("absent"), 0u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a.one");
  EXPECT_EQ(snap[1].first, "b.two");
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Profiling, HandlesAreLockFreeCellsIntoTheRegistry) {
  CounterRegistry reg;
  CounterCell cell = reg.handle("hot.path");
  EXPECT_TRUE(cell.attached());
  cell.add(3);
  cell.add(4);
  EXPECT_EQ(cell.value(), 7u);
  EXPECT_EQ(reg.value("hot.path"), 7u);
  // `add` and a cached handle hit the same cell.
  reg.add("hot.path", 1);
  EXPECT_EQ(cell.value(), 8u);
  // Handles stay valid across later insertions (node-based map).
  for (int i = 0; i < 100; ++i) {
    (void)reg.handle("other." + std::to_string(i));
  }
  cell.add(1);
  EXPECT_EQ(reg.value("hot.path"), 9u);
}

TEST(Profiling, DetachedHandleDiscardsAdds) {
  CounterCell cell;
  EXPECT_FALSE(cell.attached());
  cell.add(5);  // no crash, no effect
  EXPECT_EQ(cell.value(), 0u);
}

TEST(Profiling, ScopeRecordsDurationAndCallCount) {
  CounterRegistry reg;
  for (int i = 0; i < 3; ++i) {
    ProfileScope scope("work", &reg);
    EXPECT_GE(scope.elapsed_ns(), 0u);
  }
  EXPECT_EQ(reg.value("work.calls"), 3u);
  EXPECT_GT(reg.value("work.ns"), 0u);
}

TEST(Profiling, RunnerFeedsTheGlobalRegistry) {
  auto& reg = CounterRegistry::global();
  const std::uint64_t before = reg.value("core.run_coloring.runs");
  const graph::Graph g = graph::empty_graph(1);
  const core::Params params = core::Params::practical(16, 2, 2, 3);
  (void)core::run_coloring(g, params, radio::WakeSchedule::synchronous(1), 1);
  EXPECT_EQ(reg.value("core.run_coloring.runs"), before + 1);
  EXPECT_GT(reg.value("core.run_coloring.slots"), 0u);
}

}  // namespace
}  // namespace urn::obs
