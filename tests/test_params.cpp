// Tests for the protocol parameter set: derived quantities, the paper's
// analytical constants, validation, and the color-range arithmetic that
// Lemma 5 / Corollary 1 rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "core/params.hpp"
#include "support/check.hpp"
#include "support/mathutil.hpp"

namespace urn::core {
namespace {

TEST(Params, PracticalValidates) {
  const Params p = Params::practical(256, 16, 5, 12);
  EXPECT_EQ(p.n, 256u);
  EXPECT_EQ(p.delta, 16u);
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, PracticalConstantsScaleWithKappa2) {
  const Params small = Params::practical(256, 16, 5, 6);
  const Params large = Params::practical(256, 16, 5, 12);
  EXPECT_NEAR(large.alpha / small.alpha, 2.0, 1e-9);
  EXPECT_NEAR(large.sigma / small.sigma, 2.0, 1e-9);
}

TEST(Params, DerivedQuantitiesMatchFormulas) {
  const Params p = Params::practical(1000, 20, 5, 10);
  const double logn = std::log(1000.0);
  EXPECT_EQ(p.passive_slots(),
            static_cast<std::int64_t>(std::ceil(p.alpha * 20 * logn)));
  EXPECT_EQ(p.threshold(),
            static_cast<std::int64_t>(std::ceil(p.sigma * 20 * logn)));
  EXPECT_EQ(p.assign_window(),
            static_cast<std::int64_t>(std::ceil(p.beta * logn)));
}

TEST(Params, CriticalRangeUsesZeta) {
  // ζ₀ = 1, ζ_i = Δ for i > 0 (Algorithm 1, line 2).
  const Params p = Params::practical(1000, 20, 5, 10);
  EXPECT_EQ(p.critical_range(0), ceil_mul_log(p.gamma, 1000));
  EXPECT_EQ(p.critical_range(1), ceil_mul_log(p.gamma * 20, 1000));
  EXPECT_EQ(p.critical_range(7), p.critical_range(1));
}

TEST(Params, SendProbabilities) {
  const Params p = Params::practical(100, 25, 4, 10);
  EXPECT_DOUBLE_EQ(p.p_active(), 1.0 / 250.0);
  EXPECT_DOUBLE_EQ(p.p_leader(), 1.0 / 10.0);
}

TEST(Params, FirstVerifyColorSpacing) {
  const Params p = Params::practical(100, 10, 4, 7);
  EXPECT_EQ(p.first_verify_color(0), 0);
  EXPECT_EQ(p.first_verify_color(1), 8);
  EXPECT_EQ(p.first_verify_color(2), 16);
}

// Lemma 5 / Corollary 1: the color range of intra-cluster color tc,
// [tc(κ₂+1), tc(κ₂+1)+κ₂], never overlaps the next tc's range.
TEST(Params, TcColorRangesAreDisjoint) {
  const Params p = Params::practical(100, 10, 4, 9);
  for (std::int32_t tc = 0; tc < 50; ++tc) {
    const std::int32_t hi = p.first_verify_color(tc) +
                            static_cast<std::int32_t>(p.kappa2);
    EXPECT_LT(hi, p.first_verify_color(tc + 1));
  }
}

TEST(Params, AnalyticalMatchesPaperFormulas) {
  const std::uint32_t k1 = 5, k2 = 18, delta = 30;
  const Params p = Params::analytical(500, delta, k1, k2);
  const double inv_e = 1.0 / std::exp(1.0);
  const double t1 = std::pow(inv_e * (1.0 - 1.0 / 18.0), 5.0 / 18.0);
  const double t2 = std::pow(inv_e * (1.0 - 1.0 / (18.0 * 30.0)), 1.0 / 18.0);
  EXPECT_NEAR(p.gamma, 5.0 * 18.0 / (t1 * t2), 1e-9);
  EXPECT_NEAR(p.sigma,
              10.0 * std::exp(2.0) * 18.0 /
                  ((1.0 - 1.0 / 18.0) * (1.0 - 1.0 / (18.0 * 30.0))),
              1e-9);
  // Constraints used in the proofs.
  EXPECT_GT(p.alpha, 2.0 * p.gamma * 18.0 + p.sigma + 1.0);  // Lemma 7
  EXPECT_GE(p.beta, p.gamma);                                // Lemma 8
  EXPECT_GT(p.sigma, 2.0 * p.gamma);                         // Theorem 2
}

TEST(Params, AnalyticalDominatesPractical) {
  const Params a = Params::analytical(500, 30, 5, 18);
  const Params pr = Params::practical(500, 30, 5, 18);
  EXPECT_GT(a.alpha, pr.alpha);
  EXPECT_GT(a.gamma, pr.gamma);
  EXPECT_GT(a.sigma, pr.sigma);
}

TEST(Params, ScaledMultipliesAllConstants) {
  const Params p = Params::practical(100, 10, 4, 8);
  const Params s = p.scaled(0.5);
  EXPECT_DOUBLE_EQ(s.alpha, p.alpha * 0.5);
  EXPECT_DOUBLE_EQ(s.beta, p.beta * 0.5);
  EXPECT_DOUBLE_EQ(s.gamma, p.gamma * 0.5);
  EXPECT_DOUBLE_EQ(s.sigma, p.sigma * 0.5);
  EXPECT_EQ(s.n, p.n);
  EXPECT_EQ(s.delta, p.delta);
}

TEST(Params, ScaledRejectsNonPositive) {
  const Params p = Params::practical(100, 10, 4, 8);
  EXPECT_THROW((void)p.scaled(0.0), CheckError);
  EXPECT_THROW((void)p.scaled(-1.0), CheckError);
}

TEST(Params, ValidationRejectsDegenerateInputs) {
  EXPECT_THROW((void)Params::practical(1, 10, 4, 8), CheckError);   // n
  EXPECT_THROW((void)Params::practical(100, 1, 4, 8), CheckError);  // delta
  EXPECT_THROW((void)Params::practical(100, 10, 4, 1), CheckError); // kappa2
  EXPECT_THROW((void)Params::practical(100, 10, 9, 8), CheckError); // k1 > k2
  EXPECT_THROW((void)Params::practical(100, 10, 0, 8), CheckError); // k1 = 0
}

TEST(Params, ThresholdGrowsWithDeltaAndN) {
  const Params base = Params::practical(256, 16, 5, 10);
  const Params more_delta = Params::practical(256, 32, 5, 10);
  const Params more_n = Params::practical(65536, 16, 5, 10);
  EXPECT_GT(more_delta.threshold(), base.threshold());
  EXPECT_GT(more_n.threshold(), base.threshold());
}

}  // namespace
}  // namespace urn::core
