// Postmortem checkpoint tests: the byte codecs, the URNC container's
// error handling, the scenario section round-trip, and the end-to-end
// contract of the runner's bundle path — a checkpointed run is
// bit-identical to an unhooked one, and resuming from its checkpoint
// reproduces the straight-through RunResult field for field.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "obs/postmortem.hpp"
#include "radio/engine.hpp"
#include "support/rng.hpp"

namespace urn {
namespace {

namespace pm = obs::postmortem;

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

// Every deterministic RunResult field; `series` / `events_recorded` /
// `monitor` / `bundle` are observability artifacts and deliberately
// excluded (a traced run records events, a plain run does not).
void expect_run_equal(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.wake_slot, b.wake_slot);
  EXPECT_EQ(a.decision_slot, b.decision_slot);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.medium.slots_run, b.medium.slots_run);
  EXPECT_EQ(a.medium.transmissions, b.medium.transmissions);
  EXPECT_EQ(a.medium.deliveries, b.medium.deliveries);
  EXPECT_EQ(a.medium.collisions, b.medium.collisions);
  EXPECT_EQ(a.medium.dropped, b.medium.dropped);
  EXPECT_EQ(a.all_decided, b.all_decided);
  EXPECT_EQ(a.check.valid(), b.check.valid());
  EXPECT_EQ(a.max_color, b.max_color);
  EXPECT_EQ(a.num_leaders, b.num_leaders);
  EXPECT_EQ(a.leader_of, b.leader_of);
  EXPECT_EQ(a.intra_cluster, b.intra_cluster);
  EXPECT_EQ(a.total_resets, b.total_resets);
  EXPECT_EQ(a.max_verify_states, b.max_verify_states);
  EXPECT_EQ(a.duplicate_serves, b.duplicate_serves);
}

// ---- byte codecs ----------------------------------------------------------

TEST(PostmortemCodec, WriterReaderRoundTrip) {
  pm::Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.5);
  w.boolean(true);
  w.boolean(false);

  pm::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.f64(), 3.5);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(PostmortemCodec, ReaderLatchesOnTruncation) {
  const std::string three_bytes("\x01\x02\x03", 3);
  pm::Reader r(three_bytes);
  EXPECT_EQ(r.u32(), 0u);  // needs 4, only 3 available
  EXPECT_FALSE(r.ok());
  // Latched: even a 1-byte read now fails, the buffer is poisoned.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(PostmortemCodec, RngSnapshotRoundTripReplaysDrawForDraw) {
  Rng original(12345);
  (void)original.normal();  // park a spare so the cache path is exercised
  (void)original.below(100);

  pm::Writer w;
  pm::write_rng(w, original);
  Rng restored(999);  // deliberately different seed; restore overwrites
  pm::Reader r(w.data());
  ASSERT_TRUE(pm::read_rng(r, restored));

  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(original.below(1000), restored.below(1000)) << "draw " << i;
    EXPECT_EQ(original.normal(), restored.normal()) << "draw " << i;
  }
}

// ---- URNC container error handling ---------------------------------------

TEST(CheckpointFile, RejectsMissingFile) {
  const auto file =
      pm::read_checkpoint_file(::testing::TempDir() + "no_such.urnc");
  EXPECT_FALSE(file.ok);
  EXPECT_NE(file.error.find("cannot open"), std::string::npos) << file.error;
}

TEST(CheckpointFile, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "bad_magic.urnc";
  ASSERT_TRUE(pm::write_text_file(
      path, std::string("NOPE") + std::string(20, '\0')));
  const auto file = pm::read_checkpoint_file(path);
  EXPECT_FALSE(file.ok);
  EXPECT_NE(file.error.find("not a URNC checkpoint"), std::string::npos)
      << file.error;
}

TEST(CheckpointFile, RejectsFutureVersionWithOneLiner) {
  pm::Writer w;
  for (char c : pm::kCkptMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u16(pm::kCkptVersion + 1);
  w.u16(0);  // kind aligned
  w.i64(0);  // position
  w.u32(0);  // empty scenario section
  w.u32(0);  // empty engine-state section
  const std::string path = ::testing::TempDir() + "future.urnc";
  ASSERT_TRUE(pm::write_text_file(path, w.data()));
  const auto file = pm::read_checkpoint_file(path);
  EXPECT_FALSE(file.ok);
  EXPECT_NE(file.error.find("newer than this reader"), std::string::npos)
      << file.error;
}

TEST(CheckpointFile, RejectsTruncatedSections) {
  pm::Writer w;
  for (char c : pm::kCkptMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u16(pm::kCkptVersion);
  w.u16(0);
  w.i64(0);
  w.u32(100);  // claims a 100-byte scenario section, then EOF
  const std::string path = ::testing::TempDir() + "truncated.urnc";
  ASSERT_TRUE(pm::write_text_file(path, w.data()));
  const auto file = pm::read_checkpoint_file(path);
  EXPECT_FALSE(file.ok);
  EXPECT_NE(file.error.find("truncated"), std::string::npos) << file.error;
}

// ---- scenario section -----------------------------------------------------

TEST(ScenarioCodec, RoundTripPreservesEveryField) {
  Rng rng(7);
  const graph::Graph g = graph::gnp(40, 0.1, rng);
  const auto delta = std::max(2u, g.max_closed_degree());
  const core::Params params =
      core::Params::practical(g.num_nodes(), delta, 5, 12);
  Rng wrng(11);
  const auto schedule =
      radio::WakeSchedule::uniform(g.num_nodes(), 700, wrng);
  radio::MediumOptions medium;
  medium.drop_probability = 0.25;
  std::vector<std::uint8_t> offsets(g.num_nodes());
  for (std::size_t v = 0; v < offsets.size(); ++v) {
    offsets[v] = static_cast<std::uint8_t>(v & 1);
  }

  const core::CheckpointScenario in = core::make_scenario(
      g, params, schedule, /*seed=*/0xC0FFEE, /*max_slots=*/12345, medium,
      /*trial=*/9, offsets);
  const std::string bytes = core::render_scenario(in);

  pm::Reader r(bytes);
  core::CheckpointScenario out;
  ASSERT_TRUE(core::read_scenario(r, out));
  EXPECT_EQ(out.num_nodes, g.num_nodes());
  EXPECT_EQ(out.edges, in.edges);
  EXPECT_EQ(out.wake_slots, in.wake_slots);
  EXPECT_EQ(out.offsets, offsets);
  EXPECT_EQ(out.seed, 0xC0FFEEull);
  EXPECT_EQ(out.trial, 9ull);
  EXPECT_EQ(out.max_slots, 12345);
  EXPECT_EQ(out.medium.drop_probability, 0.25);
  EXPECT_EQ(out.params.threshold(), params.threshold());

  // Rebuilding the CSR from the edge list must reproduce the original
  // adjacency exactly (GraphBuilder sorts, so neighbor order — and with
  // it every medium RNG draw — is pinned).
  graph::GraphBuilder gb(out.num_nodes);
  for (auto [u, v] : out.edges) gb.add_edge(u, v);
  const graph::Graph rebuilt = gb.build();
  ASSERT_EQ(rebuilt.num_nodes(), g.num_nodes());
  ASSERT_EQ(rebuilt.num_edges(), g.num_edges());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = rebuilt.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "node " << v;
  }
}

TEST(ScenarioCodec, ReadRejectsTruncatedBytes) {
  Rng rng(7);
  const graph::Graph g = graph::gnp(20, 0.15, rng);
  const core::Params params = core::Params::practical(20, 6, 5, 12);
  const auto schedule = radio::WakeSchedule::synchronous(20);
  const std::string bytes = core::render_scenario(
      core::make_scenario(g, params, schedule, 1, 1000));
  for (const std::size_t cut : {bytes.size() / 4, bytes.size() / 2,
                                bytes.size() - 1}) {
    pm::Reader r(bytes.data(), cut);
    core::CheckpointScenario out;
    EXPECT_FALSE(core::read_scenario(r, out)) << "cut at " << cut;
  }
}

// ---- runner bundle path ---------------------------------------------------

struct BundleFixture {
  graph::Graph g;
  core::Params params;
  radio::WakeSchedule schedule;
  std::uint64_t seed;
  radio::Slot budget;
};

BundleFixture make_fixture(std::uint64_t seed) {
  Rng rng(seed);
  graph::Graph g = graph::gnp(48, 0.1, rng);
  const auto delta = std::max(2u, g.max_closed_degree());
  core::Params params = core::Params::practical(g.num_nodes(), delta, 5, 12);
  Rng wrng(mix_seed(seed, 17));
  auto schedule = radio::WakeSchedule::uniform(g.num_nodes(), 600, wrng);
  const radio::Slot budget = 6 * params.threshold() + 4000;
  return {std::move(g), params, std::move(schedule), seed, budget};
}

TEST(RunnerPostmortem, CheckpointedRunMatchesPlainRunAndResumes) {
  const BundleFixture fx = make_fixture(3);
  radio::MediumOptions medium;
  medium.drop_probability = 0.2;

  const core::RunResult plain = core::run_coloring(
      fx.g, fx.params, fx.schedule, fx.seed, fx.budget, medium);

  const std::string dir = ::testing::TempDir() + "pm_clean_bundle";
  core::TraceOptions topts;
  topts.postmortem.dir = dir;
  topts.postmortem.checkpoint_every = 500;
  const core::RunResult traced = core::run_coloring_traced(
      fx.g, fx.params, fx.schedule, fx.seed, topts, fx.budget, medium);

  // Checkpointing must not perturb the run.
  expect_run_equal(traced, plain);

  // Bundle contents: checkpoint + ring + manifest always; monitor.json
  // and the RunResult bundle pointer only on violation (none here).
  EXPECT_TRUE(file_exists(dir + "/" + pm::kCkptFileName));
  EXPECT_TRUE(file_exists(dir + "/" + pm::kRingFileName));
  EXPECT_TRUE(file_exists(dir + "/" + pm::kManifestFileName));
  EXPECT_FALSE(file_exists(dir + "/" + pm::kMonitorFileName));
  EXPECT_TRUE(traced.bundle.empty());

  // The last periodic checkpoint resumes to the straight-through result.
  const core::LoadedCheckpoint ck =
      core::load_checkpoint(dir + "/" + pm::kCkptFileName);
  ASSERT_TRUE(ck.ok) << ck.error;
  EXPECT_EQ(ck.kind, pm::EngineKind::kAligned);
  EXPECT_EQ(ck.version, pm::kCkptVersion);
  EXPECT_GT(ck.position, 0);
  EXPECT_EQ(ck.scenario.max_slots, fx.budget);

  const core::ResumeResult resumed = core::resume_coloring(ck);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  expect_run_equal(resumed.run, plain);
}

TEST(RunnerPostmortem, DescribeCheckpointReportsFrozenState) {
  const BundleFixture fx = make_fixture(5);
  const std::string dir = ::testing::TempDir() + "pm_describe_bundle";
  core::TraceOptions topts;
  topts.postmortem.dir = dir;
  topts.postmortem.checkpoint_every = 300;
  (void)core::run_coloring_traced(fx.g, fx.params, fx.schedule, fx.seed,
                                  topts, fx.budget);

  const core::LoadedCheckpoint ck =
      core::load_checkpoint(dir + "/" + pm::kCkptFileName);
  ASSERT_TRUE(ck.ok) << ck.error;
  const core::CheckpointSummary summary = core::describe_checkpoint(ck);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.position, ck.position);
  EXPECT_EQ(summary.nodes.size(), fx.g.num_nodes());
  EXPECT_EQ(summary.stats.slots_run, ck.position);
  std::size_t decided = 0;
  for (const auto& node : summary.nodes) decided += node.decided ? 1 : 0;
  EXPECT_EQ(summary.decided, decided);
}

TEST(RunnerPostmortem, ViolationCapturesFullBundle) {
  // An extreme fading rate stretches decision latencies far past the
  // Theorem 3 budget the monitor enforces, tripping the latency
  // invariant; scan a few seeds in case one run stays clean.
  radio::MediumOptions medium;
  medium.drop_probability = 0.85;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const BundleFixture fx = make_fixture(seed);
    const std::string dir = ::testing::TempDir() + "pm_violation_bundle_s" +
                            std::to_string(seed);
    core::TraceOptions topts;
    topts.postmortem.dir = dir;
    topts.postmortem.checkpoint_every = 1000;
    topts.postmortem.dump_on_violation = true;  // implies monitor
    const core::RunResult run = core::run_coloring_traced(
        fx.g, fx.params, fx.schedule, fx.seed, topts, fx.budget, medium);
    ASSERT_TRUE(run.monitor.has_value());
    if (run.monitor->ok()) continue;

    EXPECT_EQ(run.bundle, dir);
    EXPECT_TRUE(file_exists(dir + "/" + pm::kMonitorFileName));
    EXPECT_TRUE(file_exists(dir + "/" + pm::kCkptFileName));
    // The captured monitor report names a first violation.
    const auto* first = obs::first_violation(*run.monitor);
    ASSERT_NE(first, nullptr);
    EXPECT_GE(first->first_slot, 0);
    // And the bundle's checkpoint is still resumable.
    const core::LoadedCheckpoint ck =
        core::load_checkpoint(dir + "/" + pm::kCkptFileName);
    ASSERT_TRUE(ck.ok) << ck.error;
    const core::ResumeResult resumed = core::resume_coloring(ck);
    EXPECT_TRUE(resumed.ok) << resumed.error;
    return;
  }
  GTEST_SKIP() << "no invariant violation at drop=0.85 across 8 seeds";
}

TEST(RunnerPostmortem, ResumeRejectsCorruptEngineState) {
  const BundleFixture fx = make_fixture(13);
  const std::string dir = ::testing::TempDir() + "pm_corrupt_bundle";
  core::TraceOptions topts;
  topts.postmortem.dir = dir;
  topts.postmortem.checkpoint_every = 500;
  (void)core::run_coloring_traced(fx.g, fx.params, fx.schedule, fx.seed,
                                  topts, fx.budget);

  core::LoadedCheckpoint ck =
      core::load_checkpoint(dir + "/" + pm::kCkptFileName);
  ASSERT_TRUE(ck.ok) << ck.error;
  ck.engine_state.resize(ck.engine_state.size() / 2);  // chop the state
  const core::ResumeResult resumed = core::resume_coloring(ck);
  EXPECT_FALSE(resumed.ok);
  EXPECT_FALSE(resumed.error.empty());
}

}  // namespace
}  // namespace urn
