// Unit tests for the ColoringNode state machine (Algorithms 1–3), driving
// callbacks directly, plus exact-timing checks on tiny graphs.

#include <gtest/gtest.h>

#include <optional>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "radio/engine.hpp"
#include "support/rng.hpp"

namespace urn::core {
namespace {

Params tiny_params() { return Params::practical(16, 2, 2, 3); }

radio::SlotContext ctx_at(graph::NodeId id, radio::Slot now, Rng& rng) {
  radio::SlotContext ctx;
  ctx.id = id;
  ctx.now = now;
  ctx.rng = &rng;
  return ctx;
}

// --------------------------------------------------------- state machine --

TEST(Protocol, WakesIntoVerifyZero) {
  const Params p = tiny_params();
  Rng rng(1);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto ctx = ctx_at(0, 0, rng);
  node.on_wake(ctx);
  EXPECT_EQ(node.phase(), Phase::kVerify);
  EXPECT_EQ(node.verifying_color(), 0);
  EXPECT_FALSE(node.decided());
  EXPECT_EQ(node.color(), graph::kUncolored);
}

TEST(Protocol, PassivePhaseIsSilent) {
  const Params p = tiny_params();
  Rng rng(2);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto ctx = ctx_at(0, 0, rng);
  node.on_wake(ctx);
  for (radio::Slot t = 0; t < p.passive_slots(); ++t) {
    auto c = ctx_at(0, t, rng);
    EXPECT_EQ(node.on_slot(c), std::nullopt) << "transmitted in slot " << t;
  }
}

TEST(Protocol, IsolatedNodeDecidesAtExactThreshold) {
  const Params p = tiny_params();
  Rng rng(3);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto ctx = ctx_at(0, 0, rng);
  node.on_wake(ctx);
  // Passive phase, then counter climbs 1, 2, …, threshold.
  const radio::Slot decide_slot = p.passive_slots() + p.threshold() - 1;
  for (radio::Slot t = 0; t <= decide_slot; ++t) {
    auto c = ctx_at(0, t, rng);
    (void)node.on_slot(c);
    if (t < decide_slot) {
      EXPECT_FALSE(node.decided()) << "decided early at slot " << t;
    }
  }
  EXPECT_TRUE(node.decided());
  EXPECT_TRUE(node.is_leader());
  EXPECT_EQ(node.color(), 0);
}

TEST(Protocol, HearingLeaderInA0MovesToRequest) {
  const Params p = tiny_params();
  Rng rng(4);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto ctx = ctx_at(0, 0, rng);
  node.on_wake(ctx);
  node.on_receive(ctx, radio::make_decided(7, 0));
  EXPECT_EQ(node.phase(), Phase::kRequest);
  EXPECT_EQ(node.leader(), 7u);
}

TEST(Protocol, AssignMessageAlsoIdentifiesLeader) {
  // An overheard assignment (addressed to someone else) still proves the
  // sender is in C₀ (Fig. 2: any M_C^0 message).
  const Params p = tiny_params();
  Rng rng(5);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto ctx = ctx_at(0, 0, rng);
  node.on_wake(ctx);
  node.on_receive(ctx, radio::make_assign(9, /*w=*/3, /*tc=*/2));
  EXPECT_EQ(node.phase(), Phase::kRequest);
  EXPECT_EQ(node.leader(), 9u);
}

TEST(Protocol, RequestOnlyAcceptsOwnAssignment) {
  const Params p = tiny_params();
  Rng rng(6);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto ctx = ctx_at(0, 0, rng);
  node.on_wake(ctx);
  node.on_receive(ctx, radio::make_decided(7, 0));  // leader 7
  ASSERT_EQ(node.phase(), Phase::kRequest);

  // Assignment to another node: ignored.
  node.on_receive(ctx, radio::make_assign(7, /*w=*/5, /*tc=*/1));
  EXPECT_EQ(node.phase(), Phase::kRequest);
  // Assignment from a different leader: ignored.
  node.on_receive(ctx, radio::make_assign(8, /*w=*/0, /*tc=*/1));
  EXPECT_EQ(node.phase(), Phase::kRequest);
  // The real one: move to A_{tc(κ₂+1)}.
  node.on_receive(ctx, radio::make_assign(7, /*w=*/0, /*tc=*/2));
  EXPECT_EQ(node.phase(), Phase::kVerify);
  EXPECT_EQ(node.intra_cluster_color(), 2);
  EXPECT_EQ(node.verifying_color(), p.first_verify_color(2));
}

TEST(Protocol, CoveredVerifierAdvancesToNextColor) {
  const Params p = tiny_params();
  Rng rng(7);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto ctx = ctx_at(0, 0, rng);
  node.on_wake(ctx);
  node.on_receive(ctx, radio::make_decided(7, 0));
  node.on_receive(ctx, radio::make_assign(7, 0, 1));
  const std::int32_t first = p.first_verify_color(1);
  ASSERT_EQ(node.verifying_color(), first);
  // A neighbor decided exactly this color: advance to A_{i+1}.
  node.on_receive(ctx, radio::make_decided(3, first));
  EXPECT_EQ(node.verifying_color(), first + 1);
  EXPECT_EQ(node.phase(), Phase::kVerify);
  // A decided message for a *different* color is ignored.
  node.on_receive(ctx, radio::make_decided(4, first + 5));
  EXPECT_EQ(node.verifying_color(), first + 1);
}

TEST(Protocol, CompetitorWithinCriticalRangeCausesReset) {
  const Params p = tiny_params();
  Rng rng(8);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto wake = ctx_at(0, 0, rng);
  node.on_wake(wake);
  // Finish the passive phase and climb a little.
  radio::Slot t = 0;
  for (; t < p.passive_slots() + 5; ++t) {
    auto c = ctx_at(0, t, rng);
    (void)node.on_slot(c);
  }
  const std::int64_t before = node.counter();
  ASSERT_GT(before, 0);
  auto c = ctx_at(0, t, rng);
  node.on_receive(c, radio::make_compete(2, 0, before));  // same counter
  EXPECT_LT(node.counter(), before);
  EXPECT_LE(node.counter(), 0);
  EXPECT_EQ(node.stats().resets, 1u);
  EXPECT_EQ(node.competitors(), 1u);
}

TEST(Protocol, CompetitorOutsideCriticalRangeIsOnlyStored) {
  const Params p = tiny_params();
  Rng rng(9);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto wake = ctx_at(0, 0, rng);
  node.on_wake(wake);
  radio::Slot t = 0;
  for (; t < p.passive_slots() + 5; ++t) {
    auto c = ctx_at(0, t, rng);
    (void)node.on_slot(c);
  }
  const std::int64_t before = node.counter();
  const std::int64_t far = before + p.critical_range(0) + 100;
  auto c = ctx_at(0, t, rng);
  node.on_receive(c, radio::make_compete(2, 0, far));
  EXPECT_EQ(node.counter(), before);  // no reset
  EXPECT_EQ(node.stats().resets, 0u);
  EXPECT_EQ(node.competitors(), 1u);  // but stored
}

TEST(Protocol, CompetitorOfOtherColorIgnored) {
  const Params p = tiny_params();
  Rng rng(10);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto wake = ctx_at(0, 0, rng);
  node.on_wake(wake);
  radio::Slot t = 0;
  for (; t < p.passive_slots() + 3; ++t) {
    auto c = ctx_at(0, t, rng);
    (void)node.on_slot(c);
  }
  auto c = ctx_at(0, t, rng);
  node.on_receive(c, radio::make_compete(2, /*i=*/5, node.counter()));
  EXPECT_EQ(node.competitors(), 0u);
  EXPECT_EQ(node.stats().resets, 0u);
}

TEST(Protocol, NaivePolicyResetsToZeroOnHigherCounter) {
  Params p = tiny_params();
  p.reset_policy = ResetPolicy::kNaive;
  Rng rng(11);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto wake = ctx_at(0, 0, rng);
  node.on_wake(wake);
  radio::Slot t = 0;
  for (; t < p.passive_slots() + 5; ++t) {
    auto c = ctx_at(0, t, rng);
    (void)node.on_slot(c);
  }
  const std::int64_t before = node.counter();
  auto c = ctx_at(0, t, rng);
  // Lower counter: ignored under the naive policy.
  node.on_receive(c, radio::make_compete(2, 0, before - 1));
  EXPECT_EQ(node.counter(), before);
  // Higher counter: reset to zero.
  node.on_receive(c, radio::make_compete(2, 0, before + 1));
  EXPECT_EQ(node.counter(), 0);
  EXPECT_EQ(node.stats().resets, 1u);
}

TEST(Protocol, NonePolicyNeverResets) {
  Params p = tiny_params();
  p.reset_policy = ResetPolicy::kNone;
  Rng rng(12);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto wake = ctx_at(0, 0, rng);
  node.on_wake(wake);
  radio::Slot t = 0;
  for (; t < p.passive_slots() + 5; ++t) {
    auto c = ctx_at(0, t, rng);
    (void)node.on_slot(c);
  }
  const std::int64_t before = node.counter();
  auto c = ctx_at(0, t, rng);
  node.on_receive(c, radio::make_compete(2, 0, before));
  EXPECT_EQ(node.counter(), before);
  EXPECT_EQ(node.stats().resets, 0u);
}

// ------------------------------------------------------------ tiny runs ---

TEST(Protocol, TwoNodeGraphProducesLeaderAndClusterColor) {
  const graph::Graph g = graph::path_graph(2);
  const Params p = Params::practical(16, 2, 2, 3);
  const auto run = run_coloring(g, p, radio::WakeSchedule::synchronous(2), 5);
  ASSERT_TRUE(run.all_decided);
  ASSERT_TRUE(run.check.valid());
  EXPECT_EQ(run.num_leaders, 1u);
  // One node holds color 0; the other verified from tc=1 upward:
  // its color lies in [κ₂+1, 2κ₂+1] (Corollary 1 range for tc = 1).
  const graph::Color lo = p.first_verify_color(1);
  const graph::Color hi = lo + static_cast<graph::Color>(p.kappa2);
  const bool zero_first = run.colors[0] == 0;
  const graph::Color other = zero_first ? run.colors[1] : run.colors[0];
  EXPECT_EQ(zero_first ? run.colors[0] : run.colors[1], 0);
  EXPECT_GE(other, lo);
  EXPECT_LE(other, hi);
}

TEST(Protocol, IsolatedNodesAllBecomeLeaders) {
  const graph::Graph g = graph::empty_graph(5);
  const Params p = Params::practical(16, 2, 2, 3);
  const auto run = run_coloring(g, p, radio::WakeSchedule::synchronous(5), 6);
  ASSERT_TRUE(run.all_decided);
  EXPECT_EQ(run.num_leaders, 5u);
  for (graph::Color c : run.colors) EXPECT_EQ(c, 0);
}

TEST(Protocol, TriangleUsesThreeDistinctColors) {
  const graph::Graph g = graph::complete_graph(3);
  const Params p = Params::practical(16, 3, 2, 2);
  const auto run = run_coloring(g, p, radio::WakeSchedule::synchronous(3), 7);
  ASSERT_TRUE(run.all_decided);
  EXPECT_TRUE(run.check.valid());
  EXPECT_EQ(run.num_leaders, 1u);
  EXPECT_EQ(graph::distinct_colors(run.colors), 3u);
}

TEST(Protocol, ClusterMembersGetUniqueIntraClusterColors) {
  const graph::Graph g = graph::star_graph(6);  // hub + 5 leaves
  const Params p = Params::practical(16, 6, 5, 5);
  const auto run = run_coloring(g, p, radio::WakeSchedule::synchronous(6), 8);
  ASSERT_TRUE(run.all_decided);
  ASSERT_TRUE(run.check.valid());
  // Within each cluster, intra-cluster colors must be unique.
  for (graph::NodeId a = 0; a < 6; ++a) {
    for (graph::NodeId b = a + 1; b < 6; ++b) {
      if (run.leader_of[a] != graph::kInvalidNode &&
          run.leader_of[a] == run.leader_of[b]) {
        EXPECT_NE(run.intra_cluster[a], run.intra_cluster[b]);
      }
    }
  }
}

TEST(Protocol, DecidedNodeKeepsAnnouncing) {
  // After deciding, a node must still transmit M_C^i (Algorithm 3) so that
  // late wakers can defer. Run one node to decision, then count
  // transmissions over a long window.
  const Params p = tiny_params();
  Rng rng(13);
  ColoringHot hot(1);
  ColoringNode node(&p, 0);
  node.attach_hot(&hot);
  auto wake = ctx_at(0, 0, rng);
  node.on_wake(wake);
  radio::Slot t = 0;
  while (!node.decided()) {
    auto c = ctx_at(0, t++, rng);
    (void)node.on_slot(c);
  }
  int transmissions = 0;
  for (int i = 0; i < 2000; ++i) {
    auto c = ctx_at(0, t++, rng);
    if (node.on_slot(c).has_value()) ++transmissions;
  }
  EXPECT_GT(transmissions, 0);
}

}  // namespace
}  // namespace urn::core
