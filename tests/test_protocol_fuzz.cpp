// Robustness fuzzing: a ColoringNode must tolerate *any* message sequence
// without crashing or violating its local invariants — in the radio model
// a node can overhear arbitrary traffic from unknown nodes at any time
// (late wakers, distant-cluster leaders, stale competitors).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "radio/message.hpp"
#include "support/rng.hpp"

namespace urn::core {
namespace {

radio::Message random_message(Rng& rng, std::uint32_t n_ids,
                              std::int32_t max_color,
                              std::int64_t counter_span) {
  radio::Message m;
  const auto type = rng.below(4);
  m.sender = static_cast<graph::NodeId>(1 + rng.below(n_ids));
  switch (type) {
    case 0:
      m = radio::make_compete(m.sender,
                              static_cast<std::int32_t>(rng.below(
                                  static_cast<std::uint64_t>(max_color))),
                              rng.range(-counter_span, counter_span));
      break;
    case 1:
      m = radio::make_decided(m.sender,
                              static_cast<std::int32_t>(rng.below(
                                  static_cast<std::uint64_t>(max_color))));
      break;
    case 2:
      m = radio::make_assign(m.sender,
                             static_cast<graph::NodeId>(rng.below(n_ids)),
                             static_cast<std::int32_t>(rng.below(64)));
      break;
    default:
      m = radio::make_request(m.sender,
                              static_cast<graph::NodeId>(rng.below(n_ids)));
      break;
  }
  return m;
}

class ProtocolFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolFuzz, SurvivesArbitraryTrafficWithInvariantsIntact) {
  const Params params = Params::practical(64, 6, 4, 6);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);

  ColoringHot hot(1);
  ColoringNode node(&params, /*id=*/0);
  node.attach_hot(&hot);
  radio::SlotContext ctx;
  ctx.id = 0;
  ctx.rng = &rng;
  ctx.now = 0;
  node.on_wake(ctx);

  graph::Color decided_color = graph::kUncolored;
  std::int32_t verify_high_water = 0;

  for (radio::Slot t = 0; t < 30000; ++t) {
    ctx.now = t;
    (void)node.on_slot(ctx);

    // Random barrage: up to 2 messages per slot, half the slots.
    if (rng.chance(0.5)) {
      const auto burst = 1 + rng.below(2);
      for (std::uint64_t k = 0; k < burst; ++k) {
        node.on_receive(ctx, random_message(rng, 40, 80, 3000));
      }
    }

    // Invariants after every event batch:
    // (1) counter never exceeds the threshold while still verifying.
    if (node.phase() == Phase::kVerify) {
      EXPECT_LT(node.counter(), params.threshold());
      EXPECT_GE(node.verifying_color(), 0);
      verify_high_water =
          std::max(verify_high_water, node.verifying_color());
    }
    // (2) a decision is irrevocable.
    if (decided_color != graph::kUncolored) {
      ASSERT_TRUE(node.decided());
      ASSERT_EQ(node.color(), decided_color);
    } else if (node.decided()) {
      decided_color = node.color();
      EXPECT_GE(decided_color, 0);
    }
    // (3) in state R, a leader must be known.
    if (node.phase() == Phase::kRequest) {
      EXPECT_NE(node.leader(), graph::kInvalidNode);
    }
  }

  // With kDecided traffic claiming every color, the node keeps advancing
  // but the verify index can only move forward.
  EXPECT_GE(verify_high_water, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz, ::testing::Range(0, 10));

TEST(ProtocolFuzz, AdversarialCoverEveryColorForcesForwardProgressOnly) {
  // Feed M_C^i for the exact color under verification each time the node
  // enters a new A_i: the node must walk the ladder monotonically and
  // never decide or regress.
  const Params params = Params::practical(64, 6, 4, 6);
  Rng rng(99);
  ColoringHot hot(1);
  ColoringNode node(&params, 0);
  node.attach_hot(&hot);
  radio::SlotContext ctx;
  ctx.id = 0;
  ctx.rng = &rng;
  ctx.now = 0;
  node.on_wake(ctx);

  // Move it out of A_0 into a cluster first.
  node.on_receive(ctx, radio::make_decided(7, 0));
  node.on_receive(ctx, radio::make_assign(7, 0, 1));
  std::int32_t previous = node.verifying_color();
  for (int step = 0; step < 50; ++step) {
    node.on_receive(ctx, radio::make_decided(9, node.verifying_color()));
    EXPECT_EQ(node.verifying_color(), previous + 1);
    EXPECT_EQ(node.phase(), Phase::kVerify);
    previous = node.verifying_color();
  }
  EXPECT_FALSE(node.decided());
}

TEST(ProtocolFuzz, CounterSpamCannotForceEarlyDecision) {
  // Feeding only *low* competitor counters must never push a node across
  // the threshold faster than the slot clock allows.
  const Params params = Params::practical(64, 6, 4, 6);
  Rng rng(123);
  ColoringHot hot(1);
  ColoringNode node(&params, 0);
  node.attach_hot(&hot);
  radio::SlotContext ctx;
  ctx.id = 0;
  ctx.rng = &rng;
  ctx.now = 0;
  node.on_wake(ctx);
  const radio::Slot first_possible =
      params.passive_slots() + params.threshold() - 1;
  for (radio::Slot t = 0; t < first_possible; ++t) {
    ctx.now = t;
    (void)node.on_slot(ctx);
    node.on_receive(
        ctx, radio::make_compete(5, 0, -rng.range(0, 100000)));
    ASSERT_FALSE(node.decided()) << "decided at slot " << t;
  }
}

}  // namespace
}  // namespace urn::core
